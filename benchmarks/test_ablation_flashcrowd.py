"""Ablation: memory-streaming clone forks vs full-copy boots under a
flash crowd.

The flash-crowd scenario (``repro.experiments.flashcrowd``) pre-places
one hot parent VM, then boots N replicas of it in a tight stagger while
background tenant churn keeps the cluster and network busy. The clone
arm snapshots the parent's memory into a shared VMD image once and
forks every replica against it post-copy style (demand-fetch the hot
set, serve, gather the cold tail in the background); the full-copy arm
streams the parent's entire memory to every replica before it serves —
N full copies contending on the parent host's uplink.

Both arms consume byte-for-byte the same demand stream, cluster, and
placement pipeline; only the hot tenant's provisioning path differs.
Runs are deterministic for the fixed seed, so the assertions are exact:

* strictly faster time-to-N-serving for clones (the CI gate) — serving
  needs only the hot template fraction, not every byte;
* strictly fewer bytes moved by the time the N-th replica serves —
  cold bytes cross the network once (scatter) instead of once per
  replica;
* no clone replica failed or was left unhydrated;
* the crowd is real: both arms booted the same N hot replicas.
"""

from conftest import run_once
from repro.experiments.flashcrowd import flashcrowd_ablation
from repro.util import MiB

_cache: dict = {}


def run_pair() -> dict:
    if not _cache:
        _cache.update(flashcrowd_ablation(seed=0, quick=True))
    return _cache


def test_flashcrowd_provisioning_ablation(benchmark, emit):
    pair = run_once(benchmark, run_pair)
    clone, full = pair["clone"], pair["fullcopy"]

    emit("", "Ablation — clone forks vs full-copy boots (flash-crowd "
         "scale-out)",
         f"  {'':24s}{'clone':>10s}{'fullcopy':>10s}")
    rows = [
        ("time to N serving (s)", pair["clone_time"],
         pair["fullcopy_time"], "{:10.2f}"),
        ("MiB moved by then", pair["clone_bytes"] / MiB,
         pair["fullcopy_bytes"] / MiB, "{:10.1f}"),
        ("MiB moved total", clone["provision_bytes"] / MiB,
         full["provision_bytes"] / MiB, "{:10.1f}"),
        ("hot replicas booted", clone["counters"]["cloned"],
         full["counters"]["booted"] - clone["counters"]["booted"]
         + clone["counters"]["cloned"], "{:10d}"),
    ]
    for label, c, f, fmt in rows:
        emit(f"  {label:<24s}{fmt.format(c)}{fmt.format(f)}")

    # the CI gate, strict: clones reach N serving replicas faster
    assert pair["clone_wins_time"]
    assert pair["clone_time"] < pair["fullcopy_time"]
    # and move fewer bytes to get there
    assert pair["clone_bytes"] < pair["fullcopy_bytes"]
    # the clone arm actually forked every hot replica, and none failed
    fc = clone["scenario"]
    assert clone["counters"]["cloned"] == fc.config.n_replicas
    assert fc.clone.counters["failed"] == 0
    # both arms saw the identical demand stream
    assert clone["arrivals"] == full["arrivals"]
    assert clone["counters"]["submitted"] == full["counters"]["submitted"]
