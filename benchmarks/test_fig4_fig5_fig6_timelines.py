"""Figures 4-6: average YCSB throughput timelines through migration.

Paper setup (§V-A): four 10 GB VMs on a 23 GB source host, each running
a Redis server with a 9 GB dataset queried by an external YCSB client.
Load ramps from 200 MB to 6 GB per client starting at 150 s (staggered
50 s); one VM is migrated at 400 s to relieve the memory pressure.

Paper results: pre-copy completes in 470 s, post-copy in 247 s, Agile in
108 s; average throughput recovers to 90 % of maximum in 533 s / 294 s /
215 s respectively. Agile recovers fastest and degrades least.
"""

import numpy as np
import pytest

from conftest import MIGRATE_AT, pressure_run, run_once

PAPER = {
    "pre-copy": {"mig_time": 470.0, "recovery_90": 533.0},
    "post-copy": {"mig_time": 247.0, "recovery_90": 294.0},
    "agile": {"mig_time": 108.0, "recovery_90": 215.0},
}


def sparkline(series, t1, width=70):
    blocks = " .:-=+*#%@"
    sub = series.between(0.0, t1).resample(t1 / width)
    top = max(sub.v.max(), 1e-9)
    return "".join(blocks[int(v / top * (len(blocks) - 1))] for v in sub.v)


@pytest.mark.parametrize("technique", ["pre-copy", "post-copy", "agile"])
def test_timeline(benchmark, emit, technique):
    fig = {"pre-copy": 4, "post-copy": 5, "agile": 6}[technique]
    res = run_once(benchmark, lambda: pressure_run(technique, "kv"))
    end = res["report"].end_time
    emit(
        f"",
        f"Figure {fig} — avg YCSB throughput, {technique} "
        f"(ramp@150s, migrate@{MIGRATE_AT:.0f}s):",
        f"  |{sparkline(res['avg_series'], end + 250.0)}|",
        f"  peak {res['peak']:,.0f} ops/s; thrash {res['thrash']:,.0f}; "
        f"during migration {res['during']:,.0f}; after relief "
        f"{res['after']:,.0f}",
        f"  migration time {res['total_time']:.0f} s "
        f"(paper {PAPER[technique]['mig_time']:.0f} s); "
        f"recovery to 90% {res['recovery_90']:.0f} s "
        f"(paper {PAPER[technique]['recovery_90']:.0f} s)",
    )
    # Shape: thrashing collapses throughput well below peak...
    assert res["thrash"] < 0.25 * res["peak"]
    # ...and migrating one VM away restores it.
    assert res["after"] > 0.85 * res["peak"]
    assert res["recovery_90"] is not None


def test_recovery_ordering(benchmark, emit):
    """§V-A3: Agile restores performance fastest, pre-copy slowest."""
    rec = run_once(benchmark, lambda: {
        t: pressure_run(t, "kv")["recovery_90"]
        for t in ("pre-copy", "post-copy", "agile")})
    emit("", f"Recovery-to-90% ordering: {rec} "
             f"(paper: 533 / 294 / 215 s)")
    assert rec["agile"] < rec["post-copy"] < rec["pre-copy"]


def test_migration_time_ordering(benchmark, emit):
    times = run_once(benchmark, lambda: {
        t: pressure_run(t, "kv")["total_time"]
        for t in ("pre-copy", "post-copy", "agile")})
    emit("", f"Migration-time ordering: "
             f"{ {k: round(v) for k, v in times.items()} } "
             f"(paper: 470 / 247 / 108 s)")
    assert times["agile"] < times["post-copy"] < times["pre-copy"]
    # the paper's headline: up to ~4x faster than pre-copy; we require
    # at least 2.5x to guard the shape without over-fitting constants
    assert times["pre-copy"] / times["agile"] > 2.5
