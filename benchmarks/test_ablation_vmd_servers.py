"""Ablation: number of VMD intermediate servers.

§V claims "the performance of the VMD does not depend on the number of
intermediate nodes as long as they have enough memory and other
resources". We migrate the same busy 10 GiB VM with the aggregate
donated memory spread over 1, 2, and 4 intermediates and check the
migration time stays in a narrow band.
"""

import pytest

from conftest import run_once
from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.util import GiB


def agile_with_servers(n):
    cfg = TestbedConfig(seed=0, vmd_servers=n)
    lab = make_single_vm_lab("agile", 10 * GiB, busy=True, config=cfg)
    lab.run_until_migrated(start=30.0, limit=4000.0)
    return lab.report


def test_vmd_server_count_insensitive(benchmark, emit):
    reports = run_once(benchmark,
                       lambda: {n: agile_with_servers(n) for n in (1, 2, 4)})
    times = {n: r.total_time for n, r in reports.items()}
    emit("", "Ablation — Agile migration time vs VMD server count "
             "(paper: insensitive):",
         *(f"  {n} server(s): {t:7.1f} s" for n, t in times.items()))
    base = times[1]
    for n in (2, 4):
        assert times[n] == pytest.approx(base, rel=0.2)
    # and every variant transfers the same page data
    bytes_ = {n: r.total_bytes for n, r in reports.items()}
    for n in (2, 4):
        assert bytes_[n] == pytest.approx(bytes_[1], rel=0.1)
