"""Ablation: migration survivability under injected faults.

The paper's techniques differ sharply in what VM state is where when
something breaks mid-migration. This ablation runs every engine against
the same fault menu and tabulates the outcome:

* pre-copy keeps the authoritative image at the source until the final
  atomic switch — a destination crash merely aborts the attempt;
* post-copy moves execution before the memory — a destination crash in
  the split-state window destroys the only consistent image;
* Agile parks cold state on VMD donors — a donor loss is fatal with a
  single copy and survivable (with background re-replication) when the
  namespace keeps two.

The matrix is deterministic: two same-seed runs must agree exactly.
"""

from conftest import run_once
from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.core.base import MigrationConfig
from repro.faults import FaultKind, FaultSchedule, FaultSpec, RetryPolicy
from repro.util import GiB, KiB, MiB

ENGINES = ["pre-copy", "post-copy", "agile"]
FAULTS = {
    "none": [],
    "dst-crash": [FaultSpec(FaultKind.HOST_CRASH, "dst", at=2.5)],
    "src-nic-blip": [FaultSpec(FaultKind.NIC_DOWN, "src", at=2.5,
                               duration=3.0)],
    "donor-loss": [FaultSpec(FaultKind.VMD_CRASH, "vmdsrv0", at=2.3,
                             lose_contents=True)],
}


def make_lab(technique, replication=1):
    cfg = TestbedConfig(
        dt=0.1, seed=0, page_size=4096,
        net_bandwidth_bps=10e6, net_latency_s=1e-4,
        ssd_read_bps=5e6, ssd_write_bps=3e6,
        ssd_capacity_bytes=1 * GiB, vmd_server_bytes=1 * GiB,
        host_os_bytes=1 * MiB,
        vmd_servers=3, vmd_replication=replication,
        migration=MigrationConfig(backlog_cap_bytes=2 * MiB,
                                  stopcopy_threshold_bytes=256 * KiB))
    return make_single_vm_lab(technique, 16 * MiB, busy=False,
                              host_memory_bytes=64 * MiB,
                              reservation_bytes=8 * MiB,
                              config=cfg)


def run_cell(technique, fault, replication=1):
    lab = make_lab(technique, replication=replication)
    specs = FAULTS[fault]
    if specs and specs[0].kind is FaultKind.VMD_CRASH \
            and lab.world.vmd is None:
        return ("n/a", "running")  # engine has no VMD to crash
    lab.world.attach_faults(FaultSchedule(specs))
    lab.start_supervised_migration_at(2.0, policy=RetryPolicy(max_retries=0))
    lab.world.run(until=2.0)
    try:
        lab.world.sim.run_until_event(lab.final, limit=400.0)
    except Exception:
        return ("stalled", lab.migrate_vm.state.value)
    return (lab.final.value.outcome.value, lab.migrate_vm.state.value)


def build_matrix():
    return {(e, f): run_cell(e, f) for e in ENGINES for f in FAULTS}


def test_fault_survivability_matrix(benchmark, emit):
    matrix = run_once(benchmark, build_matrix)
    emit("", "Ablation — migration outcome (VM state) per engine x fault:",
         "  fault        " + "".join(f"{e:>22s}" for e in ENGINES))
    for f in FAULTS:
        row = "".join(f"{f'{o} ({v})':>22s}" for o, v
                      in (matrix[(e, f)] for e in ENGINES))
        emit(f"  {f:<13s}{row}")

    # no fault: everyone completes
    for e in ENGINES:
        assert matrix[(e, "none")] == ("completed", "running")
    # dst crash: pre-copy aborts safely, post-copy loses the VM
    assert matrix[("pre-copy", "dst-crash")] == ("aborted", "running")
    assert matrix[("post-copy", "dst-crash")][0] == "failed"
    assert matrix[("post-copy", "dst-crash")][1] == "terminated"
    # a transient NIC outage is survivable for every engine
    for e in ENGINES:
        assert matrix[(e, "src-nic-blip")][0] == "completed"
    # single-copy donor loss kills the Agile VM...
    assert matrix[("agile", "donor-loss")] == ("failed", "terminated")


def test_replication_flips_donor_loss_outcome(emit):
    single = run_cell("agile", "donor-loss", replication=1)
    double = run_cell("agile", "donor-loss", replication=2)
    emit("", "Ablation — Agile donor loss vs VMD replication:",
         f"  replication=1: {single[0]} ({single[1]})",
         f"  replication=2: {double[0]} ({double[1]})")
    assert single == ("failed", "terminated")
    assert double == ("completed", "running")


def test_matrix_is_deterministic():
    m1, m2 = build_matrix(), build_matrix()
    assert m1 == m2
