"""Table III: amount of data transferred during migration.

Paper numbers (MB):

              | pre-copy | post-copy | Agile
  YCSB/Redis  |  15029   |  10268    | 8173
  Sysbench    |  11298   |  10268    | 7757

Expected shape: Agile < post-copy < pre-copy. Post-copy moves exactly
the VM's memory once (same number for both workloads); pre-copy adds
dirty retransmission on top; Agile stays below the VM's memory size
because cold pages are never transferred (~2x less than pre-copy for
YCSB in the paper).
"""

import pytest

from conftest import pressure_run, run_once
from repro.util import MiB

PAPER_MB = {
    ("kv", "pre-copy"): 15029, ("kv", "post-copy"): 10268,
    ("kv", "agile"): 8173,
    ("oltp", "pre-copy"): 11298, ("oltp", "post-copy"): 10268,
    ("oltp", "agile"): 7757,
}
TECHNIQUES = ["pre-copy", "post-copy", "agile"]


@pytest.mark.parametrize("kind", ["kv", "oltp"])
def test_table3(benchmark, emit, kind):
    res = run_once(benchmark,
                   lambda: {t: pressure_run(t, kind) for t in TECHNIQUES})
    name = "YCSB/Redis" if kind == "kv" else "Sysbench"
    lines = ["", f"Table III — data transferred (MB), {name}:",
             f"  {'technique':<10s} {'measured':>10s} {'paper':>10s}"]
    for t in TECHNIQUES:
        mb = res[t]["report"].total_bytes / MiB
        lines.append(f"  {t:<10s} {mb:10.0f} {PAPER_MB[(kind, t)]:10d}")
    emit(*lines)
    by = {t: res[t]["report"].total_bytes for t in TECHNIQUES}
    assert by["agile"] < by["post-copy"] <= by["pre-copy"] * 1.01
    # the VM's allocated memory is 10 GiB (dataset + cold guest pages):
    # post-copy moves every page exactly once
    assert by["post-copy"] == pytest.approx(10 * 1024 * MiB, rel=0.03)
    # Agile skips the cold pages: clearly below the VM's memory size
    assert by["agile"] < 8 * 1024 * MiB
    # pre-copy never moves less than post-copy (it adds retransmission)
    assert by["pre-copy"] >= by["post-copy"] * 0.99
