"""Table II: total migration time under memory pressure.

Paper numbers (seconds):

              | pre-copy | post-copy | Agile
  YCSB/Redis  |   470    |   247     | 108
  Sysbench    |   182.66 |   157.56  | 80.37

Expected shape: Agile < post-copy < pre-copy for both workloads; the
paper highlights pre-copy taking ~4x as long as Agile for YCSB and
Agile halving post-copy's time for Sysbench.
"""

import pytest

from conftest import pressure_run, run_once

PAPER = {
    ("kv", "pre-copy"): 470.0, ("kv", "post-copy"): 247.0,
    ("kv", "agile"): 108.0,
    ("oltp", "pre-copy"): 182.66, ("oltp", "post-copy"): 157.56,
    ("oltp", "agile"): 80.37,
}
TECHNIQUES = ["pre-copy", "post-copy", "agile"]


@pytest.mark.parametrize("kind", ["kv", "oltp"])
def test_table2(benchmark, emit, kind):
    res = run_once(benchmark,
                   lambda: {t: pressure_run(t, kind) for t in TECHNIQUES})
    name = "YCSB/Redis" if kind == "kv" else "Sysbench"
    lines = ["", f"Table II — total migration time (s), {name}:",
             f"  {'technique':<10s} {'measured':>10s} {'paper':>10s}"]
    for t in TECHNIQUES:
        lines.append(f"  {t:<10s} {res[t]['total_time']:10.1f} "
                     f"{PAPER[(kind, t)]:10.1f}")
    emit(*lines)
    assert (res["agile"]["total_time"] < res["post-copy"]["total_time"]
            < res["pre-copy"]["total_time"])
    # Paper factors: pre-copy/Agile = 4.35x for YCSB, 2.27x for Sysbench.
    # Guard the shape without over-fitting the constants.
    factor = 2.5 if kind == "kv" else 1.6
    assert res["pre-copy"]["total_time"] > factor * res["agile"]["total_time"]
