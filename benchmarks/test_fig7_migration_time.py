"""Figure 7: total migration time vs VM memory size (idle & busy VM).

Paper setup (§V-B): the host has 6 GB of memory; the VM's memory sweeps
from 2 to 12 GB, so past ~6 GB an increasing share of the VM lives on
the swap device. The busy VM runs a Redis server with a dataset almost
as large as its memory, queried by YCSB.

Paper shape: pre-copy and post-copy migration time grows with VM size
and inflects upward once the VM exceeds host memory (swap-in bound,
worse when busy — post-copy's busy time is ~2x its idle time at 12 GB);
Agile's time flattens past 6 GB because it never touches swapped pages.
"""

import pytest

from conftest import run_once, single_vm_run

SIZES_GIB = [2, 4, 6, 8, 10, 12]
TECHNIQUES = ["pre-copy", "post-copy", "agile"]


@pytest.mark.parametrize("busy", [False, True], ids=["idle", "busy"])
def test_fig7_sweep(benchmark, emit, busy):
    def sweep():
        return {(t, s): single_vm_run(t, s, busy)
                for t in TECHNIQUES for s in SIZES_GIB}

    runs = run_once(benchmark, sweep)
    label = "busy" if busy else "idle"
    lines = [
        "",
        f"Figure 7 — total migration time (s), {label} VM, 6 GB host:",
        "  VM GiB   " + "".join(f"{s:>9d}" for s in SIZES_GIB),
    ]
    for t in TECHNIQUES:
        row = "".join(f"{runs[(t, s)]['total_time']:9.0f}"
                      for s in SIZES_GIB)
        lines.append(f"  {t:<9s}{row}")
    emit(*lines)

    for t in TECHNIQUES:
        small, big = runs[(t, 4)], runs[(t, 12)]
        if t == "agile":
            # Agile flattens once the VM exceeds host memory: the 12 GiB
            # point transfers the same resident set as the 8 GiB point.
            t8, t12 = runs[(t, 8)]["total_time"], big["total_time"]
            assert t12 < 1.3 * t8
        else:
            # Baselines keep growing: 12 GiB costs much more than 4 GiB
            # and more than Agile at the same size.
            assert big["total_time"] > 2.0 * small["total_time"]
            assert big["total_time"] > 2.0 * runs[("agile", 12)]["total_time"]


def test_fig7_busy_penalty(benchmark, emit):
    """The busy VM thrashes the swap path: slower than idle for the
    baselines at sizes beyond host memory; Agile barely cares."""
    runs = run_once(benchmark, lambda: {
        (t, b): single_vm_run(t, 12, b)
        for t in TECHNIQUES for b in (False, True)})
    rows = []
    for t in TECHNIQUES:
        idle = runs[(t, False)]["total_time"]
        busy = runs[(t, True)]["total_time"]
        rows.append(f"  {t:<9s} idle {idle:7.0f} s   busy {busy:7.0f} s")
    emit("", "Figure 7 — busy/idle comparison at 12 GiB:", *rows)
    agile_idle = single_vm_run("agile", 12, False)["total_time"]
    agile_busy = single_vm_run("agile", 12, True)["total_time"]
    pre_busy = single_vm_run("pre-copy", 12, True)["total_time"]
    # Agile stays in a narrow band; pre-copy's busy migration is far
    # slower than Agile's.
    assert agile_busy < 2.0 * agile_idle
    assert pre_busy > 3.0 * agile_busy
