"""Shared infrastructure for the paper-reproduction benchmarks.

Every table and figure of the paper's evaluation (§V) has a bench module
in this directory. The actual experiment drivers live in
:mod:`repro.experiments.runners`; this conftest adds a session-wide memo
(several tables are projections of the same runs — Tables I-III all come
from the pressure scenario) and an ``emit`` fixture that prints through
pytest's capture so the reproduced rows land in the teed bench output.

Absolute values are not expected to match the paper (our substrate is a
calibrated simulator, DESIGN.md §1) — the *shape* assertions (who wins,
by roughly what factor, where curves bend) are enforced with asserts.
"""

from __future__ import annotations

import pytest

from repro.experiments.runners import (  # re-exported for bench modules
    MIGRATE_AT,
    TABLE1_WINDOW,
)
from repro.experiments import runners

_cache: dict = {}


def pressure_run(technique: str, kind: str = "kv") -> dict:
    key = ("pressure", technique, kind)
    if key not in _cache:
        _cache[key] = runners.pressure_run(technique, kind)
    return _cache[key]


def single_vm_run(technique: str, size_gib: float, busy: bool) -> dict:
    key = ("single", technique, size_gib, busy)
    if key not in _cache:
        _cache[key] = runners.single_vm_run(technique, size_gib, busy)
    return _cache[key]


def wss_run() -> dict:
    if "wss" not in _cache:
        _cache["wss"] = runners.wss_run()
    return _cache["wss"]


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so bench output reaches the
    terminal (and the teed bench_output.txt)."""
    def _emit(*lines: str) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)
    return _emit


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
