"""Scale bench: the fast-path arbiter and batched commit at datacenter size.

Not a paper figure — this tracks the *trajectory* of the codebase: how
fast the fabric, the per-host commit protocol, and the cluster control
plane run as hosts and flows grow (``python -m repro.experiments scale``
is the CLI front-end; the full 200-host run's numbers live in
BENCH_scale.json). The hard assertions here are deliberately
conservative so CI stays green on noisy runners:

* the fast path's grants must be *identical* to the reference oracle's
  over every tick (the real contract — correctness, not speed);
* the batched commit state must be *identical* to the scalar oracle's
  over every tick of the commit bench (same contract for repro.mem);
* the fast paths must not be dramatically slower than the references at
  CI scale (at full scale both are >5x faster; quick scale has too few
  flows/VMs for the vectorization to pay off by a large factor);
* the cluster bench's ``tick.commit`` wall-clock share stays under a
  loose quick-scale bound (the tight <=0.30 figure is asserted at the
  full 48-host configuration in BENCH_scale.json).
"""

import pytest

from conftest import run_once
from repro.perf import ScaleConfig, commit_share, fabric_bench, run_scale


@pytest.fixture(scope="module")
def quick_result():
    return run_scale(ScaleConfig.quick(seed=0), check_grants=True,
                     with_cluster=True)


def test_fast_path_grants_identical_at_scale(quick_result):
    fab = quick_result["fabric"]
    assert fab["grants_match"], (
        f"fast-path grants diverged on "
        f"{fab['grant_mismatch_ticks']} of "
        f"{fab['grant_ticks_compared']} ticks")
    assert fab["grant_ticks_compared"] == 120


def test_commit_batch_identical_to_oracle_at_scale(quick_result):
    com = quick_result["commit"]
    assert com["states_match"], (
        f"batched commit state diverged from the scalar oracle on "
        f"{com['state_mismatch_ticks']} of "
        f"{com['state_ticks_compared']} ticks")
    assert com["state_ticks_compared"] > 0


def test_fast_path_not_slower_than_reference(quick_result):
    # Quick scale (32 hosts, ~39 peak flows) is where numpy overhead is
    # least amortized; even there the fast path should at worst be
    # within 2x of the reference. The >=5x win is demonstrated at full
    # scale (BENCH_scale.json) where classes are large.
    fab = quick_result["fabric"]
    assert fab["speedup_ticks_per_s"] > 0.5


def test_commit_batch_not_slower_than_oracle(quick_result):
    # Same conservative bound as the fabric: the batched manager loop
    # must not be dramatically slower than the scalar oracle even at
    # quick scale (full-scale manager-phase speedup is >3x).
    com = quick_result["commit"]
    assert com["speedup_manager"] > 0.5


def test_cluster_commit_share_bounded(quick_result):
    # The tick.commit wall-clock share of the end-to-end cluster bench.
    # Quick scale concentrates the migration work in fewer hosts, so the
    # bound here is looser than the <=0.30 asserted at the full 48-host
    # configuration (BENCH_scale.json / the CI --max-commit-share gate).
    share = commit_share(quick_result)
    assert share is not None, "cluster bench did not record a profile"
    assert share < 0.60, f"tick.commit share {share:.2f} exceeds bound"


def test_scale_scenario_deterministic():
    """Same seed, same trace: flow counts and grants replay exactly."""
    a = fabric_bench(ScaleConfig.quick(seed=0), check_grants=True,
                     repeats=1)
    b = fabric_bench(ScaleConfig.quick(seed=0), check_grants=True,
                     repeats=1)
    assert a["grants_match"] and b["grants_match"]
    assert a["peak_active_flows"] == b["peak_active_flows"]
    assert a["flows_opened"] == b["flows_opened"]


def test_scale_bench(benchmark, emit, quick_result):
    res = run_once(benchmark, lambda: quick_result)
    fab = res["fabric"]
    com = res["commit"]
    clu = res["cluster"]
    share = commit_share(res)
    emit(
        "",
        f"scale (quick): {fab['hosts']} hosts, "
        f"peak {fab['peak_active_flows']} flows",
        f"  fast      {fab['fast']['ticks_per_s']:10,.0f} ticks/s   "
        f"{fab['fast']['arbiter_us_per_tick']:8,.0f} us/tick",
        f"  reference {fab['reference']['ticks_per_s']:10,.0f} ticks/s   "
        f"{fab['reference']['arbiter_us_per_tick']:8,.0f} us/tick",
        f"  speedup   {fab['speedup_ticks_per_s']:.1f}x ticks/s "
        f"(full-scale figures: BENCH_scale.json)",
        f"  commit    {com['fast']['ticks_per_s']:10,.0f} ticks/s batched "
        f"vs {com['reference']['ticks_per_s']:,.0f} oracle "
        f"({com['speedup_manager']:.1f}x manager phase)",
        f"  cluster   {clu['ticks_per_s']:10,.0f} ticks/s "
        f"({clu['hosts']} hosts, tick.commit share {share:.0%})",
    )
