"""Figure 8: data transferred vs VM memory size (idle & busy VM).

Same sweep as Figure 7. Paper shape: pre-copy and post-copy transfer the
entire VM memory, so bytes grow linearly with VM size (pre-copy grows
faster when busy because of dirty-page retransmission); Agile transfers
only the in-memory working set, so its curve plateaus at ~5.5 GB — the
share of the VM the 6 GB host can hold — regardless of VM size.
"""

import pytest

from conftest import run_once, single_vm_run

SIZES_GIB = [2, 4, 6, 8, 10, 12]
TECHNIQUES = ["pre-copy", "post-copy", "agile"]


@pytest.mark.parametrize("busy", [False, True], ids=["idle", "busy"])
def test_fig8_sweep(benchmark, emit, busy):
    def sweep():
        return {(t, s): single_vm_run(t, s, busy)
                for t in TECHNIQUES for s in SIZES_GIB}

    runs = run_once(benchmark, sweep)
    label = "busy" if busy else "idle"
    lines = [
        "",
        f"Figure 8 — data transferred (GiB), {label} VM, 6 GB host:",
        "  VM GiB   " + "".join(f"{s:>9d}" for s in SIZES_GIB),
    ]
    for t in TECHNIQUES:
        row = "".join(f"{runs[(t, s)]['total_gib']:9.2f}"
                      for s in SIZES_GIB)
        lines.append(f"  {t:<9s}{row}")
    emit(*lines)

    # Baselines transfer (at least) the full VM memory: linear growth.
    for t in ("pre-copy", "post-copy"):
        for s in SIZES_GIB:
            alloc = runs[(t, s)]
            floor = min(s, s - 0.49) if busy else s  # busy dataset is vm-0.5G
            assert alloc["total_gib"] >= floor * 0.9
    # Agile plateaus at the host's capacity (~5.5 GiB resident).
    for s in (8, 10, 12):
        agile = runs[("agile", s)]
        assert agile["total_gib"] == pytest.approx(
            runs[("agile", 8)]["total_gib"], rel=0.25)
        assert agile["total_gib"] < 6.5


def test_fig8_busy_precopy_retransmits(benchmark, emit):
    """Pre-copy transfers more when busy (dirty retransmission); Agile
    and post-copy transfer each page at most once."""
    runs = run_once(benchmark, lambda: {
        (t, b): single_vm_run(t, 8, b)
        for t in TECHNIQUES for b in (False, True)})
    rows = []
    for t in TECHNIQUES:
        idle = runs[(t, False)]["total_gib"]
        busy = runs[(t, True)]["total_gib"]
        rows.append(f"  {t:<9s} idle {idle:6.2f} GiB  busy {busy:6.2f} GiB")
    emit("", "Figure 8 — idle vs busy transfer volume at 8 GiB:", *rows)
    pre_idle = single_vm_run("pre-copy", 8, False)["total_gib"]
    pre_busy = single_vm_run("pre-copy", 8, True)["total_gib"]
    post_busy = single_vm_run("post-copy", 8, True)["total_gib"]
    assert pre_busy > pre_idle * 1.02
    assert pre_busy > post_busy
