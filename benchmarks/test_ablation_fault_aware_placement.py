"""Ablation: health-aware vs health-blind placement under correlated
rack failures.

The datacenter rebalance scenario (``repro.experiments.datacenter``)
sheds load from an overloaded rack while the big-memory "honeypot" rack
flaps: a first rack crash while the planner is choosing destinations,
then a long second crash after blind migrations have had time to land
there. The ablation toggles exactly one thing — whether the
:class:`~repro.sched.MigrationPlanner` consults the
:class:`~repro.sched.HostHealthTracker` — and compares:

* migration attempts that did not complete (aborted/failed/retried);
* VM-unavailable seconds accumulated by the fault log;
* VMs terminated outright by the second crash.

The health-aware planner must win *strictly* on the first two and keep
every VM alive; the comparison is deterministic (fixed seed, fixed
fault schedule), so the assertions are exact, not statistical.
"""

from conftest import run_once
from repro.experiments.datacenter import (
    DatacenterConfig,
    datacenter_run,
    honeypot_schedule,
)

UNTIL = 60.0


def run_pair():
    out = {}
    for aware in (True, False):
        res = datacenter_run(honeypot_schedule(),
                             DatacenterConfig(health_aware=aware),
                             until=UNTIL)
        res.pop("dc")  # keep only the distilled counters
        out["aware" if aware else "blind"] = res
    return out


def test_fault_aware_placement_ablation(benchmark, emit):
    pair = run_once(benchmark, run_pair)
    aware, blind = pair["aware"], pair["blind"]

    emit("", "Ablation — fault-aware placement vs health-blind baseline",
         "  (honeypot rack flaps: crash during planning, crash after "
         "blind landings)",
         f"  {'':14s}{'aware':>12s}{'blind':>12s}")
    for label, key in (("bad attempts", "failed_or_aborted"),
                       ("unavail (s)", "unavailable_s"),
                       ("dead VMs", "dead_vms")):
        a, b = aware[key], blind[key]
        if key == "dead_vms":
            a, b = len(a), len(b)
        emit(f"  {label:<14s}{a:>12g}{b:>12g}")
    emit(f"  outcomes aware: {aware['outcomes']}",
         f"  outcomes blind: {blind['outcomes']}")

    # strict wins — the acceptance criteria of the subsystem
    assert aware["failed_or_aborted"] < blind["failed_or_aborted"]
    assert aware["unavailable_s"] < blind["unavailable_s"]
    assert aware["dead_vms"] == []
    assert blind["dead_vms"] != []
    # the aware planner never routed into the honeypot rack
    assert not any("->r2" in line for line in aware["plan_log"]
                   if line.startswith(("plan#", "replan#")))


def test_fault_aware_placement_deterministic():
    one = run_pair()
    two = run_pair()
    for side in ("aware", "blind"):
        assert one[side]["plan_log"] == two[side]["plan_log"]
        assert one[side]["fault_log"] == two[side]["fault_log"]
        assert one[side]["outcomes"] == two[side]["outcomes"]
        assert one[side]["unavailable_s"] == two[side]["unavailable_s"]
