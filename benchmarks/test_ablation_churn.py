"""Ablation: churn-aware planner (reservation + projection + hysteresis)
vs the naive pre-fix planner on the rebalance ping-pong scenario.

The churn scenario (``repro.experiments.datacenter.churn_config``) bails
the honeypot rack down to *small* empty hosts: their free-memory
fraction out-scores every real destination, but any landing immediately
crosses their high watermark. The naive planner — instantaneous free
memory, no in-flight reservation, no projection, no cooldown — double-
books those hosts and then re-sheds every landed VM, ping-ponging load
between racks for the whole run. The aware planner charges in-flight
demand at admission, rejects destinations whose projected usage would
cross the watermark, and refuses to re-shed a just-landed VM.

Both arms share identical admission caps and a zero congestion penalty,
so the comparison isolates exactly the churn-control mechanisms. The
runs are deterministic (fixed seed, no faults), so the assertions are
exact:

* strictly fewer total migrations for the aware planner;
* zero re-sheds of a just-landed VM within the cooldown window;
* no admission ever left a destination (after in-flight reservations)
  below the configured ``min_headroom_bytes`` — while the naive arm
  demonstrably overcommits.
"""

from conftest import run_once
from repro.experiments.datacenter import churn_config, churn_run

UNTIL = 40.0
_cache: dict = {}


def run_pair():
    if not _cache:
        _cache["aware"] = churn_run(churn_aware=True, until=UNTIL)
        _cache["naive"] = churn_run(churn_aware=False, until=UNTIL)
    return _cache


def _admission_headrooms(res) -> list[float]:
    planner = res["dc"].control.planner
    plans = [p for p, _ in planner.completed]
    plans += list(planner.active.values())
    return [p.headroom_bytes for p in plans]


def test_churn_ablation(benchmark, emit):
    pair = run_once(benchmark, run_pair)
    aware, naive = pair["aware"], pair["naive"]

    emit("", "Ablation — churn-aware planner vs naive (ping-pong trap)",
         "  (small empty honeypot hosts: best free fraction, but any "
         "landing crosses their watermark)",
         f"  {'':16s}{'aware':>12s}{'naive':>12s}")
    for label, key in (("migrations", "migrations"),
                       ("re-sheds", "resheds")):
        a, b = aware[key], naive[key]
        if key == "resheds":
            a, b = len(a), len(b)
        emit(f"  {label:<16s}{a:>12d}{b:>12d}")
    a_min = min(_admission_headrooms(aware)) / 2 ** 20
    n_min = min(_admission_headrooms(naive)) / 2 ** 20
    emit(f"  {'min headroom':<16s}{a_min:>10.1f}Mi{n_min:>10.1f}Mi",
         f"  aware deferrals: {aware['deferrals'] or '{}'}")

    # strict wins — the ISSUE acceptance criteria
    assert aware["migrations"] < naive["migrations"]
    assert aware["resheds"] == []
    assert naive["resheds"] != []  # the trap is real, not vacuous
    # reservation audit: every aware admission kept the destination at
    # or above the configured floor *after* charging in-flight plans,
    # while the naive planner demonstrably overcommitted
    floor = churn_config(churn_aware=True).planner.min_headroom_bytes
    assert all(h >= floor for h in _admission_headrooms(aware))
    assert min(_admission_headrooms(naive)) < 0
    # nothing died and nothing failed — churn, not faults, is the cost
    assert aware["dead_vms"] == [] and naive["dead_vms"] == []
    assert aware["failed_or_aborted"] == 0


def test_churn_ablation_deterministic():
    one = {k: churn_run(churn_aware=(k == "aware"), until=UNTIL)
           for k in ("aware", "naive")}
    two = {k: churn_run(churn_aware=(k == "aware"), until=UNTIL)
           for k in ("aware", "naive")}
    for side in ("aware", "naive"):
        assert one[side]["plan_log"] == two[side]["plan_log"]
        assert one[side]["deferrals"] == two[side]["deferrals"]
        assert one[side]["outcomes"] == two[side]["outcomes"]
