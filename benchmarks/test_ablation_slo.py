"""Ablation: SLO-aware vs blind VM selection under a watermark alert.

The SLO scenario (``repro.experiments.slo``) overloads one host with a
serving KV tenant (attached throughput SLO) and two SLO-free batch VMs.
When the watermark trigger fires, the blind arm's largest-first
selector sheds the serving tenant — the biggest VM — and the tenant's
violation-seconds ledger records the migration's degradation window,
attributed to the in-flight attempt by phase. The aware arm's selector
(:func:`repro.telemetry.slo_aware_selector`) sheds the batch VMs first:
one more migration, zero violation windows.

Both arms share the cluster, workload, watermark, and seed; only the
trigger's selection policy differs. Runs are deterministic, so the
assertions are exact:

* the blind arm accrues violation-seconds and attributes them to the
  serving tenant's own migration (the CI gate's premise);
* the aware arm accrues strictly fewer (zero here) — the CI gate;
* both arms settle the hot host below the low-watermark target, so the
  aware arm is not winning by refusing to shed.
"""

from conftest import run_once
from repro.experiments.slo import SloScenarioConfig, slo_ablation

_cache: dict = {}


def run_pair() -> dict:
    if not _cache:
        _cache.update(slo_ablation(until=15.0))
    return _cache


def test_slo_aware_selection_ablation(benchmark, emit):
    pair = run_once(benchmark, run_pair)
    aware, blind = pair["aware"], pair["blind"]

    emit("", "Ablation — SLO-aware vs blind shedding (watermark alert "
         "on a serving host)",
         f"  {'':26s}{'aware':>10s}{'blind':>10s}")
    rows = [
        ("violation-seconds", f"{aware['violation_s']:10g}",
         f"{blind['violation_s']:10g}"),
        ("migrations", f"{sum(aware['outcomes'].values()):10d}",
         f"{sum(blind['outcomes'].values()):10d}"),
        ("serving tenant moved", f"{'srv0' in aware['migrated']!s:>10s}",
         f"{'srv0' in blind['migrated']!s:>10s}"),
    ]
    for label, a, b in rows:
        emit(f"  {label:<26s}{a}{b}")
    if blind["attribution"]:
        emit(f"  blind attribution: {blind['attribution']}")

    # the premise: blind shedding makes the serving tenant pay, and the
    # ledger knows which migration attempt to bill
    assert blind["violation_s"] > 0
    assert blind["migrated"] == ["srv0"]
    causes = blind["attribution"]["srv0"]
    assert all(c.startswith("srv0#a0:") for c in causes)
    # the CI gate, strict: the aware selector cuts violation-seconds
    assert aware["violation_s"] < blind["violation_s"]
    assert pair["delta_violation_s"] > 0
    # and it does so by moving the SLO-free VMs, not by doing nothing
    assert aware["migrated"] == ["b0", "b1"]
    assert aware["outcomes"] == {"completed": 2}

    # both arms fully relieved the hot host (same low-watermark target)
    cfg = SloScenarioConfig()
    usable = cfg.host_memory_bytes - cfg.host_os_bytes
    target = cfg.watermark.low_watermark * usable
    for arm in (aware, blind):
        host = arm["lab"].world.hosts["r0h0"]
        left = sum(host.memory.binding(n).cgroup.reservation_bytes
                   for n in host.vms)
        assert left <= target
