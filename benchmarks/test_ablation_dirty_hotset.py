"""Ablation: workload dirtying intensity vs technique sensitivity.

The paper's motivation for the hybrid design (§III): pre-copy's cost is
workload-dependent (dirty pages are retransmitted every round) while
Agile performs exactly one live round, so it is "less sensitive to the
nature of the workload than pre-copy". We sweep the size of the hot
write set on a VM that *fits* in host memory (so the workload runs at
full speed and dirtying is the dominant effect) and compare each
technique's transfer volume.
"""

import pytest

from conftest import run_once
from repro.cluster.scenarios import (
    TestbedConfig,
    make_single_vm_lab,
    scale_params_to_page,
)
from repro.util import GiB
from repro.workloads.kv import ycsb_redis_params

FRACTIONS = [0.05, 0.15, 0.40]


def run_with_write_set(technique, fraction):
    cfg = TestbedConfig(seed=0)
    # 5 GiB VM on the 6 GB host: everything resident, workload at full
    # speed -> dirty-page generation is what differentiates techniques.
    lab = make_single_vm_lab(technique, 5 * GiB, busy=True, config=cfg)
    wl = lab.workloads[0]
    wl.params = scale_params_to_page(
        ycsb_redis_params(write_region_fraction=fraction), cfg.page_size)
    lab.run_until_migrated(start=30.0, limit=6000.0)
    return lab.report


def test_dirty_sensitivity(benchmark, emit):
    def sweep():
        return {(t, f): run_with_write_set(t, f)
                for t in ("pre-copy", "agile") for f in FRACTIONS}

    reports = run_once(benchmark, sweep)
    lines = ["", "Ablation — transfer volume (GiB) vs hot-write-set size "
                 "(5 GiB busy VM, fits in memory):",
             "  write set   " + "".join(f"{f:>8.0%}" for f in FRACTIONS)]
    for t in ("pre-copy", "agile"):
        row = "".join(f"{reports[(t, f)].total_bytes / GiB:8.2f}"
                      for f in FRACTIONS)
        lines.append(f"  {t:<11s}{row}")
    emit(*lines)

    pre = [reports[("pre-copy", f)].total_bytes for f in FRACTIONS]
    agile = [reports[("agile", f)].total_bytes for f in FRACTIONS]
    pre_growth = pre[-1] / pre[0]
    agile_growth = agile[-1] / agile[0]
    emit(f"  sensitivity (volume at 40% / at 5%): pre-copy "
         f"{pre_growth:.2f}x, agile {agile_growth:.2f}x")
    # pre-copy's volume grows with the write set...
    assert pre_growth > 1.1
    # ...and faster than Agile's (one live round vs many)
    assert pre_growth > agile_growth
    # Agile stays cheaper at every point
    for p, a in zip(pre, agile):
        assert a < p
