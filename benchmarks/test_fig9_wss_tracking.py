"""Figure 9: dynamic working-set-size tracking accuracy.

Paper setup (§V-D): a VM with 5 GB of memory and 2 vCPUs holds a 1.5 GB
Redis dataset queried by an external YCSB client; the tracker (α = 0.95,
β = 1.03, τ = 4 KB/s) adjusts the cgroup reservation every 2 s until the
WSS stabilizes, then every 30 s.

Paper shape: the reservation walks down from 5 GB and converges onto the
working set, then follows it when it changes. Our run adds a WSS change
at t = 400 s (query region grows 1.0 → 1.5 GiB) to exercise
re-convergence, which the paper demonstrates in Figure 9's trace.
"""

from conftest import run_once, wss_run
from repro.util import GiB, MiB


def test_fig9_convergence(benchmark, emit):
    res = run_once(benchmark, wss_run)
    reservation = res["reservation"]

    phase1 = reservation.between(200.0, 400.0).mean()
    phase2 = reservation.between(600.0, 800.0).mean()
    emit(
        "",
        "Figure 9 — dynamic WSS tracking (reservation vs true WSS):",
        f"  start: 5120 MiB reservation",
        f"  phase 1 (WSS 1024 MiB): settled at {phase1 / MiB:7.0f} MiB",
        f"  phase 2 (WSS 1536 MiB): settled at {phase2 / MiB:7.0f} MiB",
        f"  tracker mode at end: "
        f"{'fast (2s)' if res['tracker'].in_fast_mode else 'slow (30s)'}",
    )
    # The reservation hugs the working set within the alpha/beta band.
    assert 0.85 * GiB < phase1 < 1.45 * GiB
    assert 1.25 * GiB < phase2 < 2.1 * GiB
    # It actually reacted to the WSS change.
    assert phase2 > phase1 * 1.2


def test_fig9_walks_down_from_overprovisioned(benchmark, emit):
    res = run_once(benchmark, wss_run)
    reservation = res["reservation"]
    first = reservation.v[0]
    floor = reservation.between(200.0, 400.0).mean()
    emit("", f"Figure 9 — walk-down: first sample {first / MiB:,.0f} MiB "
             f"-> converged {floor / MiB:,.0f} MiB")
    assert first > 2 * floor  # started far above the WSS
