"""Ablation: how fast does each technique free the *source*?

The paper's framing of agility is "eliminate resource pressure faster
than traditional live migration" (§I). The source's pressure is gone
when its copy of the VM's memory is freed. We compare the three paper
techniques against the extension Scatter-Gather engine (the authors'
companion system [22]), which stages pages on the VMD intermediaries at
full source speed instead of pushing them to the destination.
"""

import pytest

from conftest import run_once
from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.core import ScatterGatherMigration
from repro.util import GiB


def source_free_time(technique):
    lab = make_single_vm_lab(
        "agile" if technique == "scatter-gather" else technique,
        10 * GiB, busy=True, config=TestbedConfig(seed=0))
    if technique == "scatter-gather":
        def launch():
            lab.manager = ScatterGatherMigration(
                lab.world.sim, lab.world.network, lab.src, lab.dst,
                lab.migrate_vm, lab.world.recorder,
                config=lab.config.migration,
                workload=lab.workload_of(lab.migrate_vm))
            lab.world.engine.add_participant(lab.manager, order=0)
            lab.manager.start()
        lab._launch = launch
    lab.run_until_migrated(start=30.0, limit=6000.0)
    r = lab.report
    freed = (r.source_free_time if r.source_free_time is not None
             else r.end_time)
    return freed - r.start_time, r


def test_source_relief_comparison(benchmark, emit):
    techniques = ["pre-copy", "post-copy", "agile", "scatter-gather"]
    results = run_once(benchmark,
                       lambda: {t: source_free_time(t) for t in techniques})
    lines = ["", "Ablation — time until the source is free of the VM "
                 "(10 GiB busy VM, 6 GB host):"]
    for t in techniques:
        freed, r = results[t]
        lines.append(f"  {t:<15s} {freed:7.1f} s "
                     f"(transfer {r.total_bytes / GiB:5.2f} GiB)")
    emit(*lines)
    freed = {t: results[t][0] for t in techniques}
    # Agile relieves the source before the baselines; Scatter-Gather is
    # at least as fast as Agile (it skips the destination entirely).
    assert freed["agile"] < freed["post-copy"] < freed["pre-copy"]
    assert freed["scatter-gather"] <= freed["agile"] * 1.2
