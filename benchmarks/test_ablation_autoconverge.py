"""Ablation: pre-copy auto-converge (vCPU throttling, §VI's SDPS).

§VI notes that VMware's SDPS "slows down vCPUs to speed up migration of
write-intensive VMs, [but] degrades the application performance further
during migration". We reproduce that trade-off: against a
write-everywhere guest, auto-converge bounds pre-copy's transfer volume
— at the cost of the guest's throughput — while Agile needs neither.
"""

import pytest

from conftest import run_once
from repro.cluster.scenarios import (
    TestbedConfig,
    make_single_vm_lab,
    scale_params_to_page,
)
from repro.core import AgileMigration, PrecopyMigration
from repro.util import GiB
from repro.workloads.kv import ycsb_redis_params


def run(technique, auto_converge=False):
    cfg = TestbedConfig(seed=0)
    lab = make_single_vm_lab(
        "agile" if technique == "agile" else "pre-copy",
        5 * GiB, busy=True, config=cfg)
    wl = lab.workloads[0]
    wl.params = scale_params_to_page(
        ycsb_redis_params(write_fraction=1.0, write_region_fraction=1.0),
        cfg.page_size)
    if technique == "pre-copy":
        def launch():
            lab.manager = PrecopyMigration(
                lab.world.sim, lab.world.network, lab.src, lab.dst,
                lab.migrate_vm, lab.world.recorder,
                dst_backend=lab.dst_backend_for_migration,
                config=lab.config.migration, workload=wl,
                auto_converge=auto_converge)
            lab.world.engine.add_participant(lab.manager, order=0)
            lab.manager.start()
        lab._launch = launch
    lab.run_until_migrated(start=30.0, limit=6000.0)
    tput = lab.world.recorder.series("vm0.throughput")
    r = lab.report
    return {
        "report": r,
        "ops_during": tput.between(r.start_time, r.end_time).mean(),
    }


def test_autoconverge_tradeoff(benchmark, emit):
    results = run_once(benchmark, lambda: {
        "pre-copy": run("pre-copy", auto_converge=False),
        "pre-copy+ac": run("pre-copy", auto_converge=True),
        "agile": run("agile"),
    })
    lines = ["", "Ablation — auto-converge vs Agile on a write-everywhere "
                 "guest (5 GiB VM):"]
    for name, res in results.items():
        r = res["report"]
        lines.append(
            f"  {name:<12s} time {r.total_time:7.1f} s  data "
            f"{r.total_bytes / GiB:6.2f} GiB  rounds {r.rounds:2d}  "
            f"guest {res['ops_during']:8.0f} ops/s during migration")
    emit(*lines)

    plain = results["pre-copy"]
    ac = results["pre-copy+ac"]
    agile = results["agile"]
    # throttling bounds the transfer...
    assert ac["report"].total_bytes < plain["report"].total_bytes
    # ...but hurts the guest (the §VI criticism)
    assert ac["ops_during"] < plain["ops_during"]
    # Agile gets a bounded transfer AND an unthrottled guest
    assert agile["report"].total_bytes < plain["report"].total_bytes
    assert agile["ops_during"] > ac["ops_during"]
