"""Ablation: destination-swap rebalancing vs the greedy largest-first
baseline under a flash-crowd demand stream.

The fleet ablation scenario (``repro.experiments.fleet.ablation_config``)
boots a seeded flash crowd over a moderately loaded multi-rack cluster:
the spike overloads a few hosts while the rest keep headroom — the
regime where the strategies actually separate. Greedy sheds the biggest
resident VM to the freest host every time, paying big-VM bytes for
every relieved overload; the swap-aware strategy sheds the *cheapest
adequate* VM (the smallest one covering the excess) and, when no
destination can admit it, trades places with a smaller VM on a full
destination — both halves admitted through the planner's directed path
with mutual byte credits.

Both arms consume byte-for-byte the same demand stream, pipeline, and
planner configuration; only the shedding strategy differs. Runs are
deterministic for the fixed seed, so the assertions are exact:

* strictly fewer total migration bytes for swap-aware (the CI gate);
* no more watermark breaches (overloaded-host sightings) than greedy —
  cheaper shedding must not come at the cost of unresolved overload;
* no more rejected boots than greedy;
* the flash crowd is real: greedy actually had to rebalance.
"""

from conftest import run_once
from repro.experiments.fleet import fleet_ablation
from repro.util import MiB

_cache: dict = {}


def run_pair() -> dict:
    if not _cache:
        _cache.update(fleet_ablation(seed=0))
    return _cache


def test_fleet_rebalance_ablation(benchmark, emit):
    pair = run_once(benchmark, run_pair)
    greedy, swap = pair["greedy"], pair["swap"]

    emit("", "Ablation — destination-swap vs greedy rebalancing "
         "(flash-crowd demand)",
         f"  {'':22s}{'greedy':>10s}{'swap':>10s}")
    rows = [
        ("migration MiB", greedy["migration_bytes"] / MiB,
         swap["migration_bytes"] / MiB, "{:10.1f}"),
        ("rebalance moves", greedy["rebalance"]["moves"],
         swap["rebalance"]["moves"], "{:10d}"),
        ("swaps", greedy["rebalance"]["swaps"],
         swap["rebalance"]["swaps"], "{:10d}"),
        ("overload sightings", greedy["rebalance"]["overloaded_seen"],
         swap["rebalance"]["overloaded_seen"], "{:10d}"),
        ("rejected boots", len(greedy["rejected"]),
         len(swap["rejected"]), "{:10d}"),
        ("rack imbalance MiB", greedy["rack_imbalance_bytes"] / MiB,
         swap["rack_imbalance_bytes"] / MiB, "{:10.1f}"),
    ]
    for label, g, s, fmt in rows:
        emit(f"  {label:<22s}{fmt.format(g)}{fmt.format(s)}")

    # the trap is real: the flash crowd forced greedy to rebalance
    assert greedy["rebalance"]["moves"] > 0
    # the CI gate, strict: swap-aware moves fewer total migration bytes
    assert swap["migration_bytes"] < greedy["migration_bytes"]
    # cheaper shedding must not leave overload unresolved or boots out
    assert swap["rebalance"]["overloaded_seen"] \
        <= greedy["rebalance"]["overloaded_seen"]
    assert len(swap["rejected"]) <= len(greedy["rejected"])
    # both arms saw the identical demand stream
    assert greedy["arrivals"] == swap["arrivals"]
    assert greedy["counters"]["submitted"] == swap["counters"]["submitted"]
