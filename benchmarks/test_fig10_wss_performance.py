"""Figure 10: YCSB throughput while the reservation tracks the WSS.

Paper shape: the client sees only transient degradation as the tracker
probes the reservation downward; once converged the throughput matches
the unconstrained level ("YCSB quickly recovers from any transient
degradation").
"""

from conftest import run_once, wss_run


def test_fig10_throughput_steady_under_tracking(benchmark, emit):
    res = run_once(benchmark, wss_run)
    tput = res["throughput"]

    early = tput.between(20.0, 80.0).mean()       # before convergence
    converged = tput.between(250.0, 400.0).mean()  # reservation ≈ WSS
    after_change = tput.between(600.0, 800.0).mean()
    emit(
        "",
        "Figure 10 — YCSB throughput under dynamic reservation:",
        f"  before convergence : {early:10,.0f} ops/s",
        f"  converged (phase 1): {converged:10,.0f} ops/s",
        f"  converged (phase 2): {after_change:10,.0f} ops/s",
    )
    # Tracking costs little steady-state performance: the converged
    # throughput stays within 25 % of the unconstrained early phase.
    assert converged > 0.75 * early
    assert after_change > 0.75 * early


def test_fig10_transients_are_transient(benchmark, emit):
    """Dips exist (the tracker probes below the WSS) but do not persist:
    the worst 30 s window after convergence stays well above zero."""
    res = run_once(benchmark, wss_run)
    tput = res["throughput"].resample(30.0)
    sub_v = tput.between(250.0, 400.0).v
    worst = sub_v.min()
    mean = sub_v.mean()
    emit("", f"Figure 10 — worst 30 s window after convergence: "
             f"{worst:,.0f} ops/s (mean {mean:,.0f})")
    assert worst > 0.4 * mean
