"""Table I: average application performance across all 4 VMs through
the migration.

Paper numbers (ops/s for YCSB/Redis, transactions/s for Sysbench):

              | pre-copy | post-copy | Agile
  YCSB/Redis  |   7653   |   14926   | 17112
  Sysbench    |   59.84  |   74.74   | 89.55

Measured over a fixed window from migration start (§V-C: "over 300
seconds"), which is why fast techniques score close to the unloaded
peak: they spend most of the window already recovered. Expected shape:
Agile > post-copy > pre-copy for both workloads.
"""

import pytest

from conftest import TABLE1_WINDOW, pressure_run, run_once

PAPER = {
    ("kv", "pre-copy"): 7653, ("kv", "post-copy"): 14926,
    ("kv", "agile"): 17112,
    ("oltp", "pre-copy"): 59.84, ("oltp", "post-copy"): 74.74,
    ("oltp", "agile"): 89.55,
}
TECHNIQUES = ["pre-copy", "post-copy", "agile"]


@pytest.mark.parametrize("kind", ["kv", "oltp"])
def test_table1(benchmark, emit, kind):
    res = run_once(benchmark,
                   lambda: {t: pressure_run(t, kind) for t in TECHNIQUES})
    unit = "ops/s" if kind == "kv" else "trans/s"
    name = "YCSB/Redis" if kind == "kv" else "Sysbench"
    lines = ["",
             f"Table I — avg {name} performance ({unit}) over "
             f"{TABLE1_WINDOW:.0f} s from migration start:",
             f"  {'technique':<10s} {'measured':>10s} {'paper':>10s}"]
    for t in TECHNIQUES:
        lines.append(f"  {t:<10s} {res[t]['table1']:10.1f} "
                     f"{PAPER[(kind, t)]:10.1f}")
    emit(*lines)
    # Shape: Agile best, pre-copy worst.
    assert res["agile"]["table1"] > res["post-copy"]["table1"]
    assert res["post-copy"]["table1"] >= res["pre-copy"]["table1"] * 0.95
    assert res["agile"]["table1"] > res["pre-copy"]["table1"] * 1.3
