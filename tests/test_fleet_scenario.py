"""End-to-end fleet scenario: the quick run exercises the whole
lifecycle, and two same-seed runs are byte-identical — placement log,
rebalance log, plan log, and the exported chrome trace."""

from repro.experiments.fleet import fleet_run, quick_config
from repro.obs import Tracer, chrome_trace_doc, trace_to_jsonl
from repro.obs.check import missing_categories, validate_chrome_trace


def run_quick(tmp_path, tag):
    tracer = Tracer()
    res = fleet_run(quick_config(seed=0), tracer=tracer)
    path = tmp_path / f"fleet-{tag}.jsonl"
    trace_to_jsonl(tracer, path)
    return res, path, tracer


def test_quick_scenario_exercises_the_whole_lifecycle(tmp_path):
    res, _, _ = run_quick(tmp_path, "life")
    c = res["counters"]
    # boots, retries, departures, a drain, and rebalance moves all fire
    assert c["booted"] > 0
    assert c["retried"] > 0
    assert c["departed"] > 0
    assert c["drained_hosts"] == 1
    assert res["rebalance"]["moves"] > 0
    # the drained host ended empty and retired
    fleet = res["fleet"]
    host = fleet.config.decommission_host
    assert host in fleet.view.retired
    assert not fleet.world.hosts[host].vms
    # every surviving VM is accounted for exactly once
    assert res["alive"] == len(fleet.world.vms)
    for vm in fleet.world.vms.values():
        assert fleet.world.hosts[vm.host].memory.has_vm(vm.name)


def test_same_seed_runs_are_byte_identical(tmp_path):
    res_a, trace_a, _ = run_quick(tmp_path, "a")
    res_b, trace_b, _ = run_quick(tmp_path, "b")
    assert res_a["placement_log"] == res_b["placement_log"]
    assert res_a["rebalance_log"] == res_b["rebalance_log"]
    assert res_a["plan_log"] == res_b["plan_log"]
    assert res_a["counters"] == res_b["counters"]
    assert trace_a.read_bytes() == trace_b.read_bytes()


def test_quick_trace_passes_the_obs_validator(tmp_path):
    _, _, tracer = run_quick(tmp_path, "obs")
    doc = chrome_trace_doc(tracer)
    assert validate_chrome_trace(doc) == []
    # the fleet scheduler and rebalancer emit under their own category,
    # alongside the migration machinery they drive
    required = ["fleet", "planner", "migration"]
    assert missing_categories(doc, required) == []
