"""Failure injection: VMD donor crashes, with and without replication.

The paper's VMD keeps exactly one copy of each cold page on a donor
host; losing that donor makes the VM's cold state unreachable — a real
availability hazard of the design. These tests inject donor failures
and verify both the hazard (single copy: reads stall) and the extension
that closes it (replication ≥ 2: reads continue; writes pay the
amplification).
"""

import pytest

from repro.net import Network
from repro.sim import Simulator, TickEngine
from repro.vmd import VMDCluster, VMDNamespace, VMDServer
from repro.vmd.placement import RoundRobinPlacement


def build(n_servers=2, bw=100.0, capacity=10_000.0, replication=1):
    sim = Simulator()
    net = Network(default_bandwidth_bps=bw, latency_s=0.0)
    net.add_host("src")
    net.add_host("dst")
    servers = []
    for k in range(n_servers):
        net.add_host(f"i{k}")
        servers.append(VMDServer(f"i{k}", capacity))
    engine = TickEngine(sim, dt=1.0)
    engine.add_arbiter(net)
    ns = VMDNamespace("vm1", net, servers,
                      RoundRobinPlacement(servers, chunk_bytes=10.0),
                      replication=replication)
    engine.add_participant(ns, order=10)
    engine.add_arbiter(ns, order=10)
    engine.start()
    return sim, net, servers, ns


def test_replication_validation():
    net = Network()
    net.add_host("i0")
    s = VMDServer("i0", 10.0)
    with pytest.raises(ValueError):
        VMDNamespace("x", net, [s], replication=2)
    with pytest.raises(ValueError):
        VMDNamespace("x", net, [s], replication=0)


def test_failed_server_rejects_placement():
    s = VMDServer("i0", 100.0)
    s.fail()
    assert not s.has_free_memory()
    s.recover()
    assert s.has_free_memory()


def test_single_copy_reads_stall_after_donor_failure():
    sim, net, servers, ns = build(n_servers=1)
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 80.0
    sim.run(until=1.0)
    assert ns.used_bytes == pytest.approx(80.0)
    servers[0].fail()
    r = ns.open_queue("rd", "read", host="dst")
    r.demand = 50.0
    sim.run(until=2.0)
    assert r.granted == 0.0  # the cold pages are unreachable
    servers[0].recover()
    r.demand = 50.0
    sim.run(until=3.0)
    assert r.granted == pytest.approx(50.0)


def test_replicated_writes_amplify_on_the_wire():
    sim, net, servers, ns = build(n_servers=2, bw=1000.0, replication=2)
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 60.0
    sim.run(until=1.0)
    # the caller sees 60 logical bytes written...
    assert w.granted == pytest.approx(60.0)
    # ...but both copies landed on the donors
    assert ns.used_bytes == pytest.approx(120.0)
    assert net.nic("src").tx.bytes_carried == pytest.approx(120.0)


def test_replicated_reads_survive_a_donor_failure():
    sim, net, servers, ns = build(n_servers=2, bw=1000.0, replication=2)
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 60.0
    sim.run(until=1.0)
    servers[0].fail()
    r = ns.open_queue("rd", "read", host="dst")
    r.demand = 40.0
    sim.run(until=2.0)
    assert r.granted == pytest.approx(40.0)  # replica on i1 serves


def test_writes_avoid_failed_donor():
    sim, net, servers, ns = build(n_servers=2, bw=1000.0)
    servers[0].fail()
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 50.0
    sim.run(until=1.0)
    assert servers[0].used_bytes == 0.0
    assert servers[1].used_bytes == pytest.approx(50.0)


def test_preload_with_replication():
    sim, net, servers, ns = build(n_servers=2, replication=2)
    placed = ns.preload(100.0)
    assert placed == pytest.approx(100.0)
    assert ns.used_bytes == pytest.approx(200.0)

def test_fail_with_lose_contents_destroys_stored_bytes():
    s = VMDServer("i0", 100.0)
    s.allocate(60.0)
    s.fail(lose_contents=True)
    assert s.contents_lost
    assert s.used_bytes == 0.0


def test_recover_readmits_writes_after_content_loss():
    sim, net, servers, ns = build(n_servers=1, bw=1000.0)
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 40.0
    sim.run(until=1.0)
    servers[0].fail(lose_contents=True)
    ns.handle_server_loss(servers[0])
    assert ns.data_lost          # single copy: the loss is unrecoverable
    assert ns.used_bytes == 0.0
    # the donor reboots empty — allocation is on-write, so fresh writes
    # must be admitted immediately
    servers[0].recover()
    assert not servers[0].contents_lost
    w.demand = 30.0
    sim.run(until=2.0)
    assert w.granted == pytest.approx(30.0)
    assert servers[0].used_bytes == pytest.approx(30.0)


def test_content_preserving_failure_keeps_stored_bytes():
    sim, net, servers, ns = build(n_servers=1, bw=1000.0)
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 40.0
    sim.run(until=1.0)
    servers[0].fail()            # reboot: contents survive
    servers[0].recover()
    assert ns.used_bytes == pytest.approx(40.0)
    r = ns.open_queue("rd", "read", host="dst")
    r.demand = 40.0
    sim.run(until=2.0)
    assert r.granted == pytest.approx(40.0)


def test_replicated_loss_triggers_background_repair():
    sim, net, servers, ns = build(n_servers=3, bw=1000.0, replication=2)
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 90.0
    sim.run(until=1.0)
    assert ns.used_bytes == pytest.approx(180.0)
    lost = ns._stored[servers[0]]
    assert lost > 0
    servers[0].fail(lose_contents=True)
    backlog = ns.handle_server_loss(servers[0])
    assert not ns.data_lost
    assert backlog == pytest.approx(lost)
    sim.run(until=10.0)
    # re-replication restored every lost copy onto the survivors
    assert ns.repair_pending_bytes == 0.0
    assert ns.repaired_bytes == pytest.approx(lost)
    assert ns.used_bytes == pytest.approx(180.0)
    assert ns._stored[servers[0]] == 0.0


def test_replicated_write_uses_one_placement_split():
    """One ``split_write`` per write queue per tick, scaled by r: the
    round-robin cursor advances as if unreplicated, and the *merged*
    replica traffic (not each copy) is capped by the server's service
    rate."""
    sim, net, servers, ns = build(n_servers=2, bw=1000.0, replication=2)
    for s in servers:
        s.service_bps = 40.0
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 60.0
    sim.run(until=1.0)
    # plan {i0: 30, i1: 30} x2 -> 60 per server, capped at 40 service
    for s in servers:
        assert w.flows[s].granted == pytest.approx(40.0)
        assert s.used_bytes == pytest.approx(40.0)
    assert w.granted == pytest.approx(40.0)  # 80 wire bytes / r
    # exactly demand/chunk cursor steps were consumed, not r times that
    assert ns.placement._cursor == 6


def test_repair_skips_a_target_that_died_mid_tick():
    """A repair target that dies between ``_plan_repair`` and
    ``arbitrate`` must not receive bytes: the backlog keeps them and
    the next tick re-plans onto survivors."""
    sim, net, servers, ns = build(n_servers=3, bw=1000.0, replication=2)
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 90.0
    sim.run(until=1.0)
    lost = ns._stored[servers[0]]
    servers[0].fail(lose_contents=True)
    backlog = ns.handle_server_loss(servers[0])
    assert backlog == pytest.approx(lost)
    # drive one tick by hand so the target can die mid-protocol
    ns.pre_tick(1.0)
    assert ns._repair_plan, "repair must have been planned"
    targets = list(ns._repair_plan)
    for t in targets:
        t.fail()  # content-preserving crash after planning
    before = {t: t.used_bytes for t in targets}
    net.arbitrate(1.0)
    ns.arbitrate(1.0)
    # the wire moved bytes, but none landed on a corpse
    assert ns.repaired_bytes == 0.0
    assert ns.repair_pending_bytes == pytest.approx(lost)
    for t in targets:
        assert t.used_bytes == before[t]
    # targets recover: background repair completes normally
    for t in targets:
        t.recover()
    sim.run(until=12.0)
    assert ns.repair_pending_bytes == 0.0
    assert ns.repaired_bytes == pytest.approx(lost)
