"""Tests for the host CPU arbiter and vCPU oversubscription."""

import pytest

from repro.cluster import World, preload_dataset
from repro.mem import CpuArbiter
from repro.util import MiB
from repro.workloads import KeyValueWorkload, ycsb_redis_params


def test_arbiter_validation():
    with pytest.raises(ValueError):
        CpuArbiter("h", 0)


def test_single_share_gets_up_to_capacity():
    arb = CpuArbiter("h", cores=4)
    s = arb.open_share("vm1")
    s.demand = 10.0
    arb.arbitrate(dt=1.0)
    assert s.granted == pytest.approx(4.0)


def test_shares_split_fairly_with_small_demands_satisfied():
    arb = CpuArbiter("h", cores=4)
    small = arb.open_share("small")
    big = arb.open_share("big")
    small.demand = 0.5
    big.demand = 100.0
    arb.arbitrate(dt=1.0)
    assert small.granted == pytest.approx(0.5)
    assert big.granted == pytest.approx(3.5)


def test_closed_share_reaped():
    arb = CpuArbiter("h", cores=2)
    s1 = arb.open_share("a")
    s1.close()
    s2 = arb.open_share("b")
    s2.demand = 10.0
    arb.arbitrate(dt=1.0)
    assert s2.granted == pytest.approx(2.0)


def kv_world(n_vms, cores, vcpus, contended):
    w = World(dt=0.5, seed=1, net_bandwidth_bps=1e9)
    w.add_host("h1", 256 * MiB, cpu_cores=cores, host_os_bytes=4 * MiB)
    w.add_client_host()
    dev = w.add_ssd("ssd")
    for i in range(n_vms):
        vm = w.add_vm(f"vm{i}", 16 * MiB, "h1", vcpus=vcpus)
        w.hosts["h1"].place_vm(vm, 16 * MiB, dev)
        preload_dataset(vm, w.manager_of("h1"), 8 * MiB)
        wl = KeyValueWorkload(
            vm, w.network, "client", w.manager_of, w.recorder,
            w.rng(f"wl{i}"), dataset_bytes=8 * MiB,
            params=ycsb_redis_params(bytes_per_op=10.0),
            cpu_of=w.cpu_of if contended else None,
            sim_now=lambda: w.sim.now)
        w.add_workload(wl)
    return w


def test_oversubscribed_vcpus_split_host_cores():
    # 4 VMs x 2 vCPUs on a 2-core host, everything else uncontended
    w = kv_world(n_vms=4, cores=2, vcpus=2, contended=True)
    w.run(until=20.0)
    per_vm = [w.recorder.series(f"vm{i}.throughput").between(10, 20).mean()
              for i in range(4)]
    # each VM is limited to ~cores/4 = 0.5 cpu-s/s -> 10k ops at 50 us/op
    for tput in per_vm:
        assert tput == pytest.approx(10_000, rel=0.15)


def test_undersubscribed_cpu_unaffected_by_arbiter():
    contended = kv_world(n_vms=1, cores=12, vcpus=2, contended=True)
    contended.run(until=20.0)
    free = kv_world(n_vms=1, cores=12, vcpus=2, contended=False)
    free.run(until=20.0)
    a = contended.recorder.series("vm0.throughput").between(10, 20).mean()
    b = free.recorder.series("vm0.throughput").between(10, 20).mean()
    assert a == pytest.approx(b, rel=0.05)
