"""Tests for the VM lifecycle model."""

import pytest

from repro.mem import PageSet
from repro.vm import VirtualMachine, VmState


def test_geometry():
    vm = VirtualMachine("v", 100 * 4096)
    assert vm.n_pages == 100
    assert vm.pages.page_size == 4096


def test_invalid_parameters():
    with pytest.raises(ValueError):
        VirtualMachine("v", 0)
    with pytest.raises(ValueError):
        VirtualMachine("v", 4096, vcpus=0)
    with pytest.raises(ValueError):
        VirtualMachine("v", 10, page_size=4096)  # < one page


def test_suspend_resume_cycle():
    vm = VirtualMachine("v", 4096)
    assert vm.is_running
    vm.suspend()
    assert vm.state is VmState.SUSPENDED
    vm.resume()
    assert vm.is_running


def test_double_suspend_rejected():
    vm = VirtualMachine("v", 4096)
    vm.suspend()
    with pytest.raises(RuntimeError):
        vm.suspend()


def test_resume_while_running_rejected():
    vm = VirtualMachine("v", 4096)
    with pytest.raises(RuntimeError):
        vm.resume()


def test_resume_switches_host_and_pages():
    vm = VirtualMachine("v", 10 * 4096, host="src")
    dst_pages = PageSet(10)
    vm.suspend()
    vm.resume(host="dst", pages=dst_pages)
    assert vm.host == "dst"
    assert vm.pages is dst_pages


def test_resume_rejects_wrong_geometry():
    vm = VirtualMachine("v", 10 * 4096)
    vm.suspend()
    with pytest.raises(ValueError):
        vm.resume(pages=PageSet(11))


def test_terminate():
    vm = VirtualMachine("v", 4096)
    vm.terminate()
    assert vm.state is VmState.TERMINATED
    assert not vm.is_running
