"""Differential tests: fast-path arbiter vs the reference oracle.

The fast path (``Network(fast_path=True)``, the default) must produce
*bit-identical* grants to the reference arbiter for every tick of every
scenario — not approximately equal: the fast path replays the reference
algorithm's float operations in the same order, so ``==`` is the
contract. These tests drive twin networks (one per implementation)
through identical randomized churn — multi-priority demand, flow
open/close, link degradation, fabric partitions, rack topologies — and
compare every grant, byte counter and link counter exactly.
"""

import random

import pytest

from repro.net import Network
from repro.sched.topology import Topology

SEEDS = [0, 1, 7, 42, 1234]


class TwinFabric:
    """Two identically-configured networks, one per arbiter, driven in
    lockstep: every mutation is applied to both, every ``arbitrate`` is
    followed by an exact grant comparison."""

    def __init__(self, hosts, bw=1e6, latency_s=0.0,
                 topology_factory=None):
        self.fast = Network(default_bandwidth_bps=bw, latency_s=latency_s,
                            fast_path=True)
        self.ref = Network(default_bandwidth_bps=bw, latency_s=latency_s,
                           fast_path=False)
        assert self.fast.fast_path and not self.ref.fast_path
        if topology_factory is not None:
            self.fast.set_topology(topology_factory())
            self.ref.set_topology(topology_factory())
        for h in hosts:
            self.fast.add_host(h)
            self.ref.add_host(h)
        self.pairs = []  # [(fast_flow, ref_flow)]

    def open_flow(self, src, dst, priority=1):
        pair = (self.fast.open_flow(src, dst, priority=priority),
                self.ref.open_flow(src, dst, priority=priority))
        self.pairs.append(pair)
        return pair

    def close_pair(self, pair):
        pair[0].close()
        pair[1].close()
        self.pairs.remove(pair)

    def set_demand(self, pair, demand):
        pair[0].demand = demand
        pair[1].demand = demand

    def degrade_nic(self, host, factor):
        for net in (self.fast, self.ref):
            net.nic(host).tx.degrade(factor)
            net.nic(host).rx.degrade(factor)

    def restore_nic(self, host):
        for net in (self.fast, self.ref):
            net.nic(host).tx.restore()
            net.nic(host).rx.restore()

    def set_partition(self, groups):
        self.fast.set_partition(groups)
        self.ref.set_partition(groups)

    def clear_partition(self):
        self.fast.clear_partition()
        self.ref.clear_partition()

    def tick(self, dt):
        self.fast.arbitrate(dt)
        self.ref.arbitrate(dt)
        for ff, rf in self.pairs:
            assert ff.granted == rf.granted, (
                f"grant divergence on {ff.name}: "
                f"fast={ff.granted!r} ref={rf.granted!r}")
            assert ff.total_bytes == rf.total_bytes

    def assert_links_identical(self):
        fast_links = {lk.name: lk.bytes_carried
                      for nic in (self.fast.nic(h)
                                  for h in self.fast._nics)
                      for lk in (nic.tx, nic.rx)}
        ref_links = {lk.name: lk.bytes_carried
                     for nic in (self.ref.nic(h) for h in self.ref._nics)
                     for lk in (nic.tx, nic.rx)}
        assert fast_links == ref_links


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_random_churn(seed):
    """Random multi-priority demand with flow open/close churn."""
    rng = random.Random(seed)
    hosts = [f"h{i}" for i in range(8)]
    twin = TwinFabric(hosts, bw=1e6)
    for _ in range(15):
        src, dst = rng.sample(hosts, 2)
        twin.open_flow(src, dst, priority=rng.randint(0, 2))
    for _ in range(200):
        for pair in twin.pairs:
            if rng.random() < 0.8:
                twin.set_demand(pair, rng.uniform(0.0, 3e6))
        if twin.pairs and rng.random() < 0.05:
            twin.close_pair(rng.choice(twin.pairs))
        if rng.random() < 0.1:
            src, dst = rng.sample(hosts, 2)
            twin.open_flow(src, dst, priority=rng.randint(0, 2))
        twin.tick(dt=rng.choice([0.05, 0.1, 0.25]))
    twin.assert_links_identical()


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_topology_uplinks(seed):
    """Oversubscribed rack uplinks + core: shared-bottleneck grants."""
    rng = random.Random(seed)
    racks = {"r0": [f"a{i}" for i in range(4)],
             "r1": [f"b{i}" for i in range(4)],
             "r2": [f"c{i}" for i in range(4)]}
    hosts = [h for hs in racks.values() for h in hs]

    def topo():
        t = Topology(uplink_bps=2e6, core_bps=5e6)
        for rack, members in racks.items():
            t.add_rack(rack)
            for h in members:
                t.assign(h, rack)
        return t

    twin = TwinFabric(hosts, bw=1e6, topology_factory=topo)
    for _ in range(20):
        src, dst = rng.sample(hosts, 2)
        twin.open_flow(src, dst, priority=rng.randint(0, 1))
    for _ in range(150):
        for pair in twin.pairs:
            twin.set_demand(pair, rng.uniform(0.0, 4e6))
        twin.tick(dt=0.1)
    twin.assert_links_identical()


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_differential_partitions_and_degradation(seed):
    """Fault injection: degraded NICs and fabric partitions mid-run."""
    rng = random.Random(seed)
    hosts = [f"h{i}" for i in range(6)]
    twin = TwinFabric(hosts, bw=1e6)
    for _ in range(12):
        src, dst = rng.sample(hosts, 2)
        twin.open_flow(src, dst, priority=rng.randint(0, 2))
    degraded = set()
    partitioned = False
    for step in range(200):
        for pair in twin.pairs:
            twin.set_demand(pair, rng.uniform(0.0, 2e6))
        roll = rng.random()
        if roll < 0.05:
            h = rng.choice(hosts)
            twin.degrade_nic(h, rng.choice([0.0, 0.25, 0.5]))
            degraded.add(h)
        elif roll < 0.10 and degraded:
            h = degraded.pop()
            twin.restore_nic(h)
        elif roll < 0.14 and not partitioned:
            k = rng.randint(1, len(hosts) - 1)
            twin.set_partition([set(rng.sample(hosts, k))])
            partitioned = True
        elif roll < 0.18 and partitioned:
            twin.clear_partition()
            partitioned = False
        twin.tick(dt=0.1)
    twin.assert_links_identical()


def test_differential_intra_host_and_idle_flows():
    """Intra-host flows (no links) and long-idle flows are granted
    identically — the fast path's idle-skip must not change results."""
    hosts = ["a", "b", "c"]
    twin = TwinFabric(hosts, bw=100.0)
    local = twin.open_flow("a", "a")
    busy = twin.open_flow("a", "b")
    idle = twin.open_flow("b", "c")
    twin.set_demand(local, 500.0)
    twin.set_demand(busy, 500.0)
    twin.tick(dt=1.0)
    assert local[0].granted == 500.0
    assert busy[0].granted == 100.0
    assert idle[0].granted == 0.0
    # idle stays quiet for many ticks, then wakes
    for _ in range(50):
        twin.set_demand(busy, 500.0)
        twin.tick(dt=1.0)
    twin.set_demand(idle, 40.0)
    twin.set_demand(busy, 500.0)
    twin.tick(dt=1.0)
    assert idle[0].granted == 40.0
    twin.assert_links_identical()


def test_differential_priority_preemption_exact():
    """Strict priority: class 0 drains headroom before class 1 sees it,
    identically on both paths (shared-link, partial-satisfaction case)."""
    twin = TwinFabric(["a", "b", "c"], bw=100.0)
    paging = twin.open_flow("a", "b", priority=0)
    bulk1 = twin.open_flow("a", "b", priority=1)
    bulk2 = twin.open_flow("a", "c", priority=1)
    for _ in range(10):
        twin.set_demand(paging, 60.0)
        twin.set_demand(bulk1, 100.0)
        twin.set_demand(bulk2, 100.0)
        twin.tick(dt=1.0)
        assert paging[0].granted == 60.0
        # 40 bytes of a.tx headroom split max-min between the bulks
        assert bulk1[0].granted == bulk2[0].granted == 20.0


def test_fast_path_scalar_vector_boundary():
    """Classes just below/above the scalar/vector dispatch threshold
    produce identical grants (regression guard for the batch cutoff)."""
    n = 30  # spans _SCALAR_BATCH = 12 when split across priorities
    hosts = [f"h{i}" for i in range(n + 1)]
    twin = TwinFabric(hosts, bw=1000.0)
    pairs = []
    for i in range(n):
        # many flows contending for h0.tx, split into two classes
        pairs.append(twin.open_flow("h0", hosts[i + 1],
                                    priority=0 if i < 10 else 1))
    for demand in (5.0, 50.0, 5000.0):
        for p in pairs:
            twin.set_demand(p, demand)
        twin.tick(dt=1.0)
