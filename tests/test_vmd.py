"""Tests for the Virtualized Memory Device (servers, placement, namespaces)."""

import pytest

from repro.net import Network
from repro.sim import Simulator, TickEngine
from repro.vmd import RoundRobinPlacement, VMDCluster, VMDNamespace, VMDServer

MiB = 2 ** 20


# -- server -------------------------------------------------------------------

def test_server_allocate_on_write_only():
    s = VMDServer("i1", 100.0)
    assert s.used_bytes == 0.0
    assert s.allocate(30.0) == 30.0
    assert s.free_bytes == 70.0


def test_server_allocate_caps_at_capacity():
    s = VMDServer("i1", 100.0)
    assert s.allocate(150.0) == 100.0
    assert not s.has_free_memory()


def test_server_release():
    s = VMDServer("i1", 100.0)
    s.allocate(50.0)
    s.release(20.0)
    assert s.used_bytes == 30.0
    s.release(100.0)
    assert s.used_bytes == 0.0


def test_server_validation():
    with pytest.raises(ValueError):
        VMDServer("i", 0.0)
    with pytest.raises(ValueError):
        VMDServer("i", 10.0, service_bps=0.0)


# -- placement -----------------------------------------------------------------

def test_round_robin_spreads_chunks():
    servers = [VMDServer(f"i{k}", 1000.0) for k in range(3)]
    pl = RoundRobinPlacement(servers, chunk_bytes=10.0)
    plan = pl.split_write(30.0)
    assert set(plan.values()) == {10.0}
    assert len(plan) == 3


def test_round_robin_skips_full_servers():
    full = VMDServer("full", 10.0)
    full.allocate(10.0)
    free = VMDServer("free", 1000.0)
    pl = RoundRobinPlacement([full, free], chunk_bytes=10.0)
    plan = pl.split_write(20.0)
    assert plan == {free: 20.0}


def test_round_robin_drops_unplaceable_bytes():
    s = VMDServer("i", 10.0)
    pl = RoundRobinPlacement([s], chunk_bytes=10.0)
    plan = pl.split_write(100.0)
    assert sum(plan.values()) == 10.0


def test_round_robin_cursor_advances_across_calls():
    servers = [VMDServer(f"i{k}", 1000.0) for k in range(2)]
    pl = RoundRobinPlacement(servers, chunk_bytes=5.0)
    first = pl.split_write(5.0)
    second = pl.split_write(5.0)
    assert list(first) != list(second)


def test_placement_validation():
    with pytest.raises(ValueError):
        RoundRobinPlacement([])
    with pytest.raises(ValueError):
        RoundRobinPlacement([VMDServer("i", 1.0)], chunk_bytes=0)


# -- namespace over the network ---------------------------------------------------

def build_vmd(n_servers=1, bw=100.0, capacity=1000.0, chunk=10.0):
    sim = Simulator()
    net = Network(default_bandwidth_bps=bw, latency_s=0.0)
    for h in ("src", "dst"):
        net.add_host(h)
    engine = TickEngine(sim, dt=1.0)
    engine.add_arbiter(net)
    servers = []
    for k in range(n_servers):
        host = f"i{k}"
        net.add_host(host)
        servers.append(VMDServer(host, capacity))
    vmd = VMDCluster(net, engine, servers, placement_chunk_bytes=chunk)
    engine.start()
    return sim, net, engine, vmd


def test_namespace_write_allocates_on_servers():
    sim, net, engine, vmd = build_vmd()
    ns = vmd.create_namespace("vm1")
    q = ns.open_queue("writeback", "write", host="src")
    q.demand = 50.0
    sim.run(until=1.0)
    assert q.granted == pytest.approx(50.0)
    assert vmd.total_used_bytes() == pytest.approx(50.0)
    assert ns.used_bytes == pytest.approx(50.0)


def test_namespace_write_limited_by_network():
    sim, net, engine, vmd = build_vmd(bw=40.0)
    ns = vmd.create_namespace("vm1")
    q = ns.open_queue("writeback", "write", host="src")
    q.demand = 100.0
    sim.run(until=1.0)
    assert q.granted == pytest.approx(40.0)


def test_namespace_read_from_destination_host():
    """The portable-device property: after writing from src, dst can read."""
    sim, net, engine, vmd = build_vmd()
    ns = vmd.create_namespace("vm1")
    w = ns.open_queue("writeback", "write", host="src")
    w.demand = 80.0
    sim.run(until=1.0)
    r = ns.open_queue("umem", "read", host="dst")
    r.demand = 60.0
    sim.run(until=2.0)
    assert r.granted == pytest.approx(60.0)


def test_namespace_requires_host():
    sim, net, engine, vmd = build_vmd()
    ns = vmd.create_namespace("vm1")
    with pytest.raises(ValueError):
        ns.open_queue("q", "read")
    with pytest.raises(ValueError):
        ns.open_queue("q", "read", host="nope")


def test_namespace_reads_spread_by_stored_share():
    sim, net, engine, vmd = build_vmd(n_servers=2, bw=1000.0)
    ns = vmd.create_namespace("vm1")
    w = ns.open_queue("wb", "write", host="src")
    w.demand = 100.0
    sim.run(until=1.0)
    r = ns.open_queue("rd", "read", host="dst")
    r.demand = 100.0
    sim.run(until=2.0)
    # both servers hold ~half the data; each read flow carried ~half
    flows = list(r.flows.values())
    assert len(flows) == 2
    assert flows[0].total_bytes == pytest.approx(50.0, rel=0.2)


def test_namespace_write_grant_stalls_when_servers_full():
    sim, net, engine, vmd = build_vmd(capacity=30.0)
    ns = vmd.create_namespace("vm1")
    q = ns.open_queue("wb", "write", host="src")
    q.demand = 100.0
    sim.run(until=1.0)
    assert vmd.total_used_bytes() == pytest.approx(30.0)
    assert q.granted <= 30.0 + 1e-9


def test_namespace_release_returns_memory():
    sim, net, engine, vmd = build_vmd()
    ns = vmd.create_namespace("vm1")
    q = ns.open_queue("wb", "write", host="src")
    q.demand = 50.0
    sim.run(until=1.0)
    ns.release(20.0)
    assert ns.used_bytes == pytest.approx(30.0)
    assert vmd.total_used_bytes() == pytest.approx(30.0)


def test_closed_queue_closes_flows():
    sim, net, engine, vmd = build_vmd()
    ns = vmd.create_namespace("vm1")
    q = ns.open_queue("wb", "write", host="src")
    q.demand = 50.0
    sim.run(until=1.0)
    flows = list(q.flows.values())
    q.close()
    assert all(not f.active for f in flows)
    sim.run(until=2.0)  # must not crash


def test_two_namespaces_isolated_accounting():
    sim, net, engine, vmd = build_vmd(bw=1000.0)
    ns1 = vmd.create_namespace("vm1")
    ns2 = vmd.create_namespace("vm2")
    q1 = ns1.open_queue("wb", "write", host="src")
    q2 = ns2.open_queue("wb", "write", host="src")
    q1.demand = 30.0
    q2.demand = 70.0
    sim.run(until=1.0)
    assert ns1.used_bytes == pytest.approx(30.0)
    assert ns2.used_bytes == pytest.approx(70.0)


def test_duplicate_namespace_rejected():
    sim, net, engine, vmd = build_vmd()
    vmd.create_namespace("vm1")
    with pytest.raises(ValueError):
        vmd.create_namespace("vm1")


def test_cluster_validation():
    sim = Simulator()
    net = Network()
    engine = TickEngine(sim)
    with pytest.raises(ValueError):
        VMDCluster(net, engine, [])
    with pytest.raises(ValueError):
        VMDCluster(net, engine, [VMDServer("ghost", 10.0)])


def test_disk_backed_server_caps_service_rate():
    sim = Simulator()
    net = Network(default_bandwidth_bps=1000.0, latency_s=0.0)
    net.add_host("src")
    net.add_host("i0")
    engine = TickEngine(sim, dt=1.0)
    engine.add_arbiter(net)
    server = VMDServer("i0", 1000.0, service_bps=25.0)  # disk tier
    vmd = VMDCluster(net, engine, [server])
    ns = vmd.create_namespace("vm1")
    q = ns.open_queue("wb", "write", host="src")
    engine.start()
    q.demand = 100.0
    sim.run(until=1.0)
    assert q.granted == pytest.approx(25.0)
