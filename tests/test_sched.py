"""repro.sched: topology, correlated rack faults, host health, planner
scoring/admission, control-plane rebalancing, and determinism."""

import pytest

from repro.cluster.setup import preload_dataset
from repro.cluster.world import World
from repro.experiments.datacenter import (
    DatacenterConfig,
    churn_run,
    datacenter_run,
    honeypot_schedule,
    make_datacenter,
)
from repro.faults import FaultKind, FaultSchedule, FaultSpec
from repro.sched import (
    ClusterControlPlane,
    HostHealth,
    HostHealthTracker,
    MigrationPlan,
    MigrationPlanner,
    PlannerConfig,
    Topology,
)
from repro.util import MiB
from repro.vm.vm import VmState
from repro.vmd.placement import RoundRobinPlacement
from repro.vmd.server import VMDServer


# -- topology -------------------------------------------------------------------

def two_rack_topology():
    topo = Topology(uplink_bps=10e6)
    topo.add_rack("ra")
    topo.add_rack("rb")
    for h in ("a0", "a1"):
        topo.assign(h, "ra")
    topo.assign("b0", "rb")
    return topo


def test_topology_paths_and_fault_domains():
    topo = two_rack_topology()
    assert topo.same_rack("a0", "a1")
    assert topo.same_fault_domain("a0", "a1")
    assert not topo.same_rack("a0", "b0")
    assert topo.path_links("a0", "a1") == ()
    names = [link.name for link in topo.path_links("a0", "b0")]
    assert names == ["ra.up", "rb.down"]
    # out-of-topology endpoints cross no rack links
    assert topo.path_links("a0", "client") == ()
    assert not topo.same_rack("a0", "client")
    assert topo.rack_of("client") is None
    assert topo.hosts_in("ra") == ["a0", "a1"]


def test_topology_core_link_and_validation():
    topo = Topology(uplink_bps=10e6, core_bps=5e6)
    topo.add_rack("ra")
    topo.add_rack("rb")
    topo.assign("a0", "ra")
    topo.assign("b0", "rb")
    names = [link.name for link in topo.path_links("a0", "b0")]
    assert names == ["ra.up", "core", "rb.down"]
    with pytest.raises(ValueError):
        topo.assign("a0", "rb")  # already placed
    with pytest.raises(KeyError):
        topo.assign("c0", "nope")
    with pytest.raises(ValueError):
        topo.add_rack("ra")
    with pytest.raises(ValueError):
        Topology(uplink_bps=0)


def test_inter_rack_flows_cross_the_uplink():
    world = World(dt=0.1, net_bandwidth_bps=10e6)
    topo = Topology(uplink_bps=4e6)
    world.use_topology(topo)
    topo.add_rack("ra")
    topo.add_rack("rb")
    world.add_host("a0", 64 * MiB, host_os_bytes=1 * MiB, rack="ra")
    world.add_host("a1", 64 * MiB, host_os_bytes=1 * MiB, rack="ra")
    world.add_host("b0", 64 * MiB, host_os_bytes=1 * MiB, rack="rb")
    intra = world.network.open_flow("a0", "a1")
    inter = world.network.open_flow("a0", "b0")
    assert [link.name for link in intra.links] == ["a0.tx", "a1.rx"]
    assert [link.name for link in inter.links] == \
        ["a0.tx", "ra.up", "rb.down", "b0.rx"]
    # the narrow uplink, not the NIC, caps the inter-rack flow
    intra.demand = 10e6 * 0.1
    inter.demand = 10e6 * 0.1
    world.network.arbitrate(0.1)
    assert inter.granted == pytest.approx(4e6 * 0.1)


def test_set_topology_after_flows_is_rejected():
    world = World(dt=0.1)
    world.add_host("a0", 64 * MiB, host_os_bytes=1 * MiB)
    world.add_host("b0", 64 * MiB, host_os_bytes=1 * MiB)
    world.network.open_flow("a0", "b0")
    with pytest.raises(RuntimeError):
        world.network.set_topology(Topology(uplink_bps=1e6))


# -- correlated rack faults -----------------------------------------------------

def rack_world(vmd_on="a1"):
    """Two racks, two hosts each, one VM per rack-a host, a donor on
    ``vmd_on``, plus an out-of-rack donor so namespaces survive."""
    world = World(dt=0.1, net_bandwidth_bps=10e6)
    topo = Topology(uplink_bps=10e6)
    world.use_topology(topo)
    topo.add_rack("ra")
    topo.add_rack("rb")
    for h in ("a0", "a1"):
        world.add_host(h, 64 * MiB, host_os_bytes=1 * MiB, rack="ra")
    for h in ("b0", "b1"):
        world.add_host(h, 64 * MiB, host_os_bytes=1 * MiB, rack="rb")
    world.add_vmd([(vmd_on, 256 * MiB), ("vmdx", 256 * MiB)])
    for i, h in enumerate(("a0", "a1")):
        vm = world.add_vm(f"vm{i}", 8 * MiB, h, page_size=4096)
        ns = world.vmd.create_namespace(f"vm{i}")
        world.hosts[h].place_vm(vm, 8 * MiB, ns)
    return world, topo


def test_rack_crash_takes_down_hosts_vms_and_donors():
    world, topo = rack_world()
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.RACK_CRASH, "ra", at=1.0, duration=5.0)])
    world.attach_faults(schedule)
    world.run(until=2.0)
    assert world.network.nic("a0").tx.degraded
    assert world.network.nic("a1").rx.degraded
    assert topo.racks["ra"].up.degraded
    assert world.vms["vm0"].state is VmState.TERMINATED
    assert world.vms["vm1"].state is VmState.TERMINATED
    assert not world.vmd.server_on("a1").alive
    assert world.vmd.server_on("vmdx").alive  # out-of-rack donor spared
    world.run(until=7.0)
    # power restored: links, NICs, donors return; the VMs do not
    assert not world.network.nic("a0").tx.degraded
    assert not topo.racks["ra"].up.degraded
    assert world.vmd.server_on("a1").alive
    assert world.vms["vm0"].state is VmState.TERMINATED


def test_rack_crash_validation():
    world, _ = rack_world()
    with pytest.raises(ValueError):
        world.attach_faults(FaultSchedule(
            [FaultSpec(FaultKind.RACK_CRASH, "nope", at=1.0)]))
    bare = World(dt=0.1)
    bare.add_host("h", 64 * MiB, host_os_bytes=1 * MiB)
    with pytest.raises(ValueError):
        bare.attach_faults(FaultSchedule(
            [FaultSpec(FaultKind.RACK_CRASH, "ra", at=1.0)]))


# -- host health ----------------------------------------------------------------

def test_health_tracker_full_lifecycle():
    world, _ = rack_world()
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.NIC_DOWN, "b0", at=1.0, duration=2.0),
         FaultSpec(FaultKind.NIC_DEGRADED, "b1", at=1.0, duration=2.0,
                   severity=0.5)])
    world.attach_faults(schedule)
    tracker = HostHealthTracker(world, cooldown_s=3.0)
    changes = []
    tracker.subscribe(lambda h, old, new: changes.append((h, new)))
    assert tracker.state("b0") is HostHealth.UP
    world.run(until=1.5)
    assert tracker.state("b0") is HostHealth.DOWN
    assert not tracker.placeable("b0")
    assert tracker.state("b1") is HostHealth.DEGRADED
    assert tracker.placeable("b1")  # degraded is placeable, scored down
    assert tracker.snapshot() == {"b0": "down", "b1": "degraded"}
    world.run(until=3.5)  # reverted at 3.0 → cooldown until 6.0
    assert tracker.state("b0") is HostHealth.RECENTLY_FAILED
    assert not tracker.placeable("b0")
    assert tracker.state("b1") is HostHealth.UP  # degradation has no cooldown
    world.run(until=6.5)
    assert tracker.state("b0") is HostHealth.UP
    assert (("b0", HostHealth.DOWN) in changes
            and ("b0", HostHealth.RECENTLY_FAILED) in changes
            and ("b0", HostHealth.UP) in changes)


def test_health_tracker_rack_crash_marks_every_host():
    world, _ = rack_world()
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.RACK_CRASH, "ra", at=1.0, duration=2.0)])
    world.attach_faults(schedule)
    tracker = HostHealthTracker(world, cooldown_s=5.0)
    world.run(until=1.5)
    assert tracker.state("a0") is HostHealth.DOWN
    assert tracker.state("a1") is HostHealth.DOWN
    assert tracker.state("b0") is HostHealth.UP
    world.run(until=3.5)
    assert tracker.state("a0") is HostHealth.RECENTLY_FAILED


def test_health_cooldown_superseded_by_second_crash():
    world, _ = rack_world()
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.NIC_DOWN, "b0", at=1.0, duration=1.0),
         FaultSpec(FaultKind.NIC_DOWN, "b0", at=3.0, duration=1.0)])
    world.attach_faults(schedule)
    tracker = HostHealthTracker(world, cooldown_s=2.5)
    world.run(until=3.5)
    # second crash landed inside the first cooldown: DOWN wins, and the
    # stale cooldown expiry (at 4.5) must not flip the host to UP early
    assert tracker.state("b0") is HostHealth.DOWN
    world.run(until=5.0)
    assert tracker.state("b0") is HostHealth.RECENTLY_FAILED
    world.run(until=7.0)  # second cooldown ends at 6.5
    assert tracker.state("b0") is HostHealth.UP


def test_health_tracker_requires_faults():
    world, _ = rack_world()
    with pytest.raises(RuntimeError):
        HostHealthTracker(world)


# -- planner --------------------------------------------------------------------

def planner_world():
    """Three destination hosts with distinct free memory, one source."""
    world = World(dt=0.1, net_bandwidth_bps=10e6)
    topo = Topology(uplink_bps=10e6)
    world.use_topology(topo)
    topo.add_rack("ra")
    topo.add_rack("rb")
    world.add_host("src", 64 * MiB, host_os_bytes=1 * MiB, rack="ra")
    world.add_host("peer", 64 * MiB, host_os_bytes=1 * MiB, rack="ra")
    world.add_host("b0", 64 * MiB, host_os_bytes=1 * MiB, rack="rb")
    world.add_host("b1", 128 * MiB, host_os_bytes=1 * MiB, rack="rb")
    world.add_vmd([("vmdx", 256 * MiB)])
    vm = world.add_vm("vm0", 8 * MiB, "src", page_size=4096)
    ns = world.vmd.create_namespace("vm0")
    world.hosts["src"].place_vm(vm, 8 * MiB, ns)
    # a filler VM keeps b0's free *fraction* below the empty b1's, so
    # headroom scoring has a strict order to witness
    vmf = world.add_vm("vmf", 16 * MiB, "b0", page_size=4096)
    nsf = world.vmd.create_namespace("vmf")
    world.hosts["b0"].place_vm(vmf, 16 * MiB, nsf)
    preload_dataset(vmf, world.manager_of("b0"), 16 * MiB)
    return world


def test_planner_prefers_headroom_and_spread():
    world = planner_world()
    dispatched = []
    planner = MigrationPlanner(world, dispatch=dispatched.append,
                               exclude_hosts=("vmdx",))
    planner.request("vm0", "src")
    assert len(dispatched) == 1
    plan = dispatched[0]
    # b1 has double the memory (best headroom) and sits in another rack
    # (spread bonus beats same-rack locality with default weights)
    assert plan.dst == "b1"
    assert plan.src == "src"
    assert plan.demand_bytes == 8 * MiB
    assert "plan#1" in planner.log[-1]


def test_planner_skips_down_hosts_and_repumps_on_health():
    world = planner_world()
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.NIC_DOWN, "b1", at=1.0, duration=2.0)])
    world.attach_faults(schedule)
    tracker = HostHealthTracker(world, cooldown_s=1.0)
    dispatched = []
    planner = MigrationPlanner(world, health=tracker,
                               dispatch=dispatched.append,
                               exclude_hosts=("vmdx",))
    world.run(until=1.5)
    planner.request("vm0", "src")
    assert dispatched[0].dst == "b0"  # the honeypot b1 is DOWN


def test_planner_admission_caps_and_fifo_queue():
    world = planner_world()
    for i, host in ((1, "src"), (2, "peer")):
        vm = world.add_vm(f"vm{i}", 8 * MiB, host, page_size=4096)
        ns = world.vmd.create_namespace(f"vm{i}")
        world.hosts[host].place_vm(vm, 8 * MiB, ns)
    dispatched = []
    planner = MigrationPlanner(
        world, config=PlannerConfig(max_per_host=1, max_per_uplink=2),
        dispatch=dispatched.append, exclude_hosts=("vmdx",))
    planner.request("vm0", "src")
    planner.request("vm1", "src")   # src already migrating → queued
    planner.request("vm2", "peer")  # b1 slot taken → next-best b0
    assert [p.vm for p in dispatched] == ["vm0", "vm2"]
    assert planner.queue[0].vm == "vm1"
    # duplicates are absorbed
    planner.request("vm1", "src")
    assert len(planner.queue) == 1
    # releasing vm0's slots admits the queued request (FIFO)
    planner.on_plan_done(dispatched[0], "completed")
    assert [p.vm for p in dispatched] == ["vm0", "vm2", "vm1"]


def test_planner_replan_excludes_failed_destination():
    world = planner_world()
    dispatched = []
    planner = MigrationPlanner(world, dispatch=dispatched.append,
                               exclude_hosts=("vmdx",))
    planner.request("vm0", "src")
    plan = dispatched[0]
    assert plan.dst == "b1"
    new = planner.replan(plan, exclude=frozenset({"b1"}))
    assert new is not None and new.dst == "b0" and new.replans == 1
    assert planner.active["vm0"] is new


def test_initial_placement_spreads_and_avoids_dead_hosts():
    world = planner_world()
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.NIC_DOWN, "b1", at=1.0, duration=50.0)])
    world.attach_faults(schedule)
    tracker = HostHealthTracker(world)
    blind = MigrationPlanner(world, exclude_hosts=("vmdx",))
    aware = MigrationPlanner(world, health=tracker,
                             exclude_hosts=("vmdx",))
    # rack rb is empty (rack ra holds vm0) and b1 has the most free
    assert blind.initial_placement(8 * MiB) == "b1"
    world.run(until=1.5)
    # with b1 dead, aware falls to the freest host in an equally loaded
    # rack; blind keeps walking into the dead honeypot
    assert aware.initial_placement(8 * MiB) == "peer"
    assert blind.initial_placement(8 * MiB) == "b1"
    assert aware.initial_placement(1e12) is None  # nothing fits


# -- VMD donor health filter ----------------------------------------------------

def test_round_robin_skips_unplaceable_donors():
    s0, s1 = VMDServer("h0", 64 * MiB), VMDServer("h1", 64 * MiB)
    placement = RoundRobinPlacement([s0, s1], chunk_bytes=1 * MiB,
                                    placeable=lambda s: s.host != "h0")
    plan = placement.split_write(4 * MiB)
    assert s0 not in plan
    assert plan[s1] == 4 * MiB
    assert placement.placeable_bytes() == 64 * MiB


def test_vmd_cluster_attach_health_filters_new_placements():
    world, _ = rack_world()
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.NIC_DOWN, "a1", at=1.0, duration=100.0)])
    world.attach_faults(schedule)
    tracker = HostHealthTracker(world)
    world.vmd.attach_health(tracker)
    world.run(until=1.5)
    ns = world.vmd.namespaces["vm0"]
    plan = ns.placement.split_write(4 * MiB)
    downed = world.vmd.server_on("a1")
    assert downed not in plan  # its host is DOWN, alive flag or not
    assert sum(plan.values()) == 4 * MiB


# -- trigger / planner handshake ------------------------------------------------

def test_trigger_stays_armed_when_migrate_returns_false():
    from repro.core.trigger import WatermarkConfig, WatermarkTrigger
    from repro.sim.kernel import Simulator
    sim = Simulator()
    calls = []

    def migrate(names):
        calls.append(list(names))
        return False  # planner had no destination

    trigger = WatermarkTrigger(
        sim, usable_bytes=100.0,
        wss_of=lambda: {"vm0": 90.0, "vm1": 8.0},
        migrate=migrate,
        config=WatermarkConfig(high_watermark=0.9, low_watermark=0.5,
                               check_interval_s=1.0))
    sim.run(until=3.5)
    # un-handled alerts don't disarm (or count): the crossing re-fires
    assert len(calls) == 3
    assert trigger.trigger_count == 0
    trigger.stop()


# -- the control plane end-to-end ----------------------------------------------

def test_datacenter_rebalance_without_faults_completes():
    res = datacenter_run(until=40.0)
    assert res["failed_or_aborted"] == 0
    assert res["dead_vms"] == []
    assert res["outcomes"].get("completed", 0) >= 4
    # every overloaded host shed exactly what the low watermark asked,
    # and no destination was pushed over its own watermark (triggers are
    # now installed everywhere, so a churned destination *would* fire)
    dc = res["dc"]
    for name, t in sorted(dc.control.triggers.items()):
        if name.startswith("r0"):
            assert t.trigger_count >= 1, name
        else:
            assert t.trigger_count == 0, name


def test_fault_aware_control_plane_avoids_the_honeypot_rack():
    aware = datacenter_run(honeypot_schedule(), DatacenterConfig(
        health_aware=True), until=60.0)
    blind = datacenter_run(honeypot_schedule(), DatacenterConfig(
        health_aware=False), until=60.0)
    # the ISSUE acceptance criterion, at test scale
    assert aware["failed_or_aborted"] < blind["failed_or_aborted"]
    assert aware["unavailable_s"] < blind["unavailable_s"]
    assert aware["dead_vms"] == []
    assert blind["dead_vms"] != []
    # the aware planner routed every migration away from the honeypot
    assert not any("->r2" in line for line in aware["plan_log"]
                   if line.startswith("plan#"))


def test_scheduler_determinism_same_seed_same_plan_log():
    runs = [datacenter_run(honeypot_schedule(),
                           DatacenterConfig(health_aware=True), until=60.0)
            for _ in range(2)]
    assert runs[0]["plan_log"] == runs[1]["plan_log"]
    assert runs[0]["fault_log"] == runs[1]["fault_log"]
    assert runs[0]["outcomes"] == runs[1]["outcomes"]
    assert runs[0]["unavailable_s"] == runs[1]["unavailable_s"]


def test_control_plane_replans_after_destination_dies():
    # no early-warning crash: migrations head to the big rack, die there
    # once, and the supervisor's replan finds a surviving rack
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.RACK_CRASH, "r2", at=3.0, duration=60.0)])
    dc = make_datacenter(schedule, DatacenterConfig(health_aware=True))
    dc.run(until=60.0)
    log = dc.control.planner.log
    assert any(line.startswith("replan#") for line in log)
    # re-planned migrations completed somewhere that is not r2
    done = [line for line in log if line.startswith("done#")]
    assert done and all("-> r2" not in line for line in done)
    assert dc.dead_vms() == []


# -- satellite regressions: planner lifecycle bugs ------------------------------

def test_pump_survives_synchronously_completing_dispatch():
    """A dispatch that completes inline re-enters pump() via
    on_plan_done; the outer pump's queue snapshot must not dispatch a
    request the nested pump already handled (double dispatch, then
    ``queue.remove`` ValueError)."""
    world = planner_world()
    for i, host in ((1, "src"), (2, "src")):
        vm = world.add_vm(f"vm{i}", 8 * MiB, host, page_size=4096)
        ns = world.vmd.create_namespace(f"vm{i}")
        world.hosts[host].place_vm(vm, 8 * MiB, ns)
    dispatched = []
    planner = MigrationPlanner(
        world, config=PlannerConfig(max_per_host=1),
        dispatch=dispatched.append, exclude_hosts=("vmdx",))
    planner.request("vm0", "src")
    planner.request("vm1", "src")  # src at capacity → queued
    planner.request("vm2", "src")  # queued behind vm1
    assert [p.vm for p in dispatched] == ["vm0"]
    assert [r.vm for r in planner.queue] == ["vm1", "vm2"]
    # from here on every dispatch completes synchronously, so admitting
    # vm1 frees src's slot and the *nested* pump admits vm2 while the
    # outer pump is still iterating its two-element snapshot
    planner.dispatch = \
        lambda plan: planner.on_plan_done(plan, "completed")
    planner.on_plan_done(dispatched[0], "completed")
    assert planner.queue == []
    assert planner.active == {}
    vms_done = [p.vm for p, outcome in planner.completed]
    assert vms_done == ["vm0", "vm1", "vm2"]  # each exactly once


def test_duplicate_request_returns_false_so_triggers_stay_armed():
    """A duplicate alert (often from a *different* host's trigger) must
    not report success: the in-flight plan's completion re-arms only its
    own source, so swallowing the duplicate as handled would strand the
    other host's trigger forever."""
    world = planner_world()
    world.attach_faults(FaultSchedule())
    control = ClusterControlPlane(world, health_aware=False,
                                  exclude_hosts=("vmdx",))
    assert control._on_alert("src", ["vm0"]) is True
    assert control.planner.request("vm0", "src") is False   # same host
    assert control._on_alert("peer", ["vm0"]) is False      # other host
    # the planner holds exactly one plan/queue entry for vm0
    assert len(control.planner.active) + len(control.planner.queue) == 1


def test_trigger_rearms_only_after_every_shed_migration_lands():
    world = planner_world()
    world.attach_faults(FaultSchedule())
    for i in (1,):
        vm = world.add_vm(f"vm{i}", 8 * MiB, "src", page_size=4096)
        ns = world.vmd.create_namespace(f"vm{i}")
        world.hosts["src"].place_vm(vm, 8 * MiB, ns)
    control = ClusterControlPlane(
        world, health_aware=False, exclude_hosts=("vmdx",),
        planner_config=PlannerConfig(max_per_host=2))
    rearms = []

    class _FakeTrigger:
        def rearm(self):
            rearms.append(1)

    control.triggers["src"] = _FakeTrigger()
    assert control._on_alert("src", ["vm0", "vm1"]) is True
    assert control._outstanding["src"] == 2

    class _Report:
        outcome = None

    control._on_final("vm0", _Report())
    assert rearms == []  # vm1 still in flight from the same alert
    control._on_final("vm1", _Report())
    assert rearms == [1]
    assert "src" not in control._outstanding


def test_replan_exclusion_is_cumulative_across_failures():
    """After two failed destinations the planner must not bounce the VM
    back to the first dead end (the old exclude carried only the latest
    failure)."""
    world = planner_world()
    dispatched = []
    planner = MigrationPlanner(world, dispatch=dispatched.append,
                               exclude_hosts=("vmdx",))
    planner.request("vm0", "src")
    plan = dispatched[0]
    assert plan.dst == "b1"
    first = planner.replan(plan, exclude=frozenset({"b1"}))
    assert first is not None and first.dst == "b0"
    assert first.tried == ("b1",)
    # second failure: only {b0} passed in, but b1 must stay excluded
    second = planner.replan(first, exclude=frozenset({"b0"}))
    assert second is not None and second.dst == "peer"
    assert second.tried == ("b1", "b0")


def test_candidate_cache_invalidates_on_equal_size_host_set_change():
    world = planner_world()
    planner = MigrationPlanner(world, exclude_hosts=("vmdx",))
    assert planner.initial_placement(8 * MiB) == "b1"  # cache populated
    # equal-size change: one host leaves, another arrives
    del world.hosts["b1"]
    world.add_host("c0", 64 * MiB, host_os_bytes=1 * MiB, rack="rb")
    # a stale candidate list would KeyError on the departed b1
    assert planner.initial_placement(8 * MiB) == "c0"


def test_rack_load_counts_vms_on_hosts_outside_world_hosts():
    """Rack-load used to be counted through ``world.hosts`` members
    only, silently ignoring VMs on rack members the world does not
    model (donor-only or client hosts)."""
    world = planner_world()
    world.topology.assign("bx", "rb")  # rack member, not a world host
    world.add_vm("vmx", 8 * MiB, "bx", page_size=4096)
    planner = MigrationPlanner(world, exclude_hosts=("vmdx",))
    # rb now carries 2 VMs (vmf + the unmodeled vmx) vs ra's one, so the
    # spread term must prefer ra's peer despite b1's bigger free memory
    assert planner.initial_placement(8 * MiB) == "peer"


# -- churn control: reservation, projection, hysteresis, forecast ---------------

def test_reservation_charges_inflight_demand_against_destination():
    world = planner_world()
    aware = MigrationPlanner(world, config=PlannerConfig(),
                             exclude_hosts=("vmdx",))
    naive = MigrationPlanner(
        world, config=PlannerConfig(reserve_in_flight=False),
        exclude_hosts=("vmdx",))
    claim = MigrationPlan(seq=1, vm="vmz", src="src", dst="b1",
                          score=1.0, demand_bytes=120 * MiB, at=0.0)
    for planner in (aware, naive):
        planner._add_active(claim)
        assert planner.reserved_on("b1") == 120 * MiB
    # b1 has 127 MiB usable; the 120 MiB claim leaves no room for 8 more
    assert aware.score_destination("vm0", "src", "b1") is None
    assert naive.score_destination("vm0", "src", "b1") is not None
    aware._remove_active("vmz")
    assert aware.reserved_on("b1") == 0.0
    assert aware.score_destination("vm0", "src", "b1") is not None


def test_projection_rejects_destination_that_would_cross_watermark():
    world = planner_world()
    planner = MigrationPlanner(
        world, config=PlannerConfig(project_watermark=0.5),
        exclude_hosts=("vmdx",))
    # b0: 16 MiB used of 63 usable; +16 MiB would hit 32 > 0.5 * 63
    assert planner.score_destination("vm0", "src", "b0",
                                     demand=16 * MiB) is None
    assert planner.score_destination("vm0", "src", "b1",
                                     demand=16 * MiB) is not None
    # initial placement applies the same projection
    constrained = MigrationPlanner(
        world, config=PlannerConfig(project_watermark=0.1),
        exclude_hosts=("vmdx",))
    assert constrained.initial_placement(32 * MiB) is None


def test_move_cooldown_defers_resheds_of_a_just_landed_vm():
    world = planner_world()
    dispatched = []
    planner = MigrationPlanner(
        world, config=PlannerConfig(move_cooldown_s=5.0),
        dispatch=dispatched.append, exclude_hosts=("vmdx",))
    assert planner.request("vm0", "src") is True
    planner.on_plan_done(dispatched[0], "completed")  # lands at t=0
    # re-shedding the just-landed VM is refused (and counted), so the
    # alerting trigger stays armed instead of losing the crossing
    assert planner.request("vm0", "b1") is False
    assert planner.deferrals == {"move-cooldown": 1}
    assert any(line.startswith("defer vm0: move-cooldown")
               for line in planner.log)
    world.sim.run(until=6.0)
    assert planner.request("vm0", "b1") is True  # cooldown expired


def test_min_gain_keeps_vm_when_no_destination_is_decisively_better():
    world = planner_world()
    dispatched = []
    planner = MigrationPlanner(
        world, config=PlannerConfig(min_gain=10.0),  # nothing clears it
        dispatch=dispatched.append, exclude_hosts=("vmdx",))
    assert planner.request("vm0", "src") is True  # accepted: stays queued
    assert dispatched == []
    assert [r.vm for r in planner.queue] == ["vm0"]
    assert planner.deferrals == {"insufficient-gain": 1}
    # replanning a failing destination ignores min_gain: any eligible
    # escape beats staying on a destination that is aborting the VM
    planner.config = PlannerConfig()  # admit it first
    planner.pump()
    plan = dispatched[0]
    planner.config = PlannerConfig(min_gain=10.0)
    assert planner.replan(plan, exclude=frozenset()) is not None


def test_usage_feed_drives_the_pressure_forecast():
    world = planner_world()
    planner = MigrationPlanner(
        world, config=PlannerConfig(forecast_alpha=1.0,
                                    forecast_horizon_s=5.0),
        exclude_hosts=("vmdx",))
    world.subscribe_usage(planner.observe_usage)
    world.start_usage_feed(interval_s=1.0)
    world.start_usage_feed(interval_s=0.5)  # idempotent: keeps 1.0 Hz
    world.run(until=2.5)  # samples at t=1, t=2
    # recorder carries the per-host series the forecast feeds from
    series = world.recorder.series("host.b0.used_bytes")
    assert len(series.t) == 2
    mem = world.hosts["b0"].memory
    # flat usage: the forecast never dips below the instantaneous sample
    assert planner._usage_estimate("b0", mem) == \
        mem.total_resident_bytes()
    # a rising trend projects above the instantaneous sample
    planner.observe_usage("b0", 3.0, mem.total_resident_bytes() + 8 * MiB)
    assert planner._usage_estimate("b0", mem) > \
        mem.total_resident_bytes() + 8 * MiB


def test_trigger_rearm_delay_quiets_the_post_landing_transient():
    from repro.core.trigger import WatermarkConfig, WatermarkTrigger
    from repro.sim.kernel import Simulator
    sim = Simulator()
    fired = []
    trigger = WatermarkTrigger(
        sim, usable_bytes=100.0,
        wss_of=lambda: {"vm0": 95.0},
        migrate=lambda names: fired.append(sim.now) or True,
        config=WatermarkConfig(high_watermark=0.9, low_watermark=0.5,
                               check_interval_s=1.0, rearm_delay_s=2.5))
    sim.run(until=1.5)
    assert fired == [1.0]
    trigger.rearm()  # at t=1.5 → quiet until 4.0
    sim.run(until=3.5)
    assert fired == [1.0]  # checks at 2.0 and 3.0 stayed quiet
    sim.run(until=4.5)
    assert fired == [1.0, 4.0]
    trigger.stop()


def test_churn_scenario_aware_beats_naive_and_stays_deterministic(
        tmp_path):
    from repro.obs.export import trace_to_jsonl
    from repro.obs.tracer import Tracer
    naive = churn_run(churn_aware=False, until=20.0)
    aware, traces = [], []
    for i in range(2):
        tracer = Tracer()
        aware.append(churn_run(churn_aware=True, until=20.0,
                               tracer=tracer))
        tracer.finish()
        path = tmp_path / f"churn{i}.jsonl"
        trace_to_jsonl(tracer, str(path))
        traces.append(path.read_bytes())
    assert aware[0]["migrations"] < naive["migrations"]
    assert aware[0]["resheds"] == []
    assert naive["resheds"] != []
    # same seed → byte-identical decision log AND trace, with the
    # reservation / projection / cooldown / forecast paths all enabled
    assert aware[0]["plan_log"] == aware[1]["plan_log"]
    assert traces[0] == traces[1]


# -- boot-reservation ledger (boots and migrations share one headroom) ----------

def test_boot_reservation_blocks_migration_overcommit():
    """A boot admitted during its boot delay must be visible to
    migration admission: without the ledger, a migration planned in
    that window lands on memory the boot is about to claim."""
    world = planner_world()
    dispatched = []
    planner = MigrationPlanner(world, dispatch=dispatched.append,
                               exclude_hosts=("vmdx",))
    # normally the empty big host b1 wins on headroom
    assert planner.initial_placement(8 * MiB) == "b1"
    # a boot claims almost all of b1 (placed, not yet resident)
    planner.reserve_boot("b1", 124 * MiB)
    assert planner.reserved_on("b1") == 124 * MiB
    # migration admission now routes around the pending boot
    planner.request("vm0", "src")
    assert len(dispatched) == 1
    assert dispatched[0].dst != "b1"
    # and so does the next boot placement
    assert planner.initial_placement(64 * MiB) != "b1"
    # the boot completing (pages resident) releases the claim exactly
    planner.release_boot("b1", 124 * MiB)
    assert planner.reserved_on("b1") == 0.0
    assert planner.initial_placement(64 * MiB) == "b1"


def test_initial_placement_reserve_charges_the_ledger():
    world = planner_world()
    planner = MigrationPlanner(world, exclude_hosts=("vmdx",))
    host = planner.initial_placement(100 * MiB, reserve=True)
    assert host == "b1"
    assert planner.reserved_on("b1") == 100 * MiB
    # the reservation steers the *next* boot elsewhere
    assert planner.initial_placement(100 * MiB, reserve=True) is None
    assert planner.initial_placement(8 * MiB, reserve=True) != "b1"
    planner.release_boot("b1", 100 * MiB)


def test_place_new_vm_reserve_flows_through_control_plane():
    world = planner_world()
    world.attach_faults(FaultSchedule())
    control = ClusterControlPlane(world, exclude_hosts=("vmdx",))
    host = control.place_new_vm(100 * MiB, reserve=True)
    assert host == "b1"
    assert control.planner.reserved_on("b1") == 100 * MiB
    # unreserved call keeps the legacy advisory behavior
    assert control.place_new_vm(8 * MiB) is not None
    assert control.planner.reserved_on("b1") == 100 * MiB


def test_planner_direct_respects_ledger_caps_and_credit():
    world = planner_world()
    dispatched = []
    planner = MigrationPlanner(world, dispatch=dispatched.append,
                               exclude_hosts=("vmdx",),
                               config=PlannerConfig(max_per_host=2))
    # basic admission: caller-chosen destination dispatches immediately
    plan = planner.direct("vm0", "src", "b0")
    assert plan is not None and plan.dst == "b0"
    assert [p.vm for p in dispatched] == ["vm0"]
    # duplicates are refused while the plan is active
    assert planner.direct("vm0", "src", "b1") is None
    # a boot reservation can make a destination inadmissible...
    planner.reserve_boot("b1", 124 * MiB)
    assert planner.direct("vmf", "b0", "b1") is None
    # ...unless the caller credits bytes about to leave (swap half)
    plan2 = planner.direct("vmf", "b0", "b1", credit_bytes=64 * MiB)
    assert plan2 is not None and plan2.dst == "b1"
    # nonsense destinations are refused outright
    assert planner.direct("vm0", "src", "src") is None
    assert planner.direct("vm0", "src", "nope") is None


def test_planner_cancel_drops_queued_requests_only():
    world = planner_world()
    dispatched = []
    planner = MigrationPlanner(world, dispatch=dispatched.append,
                               exclude_hosts=("vmdx",))
    planner.request("vm0", "src")   # dispatches immediately (active)
    assert "vm0" in planner.active
    # the source is now at max_per_host=1, so a second request from it
    # stays queued — the departed-VM case cancel() exists for
    planner.request("vmf", "src")
    assert [r.vm for r in planner.queue] == ["vmf"]
    assert planner.cancel("vmf") is True
    assert planner.queue == []
    # cancel never touches active plans or unknown VMs
    assert planner.cancel("vm0") is False
    assert "vm0" in planner.active
    assert planner.cancel("no-such-vm") is False
