"""Tests for the PendingScan budgeted bitmap walk."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.base import PendingScan


def mask(n, idx):
    m = np.zeros(n, dtype=bool)
    m[list(idx)] = True
    return m


def test_empty_scan_exhausted():
    s = PendingScan(np.zeros(10, dtype=bool))
    assert s.exhausted()
    assert s.remaining == 0
    res, swp = s.take(5, 5, np.zeros(10, dtype=bool))
    assert res.size == 0 and swp.size == 0


def test_take_in_page_order():
    s = PendingScan(mask(10, [1, 3, 5, 7]))
    res, swp = s.take(2, 0, np.zeros(10, dtype=bool))
    assert res.tolist() == [1, 3]
    res, swp = s.take(10, 0, np.zeros(10, dtype=bool))
    assert res.tolist() == [5, 7]
    assert s.exhausted()


def test_swapped_pages_cost_device_budget():
    swapped = mask(10, [2, 3])
    s = PendingScan(mask(10, [1, 2, 3, 4]))
    res, swp = s.take(10, 1, swapped)
    # takes 1 (resident), 2 (swapped, device=1)... then stalls at 3
    assert res.tolist() == [1]
    assert swp.tolist() == [2]
    assert s.remaining == 2


def test_scan_stalls_at_swapped_page_without_device_budget():
    """Strict ordering: resident pages behind a swapped page must wait."""
    swapped = mask(10, [1])
    s = PendingScan(mask(10, [1, 2, 3]))
    res, swp = s.take(10, 0, swapped)
    assert res.size == 0 and swp.size == 0
    assert s.remaining == 3


def test_free_swapped_skips_device_budget():
    swapped = mask(10, [1, 2])
    s = PendingScan(mask(10, [1, 2, 3]))
    res, swp = s.take(10, 0, swapped, free_swapped=True)
    assert swp.tolist() == [1, 2]
    assert res.tolist() == [3]
    assert s.exhausted()


def test_remove_skips_demand_fetched_pages():
    s = PendingScan(mask(10, [1, 2, 3]))
    s.remove(np.array([2]))
    assert s.remaining == 2
    res, _ = s.take(10, 10, np.zeros(10, dtype=bool))
    assert res.tolist() == [1, 3]


def test_remove_all_exhausts():
    s = PendingScan(mask(10, [1, 2]))
    s.remove(np.array([1, 2]))
    assert s.exhausted()


def test_peek_swapped_fraction():
    swapped = mask(10, [0, 1])
    s = PendingScan(mask(10, [0, 1, 2, 3]))
    assert s.peek_swapped_fraction(swapped) == 0.5
    s.take(2, 2, swapped)
    assert s.peek_swapped_fraction(swapped) == 0.0


def test_peek_on_empty_scan():
    s = PendingScan(np.zeros(4, dtype=bool))
    assert s.peek_swapped_fraction(np.zeros(4, dtype=bool)) == 0.0


def test_state_reevaluated_at_take_time():
    """A page evicted after scan creation is treated as swapped."""
    swapped = np.zeros(10, dtype=bool)
    s = PendingScan(mask(10, [1, 2]))
    swapped[1] = True  # page 1 evicted mid-round
    res, swp = s.take(10, 10, swapped)
    assert swp.tolist() == [1]
    assert res.tolist() == [2]


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=200),
       st.data())
def test_scan_covers_everything_exactly_once(n, data):
    """Property: repeated takes deliver each pending page exactly once."""
    pending_idx = data.draw(st.sets(st.integers(0, n - 1)))
    swapped_idx = data.draw(st.sets(st.integers(0, n - 1)))
    pending = mask(n, pending_idx)
    swapped = mask(n, swapped_idx)
    s = PendingScan(pending)
    seen = []
    for _ in range(10 * n + 10):
        if s.exhausted():
            break
        res, swp = s.take(7, 3, swapped)
        seen.extend(res.tolist())
        seen.extend(swp.tolist())
    assert s.exhausted()
    assert sorted(seen) == sorted(pending_idx)
    assert len(set(seen)) == len(seen)
