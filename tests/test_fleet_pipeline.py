"""repro.fleet placement pipeline: each filter and weigher in
isolation, composition semantics, and filter-order independence."""

from itertools import permutations

import pytest

from repro.fleet import (
    AntiAffinityFilter,
    AvailabilityFilter,
    CongestionWeigher,
    HeadroomFilter,
    HeadroomWeigher,
    HealthFilter,
    PlacementPipeline,
    RackSpreadWeigher,
    VmSpec,
    WatermarkFilter,
)
from repro.fleet.hostview import HostState
from repro.util import MiB


def state(name="h0", **kw):
    defaults = dict(rack="r0", usable_bytes=64 * MiB,
                    resident_bytes=16 * MiB, reserved_bytes=0.0,
                    health="UP", inflight=0, draining=False,
                    retired=False, vms=(), tenants={}, rack_load=0)
    defaults.update(kw)
    return HostState(name=name, **defaults)


def spec(name="vm0", tenant="t0", memory=8 * MiB, workload="kv"):
    return VmSpec(name=name, tenant=tenant, memory_bytes=memory,
                  workload=workload, arrival_s=0.0, lifetime_s=10.0)


# -- host-state derived quantities ----------------------------------------------

def test_host_state_headroom_charges_reservations():
    s = state(resident_bytes=16 * MiB, reserved_bytes=8 * MiB)
    assert s.free_bytes == 40 * MiB
    assert s.usage_fraction == pytest.approx(24 / 64)
    assert state(usable_bytes=0.0).usage_fraction == 1.0


# -- filters in isolation -------------------------------------------------------

def test_availability_filter():
    f = AvailabilityFilter()
    assert f.passes(state(), spec())
    assert not f.passes(state(draining=True), spec())
    assert not f.passes(state(retired=True), spec())


def test_health_filter():
    f = HealthFilter(allowed=("UP",))
    assert f.passes(state(health="UP"), spec())
    assert not f.passes(state(health="DOWN"), spec())
    assert not f.passes(state(health="DEGRADED"), spec())
    lax = HealthFilter(allowed=("UP", "DEGRADED"))
    assert lax.passes(state(health="DEGRADED"), spec())


def test_headroom_filter_counts_reservations():
    f = HeadroomFilter(min_headroom_bytes=4 * MiB)
    ok = state(resident_bytes=16 * MiB)          # free 48
    assert f.passes(ok, spec(memory=44 * MiB))   # 48 - 44 == 4
    assert not f.passes(ok, spec(memory=45 * MiB))
    # in-flight reservations eat the same headroom
    busy = state(resident_bytes=16 * MiB, reserved_bytes=8 * MiB)
    assert not f.passes(busy, spec(memory=44 * MiB))


def test_watermark_filter_projects_usage():
    f = WatermarkFilter(fraction=0.75)           # cap 48 MiB of 64
    s = state(resident_bytes=24 * MiB, reserved_bytes=8 * MiB)
    assert f.passes(s, spec(memory=16 * MiB))    # 24+8+16 == 48
    assert not f.passes(s, spec(memory=17 * MiB))
    assert not f.passes(state(usable_bytes=0.0), spec())
    with pytest.raises(ValueError):
        WatermarkFilter(fraction=0.0)


def test_anti_affinity_filter_caps_tenant_per_host():
    f = AntiAffinityFilter(max_per_host=2)
    assert f.passes(state(tenants={"t0": 1}), spec(tenant="t0"))
    assert not f.passes(state(tenants={"t0": 2}), spec(tenant="t0"))
    # other tenants' VMs are invisible to the cap
    assert f.passes(state(tenants={"t1": 5}), spec(tenant="t0"))
    with pytest.raises(ValueError):
        AntiAffinityFilter(max_per_host=0)


# -- weighers in isolation ------------------------------------------------------

def test_headroom_weigher_normalizes_by_usable():
    w = HeadroomWeigher()
    s = state(resident_bytes=16 * MiB)           # free 48 of 64
    assert w.weigh(s, spec(memory=16 * MiB)) == pytest.approx(0.5)
    assert w.weigh(state(usable_bytes=0.0), spec()) == 0.0


def test_rack_spread_and_congestion_weighers():
    assert RackSpreadWeigher().weigh(state(rack_load=3), spec()) == -3.0
    assert CongestionWeigher().weigh(state(inflight=2), spec()) == -2.0
    # the multiplier scales (and can invert) a preference
    assert RackSpreadWeigher(multiplier=-1.0).multiplier == -1.0


# -- composition ----------------------------------------------------------------

def _fleet_states():
    return [
        state("h0", resident_bytes=40 * MiB),                   # fullest
        state("h1", resident_bytes=16 * MiB, rack="r1"),
        state("h2", resident_bytes=16 * MiB, rack="r1"),        # tie w/ h1
        state("h3", resident_bytes=8 * MiB, health="DOWN"),     # best free
        state("h4", resident_bytes=8 * MiB, draining=True),
    ]


def _filters():
    return [AvailabilityFilter(), HealthFilter(),
            HeadroomFilter(2 * MiB), WatermarkFilter(0.9),
            AntiAffinityFilter(2)]


def test_pipeline_picks_best_survivor_with_lexicographic_ties():
    pipe = PlacementPipeline(_filters(), [HeadroomWeigher()])
    decision = pipe.select(_fleet_states(), spec())
    # h3 (down) and h4 (draining) are filtered despite better headroom;
    # h1 and h2 tie on score and the name breaks the tie
    assert decision.host == "h1"
    assert decision.reason == "ok"
    assert decision.scores["h1"] == decision.scores["h2"]
    assert decision.rejected["health"] == 1
    assert decision.rejected["available"] == 1


def test_pipeline_no_valid_host_reports_reject_counts():
    pipe = PlacementPipeline(_filters(), [HeadroomWeigher()])
    decision = pipe.select(_fleet_states(), spec(memory=60 * MiB))
    assert decision.host is None
    assert decision.reason == "no-valid-host"
    # every live host failed headroom; dead/draining fail their own too
    assert decision.rejected["headroom"] >= 3


def test_pipeline_weighers_compose_additively():
    states = [state("h1", resident_bytes=16 * MiB, inflight=0),
              state("h2", resident_bytes=8 * MiB, inflight=2)]
    headroom_only = PlacementPipeline(_filters(), [HeadroomWeigher()])
    assert headroom_only.select(states, spec()).host == "h2"
    # a strong congestion penalty flips the decision
    congested = PlacementPipeline(
        _filters(), [HeadroomWeigher(), CongestionWeigher(1.0)])
    assert congested.select(states, spec()).host == "h1"


def test_filter_order_independence():
    """Filters are pure predicates over (host, spec): any ordering must
    produce the same decision AND the same per-filter reject counts."""
    states = _fleet_states()
    request = spec(memory=24 * MiB)
    baseline = None
    for ordering in permutations(_filters()):
        pipe = PlacementPipeline(list(ordering),
                                 [HeadroomWeigher(),
                                  RackSpreadWeigher(0.01)])
        decision = pipe.select(states, request)
        key = (decision.host, decision.reason,
               dict(decision.rejected), dict(decision.scores))
        if baseline is None:
            baseline = key
        else:
            assert key == baseline
