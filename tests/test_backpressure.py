"""Tests for the swap-path rate controls added for fidelity:

* per-VM synchronous swap-in ceiling (``WorkloadParams.max_swapin_bps``);
* migration-thread swap-read ceiling (``MigrationConfig.max_swapin_bps``);
* writeback-debt fault throttling in the host memory manager;
* cold-tail preloading (allocated-but-idle guest pages).
"""

import numpy as np
import pytest

from repro.cluster import World, preload_dataset
from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.core.base import MigrationConfig
from repro.util import GiB, KiB, MiB
from repro.workloads import KeyValueWorkload, ycsb_redis_params

PAGE = 4096


def thrash_world(max_swapin_bps=None, seed=1):
    w = World(dt=0.5, seed=seed, net_bandwidth_bps=100e6)
    w.add_host("h1", 64 * MiB, host_os_bytes=4 * MiB)
    w.add_client_host()
    vm = w.add_vm("vm1", 48 * MiB, "h1")
    dev = w.add_ssd("ssd", read_bps=50e6, write_bps=30e6)
    w.hosts["h1"].place_vm(vm, 8 * MiB, dev)
    preload_dataset(vm, w.manager_of("h1"), 32 * MiB)
    params = ycsb_redis_params(max_swapin_bps=max_swapin_bps, readahead=1.0)
    wl = KeyValueWorkload(vm, w.network, "client", w.manager_of, w.recorder,
                          w.rng("wl"), dataset_bytes=32 * MiB, params=params,
                          sim_now=lambda: w.sim.now)
    w.add_workload(wl)
    return w, vm, wl


def test_swapin_ceiling_caps_fault_rate():
    w_uncapped, _, _ = thrash_world(max_swapin_bps=None)
    w_uncapped.run(until=30.0)
    uncapped = (w_uncapped.manager_of("h1").binding("vm1")
                .cgroup.swap_in_bytes_total / 30.0)
    w_capped, _, _ = thrash_world(max_swapin_bps=1e6)
    w_capped.run(until=30.0)
    capped = (w_capped.manager_of("h1").binding("vm1")
              .cgroup.swap_in_bytes_total / 30.0)
    assert capped <= 1.1e6
    assert uncapped > 3 * capped


def test_writeback_debt_throttles_faults():
    w, vm, wl = thrash_world()
    mm = w.manager_of("h1")
    mm.writeback_debt_cap = 1 * MiB
    binding = mm.binding("vm1")
    binding.writeback_backlog = 10 * MiB  # simulated reclaim storm
    binding.fault_queue.demand = 8 * MiB
    mm.pre_tick(0.5)
    # demand scaled by cap/backlog = 1/10
    assert binding.fault_queue.demand == pytest.approx(0.8 * MiB)


def test_no_throttle_below_debt_cap():
    w, vm, wl = thrash_world()
    mm = w.manager_of("h1")
    binding = mm.binding("vm1")
    binding.writeback_backlog = 1 * MiB  # below the 64 MiB default cap
    binding.fault_queue.demand = 8 * MiB
    mm.pre_tick(0.5)
    assert binding.fault_queue.demand == pytest.approx(8 * MiB)


def test_migration_swapin_cap_slows_swapped_transfer():
    def run(cap):
        cfg = TestbedConfig(
            dt=0.1, seed=0, page_size=PAGE, net_bandwidth_bps=50e6,
            ssd_read_bps=50e6, ssd_write_bps=30e6,
            ssd_capacity_bytes=1 * GiB, vmd_server_bytes=1 * GiB,
            host_os_bytes=1 * MiB,
            migration=MigrationConfig(backlog_cap_bytes=8 * MiB,
                                      max_swapin_bps=cap))
        lab = make_single_vm_lab("pre-copy", 64 * MiB, busy=False,
                                 host_memory_bytes=64 * MiB,
                                 reservation_bytes=16 * MiB, config=cfg)
        lab.run_until_migrated(start=2.0, limit=600.0)
        return lab.report.total_time

    slow = run(2e6)     # 48 MiB of swapped pages at 2 MB/s
    fast = run(None)    # device-limited instead
    assert slow > 2 * fast


def test_cold_tail_preload_allocates_swapped_pages():
    w = World(dt=0.5, seed=0)
    w.add_host("h1", 64 * MiB, host_os_bytes=4 * MiB)
    vm = w.add_vm("vm1", 48 * MiB, "h1")
    dev = w.add_ssd("ssd")
    w.hosts["h1"].place_vm(vm, 16 * MiB, dev)
    preload_dataset(vm, w.manager_of("h1"), 24 * MiB,
                    cold_tail_bytes=16 * MiB)
    pages = vm.pages
    n_data = 24 * MiB // PAGE
    n_cold = 16 * MiB // PAGE
    # dataset: reservation-worth resident at its end, head swapped
    assert pages.resident_bytes() == 16 * MiB
    assert np.all(pages.swapped[n_data:n_data + n_cold])
    assert pages.allocated_pages() == n_data + n_cold
    # swap space accounted for everything swapped
    assert dev.used_bytes == pages.swapped_bytes()


def test_cold_tail_must_fit():
    w = World(dt=0.5, seed=0)
    w.add_host("h1", 64 * MiB, host_os_bytes=4 * MiB)
    vm = w.add_vm("vm1", 16 * MiB, "h1")
    dev = w.add_ssd("ssd")
    w.hosts["h1"].place_vm(vm, 16 * MiB, dev)
    with pytest.raises(ValueError):
        preload_dataset(vm, w.manager_of("h1"), 12 * MiB,
                        cold_tail_bytes=8 * MiB)
