"""repro.clone: snapshot capture, post-copy fork hydration, CoW
isolation, leak-free teardown, and the donor/host fault matrix."""

import numpy as np
import pytest

from repro.clone import CloneConfig, CloneManager
from repro.cluster.setup import preload_dataset
from repro.cluster.world import World
from repro.faults import FaultKind, FaultSchedule, FaultSpec
from repro.util import MiB

PARENT_BYTES = 8 * MiB


def build(replication=1, schedule=None, tracer=None, vmd_servers=2,
          **clone_overrides):
    """A 3-host world with a preloaded parent VM ready to clone."""
    world = World(dt=0.1, net_bandwidth_bps=40e6, tracer=tracer)
    for i in range(3):
        world.add_host(f"h{i}", 64 * MiB, host_os_bytes=1 * MiB)
    world.add_vmd([(f"vmd{k}", 256 * MiB) for k in range(vmd_servers)],
                  placement_chunk_bytes=1 * MiB)
    world.attach_faults(schedule if schedule is not None
                        else FaultSchedule())
    parent = world.add_vm("parent", PARENT_BYTES, "h0")
    ns = world.vmd.create_namespace("parent")
    world.hosts["h0"].place_vm(parent, PARENT_BYTES, ns)
    preload_dataset(parent, world.manager_of("h0"), PARENT_BYTES)
    manager = CloneManager(world, config=CloneConfig(
        replication=replication, **clone_overrides))
    return world, manager


def engine_load(world):
    """(participants, arbiters) counts — the leak meter."""
    return (len(world.engine._participants),
            len(world.engine._arbiters))


# -- snapshot capture ---------------------------------------------------------

def test_instant_snapshot_stages_the_whole_template():
    world, mgr = build()
    image = mgr.snapshot("parent", instant=True)
    assert image.ready
    assert image.template_bytes == pytest.approx(PARENT_BYTES)
    assert np.array_equal(image.staged, image.template)
    # the staged bytes actually live on the VMD
    assert image.namespace.used_bytes == pytest.approx(PARENT_BYTES)
    # idempotent while the image is usable
    assert mgr.snapshot("parent") is image
    assert mgr.counters["snapshots"] == 1


def test_streamed_snapshot_scatters_and_reports_ready():
    world, mgr = build()
    image = mgr.snapshot("parent")
    assert not image.ready
    world.run(until=10.0)
    assert image.ready
    assert image.scatter_bytes == pytest.approx(PARENT_BYTES)
    assert image.namespace.used_bytes == pytest.approx(PARENT_BYTES)
    assert any(line.startswith(f"image-ready {image.name}")
               for line in mgr.log)
    # the snapshotter removed itself from the engine
    assert image.snapshotter is None


def test_snapshot_of_terminated_parent_is_rejected():
    world, mgr = build()
    world.vms["parent"].terminate()
    with pytest.raises(RuntimeError):
        mgr.snapshot("parent")


# -- fork + hydration ---------------------------------------------------------

def test_replica_serves_after_hot_set_then_fully_hydrates():
    world, mgr = build()
    image = mgr.snapshot("parent", instant=True)
    rep = mgr.boot_replica("c0", "h1", image)
    assert mgr.counters["forks"] == 1
    world.run(until=1.0)
    r = rep.report
    assert r.serving_time is not None
    # serving needed only the hot head, not the full image
    assert r.demand_bytes < PARENT_BYTES / 2
    world.run(until=30.0)
    assert r.done_time is not None
    pages = world.vms["c0"].pages
    pages.check_invariants()
    assert pages.swapped_pages() == 0
    # byte conservation: demand + gather covered the whole template
    assert r.demand_bytes + r.gather_bytes \
        >= image.template_bytes - r.cow_bytes


def test_fork_races_a_streaming_snapshot_via_parent_umem():
    """Replicas forked mid-stream demand-fetch un-staged hot pages from
    the live parent instead of waiting for the scatter to finish."""
    world, mgr = build()
    image = mgr.snapshot("parent")          # streaming, not ready
    rep = mgr.boot_replica("c0", "h1", image)
    assert rep.fetcher.umem is not None
    world.run(until=2.0)
    r = rep.report
    assert r.serving_time is not None
    assert r.parent_demand_bytes > 0        # the umem leg actually ran
    world.run(until=30.0)
    assert rep.fetcher.umem is None         # closed once nothing is owed
    assert r.done_time is not None


def test_incomplete_image_with_dead_parent_cannot_fork():
    world, mgr = build()
    image = mgr.snapshot("parent")          # streaming
    world.vms["parent"].terminate()
    with pytest.raises(RuntimeError):
        mgr.boot_replica("c0", "h1", image)


# -- CoW semantics ------------------------------------------------------------

def test_cow_privatizes_dirty_pages_into_the_overlay():
    world, mgr = build(dirty_fraction=0.25)
    image = mgr.snapshot("parent", instant=True)
    rep = mgr.boot_replica("c0", "h1", image)
    world.run(until=30.0)
    r = rep.report
    assert r.cow_bytes > 0
    # privatized bytes landed in the replica's overlay, not the image
    assert rep.overlay.used_bytes > 0
    assert image.namespace.used_bytes == pytest.approx(PARENT_BYTES)


def test_sibling_teardown_never_corrupts_the_shared_image():
    world, mgr = build(dirty_fraction=0.25)
    image = mgr.snapshot("parent", instant=True)
    mgr.boot_replica("c0", "h1", image)
    c1 = mgr.boot_replica("c1", "h2", image)
    world.run(until=5.0)
    mgr.release_replica("c0")               # one sibling leaves early
    assert "c0" not in world.vms
    # the shared image is untouched; the survivor finishes hydrating
    assert image.namespace.used_bytes == pytest.approx(PARENT_BYTES)
    world.run(until=40.0)
    assert c1.report.done_time is not None
    pages = world.vms["c1"].pages
    pages.check_invariants()
    assert pages.swapped_pages() == 0


# -- leak-free teardown (acceptance criterion) --------------------------------

def test_clone_storm_teardown_restores_pre_clone_state():
    world, mgr = build(dirty_fraction=0.1)
    vmd = world.vmd
    base_used = sum(ns.used_bytes for ns in vmd.namespaces.values())
    base_load = engine_load(world)
    base_namespaces = set(vmd.namespaces)

    image = mgr.snapshot("parent", instant=True)
    names = [f"c{i}" for i in range(4)]
    for i, name in enumerate(names):
        mgr.boot_replica(name, f"h{1 + i % 2}", image)
    world.run(until=5.0)
    # release in arbitrary (non-boot) order, image ref dropped mid-way
    for name in (names[2], names[0]):
        mgr.release_replica(name)
    mgr.drop_image("parent")
    for name in (names[3], names[1]):
        mgr.release_replica(name)
    world.run(until=6.0)

    assert not mgr.replicas
    assert set(vmd.namespaces) == base_namespaces
    assert sum(ns.used_bytes for ns in vmd.namespaces.values()) \
        == pytest.approx(base_used)
    assert engine_load(world) == base_load
    # planner-free world: no reservations to leak; hosts hold only the
    # parent's memory again
    for name in names:
        assert name not in world.vms
        for host in world.hosts.values():
            assert not host.memory.has_vm(name)
    assert mgr.counters["released"] == 4


# -- fault matrix -------------------------------------------------------------

def test_host_crash_fails_only_the_replicas_on_it():
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "h1", at=1.0)])
    world, mgr = build(schedule=schedule)
    image = mgr.snapshot("parent", instant=True)
    a = mgr.boot_replica("ca", "h1", image)
    b = mgr.boot_replica("cb", "h2", image)
    world.run(until=30.0)
    assert a.report.failed
    assert a.report.failure_reason == "host-crash"
    assert "ca" not in mgr.replicas
    assert not b.report.failed
    assert b.report.done_time is not None


def test_single_copy_donor_loss_fails_only_dependent_replicas():
    """A content-losing donor crash mid-clone kills exactly the
    replicas that still needed the image — a hydrated sibling and the
    cluster itself carry on."""
    schedule = FaultSchedule([FaultSpec(
        FaultKind.VMD_CRASH, "vmd0", at=3.0, lose_contents=True)])
    world, mgr = build(schedule=schedule, gather_bps=16e6,
                       dirty_fraction=0.0)
    image = mgr.snapshot("parent", instant=True)
    fast = mgr.boot_replica("cfast", "h1", image)
    world.run(until=2.9)
    assert fast.report.done_time is not None    # fully hydrated early
    slow = mgr.boot_replica("cslow", "h2", image)
    world.run(until=10.0)
    assert slow.report.failed
    assert slow.report.failure_reason == "image-data-lost"
    assert not fast.report.failed
    assert world.vms["cfast"].is_running
    # the dead image was retired: a later fork gets a fresh capture
    assert mgr.image_for("parent") is None


def test_replicated_image_survives_donor_loss_and_reprotects():
    schedule = FaultSchedule([FaultSpec(
        FaultKind.VMD_CRASH, "vmd0", at=2.0, lose_contents=True)])
    world, mgr = build(replication=2, schedule=schedule, vmd_servers=3)
    image = mgr.snapshot("parent", instant=True)
    rep = mgr.boot_replica("c0", "h1", image)
    world.run(until=2.05)
    ns = image.namespace
    assert not ns.data_lost
    pending = ns.repair_pending_bytes
    assert pending > 0
    # repair accounting is monotone-decreasing: no double-counting as
    # the background re-replication drains
    last = pending
    for t in (3.0, 5.0, 8.0, 30.0):
        world.run(until=t)
        now_pending = ns.repair_pending_bytes
        assert now_pending <= last + 1e-6
        last = now_pending
    assert ns.repair_pending_bytes == pytest.approx(0.0)
    assert not rep.report.failed
    assert rep.report.done_time is not None


def test_vmd_loss_with_tracer_emits_reprotect_without_crashing():
    """Regression: ``repair_pending_bytes`` is a property — the traced
    data-loss path must not call it."""
    from repro.obs import Tracer
    schedule = FaultSchedule([FaultSpec(
        FaultKind.VMD_CRASH, "vmd0", at=2.0, lose_contents=True)])
    tracer = Tracer()
    world, mgr = build(replication=2, schedule=schedule, tracer=tracer,
                       vmd_servers=3)
    image = mgr.snapshot("parent", instant=True)
    mgr.boot_replica("c0", "h1", image)
    world.run(until=5.0)
    names = {e.name for e in tracer.events}
    assert "reprotect" in names


def test_parent_host_crash_aborts_the_streaming_snapshot():
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "h0", at=0.15)])
    world, mgr = build(schedule=schedule)
    image = mgr.snapshot("parent")          # streaming from h0
    rep = mgr.boot_replica("c0", "h1", image)
    world.run(until=5.0)
    assert image.failed
    # the dependent replica could not finish hydrating without the
    # parent and was failed by the manager
    assert rep.report.failed
    assert rep.report.failure_reason == "snapshot-aborted"
    assert "parent" not in mgr.images
