"""Smoke tests for the experiments CLI (arg handling, no heavy runs)."""

import pytest

from repro.experiments.__main__ import main, sparkline
from repro.metrics import TimeSeries


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_help_exits_cleanly(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "tab2" in out


def test_sparkline_shape():
    ts = TimeSeries()
    for i in range(100):
        ts.append(float(i), float(i))
    line = sparkline(ts, 100.0, width=20)
    assert len(line) == 20
    # monotone series: the last block is the densest
    assert line[-1] == "@"


def test_runners_importable():
    from repro.experiments import pressure_run, single_vm_run, wss_run
    assert callable(pressure_run)
    assert callable(single_vm_run)
    assert callable(wss_run)
