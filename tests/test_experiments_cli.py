"""Smoke tests for the experiments CLI (arg handling, no heavy runs)."""

import pytest

from repro.experiments.__main__ import main, sparkline
from repro.metrics import TimeSeries


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_help_exits_cleanly(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "tab2" in out


def test_sparkline_shape():
    ts = TimeSeries()
    for i in range(100):
        ts.append(float(i), float(i))
    line = sparkline(ts, 100.0, width=20)
    assert len(line) == 20
    # monotone series: the last block is the densest
    assert line[-1] == "@"


def test_runners_importable():
    from repro.experiments import pressure_run, single_vm_run, wss_run
    assert callable(pressure_run)
    assert callable(single_vm_run)
    assert callable(wss_run)


def test_dc_quick_trace_chrome(tmp_path, capsys):
    import json

    from repro.obs.check import missing_categories, validate_chrome_trace
    out = tmp_path / "dc.json"
    assert main(["dc", "--quick", "--trace", str(out)]) == 0
    assert "trace:" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
    assert missing_categories(
        doc, ["migration", "phase", "planner", "fault", "vmd", "net"]) == []


def test_dc_quick_trace_jsonl(tmp_path):
    import json
    out = tmp_path / "dc.jsonl"
    assert main(["dc", "--quick", "--trace", str(out)]) == 0
    recs = [json.loads(line) for line in out.read_text().splitlines()]
    assert recs
    assert all({"t", "ph", "track", "name"} <= rec.keys() for rec in recs)


def test_trace_rejected_for_sweeps(tmp_path, capsys, monkeypatch):
    # the heavy run itself is stubbed out: only --trace handling matters
    import repro.experiments.__main__ as cli
    monkeypatch.setattr(cli, "cmd_table", lambda *a, **kw: None)
    out = tmp_path / "nope.json"
    assert cli.main(["tab2", "--trace", str(out)]) == 0
    assert "not supported" in capsys.readouterr().out
    assert not out.exists()


def test_fleet_quick_trace_chrome(tmp_path, capsys):
    import json

    from repro.obs.check import missing_categories, validate_chrome_trace
    out = tmp_path / "fleet.json"
    assert main(["fleet", "--quick", "--trace", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "fleet:" in stdout
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
    assert missing_categories(
        doc, ["fleet", "planner", "migration", "vmd"]) == []


def test_fleet_ablation_gate_passes(capsys):
    assert main(["fleet", "--ablate", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "gate ok" in out
    assert "greedy" in out and "swap" in out


def test_fleet_greedy_strategy_runs(capsys):
    assert main(["fleet", "--quick", "--strategy", "greedy"]) == 0
    assert "fleet:" in capsys.readouterr().out


def test_flashcrowd_quick_trace_chrome(tmp_path, capsys):
    import json

    from repro.obs.check import missing_categories, validate_chrome_trace
    out = tmp_path / "flashcrowd.json"
    assert main(["flashcrowd", "--quick", "--trace", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "clone:" in stdout and "serving" in stdout
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
    assert missing_categories(doc, ["clone", "fleet", "vmd"]) == []


def test_flashcrowd_ablation_gate_passes(capsys):
    assert main(["flashcrowd", "--ablate", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "gate ok" in out
    assert "clone" in out and "fullcopy" in out


def test_flashcrowd_json_export(tmp_path, capsys):
    import json
    out = tmp_path / "fc.json"
    assert main(["flashcrowd", "--quick", "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["provision"] == "clone"
    assert doc["time_to_n_serving"] is not None
    assert doc["counters"]["cloned"] > 0


def test_flashcrowd_fullcopy_arm_runs(capsys):
    assert main(["flashcrowd", "--quick", "--provision",
                 "fullcopy"]) == 0
    assert "fullcopy" in capsys.readouterr().out
