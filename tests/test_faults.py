"""Unit tests of the fault-injection engine: specs, schedules, injector
effects, the fault log, and timeline determinism."""

import numpy as np
import pytest

from repro.cluster.world import World
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultLog,
    FaultSchedule,
    FaultSpec,
)
from repro.util import MiB


# -- specs and schedules --------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.NIC_DOWN, "src", at=-1.0)
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.NIC_DOWN, "src", at=0.0, duration=0.0)
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.NIC_DEGRADED, "src", at=0.0, severity=0.0)
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.NIC_DOWN, "", at=0.0)
    spec = FaultSpec(FaultKind.NIC_DOWN, "src", at=1.0, duration=2.0)
    assert spec.recovery_at == 3.0


def test_schedule_sorted_and_stable():
    a = FaultSpec(FaultKind.NIC_DOWN, "b", at=5.0)
    b = FaultSpec(FaultKind.NIC_DOWN, "a", at=5.0)
    c = FaultSpec(FaultKind.SSD_DEGRADED, "ssd", at=1.0, severity=0.5)
    s1 = FaultSchedule([a, b, c])
    s2 = FaultSchedule([c, a, b])
    assert s1.specs == s2.specs
    assert s1.specs[0] is c           # time-ordered
    assert [s.target for s in s1.specs[1:]] == ["a", "b"]  # tie-broken


def test_random_schedule_deterministic():
    def build(seed):
        rng = np.random.default_rng(seed)
        return FaultSchedule.random(
            rng, 600.0, hosts=["src", "dst"], vmd_hosts=["vmdsrv0"],
            ssds=["ssd.src"], mean_interval_s=40.0)
    s1, s2 = build(7), build(7)
    assert s1.describe() == s2.describe()
    assert len(s1) > 0
    s3 = build(8)
    assert s3.describe() != s1.describe()


def test_random_schedule_needs_targets():
    with pytest.raises(ValueError):
        FaultSchedule.random(np.random.default_rng(0), 100.0)


# -- injector physical effects --------------------------------------------------

def small_world():
    w = World(dt=0.1, seed=0, net_bandwidth_bps=10e6)
    w.add_host("a", 64 * MiB, host_os_bytes=1 * MiB)
    w.add_host("b", 64 * MiB, host_os_bytes=1 * MiB)
    return w


def test_injector_validates_targets_eagerly():
    w = small_world()
    sched = FaultSchedule([FaultSpec(FaultKind.NIC_DOWN, "nope", at=1.0)])
    with pytest.raises(ValueError):
        w.attach_faults(sched)


def test_nic_down_and_recovery():
    w = small_world()
    sched = FaultSchedule(
        [FaultSpec(FaultKind.NIC_DOWN, "a", at=1.0, duration=2.0)])
    inj = w.attach_faults(sched)
    nic = w.network.nic("a")
    w.run(until=1.5)
    assert nic.tx.capacity_bps == 0.0 and nic.rx.capacity_bps == 0.0
    assert nic.tx.degraded
    w.run(until=3.5)
    assert nic.tx.capacity_bps == nic.tx.nominal_bps
    assert not nic.tx.degraded
    assert [e.action for e in inj.log.events] == ["inject", "revert"]
    assert inj.log.mttr() == pytest.approx(2.0)


def test_nic_degraded_scales_capacity():
    w = small_world()
    sched = FaultSchedule([FaultSpec(FaultKind.NIC_DEGRADED, "b", at=1.0,
                                     duration=1.0, severity=0.25)])
    w.attach_faults(sched)
    w.run(until=1.5)
    nic = w.network.nic("b")
    assert nic.tx.capacity_bps == pytest.approx(0.25 * nic.tx.nominal_bps)
    w.run(until=2.5)
    assert not nic.tx.degraded


def test_partition_blocks_flows_and_heals():
    w = small_world()
    sched = FaultSchedule(
        [FaultSpec(FaultKind.PARTITION, "a|b", at=1.0, duration=2.0)])
    w.attach_faults(sched)
    flow = w.network.open_flow("a", "b")
    w.run(until=0.5)
    assert w.network.reachable("a", "b")
    w.run(until=1.5)
    assert not w.network.reachable("a", "b")
    flow.demand = 1e6
    w.network.arbitrate(0.1)
    assert flow.granted == 0.0
    assert flow.demand == 0.0  # consumed, not accumulated
    w.run(until=3.5)
    assert w.network.reachable("a", "b")
    flow.demand = 1e5
    w.network.arbitrate(0.1)
    assert flow.granted == pytest.approx(1e5)


def test_host_crash_kills_vms_and_logs_outage():
    w = small_world()
    vm = w.add_vm("vm0", 4 * MiB, "a")
    sched = FaultSchedule([FaultSpec(FaultKind.HOST_CRASH, "a", at=1.0,
                                     duration=5.0)])
    inj = w.attach_faults(sched)
    w.run(until=2.0)
    assert not vm.is_running
    assert inj.log.unavailable_vms() == ["vm0"]
    # the NIC reboots at t=6; the VM does not come back
    w.run(until=7.0)
    assert not w.network.nic("a").tx.degraded
    assert not vm.is_running
    assert inj.log.vm_unavailable_seconds(11.0) == pytest.approx(10.0)


def test_ssd_degraded_throttles_grants():
    w = small_world()
    ssd = w.add_ssd("ssd.a", read_bps=10e6, write_bps=10e6)
    q = ssd.open_queue("q", "read")
    sched = FaultSchedule([FaultSpec(FaultKind.SSD_DEGRADED, "ssd.a",
                                     at=1.0, duration=1.0, severity=0.1)])
    w.attach_faults(sched)
    w.run(until=1.5)
    q.demand = 10e6
    ssd.arbitrate(1.0)
    assert q.granted == pytest.approx(1e6)
    w.run(until=2.5)
    q.demand = 10e6
    ssd.arbitrate(1.0)
    assert q.granted == pytest.approx(10e6)


def test_vmd_crash_and_recovery_roundtrip():
    w = small_world()
    vmd = w.add_vmd([("m0", 64 * MiB)])
    ns = vmd.create_namespace("vm0")
    ns.preload(8 * MiB)
    server = vmd.server_on("m0")
    sched = FaultSchedule([FaultSpec(FaultKind.VMD_CRASH, "m0", at=1.0,
                                     duration=2.0)])  # contents preserved
    w.attach_faults(sched)
    w.run(until=1.5)
    assert not server.alive
    assert not ns.data_lost  # unreachable, not destroyed
    w.run(until=3.5)
    assert server.alive
    assert ns.used_bytes == pytest.approx(8 * MiB)


def test_subscribers_see_inject_and_revert():
    w = small_world()
    seen = []
    sched = FaultSchedule(
        [FaultSpec(FaultKind.NIC_DOWN, "a", at=1.0, duration=1.0)])
    inj = w.attach_faults(sched)
    inj.subscribe(lambda spec, phase: seen.append((spec.kind, phase)))
    w.run(until=3.0)
    assert seen == [(FaultKind.NIC_DOWN, "inject"),
                    (FaultKind.NIC_DOWN, "revert")]


def test_attach_faults_twice_rejected():
    w = small_world()
    w.attach_faults(FaultSchedule())
    with pytest.raises(RuntimeError):
        w.attach_faults(FaultSchedule())


# -- fault log ------------------------------------------------------------------

def test_log_outage_accounting():
    log = FaultLog()
    log.mark_vm_unavailable("vm0", 10.0)
    log.mark_vm_unavailable("vm0", 11.0)  # idempotent while open
    log.mark_vm_available("vm0", 15.0)
    log.mark_vm_unavailable("vm1", 20.0)  # never restored
    assert log.vm_unavailable_seconds(30.0) == pytest.approx(5.0 + 10.0)
    assert log.unavailable_vms() == ["vm1"]
    assert log.outages == [("vm0", 10.0, 15.0)]


def test_log_mttr_over_reverted_faults():
    log = FaultLog()
    assert log.mttr() is None
    log.record(1.0, "inject", "nic-down", "a")
    log.record(3.0, "revert", "nic-down", "a")
    log.record(5.0, "inject", "nic-down", "b")
    log.record(11.0, "revert", "nic-down", "b")
    log.record(20.0, "inject", "host-crash", "c")  # never repaired
    assert log.mttr() == pytest.approx(4.0)


# -- end-to-end determinism -----------------------------------------------------

def test_fault_timeline_deterministic():
    def run_once():
        w = small_world()
        w.add_vm("vm0", 4 * MiB, "a")
        rng = np.random.default_rng(123)
        sched = FaultSchedule.random(
            rng, 30.0, hosts=["a", "b"], mean_interval_s=5.0,
            mean_duration_s=2.0)
        inj = w.attach_faults(sched)
        w.run(until=40.0)
        return inj.log.describe()
    assert run_once() == run_once()
