"""Property-based tests for network arbitration invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Network


@st.composite
def flow_specs(draw):
    n_hosts = draw(st.integers(2, 5))
    n_flows = draw(st.integers(1, 12))
    flows = []
    for _ in range(n_flows):
        src = draw(st.integers(0, n_hosts - 1))
        dst = draw(st.integers(0, n_hosts - 1))
        demand = draw(st.floats(min_value=0.0, max_value=1e6))
        prio = draw(st.integers(0, 2))
        flows.append((src, dst, demand, prio))
    return n_hosts, flows


def build(n_hosts, specs, bw=1000.0):
    net = Network(default_bandwidth_bps=bw, latency_s=0.0)
    for i in range(n_hosts):
        net.add_host(f"h{i}")
    flows = []
    for src, dst, demand, prio in specs:
        f = net.open_flow(f"h{src}", f"h{dst}", priority=prio)
        f.demand = demand
        flows.append(f)
    return net, flows


@settings(max_examples=80, deadline=None)
@given(flow_specs())
def test_grants_never_exceed_demand_or_capacity(spec):
    n_hosts, specs = spec
    net, flows = build(n_hosts, specs)
    demands = [f.demand for f in flows]
    net.arbitrate(dt=1.0)
    for f, d in zip(flows, demands):
        assert f.granted <= d + 1e-6
    # per-link conservation
    usage = {}
    for f, d in zip(flows, specs):
        for link in f.links:
            usage[link] = usage.get(link, 0.0) + f.granted
    for link, used in usage.items():
        assert used <= link.capacity_bps + 1e-3


@settings(max_examples=80, deadline=None)
@given(flow_specs())
def test_work_conservation_on_single_link(spec):
    """If all flows share one bottleneck link, the link is either fully
    used or every demand is satisfied."""
    n_hosts, specs = spec
    # force all flows onto h0 -> h1
    specs = [(0, 1, d, p) for (_, _, d, p) in specs]
    net, flows = build(n_hosts, specs, bw=500.0)
    demands = [f.demand for f in flows]
    net.arbitrate(dt=1.0)
    total_granted = sum(f.granted for f in flows)
    total_demand = sum(demands)
    assert total_granted == pytest.approx(min(total_demand, 500.0),
                                          rel=1e-6, abs=1e-3)


@settings(max_examples=60, deadline=None)
@given(flow_specs())
def test_strict_priority_dominance(spec):
    """A priority-0 flow is never worse off than it would be with the
    lower classes absent entirely."""
    n_hosts, specs = spec
    net_all, flows_all = build(n_hosts, specs)
    net_all.arbitrate(dt=1.0)
    hi_grants = {i: f.granted for i, (f, s) in
                 enumerate(zip(flows_all, specs)) if s[3] == 0}

    only_hi = [(s if s[3] == 0 else (s[0], s[1], 0.0, s[3]))
               for s in specs]
    net_hi, flows_hi = build(n_hosts, only_hi)
    net_hi.arbitrate(dt=1.0)
    for i, grant in hi_grants.items():
        assert grant == pytest.approx(flows_hi[i].granted, rel=1e-6,
                                      abs=1e-6)
