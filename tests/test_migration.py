"""End-to-end tests of the three migration techniques on small worlds."""

import numpy as np
import pytest

from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.core.base import MigrationConfig
from repro.util import GiB, KiB, MiB


def tiny_cfg(seed=0, **overrides):
    defaults = dict(
        dt=0.1, seed=seed, page_size=4096,
        net_bandwidth_bps=10e6, net_latency_s=1e-4,
        ssd_read_bps=5e6, ssd_write_bps=3e6, ssd_mixed_efficiency=0.7,
        ssd_capacity_bytes=1 * GiB, vmd_server_bytes=1 * GiB,
        host_os_bytes=1 * MiB,
        migration=MigrationConfig(backlog_cap_bytes=2 * MiB,
                                  stopcopy_threshold_bytes=256 * KiB,
                                  max_rounds=30))
    defaults.update(overrides)
    return TestbedConfig(**defaults)


def make_lab(technique, vm_mib=16, host_mib=64, reservation_mib=32,
             busy=False, seed=0, **cfg_over):
    return make_single_vm_lab(
        technique, vm_mib * MiB, busy=busy,
        host_memory_bytes=host_mib * MiB,
        reservation_bytes=reservation_mib * MiB,
        busy_margin_bytes=0.5 * MiB,
        config=tiny_cfg(seed=seed, **cfg_over))


# -- pre-copy -------------------------------------------------------------------

def test_precopy_idle_vm_full_transfer():
    lab = make_lab("pre-copy", vm_mib=16, reservation_mib=32)
    lab.run_until_migrated(start=2.0, limit=200.0)
    r = lab.report
    assert r.technique == "pre-copy"
    assert r.end_time is not None
    # the whole 16 MiB goes over the wire (one round, nothing dirtied)
    assert r.precopy_bytes + r.stopcopy_bytes == pytest.approx(16 * MiB,
                                                               rel=0.02)
    assert r.rounds == 1
    # ~16 MiB at 10 MB/s ≈ 1.7 s of transfer
    assert 1.0 < r.total_time < 5.0
    assert r.downtime is not None and r.downtime < 1.0


def test_precopy_moves_vm_and_frees_source():
    lab = make_lab("pre-copy", vm_mib=16, reservation_mib=32)
    lab.run_until_migrated(start=2.0, limit=200.0)
    vm = lab.migrate_vm
    assert vm.host == "dst"
    assert vm.is_running
    assert not lab.src.memory.has_vm("vm0")
    assert lab.dst.memory.has_vm("vm0")
    # the destination copy holds every allocated page
    assert vm.pages.resident_pages() == vm.n_pages


def test_precopy_swapped_pages_read_from_device():
    # VM 32 MiB with a 16 MiB reservation: half its memory is on swap
    lab = make_lab("pre-copy", vm_mib=32, reservation_mib=16)
    assert lab.migrate_vm.pages.swapped_bytes() == 16 * MiB
    lab.run_until_migrated(start=2.0, limit=400.0)
    r = lab.report
    mgr = lab.manager
    # all 32 MiB transferred; the swapped half was read from the SSD
    assert r.precopy_bytes + r.stopcopy_bytes == pytest.approx(32 * MiB,
                                                               rel=0.02)
    assert mgr.src_read_q.total_granted >= 16 * MiB * 0.95
    # device reads at 5 MB/s bound the swapped half: ≥ ~3.2 s just for it
    assert r.total_time > 16 * MiB / 5e6


def test_precopy_busy_vm_retransmits_dirty_pages():
    lab = make_lab("pre-copy", vm_mib=24, host_mib=64, reservation_mib=8,
                   busy=True)
    lab.run_until_migrated(start=5.0, limit=600.0)
    r = lab.report
    allocated = 23.5 * MiB  # dataset = vm - 0.5 MiB... dataset=vm-500MiB floor
    assert r.rounds >= 2
    assert r.pages_sent * 4096 > lab.migrate_vm.pages.allocated_pages() * 4096


# -- post-copy -------------------------------------------------------------------

def test_postcopy_switches_immediately():
    lab = make_lab("post-copy", vm_mib=16, reservation_mib=32)
    lab.run_until_migrated(start=2.0, limit=200.0)
    r = lab.report
    assert r.switch_time is not None
    assert r.switch_time - r.start_time < 1.5  # CPU state only
    assert r.downtime < 1.5
    assert r.end_time > r.switch_time


def test_postcopy_transfers_each_page_once():
    lab = make_lab("post-copy", vm_mib=16, reservation_mib=32)
    lab.run_until_migrated(start=2.0, limit=200.0)
    r = lab.report
    assert r.push_bytes + r.demand_bytes == pytest.approx(16 * MiB, rel=0.02)
    assert lab.migrate_vm.host == "dst"
    assert lab.migrate_vm.pages.resident_pages() == lab.migrate_vm.n_pages


def test_postcopy_busy_vm_demand_fetches():
    lab = make_lab("post-copy", vm_mib=24, host_mib=64, reservation_mib=8,
                   busy=True)
    lab.run_until_migrated(start=5.0, limit=600.0, settle=5.0)
    r = lab.report
    assert r.pages_demand_fetched > 0
    assert r.demand_bytes > 0
    # no retransmission: total page data ≈ allocated bytes
    allocated_bytes = 23.5 * MiB
    assert r.push_bytes + r.demand_bytes <= allocated_bytes * 1.05
    # workload keeps running at the destination
    tput = lab.world.recorder.series("vm0.throughput")
    after = tput.between(r.end_time, r.end_time + 5.0)
    assert after.mean() > 0


def test_postcopy_workload_degrades_then_recovers():
    lab = make_lab("post-copy", vm_mib=24, host_mib=64, reservation_mib=24,
                   busy=True)
    lab.run_until_migrated(start=10.0, limit=600.0, settle=20.0)
    r = lab.report
    tput = lab.world.recorder.series("vm0.throughput")
    before = tput.between(5.0, 10.0).mean()
    during = tput.between(r.switch_time, r.switch_time + 2.0).mean()
    after = tput.between(r.end_time + 10.0, r.end_time + 20.0).mean()
    assert during < 0.7 * before  # early post-copy phase is slow
    assert after > 0.7 * before   # and recovers once pages arrive


# -- Agile ---------------------------------------------------------------------

def test_agile_skips_cold_pages():
    lab = make_lab("agile", vm_mib=32, reservation_mib=16)
    vm = lab.migrate_vm
    n_swapped = vm.pages.swapped_pages()
    assert n_swapped * 4096 == 16 * MiB
    lab.run_until_migrated(start=2.0, limit=200.0)
    r = lab.report
    # only the resident half moves as page data
    page_data = r.precopy_bytes + r.stopcopy_bytes + r.push_bytes
    assert page_data == pytest.approx(16 * MiB, rel=0.05)
    assert r.pages_skipped_swapped == n_swapped
    # the destination sees the cold pages as swapped (offset table)
    assert vm.pages.swapped_pages() == n_swapped
    assert vm.pages.resident_pages() == vm.n_pages - n_swapped


def test_agile_faster_than_baselines_under_swap_pressure():
    times, bytes_ = {}, {}
    for tech in ("pre-copy", "post-copy", "agile"):
        lab = make_lab(tech, vm_mib=32, reservation_mib=16, seed=3)
        lab.run_until_migrated(start=2.0, limit=600.0)
        times[tech] = lab.report.total_time
        bytes_[tech] = lab.report.total_bytes
    # on an idle VM post-copy ≈ pre-copy (everything moves once); Agile
    # wins clearly by skipping the swapped half
    assert times["agile"] < 0.7 * times["post-copy"]
    assert times["post-copy"] <= times["pre-copy"] * 1.05
    assert bytes_["agile"] < 0.7 * bytes_["post-copy"]
    assert bytes_["post-copy"] <= bytes_["pre-copy"] * 1.05


def test_agile_destination_reads_cold_pages_from_vmd():
    lab = make_lab("agile", vm_mib=24, host_mib=64, reservation_mib=8,
                   busy=True)
    vm = lab.migrate_vm
    lab.run_until_migrated(start=5.0, limit=600.0, settle=30.0)
    r = lab.report
    # after settling at the destination the workload faulted cold pages
    # in from the VMD: swap-in accounting exists on the dst binding
    cg = lab.dst.memory.binding("vm0").cgroup
    assert cg.swap_in_bytes_total > 0
    tput = lab.world.recorder.series("vm0.throughput")
    assert tput.between(r.end_time, r.end_time + 30.0).mean() > 0


def test_agile_downtime_small():
    lab = make_lab("agile", vm_mib=32, reservation_mib=16)
    lab.run_until_migrated(start=2.0, limit=200.0)
    assert lab.report.downtime < 1.0


def test_agile_leaves_no_source_state():
    lab = make_lab("agile", vm_mib=32, reservation_mib=16)
    lab.run_until_migrated(start=2.0, limit=200.0)
    assert not lab.src.memory.has_vm("vm0")
    assert "vm0" not in lab.src.vms
    # the VMD namespace still holds the cold pages for the destination
    ns = lab.world.vmd.namespaces["vm0"]
    assert ns.used_bytes >= 16 * MiB * 0.95


def test_done_event_carries_report():
    lab = make_lab("agile", vm_mib=16, reservation_mib=32)
    lab.start_migration_at(1.0)
    lab.world.run(until=1.0)
    value = lab.world.sim.run_until_event(lab.manager.done, limit=300.0)
    assert value is lab.report


def test_migration_deterministic():
    reports = []
    for _ in range(2):
        lab = make_lab("agile", vm_mib=24, host_mib=64, reservation_mib=8,
                       busy=True, seed=7)
        lab.run_until_migrated(start=5.0, limit=600.0)
        r = lab.report
        reports.append((r.total_time, r.total_bytes, r.pages_sent))
    assert reports[0] == reports[1]


def test_double_start_rejected():
    lab = make_lab("pre-copy", vm_mib=16, reservation_mib=32)
    lab.start_migration_at(1.0)
    lab.world.run(until=1.5)
    with pytest.raises(RuntimeError):
        lab.manager.start()
