"""Tests for the testbed scenario builders."""

import pytest

from repro.cluster.scenarios import (
    TestbedConfig,
    make_pressure_scenario,
    make_single_vm_lab,
    make_wss_lab,
    scale_params_to_page,
)
from repro.core.base import MigrationConfig
from repro.mem import SSDSwapDevice
from repro.util import GiB, KiB, MiB
from repro.vmd import VMDNamespace
from repro.workloads import IdleWorkload, KeyValueWorkload, OLTPWorkload
from repro.workloads.kv import ycsb_redis_params


def tiny(**over):
    defaults = dict(dt=0.25, seed=0, page_size=4096,
                    net_bandwidth_bps=10e6, ssd_read_bps=5e6,
                    ssd_write_bps=3e6, ssd_capacity_bytes=1 * GiB,
                    vmd_server_bytes=1 * GiB, host_os_bytes=1 * MiB,
                    migration=MigrationConfig(backlog_cap_bytes=2 * MiB))
    defaults.update(over)
    return TestbedConfig(**defaults)


def test_scale_params_readahead_and_dirty():
    base = ycsb_redis_params()  # readahead 8 @ 4 KiB, dirty 1 page/write
    scaled = scale_params_to_page(base, 32 * KiB)
    assert scaled.readahead == 1.0          # one 32 KiB cluster per fault
    assert scaled.dirty_pages_per_write == pytest.approx(1 / 8)
    same = scale_params_to_page(base, 4096)
    assert same.readahead == base.readahead
    assert same.dirty_pages_per_write == base.dirty_pages_per_write


def test_single_vm_lab_baseline_uses_local_ssds():
    lab = make_single_vm_lab("pre-copy", 16 * MiB, busy=False,
                             host_memory_bytes=64 * MiB,
                             reservation_bytes=32 * MiB, config=tiny())
    binding = lab.src.memory.binding("vm0")
    assert isinstance(binding.backend, SSDSwapDevice)
    assert isinstance(lab.dst_backend_for_migration, SSDSwapDevice)
    assert binding.backend is not lab.dst_backend_for_migration
    assert isinstance(lab.workloads[0], IdleWorkload)


def test_single_vm_lab_agile_uses_portable_namespace():
    lab = make_single_vm_lab("agile", 16 * MiB, busy=True,
                             host_memory_bytes=64 * MiB,
                             reservation_bytes=32 * MiB,
                             busy_margin_bytes=1 * MiB, config=tiny())
    binding = lab.src.memory.binding("vm0")
    assert isinstance(binding.backend, VMDNamespace)
    assert lab.dst_backend_for_migration is None  # travels with the VM
    assert isinstance(lab.workloads[0], KeyValueWorkload)


def test_single_vm_lab_busy_dataset_margin():
    lab = make_single_vm_lab("agile", 16 * MiB, busy=True,
                             host_memory_bytes=64 * MiB,
                             reservation_bytes=32 * MiB,
                             busy_margin_bytes=4 * MiB, config=tiny())
    assert lab.workloads[0].dataset_pages == (16 - 4) * MiB // 4096


def test_single_vm_lab_default_reservation_tracks_host():
    lab = make_single_vm_lab("pre-copy", 2 * GiB, busy=False,
                             config=TestbedConfig())
    binding = lab.src.memory.binding("vm0")
    # small VM: reservation = VM size; memory fully resident after preload
    assert binding.cgroup.reservation_bytes == 2 * GiB
    assert lab.migrate_vm.pages.resident_bytes() == 2 * GiB


def test_single_vm_lab_dst_memory_override():
    lab = make_single_vm_lab("pre-copy", 16 * MiB, busy=False,
                             host_memory_bytes=64 * MiB,
                             dst_memory_bytes=128 * MiB,
                             reservation_bytes=32 * MiB, config=tiny())
    assert lab.dst.memory.capacity_bytes == 128 * MiB


def test_pressure_scenario_topology():
    lab = make_pressure_scenario(
        "agile", "kv", n_vms=2, vm_memory_bytes=32 * MiB,
        host_memory_bytes=64 * MiB, reservation_bytes=16 * MiB,
        kv_dataset_bytes=24 * MiB, config=tiny())
    assert len(lab.vms) == 2
    assert all(vm.host == "src" for vm in lab.vms)
    assert lab.migrate_vm is lab.vms[0]
    # per-VM namespaces are distinct
    b0 = lab.src.memory.binding("vm0").backend
    b1 = lab.src.memory.binding("vm1").backend
    assert b0 is not b1
    assert isinstance(b0, VMDNamespace)


def test_pressure_scenario_oltp_workloads():
    lab = make_pressure_scenario(
        "pre-copy", "oltp", n_vms=2, vm_memory_bytes=32 * MiB,
        host_memory_bytes=64 * MiB, reservation_bytes=16 * MiB,
        oltp_dataset_bytes=24 * MiB, config=tiny())
    assert all(isinstance(wl, OLTPWorkload) for wl in lab.workloads)
    # baselines share one source SSD
    assert (lab.src.memory.binding("vm0").backend
            is lab.src.memory.binding("vm1").backend)


def test_pressure_scenario_end_to_end_tiny():
    lab = make_pressure_scenario(
        "agile", "kv", n_vms=2, vm_memory_bytes=32 * MiB,
        host_memory_bytes=48 * MiB, reservation_bytes=20 * MiB,
        kv_dataset_bytes=24 * MiB, config=tiny())
    # rescale the ramp so it happens quickly
    from repro.workloads import PhasePlan
    for i, wl in enumerate(lab.workloads):
        wl.plan = PhasePlan([(0.0, 0, 24 * MiB // 4096)])
    lab.run_until_migrated(start=10.0, limit=1000.0, settle=5.0)
    r = lab.report
    assert r.end_time is not None
    assert lab.migrate_vm.host == "dst"
    assert lab.src.memory.has_vm("vm1")  # the other VM stayed


def test_vmd_servers_knob():
    lab = make_single_vm_lab("agile", 16 * MiB, busy=False,
                             host_memory_bytes=64 * MiB,
                             reservation_bytes=32 * MiB,
                             config=tiny(vmd_servers=3))
    assert len(lab.world.vmd.servers) == 3


def test_wss_lab_structure():
    lab = make_wss_lab(vm_memory_bytes=64 * MiB, dataset_bytes=16 * MiB,
                       host_memory_bytes=256 * MiB, config=tiny())
    assert lab.vm.pages.resident_bytes() == 16 * MiB  # fits: all resident
    binding = lab.world.manager_of("h1").binding("vm0")
    assert binding.cgroup.reservation_bytes == 64 * MiB
    lab.run(until=10.0)
    assert lab.world.recorder.has("vm0.throughput")


def test_report_property_before_start_raises():
    lab = make_single_vm_lab("agile", 16 * MiB, busy=False,
                             host_memory_bytes=64 * MiB,
                             reservation_bytes=32 * MiB, config=tiny())
    with pytest.raises(RuntimeError):
        _ = lab.report
