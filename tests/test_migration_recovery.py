"""Recovery semantics: abort/rollback, split-state failure, Agile donor
survival, supervised retry with backoff, and same-seed determinism."""

import pytest

from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.core.base import MigrationConfig, MigrationOutcome
from repro.faults import (
    FaultKind,
    FaultSchedule,
    FaultSpec,
    RetryPolicy,
)
from repro.metrics.export import fault_log_to_dict, report_to_dict
from repro.util import GiB, KiB, MiB
from repro.vm.vm import VmState


def tiny_cfg(seed=0, **overrides):
    defaults = dict(
        dt=0.1, seed=seed, page_size=4096,
        net_bandwidth_bps=10e6, net_latency_s=1e-4,
        ssd_read_bps=5e6, ssd_write_bps=3e6, ssd_mixed_efficiency=0.7,
        ssd_capacity_bytes=1 * GiB, vmd_server_bytes=1 * GiB,
        host_os_bytes=1 * MiB,
        migration=MigrationConfig(backlog_cap_bytes=2 * MiB,
                                  stopcopy_threshold_bytes=256 * KiB,
                                  max_rounds=30))
    defaults.update(overrides)
    return TestbedConfig(**defaults)


def make_lab(technique, vm_mib=16, host_mib=64, reservation_mib=32,
             busy=False, seed=0, **cfg_over):
    return make_single_vm_lab(
        technique, vm_mib * MiB, busy=busy,
        host_memory_bytes=host_mib * MiB,
        reservation_bytes=reservation_mib * MiB,
        busy_margin_bytes=0.5 * MiB,
        config=tiny_cfg(seed=seed, **cfg_over))


def run_with_faults(lab, schedule, start=2.0, limit=400.0, policy=None):
    injector = lab.world.attach_faults(schedule)
    lab.start_supervised_migration_at(
        start, policy=policy or RetryPolicy(max_retries=0))
    lab.world.run(until=start)
    lab.world.sim.run_until_event(lab.final, limit=limit)
    return lab.final.value, injector


# -- pre-copy: abort is a clean rollback ----------------------------------------

def test_precopy_dst_crash_aborts_vm_survives_at_source():
    lab = make_lab("pre-copy")
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "dst", at=2.5)])
    report, _ = run_with_faults(lab, schedule)
    vm = lab.migrate_vm
    assert report.outcome is MigrationOutcome.ABORTED
    assert report.switch_time is None
    assert vm.state is VmState.RUNNING
    assert vm.host == "src"
    assert not vm.migrating
    # the rollback released the destination side entirely
    assert not lab.dst.memory.has_vm("vm0")
    assert not lab.dst.memory.has_vm("vm0.incoming")
    assert lab.src.memory.has_vm("vm0")


def test_precopy_retry_completes_after_transient_dst_crash():
    lab = make_lab("pre-copy")
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "dst", at=2.5, duration=5.0)])
    report, _ = run_with_faults(
        lab, schedule, policy=RetryPolicy(max_retries=3, backoff_s=2.0))
    outcomes = [a.outcome for a in lab.supervisor.attempts]
    assert outcomes == [MigrationOutcome.RETRIED, MigrationOutcome.COMPLETED]
    assert report.outcome is MigrationOutcome.COMPLETED
    assert report.attempt == 1
    assert lab.migrate_vm.host == "dst"
    assert lab.migrate_vm.is_running


def test_precopy_src_crash_kills_vm():
    lab = make_lab("pre-copy")
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "src", at=2.5)])
    report, injector = run_with_faults(lab, schedule)
    assert report.outcome is MigrationOutcome.FAILED
    assert lab.migrate_vm.state is VmState.TERMINATED
    assert injector.log.unavailable_vms() == ["vm0"]


def test_abort_after_switch_is_rejected():
    lab = make_lab("pre-copy")
    lab.run_until_migrated(start=2.0, limit=200.0)
    with pytest.raises(RuntimeError):
        # completed → no-op is fine; simulate a post-switch abort attempt
        lab.manager.report.outcome = None
        lab.manager.phase = type(lab.manager.phase).PUSH
        lab.manager.done._triggered = False
        lab.manager.abort("too late")


# -- post-copy: the split-state window is fatal ---------------------------------

def test_postcopy_dst_crash_in_split_state_kills_vm():
    lab = make_lab("post-copy")
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "dst", at=2.5)])
    report, injector = run_with_faults(lab, schedule)
    assert report.switch_time is not None          # crash landed post-switch
    assert report.outcome is MigrationOutcome.FAILED
    assert "split-state" in report.failure_reason
    assert lab.migrate_vm.state is VmState.TERMINATED
    # both sides fully released
    assert not lab.src.memory.has_vm("vm0")
    assert not lab.dst.memory.has_vm("vm0")
    assert injector.log.vm_unavailable_seconds(10.0) > 0


def test_postcopy_transient_nic_outage_stalls_then_completes():
    lab = make_lab("post-copy")
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.NIC_DOWN, "src", at=2.5, duration=3.0)])
    report, _ = run_with_faults(lab, schedule)
    assert report.outcome is MigrationOutcome.COMPLETED
    # the outage sits inside the migration window, which must absorb it
    assert report.total_time > 3.0
    assert lab.migrate_vm.host == "dst"


# -- agile: donor crashes ------------------------------------------------------

def test_agile_survives_donor_crash_with_replication():
    lab = make_lab("agile", reservation_mib=8, vmd_servers=3,
                   vmd_replication=2)
    ns = lab.world.vmd.namespaces["vm0"]
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.VMD_CRASH, "vmdsrv0", at=2.3,
                   lose_contents=True)])
    report, _ = run_with_faults(lab, schedule)
    assert report.outcome is MigrationOutcome.COMPLETED
    assert not ns.data_lost
    assert lab.migrate_vm.host == "dst"
    # background re-replication restores the lost copies on survivors
    lab.world.run(until=lab.world.now + 60.0)
    assert ns.repair_pending_bytes == 0.0
    assert ns.repaired_bytes > 0
    dead = lab.world.vmd.server_on("vmdsrv0")
    assert ns._stored[dead] == 0.0


def test_agile_single_copy_donor_loss_kills_vm():
    lab = make_lab("agile", reservation_mib=8)
    ns = lab.world.vmd.namespaces["vm0"]
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.VMD_CRASH, "vmdsrv0", at=2.3,
                   lose_contents=True)])
    report, _ = run_with_faults(lab, schedule)
    assert ns.data_lost
    assert report.outcome is MigrationOutcome.FAILED
    assert lab.migrate_vm.state is VmState.TERMINATED


def test_agile_content_preserving_donor_outage_is_survivable():
    """A donor that merely reboots (contents preserved) stalls VMD reads
    until recovery; the migration completes once it returns."""
    lab = make_lab("agile", reservation_mib=8)
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.VMD_CRASH, "vmdsrv0", at=2.3, duration=4.0)])
    report, _ = run_with_faults(lab, schedule)
    assert report.outcome is MigrationOutcome.COMPLETED
    assert lab.migrate_vm.host == "dst"


# -- retry policy ---------------------------------------------------------------

def test_retry_policy_backoff_shape():
    p = RetryPolicy(max_retries=5, backoff_s=2.0, backoff_factor=2.0,
                    backoff_cap_s=10.0)
    assert [p.delay(i) for i in range(5)] == [2.0, 4.0, 8.0, 10.0, 10.0]
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)


def test_permanent_dst_crash_retry_stalls_without_harming_vm():
    lab = make_lab("pre-copy")
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "dst", at=2.5)])  # permanent
    lab.world.attach_faults(schedule)
    lab.start_supervised_migration_at(
        2.0, policy=RetryPolicy(max_retries=1, backoff_s=1.0))
    # attempt 0 aborts on the crash; attempt 1 re-registers against the
    # dead destination and stalls on the down NIC — the VM must stay
    # healthy at the source the whole time.
    lab.world.run(until=60.0)
    assert not lab.final.triggered
    assert lab.supervisor.attempts[0].outcome is MigrationOutcome.RETRIED
    assert lab.migrate_vm.state in (VmState.RUNNING, VmState.SUSPENDED)
    assert lab.migrate_vm.host == "src"


def test_supervisor_parks_until_destination_healthy():
    # The destination stays dead well past the blind-backoff window
    # (1 s backoff vs an 8 s outage): the old supervisor would relaunch
    # at ~3.6 s straight into the crash and burn its retry budget. With
    # a health tracker the aborted attempt parks, and the retry is only
    # issued once the destination has been UP again (revert + cooldown).
    from repro.sched import HostHealthTracker

    lab = make_lab("pre-copy")
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "dst", at=2.5, duration=8.0)])
    lab.world.attach_faults(schedule)
    health = HostHealthTracker(lab.world, cooldown_s=2.0)
    lab.start_supervised_migration_at(
        2.0, policy=RetryPolicy(max_retries=3, backoff_s=1.0),
        health=health)
    lab.world.run(until=9.0)
    # deep inside the outage: exactly one (aborted) attempt, no retry
    # in flight — it is parked on the destination's health
    assert len(lab.supervisor.attempts) == 1
    assert lab.supervisor.attempts[0].outcome is MigrationOutcome.RETRIED
    assert lab.supervisor.parked.get("dst")
    lab.world.sim.run_until_event(lab.final, limit=100.0)
    report = lab.final.value
    assert report.outcome is MigrationOutcome.COMPLETED
    assert report.attempt == 1
    # the retry waited for revert (10.5 s) plus the cooldown
    assert report.start_time >= 2.5 + 8.0 + 2.0


# -- export + determinism -------------------------------------------------------

def test_report_export_includes_outcome_as_string():
    lab = make_lab("pre-copy")
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "dst", at=2.5)])
    report, injector = run_with_faults(lab, schedule)
    d = report_to_dict(report)
    assert d["outcome"] == "aborted"
    assert isinstance(d["failure_reason"], str)
    fd = fault_log_to_dict(injector.log, until=10.0)
    assert fd["events"][0]["kind"] == "host-crash"
    assert fd["vm_unavailable_seconds"] == 0.0  # the VM survived


def test_same_seed_same_fault_timeline_and_report():
    def run_once():
        lab = make_lab("post-copy", seed=5)
        schedule = FaultSchedule(
            [FaultSpec(FaultKind.NIC_DEGRADED, "src", at=2.4,
                       duration=2.0, severity=0.3),
             FaultSpec(FaultKind.SSD_DEGRADED, "ssd.src", at=3.0,
                       duration=1.0, severity=0.5)])
        report, injector = run_with_faults(lab, schedule)
        return injector.log.describe(), report_to_dict(report)
    (log1, rep1), (log2, rep2) = run_once(), run_once()
    assert log1 == log2
    assert rep1 == rep2
