"""Tests for access distributions (uniform and Zipf)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import World, preload_dataset
from repro.util import MiB
from repro.workloads import (
    KeyValueWorkload,
    UniformAccess,
    ZipfAccess,
    ycsb_redis_params,
)


def mask(n, idx):
    m = np.zeros(n, dtype=bool)
    m[list(idx)] = True
    return m


# -- uniform -------------------------------------------------------------------

def test_uniform_probability_is_fraction():
    u = UniformAccess()
    assert u.class_probability(mask(10, [0, 1, 2])) == pytest.approx(0.3)
    assert u.class_probability(np.zeros(0, dtype=bool)) == 0.0


def test_uniform_sample_distinct_members():
    u = UniformAccess()
    rng = np.random.default_rng(0)
    got = u.sample(mask(100, range(50)), 10, rng)
    assert got.size == 10
    assert len(set(got.tolist())) == 10
    assert np.all(got < 50)


def test_uniform_sample_returns_all_when_few():
    u = UniformAccess()
    rng = np.random.default_rng(0)
    got = u.sample(mask(10, [3, 7]), 5, rng)
    assert sorted(got.tolist()) == [3, 7]


# -- zipf ---------------------------------------------------------------------

def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfAccess(theta=0.0)


def test_zipf_head_is_hot():
    z = ZipfAccess(theta=0.99)
    n = 1000
    head = z.class_probability(mask(n, range(10)))
    tail = z.class_probability(mask(n, range(n - 10, n)))
    assert head > 20 * tail


def test_zipf_probabilities_sum_to_one():
    z = ZipfAccess(theta=0.8)
    full = z.class_probability(np.ones(500, dtype=bool))
    assert full == pytest.approx(1.0)


def test_zipf_weights_adapt_to_region_size():
    z = ZipfAccess()
    p_small = z.class_probability(mask(10, [0]))
    p_large = z.class_probability(mask(10000, [0]))
    assert p_small > p_large  # page 0's share shrinks in a bigger region


def test_zipf_sampling_prefers_head():
    z = ZipfAccess(theta=1.2)
    rng = np.random.default_rng(1)
    n = 1000
    counts = np.zeros(n)
    for _ in range(200):
        got = z.sample(np.ones(n, dtype=bool), 5, rng)
        counts[got] += 1
    assert counts[:20].sum() > counts[-500:].sum()


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 200), st.data())
def test_distribution_invariants(n, data):
    """Property: probabilities in [0,1]; disjoint classes add up."""
    dist = data.draw(st.sampled_from([UniformAccess(), ZipfAccess(0.99)]))
    cut = data.draw(st.integers(0, n))
    a = np.zeros(n, dtype=bool)
    a[:cut] = True
    b = ~a
    pa, pb = dist.class_probability(a), dist.class_probability(b)
    assert 0.0 <= pa <= 1.0 + 1e-9
    assert pa + pb == pytest.approx(1.0)


# -- integration: zipf workload keeps its hot head resident ----------------------

def test_zipf_workload_hot_head_stays_resident():
    w = World(dt=0.5, seed=4, net_bandwidth_bps=50e6)
    w.add_host("h1", 64 * MiB, host_os_bytes=4 * MiB)
    w.add_client_host()
    vm = w.add_vm("vm1", 48 * MiB, "h1")
    dev = w.add_ssd("ssd", read_bps=20e6, write_bps=10e6)
    w.hosts["h1"].place_vm(vm, 8 * MiB, dev)
    preload_dataset(vm, w.manager_of("h1"), 32 * MiB)
    wl = KeyValueWorkload(
        vm, w.network, "client", w.manager_of, w.recorder, w.rng("wl"),
        dataset_bytes=32 * MiB, params=ycsb_redis_params(),
        distribution=ZipfAccess(theta=0.99), sim_now=lambda: w.sim.now)
    w.add_workload(wl)
    w.run(until=60.0)
    # under LRU + zipf, the hottest pages converge into residency
    head = vm.pages.present[:64]
    tail = vm.pages.present[4096:4160]
    assert head.mean() > tail.mean()
    # and a skewed workload runs faster than a uniform one over the
    # same over-committed region (its effective working set fits)
    w2 = World(dt=0.5, seed=4, net_bandwidth_bps=50e6)
    w2.add_host("h1", 64 * MiB, host_os_bytes=4 * MiB)
    w2.add_client_host()
    vm2 = w2.add_vm("vm1", 48 * MiB, "h1")
    dev2 = w2.add_ssd("ssd", read_bps=20e6, write_bps=10e6)
    w2.hosts["h1"].place_vm(vm2, 8 * MiB, dev2)
    preload_dataset(vm2, w2.manager_of("h1"), 32 * MiB)
    wl2 = KeyValueWorkload(
        vm2, w2.network, "client", w2.manager_of, w2.recorder, w2.rng("wl"),
        dataset_bytes=32 * MiB, params=ycsb_redis_params(),
        sim_now=lambda: w2.sim.now)
    w2.add_workload(wl2)
    w2.run(until=60.0)
    zipf_tput = w.recorder.series("vm1.throughput").between(30, 60).mean()
    uni_tput = w2.recorder.series("vm1.throughput").between(30, 60).mean()
    assert zipf_tput > 1.5 * uni_tput
