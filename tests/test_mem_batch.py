"""Differential tests: batched commit path vs the scalar oracle.

The batched path (``HostMemoryManager(fast_path=True)``, the default)
must produce *bit-identical* state to the scalar per-binding oracle for
every tick of every scenario — not approximately equal: the batch
replays the oracle's float operations in the same order, so ``==`` is
the contract (the same policy as ``tests/test_net_fastpath.py`` for the
network arbiter). These tests drive twin hosts (one per implementation)
through identical randomized churn — fault storms, cgroup shrinks,
host-pressure eviction with pinned pages, writeback-debt throttling,
mid-run VM register/unregister — and compare every backlog, queue
demand, grant, residency count and cgroup counter exactly.

The satellite regression tests for the PR's accounting fixes live here
too: closed device queues must not retain stale grants, departed VMs
must not leave writeback debt demanding device bandwidth, and pre-tick
demand declaration must be unconditional.
"""

import random

import numpy as np
import pytest

from repro.mem import Cgroup, HostMemoryManager, SSDSwapDevice
from repro.mem.batch import HostCommitBatch
from repro.vm import VirtualMachine

PAGE = 4096
MiB = 2 ** 20

SEEDS = [0, 1, 7, 42, 1234]


class TwinHost:
    """Two identically-configured managers, one per implementation,
    driven in lockstep: every mutation is applied to both, every tick is
    followed by an exact state comparison."""

    def __init__(self, mem_mib=10, os_mib=1, read_bps=400e6,
                 write_bps=200e6, debt_cap=None):
        self.fast = HostMemoryManager("h", mem_mib * MiB,
                                      host_os_bytes=os_mib * MiB,
                                      fast_path=True)
        self.ref = HostMemoryManager("h", mem_mib * MiB,
                                     host_os_bytes=os_mib * MiB,
                                     fast_path=False)
        assert self.fast.fast_path and not self.ref.fast_path
        self.dev_fast = SSDSwapDevice("ssd", read_bps=read_bps,
                                      write_bps=write_bps)
        self.dev_ref = SSDSwapDevice("ssd", read_bps=read_bps,
                                     write_bps=write_bps)
        if debt_cap is not None:
            self.fast.writeback_debt_cap = debt_cap
            self.ref.writeback_debt_cap = debt_cap
        self.vms = {}  # name -> (fast VM, ref VM)

    # -- lockstep mutations --------------------------------------------------
    def register(self, name, n_pages, reservation_pages):
        vf = VirtualMachine(name, n_pages * PAGE, host="h")
        vr = VirtualMachine(name, n_pages * PAGE, host="h")
        self.fast.register_vm(vf, Cgroup(name, reservation_pages * PAGE),
                              self.dev_fast)
        self.ref.register_vm(vr, Cgroup(name, reservation_pages * PAGE),
                             self.dev_ref)
        self.vms[name] = (vf, vr)

    def unregister(self, name):
        self.fast.unregister_vm(name)
        self.ref.unregister_vm(name)
        del self.vms[name]

    def fault_in(self, name, idx):
        self.fast.fault_in(name, idx)
        self.ref.fault_in(name, idx)

    def dirty(self, name, idx):
        # guests can only write resident pages; both sides have identical
        # residency (asserted every tick), so filter on the fast side
        idx = idx[self.vms[name][0].pages.present[idx]]
        self.fast.dirty(name, idx)
        self.ref.dirty(name, idx)

    def shrink(self, name, reservation_pages):
        for mgr in (self.fast, self.ref):
            mgr.binding(name).cgroup.set_reservation(
                reservation_pages * PAGE)
            mgr.shrink_to_reservation(name)

    def protect(self, name, mask):
        self.fast.binding(name).protect = None if mask is None \
            else mask.copy()
        self.ref.binding(name).protect = None if mask is None \
            else mask.copy()

    def free_vm(self, name):
        self.fast.free_vm_memory(name)
        self.ref.free_vm_memory(name)

    def set_fault_demand(self, name, demand):
        self.fast.binding(name).fault_queue.demand = demand
        self.ref.binding(name).fault_queue.demand = demand

    # -- tick + comparison ---------------------------------------------------
    def tick(self, dt=0.1):
        self.fast.pre_tick(dt)
        self.ref.pre_tick(dt)
        for name in self.vms:
            bf = self.fast.binding(name)
            br = self.ref.binding(name)
            assert bf.write_queue.demand == br.write_queue.demand, (
                f"pre-tick write demand divergence on {name}: "
                f"fast={bf.write_queue.demand!r} "
                f"ref={br.write_queue.demand!r}")
            assert bf.fault_queue.demand == br.fault_queue.demand, (
                f"fault-throttle divergence on {name}")
        self.dev_fast.arbitrate(dt)
        self.dev_ref.arbitrate(dt)
        self.fast.commit_tick(dt)
        self.ref.commit_tick(dt)
        self.assert_identical()

    def assert_identical(self):
        assert (self.fast.total_resident_bytes()
                == self.ref.total_resident_bytes())
        for name, (vf, vr) in self.vms.items():
            bf = self.fast.binding(name)
            br = self.ref.binding(name)
            assert bf.writeback_backlog == br.writeback_backlog, (
                f"backlog divergence on {name}: "
                f"fast={bf.writeback_backlog!r} "
                f"ref={br.writeback_backlog!r}")
            assert bf.write_queue.granted == br.write_queue.granted
            assert bf.fault_queue.granted == br.fault_queue.granted
            assert (bf.write_queue.total_granted
                    == br.write_queue.total_granted)
            assert (bf.cgroup.swap_in_bytes_total
                    == br.cgroup.swap_in_bytes_total)
            assert (bf.cgroup.swap_out_bytes_total
                    == br.cgroup.swap_out_bytes_total)
            assert np.array_equal(vf.pages.present, vr.pages.present), (
                f"residency divergence on {name}")
            assert np.array_equal(vf.pages.swapped, vr.pages.swapped)
            assert np.array_equal(vf.pages.swap_clean, vr.pages.swap_clean)
            vf.pages.check_invariants()
            vr.pages.check_invariants()


def _random_idx(rng, n_pages):
    lo = rng.randrange(n_pages)
    hi = min(n_pages, lo + rng.randrange(1, max(2, n_pages // 4)))
    return np.arange(lo, hi)


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_random_churn(seed):
    """Random fault/dirty/shrink churn under host memory pressure.

    Reservations sum past the host's usable memory, so cgroup eviction
    and host-pressure victim selection both fire; the slow write device
    keeps writeback backlogs alive across many drain ticks.
    """
    rng = random.Random(seed)
    twin = TwinHost(mem_mib=4, os_mib=1, write_bps=64 * PAGE * 10)
    for i in range(4):
        twin.register(f"vm{i}", n_pages=400, reservation_pages=300)
    for step in range(200):
        for name in list(twin.vms):
            if rng.random() < 0.6:
                twin.fault_in(name, _random_idx(rng, 400))
            if rng.random() < 0.3:
                twin.dirty(name, _random_idx(rng, 400))
        if rng.random() < 0.1:
            name = rng.choice(list(twin.vms))
            twin.shrink(name, rng.randrange(50, 300))
        if rng.random() < 0.15:
            name = rng.choice(list(twin.vms))
            twin.set_fault_demand(name, rng.uniform(0.0, 64 * PAGE))
        twin.tick(dt=rng.choice([0.05, 0.1, 0.25]))


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_writeback_debt_throttle(seed):
    """A tiny debt cap forces the fault-throttle path every tick; the
    scaled fault demands must match bit for bit."""
    rng = random.Random(seed)
    twin = TwinHost(mem_mib=4, os_mib=1, write_bps=8 * PAGE * 10,
                    debt_cap=4 * PAGE)
    twin.register("vm0", n_pages=300, reservation_pages=60)
    twin.register("vm1", n_pages=300, reservation_pages=60)
    for step in range(150):
        for name in list(twin.vms):
            twin.fault_in(name, _random_idx(rng, 300))
            twin.dirty(name, _random_idx(rng, 300))
            twin.set_fault_demand(name, rng.uniform(PAGE, 32 * PAGE))
        twin.tick(dt=0.1)


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_host_pressure_pinned(seed):
    """Host-pressure eviction with rotating protect masks: the victim
    choice (most-over-reservation, first-registered tie-break) and the
    LRU scan under pinning must agree exactly."""
    rng = random.Random(seed)
    # reservations alone exceed usable memory: every fault storm runs
    # the host-pressure loop, not just the cgroup cap
    twin = TwinHost(mem_mib=3, os_mib=1, write_bps=128 * PAGE * 10)
    for i in range(3):
        twin.register(f"vm{i}", n_pages=400, reservation_pages=400)
    masks = {}
    for step in range(150):
        for name in list(twin.vms):
            if rng.random() < 0.7:
                twin.fault_in(name, _random_idx(rng, 400))
        if rng.random() < 0.2:
            name = rng.choice(list(twin.vms))
            if rng.random() < 0.5 or name not in masks:
                mask = np.zeros(400, dtype=bool)
                lo = rng.randrange(300)
                mask[lo:lo + rng.randrange(20, 100)] = True
                masks[name] = mask
                twin.protect(name, mask)
            else:
                del masks[name]
                twin.protect(name, None)
        twin.tick(dt=0.1)


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_register_unregister_churn(seed):
    """Mid-run VM arrivals and departures: slot reuse in the batch must
    not perturb victim tie-breaks, backlogs, or demand declarations."""
    rng = random.Random(seed)
    twin = TwinHost(mem_mib=6, os_mib=1, write_bps=64 * PAGE * 10)
    next_id = 0
    for i in range(3):
        twin.register(f"vm{next_id}", n_pages=300,
                      reservation_pages=rng.randrange(80, 250))
        next_id += 1
    for step in range(200):
        for name in list(twin.vms):
            if rng.random() < 0.5:
                twin.fault_in(name, _random_idx(rng, 300))
            if rng.random() < 0.2:
                twin.dirty(name, _random_idx(rng, 300))
        roll = rng.random()
        if roll < 0.08 and len(twin.vms) > 1:
            name = rng.choice(list(twin.vms))
            if rng.random() < 0.5:
                twin.free_vm(name)  # migration source teardown...
            twin.unregister(name)  # ...or plain departure
        elif roll < 0.16 and len(twin.vms) < 8:
            twin.register(f"vm{next_id}", n_pages=300,
                          reservation_pages=rng.randrange(80, 250))
            next_id += 1
        twin.tick(dt=0.1)


def test_differential_cgroup_shrink_watcher():
    """Reservation changes reach the batch's dense array immediately:
    a shrink between ticks changes the victim choice identically."""
    twin = TwinHost(mem_mib=4, os_mib=1)
    twin.register("a", n_pages=400, reservation_pages=400)
    twin.register("b", n_pages=400, reservation_pages=400)
    twin.fault_in("a", np.arange(300))
    twin.fault_in("b", np.arange(200))
    twin.tick()
    # shrink b far below its residency: it becomes the most-over victim
    twin.shrink("b", 50)
    twin.fault_in("a", np.arange(300, 380))
    twin.tick()
    batch = twin.fast._batch
    slot = twin.fast.binding("b")._slot
    assert batch.reservation[slot] == 50 * PAGE


# -- satellite regressions ---------------------------------------------------

def test_closed_queue_grant_is_reset():
    """close() must clear ``granted``: a consumer reading a just-closed
    queue in the same commit phase must not re-consume last tick's
    grant."""
    dev = SSDSwapDevice("ssd", write_bps=100 * PAGE * 10)
    q = dev.open_queue("w", "write")
    q.demand = 10 * PAGE
    dev.arbitrate(0.1)
    assert q.granted > 0.0
    q.close()
    assert q.granted == 0.0
    assert q.demand == 0.0


def test_grant_skips_inactive_queues():
    """A lane closed between compaction and granting gets nothing, and
    the survivors' grants match what they would get alone."""
    live = SSDSwapDevice("ssd").open_queue("live", "write")
    dead = SSDSwapDevice("ssd").open_queue("dead", "write")
    live.demand = 30.0
    dead.close()
    dead.granted = 123.0  # simulate a stale grant left by an old bug
    SSDSwapDevice._grant([live, dead], capacity=100.0)
    assert live.granted == 30.0
    assert dead.granted == 123.0 and dead.demand == 0.0  # untouched
    # and the compaction flag removes it from later rounds entirely
    dev = SSDSwapDevice("ssd")
    q1 = dev.open_queue("a", "write")
    q2 = dev.open_queue("b", "write")
    q1.demand = 10.0
    q2.close()
    dev.arbitrate(1.0)
    assert q2 not in dev._queues


def test_departed_vm_leaves_no_write_demand():
    """free_vm_memory + unregister must cancel writeback debt: after a
    VM departs, the device sees zero write demand from it."""
    for fast_path in (True, False):
        dev = SSDSwapDevice("ssd", write_bps=PAGE)  # drains ~nothing
        mgr = HostMemoryManager("h", 10 * MiB, host_os_bytes=1 * MiB,
                                fast_path=fast_path)
        vm = VirtualMachine("vm1", 100 * PAGE, host="h")
        b = mgr.register_vm(vm, Cgroup("vm1", 10 * PAGE), dev)
        mgr.fault_in("vm1", np.arange(20))  # evicts 10 fresh pages
        assert b.writeback_backlog == 10 * PAGE
        mgr.free_vm_memory("vm1")
        assert b.writeback_backlog == 0.0
        mgr.pre_tick(0.1)
        assert b.write_queue.demand == 0.0
        # full departure: debt must not survive the binding either
        mgr.fault_in("vm1", np.arange(20, 40))
        assert b.writeback_backlog > 0.0
        mgr.unregister_vm("vm1")
        assert b.writeback_backlog == 0.0
        assert b.write_queue.demand == 0.0
        dev.arbitrate(0.1)
        assert b.write_queue.granted == 0.0


def test_pre_tick_demand_reset_is_unconditional():
    """Demand declared by a previous pre-tick must be overwritten by the
    next one even when no arbiter ever consumed it (the backing VMD
    server vanished mid-run) and the debt has since been forgiven."""
    for fast_path in (True, False):
        dev = SSDSwapDevice("ssd")
        mgr = HostMemoryManager("h", 10 * MiB, host_os_bytes=1 * MiB,
                                fast_path=fast_path)
        vm = VirtualMachine("vm1", 100 * PAGE, host="h")
        b = mgr.register_vm(vm, Cgroup("vm1", 50 * PAGE), dev)
        b.writeback_backlog = 4 * PAGE
        mgr.pre_tick(0.1)
        assert b.write_queue.demand == 4 * PAGE
        # the arbiter never runs (server lost) — the demand sits there;
        # an engine then forgives the debt (e.g. migration teardown)
        b.writeback_backlog = 0.0
        mgr.pre_tick(0.1)
        assert b.write_queue.demand == 0.0


def test_batch_slot_growth_and_reuse():
    """Interning past the initial capacity grows the arrays; removal
    recycles slots without leaking state into the next occupant."""
    dev = SSDSwapDevice("ssd")
    mgr = HostMemoryManager("h", 1024 * MiB, host_os_bytes=1 * MiB,
                            fast_path=True)
    batch = mgr._batch
    assert isinstance(batch, HostCommitBatch)
    bindings = {}
    for i in range(20):  # > initial capacity of 8, forces growth
        vm = VirtualMachine(f"vm{i}", 100 * PAGE, host="h")
        bindings[i] = mgr.register_vm(vm, Cgroup(f"vm{i}", 50 * PAGE), dev)
    assert batch.n_active == 20
    slot = bindings[3]._slot
    bindings[3].writeback_backlog = 7 * PAGE
    mgr.unregister_vm("vm3")
    assert not batch.active[slot]
    assert batch.backlog[slot] == 0.0
    vm = VirtualMachine("vm20", 100 * PAGE, host="h")
    b20 = mgr.register_vm(vm, Cgroup("vm20", 50 * PAGE), dev)
    assert b20._slot == slot  # recycled
    assert b20.writeback_backlog == 0.0
    assert batch.seq[slot] == 20  # fresh sequence, not vm3's (seq 3)


def test_writeback_backlog_proxy_spans_attachment():
    """The binding's backlog survives detach/re-attach (migration
    engines re-key bindings between hosts)."""
    dev = SSDSwapDevice("ssd")
    mgr = HostMemoryManager("h", 10 * MiB, host_os_bytes=1 * MiB,
                            fast_path=True)
    vm = VirtualMachine("vm1", 100 * PAGE, host="h")
    b = mgr.register_vm(vm, Cgroup("vm1", 50 * PAGE), dev)
    b.writeback_backlog = 5 * PAGE
    assert mgr._batch.backlog[b._slot] == 5 * PAGE
    mgr._batch.remove(b._slot)
    assert b._batch is None
    b.writeback_backlog = 3 * PAGE  # detached: plain attribute
    assert b._backlog == 3 * PAGE
    mgr._batch.add(b)
    assert b.writeback_backlog == 3 * PAGE  # carried into the new slot


def test_scenario_fast_vs_oracle_identical():
    """End-to-end witness: the full datacenter rebalance scenario makes
    identical decisions under both implementations — same planner log,
    same outcomes, same availability accounting."""
    from repro.experiments.datacenter import (
        DatacenterConfig, datacenter_run, honeypot_schedule)

    def run():
        res = datacenter_run(honeypot_schedule(),
                             DatacenterConfig(seed=0), until=8.0)
        return {k: res[k] for k in ("outcomes", "failed_or_aborted",
                                    "unavailable_s", "dead_vms",
                                    "plan_log", "deferrals")}

    saved = HostMemoryManager.DEFAULT_FAST_PATH
    try:
        HostMemoryManager.DEFAULT_FAST_PATH = True
        fast = run()
        HostMemoryManager.DEFAULT_FAST_PATH = False
        oracle = run()
    finally:
        HostMemoryManager.DEFAULT_FAST_PATH = saved
    assert fast == oracle
