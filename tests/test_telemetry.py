"""Unit tests for repro.telemetry: instruments, registry semantics,
exporters (byte-identity), the dashboard, and the pressure index."""

import math

import numpy as np
import pytest

from repro.cluster.world import World
from repro.telemetry import (
    NULL_METRICS,
    MetricsRegistry,
    NullRegistry,
    PressureConfig,
    PressureIndex,
    SloMonitor,
    SloSpec,
    metrics_snapshot,
    metrics_to_jsonl,
    metrics_to_prometheus,
    prometheus_text,
    render_dashboard,
    slo_aware_selector,
)
from repro.telemetry.instruments import NULL_INSTRUMENT
from repro.util import MiB


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- null semantics -------------------------------------------------------------

def test_null_registry_is_inert():
    assert NULL_METRICS.enabled is False
    assert NULL_METRICS.counter("x") is NULL_INSTRUMENT
    assert NULL_METRICS.gauge("x") is NULL_INSTRUMENT
    assert NULL_METRICS.histogram("x") is NULL_INSTRUMENT
    assert NULL_METRICS.rate("x") is NULL_INSTRUMENT
    # one-shots and instrument methods are no-ops, not errors
    NULL_METRICS.inc("x")
    NULL_METRICS.set("x", 1.0)
    NULL_METRICS.observe("x", 1.0)
    NULL_METRICS.mark("x")
    NULL_INSTRUMENT.inc()
    NULL_INSTRUMENT.set(3.0)
    NULL_INSTRUMENT.observe(3.0)
    NULL_INSTRUMENT.mark()
    assert NULL_METRICS.instruments() == []
    assert isinstance(MetricsRegistry(), NullRegistry)  # substitutable


# -- instruments ----------------------------------------------------------------

def test_counter_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("migration.attempts")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_history_follows_clock():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    g = reg.gauge("pressure.cluster")
    assert g.value == 0.0 and g.count == 0
    for t, v in ((1.0, 0.25), (2.0, 0.5), (3.0, 0.1)):
        clock.now = t
        g.set(v)
    assert g.value == 0.1
    assert g.t == [1.0, 2.0, 3.0]
    assert g.v == [0.25, 0.5, 0.1]


def test_histogram_exact_quantiles_and_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for v in range(1, 101):
        h.observe(float(v))
    assert h.count == 100
    assert h.sum == pytest.approx(5050.0)
    assert h.max == 100.0
    q = h.quantiles()
    assert q["p50"] == pytest.approx(np.percentile(np.arange(1.0, 101), 50))
    assert q["p95"] == pytest.approx(np.percentile(np.arange(1.0, 101), 95))
    buckets = h.buckets()
    assert buckets[-1] == (float("inf"), 100)
    les = [le for le, _ in buckets]
    assert les == sorted(les)
    # cumulative counts are non-decreasing and hit every sample
    counts = [n for _, n in buckets]
    assert counts == sorted(counts)
    # le=10 holds exactly the 10 samples <= 10
    by_le = dict(buckets)
    assert by_le[10.0] == 10


def test_histogram_empty_and_growth():
    h = MetricsRegistry().histogram("x")
    assert h.count == 0 and h.sum == 0.0 and h.max == 0.0
    assert h.percentile(50) == 0.0
    assert h.buckets() == [(float("inf"), 0)]
    for i in range(200):  # crosses the initial 64-slot buffer twice
        h.observe(float(i))
    assert h.count == 200 and h.values.size == 200


def test_windowed_rate_trailing_eviction():
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    r = reg.rate("net.bytes", window_s=10.0)
    clock.now = 1.0
    r.mark(100.0)
    clock.now = 5.0
    r.mark(300.0)
    assert r.rate == pytest.approx(40.0)  # 400 over a 10 s window
    clock.now = 12.0  # the t=1 mark ages out
    assert r.rate == pytest.approx(30.0)
    assert r.total == 400.0  # lifetime total never evicts


# -- registry semantics ---------------------------------------------------------

def test_registry_getters_idempotent_and_typed():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    with pytest.raises(TypeError):
        reg.gauge("a")
    reg.inc("b", 2.0)
    reg.set("c", 1.0)
    reg.observe("d", 5.0)
    reg.mark("e", 3.0)
    assert [i.name for i in reg.instruments()] == list("abcde")
    assert len(reg) == 5 and "a" in reg and "zz" not in reg
    assert reg.get("b").value == 2.0
    assert reg.get("zz") is None


# -- exporters ------------------------------------------------------------------

def populated_registry() -> MetricsRegistry:
    clock = FakeClock()
    reg = MetricsRegistry(clock=clock)
    for t in range(5):
        clock.now = float(t)
        reg.inc("mig.bytes", 1000.0)
        reg.set("pressure", 0.1 * t)
        reg.observe("downtime_s", 0.1 + 0.2 * t)
        reg.mark("ops", 50.0)
    return reg


def test_snapshot_shape():
    snap = metrics_snapshot(populated_registry())
    assert snap["kind"] == "metrics" and snap["t"] == 4.0
    by_name = {d["name"]: d for d in snap["instruments"]}
    assert by_name["mig.bytes"]["type"] == "counter"
    assert by_name["mig.bytes"]["value"] == 5000.0
    assert by_name["pressure"]["samples"] == 5
    assert by_name["downtime_s"]["count"] == 5
    assert by_name["downtime_s"]["buckets"][-1][0] == "+Inf"
    assert by_name["ops"]["total"] == 250.0


def test_jsonl_export_byte_identical(tmp_path):
    p1 = metrics_to_jsonl(populated_registry(), tmp_path / "a.jsonl")
    p2 = metrics_to_jsonl(populated_registry(), tmp_path / "b.jsonl")
    b1, b2 = p1.read_bytes(), p2.read_bytes()
    assert b1 == b2
    lines = b1.decode().splitlines()
    assert len(lines) == 1 + 4  # header + one line per instrument
    assert '"instruments":4' in lines[0]


def test_prometheus_text_format(tmp_path):
    reg = populated_registry()
    text = prometheus_text(reg)
    assert "# TYPE repro_mig_bytes_total counter" in text
    assert "repro_mig_bytes_total 5000" in text
    assert "# TYPE repro_pressure gauge" in text
    assert '_bucket{le="+Inf"} 5' in text
    assert 'repro_downtime_s{quantile="0.5"}' in text
    assert "repro_ops_per_s" in text
    path = metrics_to_prometheus(reg, tmp_path / "m.prom")
    assert path.read_text() == text
    assert prometheus_text(MetricsRegistry()) == ""


# -- dashboard ------------------------------------------------------------------

def test_dashboard_renders_all_sections():
    out = render_dashboard(populated_registry(), width=20)
    assert "gauges" in out and "counters" in out
    assert "rates" in out and "histograms" in out
    assert "pressure" in out and "mig.bytes" in out
    # gauge sparkline pinned to the requested width
    spark_line = next(ln for ln in out.splitlines() if "pressure" in ln)
    assert spark_line.count("|") == 2


def test_dashboard_select_and_empty():
    reg = populated_registry()
    out = render_dashboard(reg, select="mig.*")
    assert "mig.bytes" in out and "pressure" not in out
    assert render_dashboard(MetricsRegistry()) == "  (no instruments)"


# -- world integration ----------------------------------------------------------

def small_world(metrics=None) -> World:
    from repro.cluster.setup import preload_dataset
    w = World(dt=0.1, seed=1, net_bandwidth_bps=10e6, metrics=metrics)
    w.add_host("h1", 64 * MiB, host_os_bytes=2 * MiB)
    w.add_host("h2", 64 * MiB, host_os_bytes=2 * MiB)
    ssd = w.add_ssd("ssd", read_bps=20e6, write_bps=10e6)
    vm = w.add_vm("vm1", 16 * MiB, "h1")
    w.hosts["h1"].place_vm(vm, 16 * MiB, ssd)
    preload_dataset(vm, w.manager_of("h1"), 16 * MiB)
    return w


def test_world_binds_clock_and_publishes_memory_gauges():
    reg = MetricsRegistry()
    w = small_world(metrics=reg)
    w.start_usage_feed(0.5)
    w.run(until=2.0)
    assert reg.clock() == w.sim.now
    g = reg.get("mem.host.h1.used_bytes")
    assert g is not None and g.value > 0


def test_world_defaults_to_null_metrics():
    w = small_world()
    assert w.metrics is NULL_METRICS
    w.run(until=1.0)


def test_pressure_index_publishes_scalars():
    reg = MetricsRegistry()
    w = small_world(metrics=reg)
    idx = PressureIndex(w, config=PressureConfig(interval_s=0.5))
    w.run(until=3.0)
    assert set(idx.hosts) == {"h1", "h2"}
    for p in idx.hosts.values():
        assert 0.0 <= p <= 1.0
    # h1 carries the VM, h2 is empty: memory pressure must order them
    assert idx.hosts["h1"] > idx.hosts["h2"]
    assert reg.get("pressure.cluster").value == pytest.approx(idx.cluster)
    assert idx.cluster == pytest.approx(
        (idx.hosts["h1"] + idx.hosts["h2"]) / 2)
    idx.stop()


# -- SLO monitor ----------------------------------------------------------------

def test_slo_spec_validation():
    with pytest.raises(ValueError):
        SloSpec(min_throughput=-1.0)
    with pytest.raises(ValueError):
        SloSpec(max_latency_s=0.0)
    assert SloSpec().max_latency_s == math.inf


def test_slo_monitor_attach_rejects_duplicates():
    w = small_world()
    mon = SloMonitor(w)
    mon.attach("vm1", SloSpec(min_throughput=1.0))
    with pytest.raises(ValueError):
        mon.attach("vm1", SloSpec())
    assert mon.protected() == frozenset({"vm1"})
    mon.stop()


def test_slo_monitor_accrues_violation_seconds():
    reg = MetricsRegistry()
    w = small_world(metrics=reg)
    mon = SloMonitor(w, interval_s=1.0)
    mon.attach("vm1", SloSpec(min_throughput=100.0), threads=4.0)
    # a throughput series below the floor for the whole run
    def feed(now):
        w.recorder.record("vm1.throughput", now, 10.0)
    from repro.sim.periodic import PeriodicTask
    PeriodicTask(w.sim, 0.1, feed)
    w.run(until=5.0)
    assert mon.total_violation_s >= 3.0
    assert mon.violation_seconds()["vm1"] == mon.total_violation_s
    # nothing in flight: the cause ledger says so
    assert set(mon.attribution()["vm1"]) == {"unattributed"}
    assert reg.get("slo.vm1.throughput").value == pytest.approx(10.0)
    assert reg.get("slo.violation_s").value == mon.total_violation_s
    mon.stop()


def test_slo_aware_selector_prefers_unprotected():
    w = small_world()
    mon = SloMonitor(w)
    mon.attach("srv", SloSpec(min_throughput=1.0))
    select = slo_aware_selector(mon)
    wss = {"srv": 30.0, "b0": 20.0, "b1": 10.0}
    # needs 25 shed: unprotected b0 (20) + b1 (10) before touching srv
    assert select(wss, 35.0) == ["b0", "b1"]
    # needs everything: protected tenants go last
    assert select(wss, 5.0) == ["b0", "b1", "srv"]
    # under target: nothing to shed
    assert select(wss, 100.0) == []
    mon.stop()


def test_net_utilization_zero_capacity_is_full_pressure():
    """A NIC degraded to zero capacity reads as saturated (1.0) even
    with zero granted bytes — 0/0 must not report an idle link."""
    w = small_world()
    idx = PressureIndex(w, config=PressureConfig(interval_s=0.5))
    assert idx._net_utilization({}, "h1") == 0.0
    nic = w.network.nic("h1")
    nic.tx.degrade(0.0)
    nic.rx.degrade(0.0)
    assert idx._net_utilization({}, "h1") == 1.0
    # out-of-network hosts carry no net pressure
    assert idx._net_utilization({}, "ghost") == 0.0
    nic.tx.restore()
    nic.rx.restore()
    idx.stop()


def test_granted_by_host_sees_aggregated_flows():
    """Per-host (tx, rx) accounting must be identical whether the
    arbiter ran the aggregated fill or the per-flow reference — flow
    grants are the telemetry contract, not arbiter internals."""
    from repro.net import Network
    w = small_world()
    idx = PressureIndex(w, config=PressureConfig(interval_s=0.5))
    ref = Network(default_bandwidth_bps=10e6, fast_path=False)
    for h in ("h1", "h2"):
        ref.add_host(h)
    # 16 parallel lanes h1->h2 in one class: enough to clear the
    # scalar-batch cutoff, so the default network aggregates them
    assert w.network.aggregate
    ref_flows = []
    for k in range(16):
        w.network.open_flow("h1", "h2", priority=1, name=f"lane{k}")
        ref_flows.append(ref.open_flow("h1", "h2", priority=1))
    for f in w.network.flows:
        f.demand = 2e5
    for f in ref_flows:
        f.demand = 2e5
    w.network.arbitrate(0.1)
    ref.arbitrate(0.1)
    granted = idx._granted_by_host()
    tx1, rx1 = granted["h1"]
    assert tx1 == sum(f.granted for f in ref_flows)
    assert rx1 == 0.0
    assert granted["h2"] == (0.0, tx1)
    # and the utilization term folds it per-direction
    assert idx._net_utilization(granted, "h1") == pytest.approx(
        tx1 / w.network.nic("h1").tx.capacity_per_tick(0.1))
    idx.stop()
