"""Smoke test: every script in examples/ must run to completion
in-process (heavy ones via their ``--quick`` mode)."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: extra argv for scripts whose full run takes minutes
QUICK_ARGS = {"memory_pressure_relief.py": ["--quick"]}

SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_dir_is_nonempty():
    assert SCRIPTS, f"no examples found in {EXAMPLES_DIR}"


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, monkeypatch, tmp_path):
    path = EXAMPLES_DIR / script
    # artifacts (trace files etc.) land in the temp dir, not the repo
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(sys, "argv",
                        [str(path)] + QUICK_ARGS.get(script, []))
    out = io.StringIO()
    with redirect_stdout(out):
        runpy.run_path(str(path), run_name="__main__")
    assert out.getvalue().strip(), f"{script} produced no output"
