"""Tests for metrics export (CSV/JSON serialization)."""

import csv
import json

import pytest

from repro.core.base import MigrationReport
from repro.metrics import (
    Recorder,
    TimeSeries,
    recorder_to_csv,
    recorder_to_json,
    report_to_dict,
    series_to_csv,
)


def sample_recorder():
    r = Recorder()
    for t in range(5):
        r.record("vm0.throughput", float(t), float(t * 10))
        r.record("vm0.reservation", float(t), 100.0 - t)
    return r


def test_report_to_dict_includes_derived_fields():
    rep = MigrationReport("agile", "vm0", start_time=1.0)
    rep.end_time = 11.0
    rep.precopy_bytes = 100.0
    rep.metadata_bytes = 1.0
    d = report_to_dict(rep)
    assert d["technique"] == "agile"
    assert d["total_bytes"] == 101.0
    assert d["total_time"] == 10.0
    json.dumps(d)  # must be JSON-serializable


def test_series_to_csv_roundtrip(tmp_path):
    s = TimeSeries("tput")
    s.append(0.5, 1.25)
    s.append(1.0, 2.5)
    path = series_to_csv(s, tmp_path / "s.csv")
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["t", "tput"]
    assert float(rows[1][1]) == 1.25
    assert float(rows[2][0]) == 1.0


def test_recorder_to_csv_long_form(tmp_path):
    path = recorder_to_csv(sample_recorder(), tmp_path / "all.csv")
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["series", "t", "value"]
    names = {r[0] for r in rows[1:]}
    assert names == {"vm0.throughput", "vm0.reservation"}
    assert len(rows) == 1 + 10


def test_recorder_to_csv_selected_names(tmp_path):
    path = recorder_to_csv(sample_recorder(), tmp_path / "sel.csv",
                           names=["vm0.throughput"])
    rows = list(csv.reader(path.open()))
    assert len(rows) == 1 + 5


def test_series_to_csv_empty_series(tmp_path):
    path = series_to_csv(TimeSeries("empty"), tmp_path / "e.csv")
    rows = list(csv.reader(path.open()))
    assert rows == [["t", "empty"]]


def test_recorder_to_csv_empty_recorder(tmp_path):
    path = recorder_to_csv(Recorder(), tmp_path / "e.csv")
    rows = list(csv.reader(path.open()))
    assert rows == [["series", "t", "value"]]


def test_recorder_to_json_empty_recorder(tmp_path):
    path = recorder_to_json(Recorder(), tmp_path / "e.json")
    doc = json.loads(path.read_text())
    assert doc["series"] == {}
    assert "reports" not in doc


def test_csv_roundtrip_preserves_float_precision(tmp_path):
    s = TimeSeries("x")
    s.append(1 / 3, 0.1 + 0.2)  # values repr() must round-trip exactly
    path = series_to_csv(s, tmp_path / "p.csv")
    _, row = list(csv.reader(path.open()))
    assert float(row[0]) == s.t[0]
    assert float(row[1]) == s.v[0]


def test_recorder_to_json_with_reports(tmp_path):
    rep = MigrationReport("pre-copy", "vm0")
    rep.end_time = 5.0
    path = recorder_to_json(sample_recorder(), tmp_path / "doc.json",
                            reports={"vm0": rep})
    doc = json.loads(path.read_text())
    assert doc["series"]["vm0.throughput"]["v"] == [0.0, 10.0, 20.0, 30.0,
                                                    40.0]
    assert doc["reports"]["vm0"]["technique"] == "pre-copy"
