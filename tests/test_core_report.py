"""Tests for migration reports, config, and the incoming image."""

import pytest

from repro.core.base import (
    IncomingImage,
    MigrationConfig,
    MigrationReport,
)
from repro.vm import VirtualMachine


def test_report_total_bytes_sums_all_channels():
    r = MigrationReport("agile", "vm0")
    r.precopy_bytes = 100.0
    r.stopcopy_bytes = 10.0
    r.push_bytes = 20.0
    r.demand_bytes = 5.0
    r.metadata_bytes = 1.0
    assert r.total_bytes == 136.0


def test_report_total_time_requires_end():
    r = MigrationReport("pre-copy", "vm0", start_time=10.0)
    assert r.total_time is None
    r.end_time = 35.0
    assert r.total_time == 25.0


def test_config_defaults_sane():
    cfg = MigrationConfig()
    assert cfg.demand_priority < cfg.bulk_priority
    assert cfg.backlog_cap_bytes > 0
    assert cfg.max_rounds >= 1


def test_incoming_image_mirrors_vm_geometry():
    vm = VirtualMachine("vm7", 64 * 4096, page_size=4096)
    image = IncomingImage(vm)
    assert image.name == "vm7.incoming"
    assert image.pages.n_pages == vm.n_pages
    assert image.pages.page_size == vm.pages.page_size
    # a fresh, empty destination address space
    assert image.pages.allocated_pages() == 0


def test_migration_progress_series_recorded():
    from repro.util import MiB
    from tests.test_migration import make_lab

    lab = make_lab("agile", vm_mib=16, reservation_mib=32)
    lab.run_until_migrated(start=2.0, limit=200.0)
    series = lab.world.recorder.series("migration.vm0.bytes")
    assert len(series) > 3
    # cumulative bytes are monotone non-decreasing
    import numpy as np
    assert np.all(np.diff(series.v) >= 0)
    assert series.v[-1] == pytest.approx(lab.report.total_bytes, rel=0.01)
