"""Tests for shared utilities (max-min fair sharing)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import fair_share


def test_empty_demands():
    assert fair_share([], 100).size == 0


def test_all_satisfied_when_capacity_ample():
    assert fair_share([10, 20, 30], 100).tolist() == [10.0, 20.0, 30.0]


def test_equal_split_when_all_greedy():
    assert fair_share([100, 100, 100], 90).tolist() == [30.0, 30.0, 30.0]


def test_small_demand_satisfied_leftover_shared():
    got = fair_share([10, 100, 100], 90)
    assert got.tolist() == [10.0, 40.0, 40.0]


def test_zero_capacity():
    assert fair_share([5, 5], 0).tolist() == [0.0, 0.0]


def test_zero_demand_gets_zero():
    got = fair_share([0, 50], 30)
    assert got.tolist() == [0.0, 30.0]


def test_negative_demand_rejected():
    with pytest.raises(ValueError):
        fair_share([-1, 5], 10)


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        fair_share([1], -1)


@given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=20),
       st.floats(min_value=0, max_value=1e9))
def test_fair_share_properties(demands, capacity):
    grants = fair_share(demands, capacity)
    d = np.asarray(demands)
    # never exceed demand
    assert np.all(grants <= d + 1e-6)
    # never exceed capacity
    assert grants.sum() <= capacity + 1e-3
    # work-conserving: uses min(capacity, total demand)
    assert grants.sum() == pytest.approx(min(capacity, d.sum()), rel=1e-6,
                                         abs=1e-6)


@given(st.lists(st.floats(min_value=1, max_value=1e6), min_size=2,
                max_size=10),
       st.floats(min_value=1, max_value=1e6))
def test_fair_share_max_min_fairness(demands, capacity):
    """No grant can exceed another unsatisfied flow's grant (max-min)."""
    grants = fair_share(demands, capacity)
    d = np.asarray(demands)
    unsat = grants < d - 1e-9
    if np.any(unsat):
        floor = grants[unsat].min()
        # every grant above the floor must be a fully-satisfied small demand
        above = grants > floor + 1e-6
        assert not np.any(above & unsat)
        assert np.all(grants[above] <= d[above] + 1e-9)
