"""Integration tests: tracing through the full stack.

A traced datacenter rebalance must export a valid Chrome trace carrying
every event family the instrumentation promises (migration phases,
planner decisions, faults, VMD ops, network transfers), and — because
every timestamp is sim time — two same-seed runs must serialize to
byte-identical documents.
"""

import json

import pytest

from repro.experiments.datacenter import (
    DatacenterConfig,
    datacenter_run,
    honeypot_schedule,
)
from repro.obs import (
    Tracer,
    chrome_trace_doc,
    missing_categories,
    spans_of,
    trace_to_chrome,
    validate_chrome_trace,
)

REQUIRED_CATS = ["migration", "phase", "planner", "fault", "vmd", "net"]


@pytest.fixture(scope="module")
def traced_dc():
    tracer = Tracer()
    res = datacenter_run(honeypot_schedule(), DatacenterConfig(),
                         until=30.0, tracer=tracer)
    tracer.finish()
    return tracer, res


def test_trace_is_valid_chrome(traced_dc):
    tracer, _ = traced_dc
    doc = chrome_trace_doc(tracer)
    assert validate_chrome_trace(doc) == []
    assert missing_categories(doc, REQUIRED_CATS) == []


def test_migration_spans_carry_outcomes(traced_dc):
    tracer, res = traced_dc
    migs = [s for s in spans_of(tracer) if s.cat == "migration"]
    assert migs, "no migration spans traced"
    completed = sum(1 for s in migs if s.args.get("outcome") == "completed")
    assert completed == res["outcomes"].get("completed", 0)
    for s in migs:
        assert s.track.startswith("vm:")
        assert s.args.get("src") and s.args.get("dst")
        assert s.t1 >= s.t0


def test_phase_spans_nest_inside_migrations(traced_dc):
    tracer, _ = traced_dc
    spans = spans_of(tracer)
    migs = [s for s in spans if s.cat == "migration"]
    for ph in (s for s in spans
               if s.cat == "phase" and s.track.startswith("vm:")):
        assert any(m.track == ph.track
                   and m.t0 <= ph.t0 and ph.t1 <= m.t1 + 1e-9
                   for m in migs), f"orphan phase span {ph}"


def test_planner_decisions_carry_candidates(traced_dc):
    tracer, _ = traced_dc
    plans = [e for e in tracer.events
             if e.cat == "planner" and e.name == "plan"]
    assert plans
    for ev in plans:
        assert ev.args["dst"]
        cands = ev.args["candidates"]
        assert any(c["dst"] == ev.args["dst"] for c in cands)
        # the winner is the best-scoring candidate
        assert ev.args["score"] == max(c["score"] for c in cands)


def test_fault_spans_match_schedule(traced_dc):
    tracer, _ = traced_dc
    crashes = [s for s in spans_of(tracer)
               if s.cat == "fault" and s.name == "rack-crash"]
    # honeypot schedule: two rack crashes on r2 (second truncated by
    # finish() at t=30)
    assert [s.t0 for s in crashes] == [0.5, 11.5]
    assert all(s.args["target"] == "r2" for s in crashes)


def test_vmd_and_net_events_present(traced_dc):
    tracer, _ = traced_dc
    assert any(e.cat == "vmd" and e.name == "create-namespace"
               for e in tracer.events)
    xfers = [s for s in spans_of(tracer) if s.cat == "net"]
    assert xfers
    assert all(s.args.get("bytes", 0) > 0 for s in xfers)


def test_same_seed_traces_are_byte_identical(tmp_path):
    def run(path):
        tracer = Tracer()
        datacenter_run(honeypot_schedule(), DatacenterConfig(),
                       until=12.0, tracer=tracer)
        tracer.finish()
        return trace_to_chrome(tracer, path)

    a = run(tmp_path / "a.json")
    b = run(tmp_path / "b.json")
    assert a.read_bytes() == b.read_bytes()


def test_different_seed_traces_differ(tmp_path):
    def run(path, seed):
        tracer = Tracer()
        datacenter_run(honeypot_schedule(), DatacenterConfig(seed=seed),
                       until=12.0, tracer=tracer)
        tracer.finish()
        return trace_to_chrome(tracer, path)

    a = run(tmp_path / "a.json", 0)
    b = run(tmp_path / "b.json", 1)
    # sanity check that byte-identity above is not vacuous: with RNG in
    # the loop, some run actually consults it. Equal is allowed (the
    # scenario is mostly deterministic ramps) but both must be valid.
    assert validate_chrome_trace(json.loads(a.read_text())) == []
    assert validate_chrome_trace(json.loads(b.read_text())) == []


def test_untraced_run_is_unchanged():
    # NullTracer default: same outcome counters with zero trace state
    res = datacenter_run(honeypot_schedule(), DatacenterConfig(),
                         until=12.0)
    tracer = Tracer()
    res2 = datacenter_run(honeypot_schedule(), DatacenterConfig(),
                          until=12.0, tracer=tracer)
    assert res["outcomes"] == res2["outcomes"]
    assert res["plan_log"] == res2["plan_log"]


def test_cluster_bench_reports_profile():
    from repro.perf.scale import ScaleConfig, cluster_bench
    res = cluster_bench(ScaleConfig.quick())
    prof = res["profile"]
    assert prof["measured_s"] > 0.0
    assert "planner.pump" in prof["sections"]
    assert any(name.startswith("arbitrate.") for name in prof["sections"])
    assert "tick.commit" in prof["sections"]
    json.dumps(prof)


def test_cluster_bench_profile_optional():
    from repro.perf.scale import ScaleConfig, cluster_bench
    res = cluster_bench(ScaleConfig.quick(), profile=False)
    assert "profile" not in res
