"""Tests for terminal rendering helpers."""

from repro.metrics import TimeSeries
from repro.metrics.ascii import (
    format_table,
    render_series,
    span_timeline,
    sparkline,
)


def test_sparkline_monotone():
    line = sparkline(list(range(100)), width=10)
    assert len(line) == 10
    assert line[0] in " .:"
    assert line[-1] in "%@"
    # density is non-decreasing for a monotone series
    blocks = " .:-=+*#%@"
    levels = [blocks.index(c) for c in line]
    assert levels == sorted(levels)


def test_sparkline_empty_and_flat():
    assert sparkline([]) == ""
    assert sparkline([0.0, 0.0], width=5) == "  "


def test_sparkline_short_input():
    assert len(sparkline([1.0, 2.0], width=70)) == 2


def test_render_series():
    s = TimeSeries("x")
    for i in range(50):
        s.append(float(i), float(i))
    out = render_series(s, 0.0, 50.0, width=20, label="ops")
    assert out.startswith("  ops")
    assert "max=4" in out  # bucketed mean of the top bucket
    assert "|" in out


def test_render_series_empty_window():
    s = TimeSeries("x")
    s.append(100.0, 5.0)
    out = render_series(s, 0.0, 50.0, width=10, label="y")
    assert "(empty)" in out


def test_format_table_alignment():
    lines = format_table(["name", "value"],
                         [["pre-copy", 470.0], ["agile", 108.0]])
    assert len(lines) == 3
    assert "pre-copy" in lines[1]
    assert lines[1].index("470.0") > lines[1].index("pre-copy")
    # numeric cells right-aligned under their column
    assert lines[1].endswith("470.0")


def test_format_table_empty_rows():
    lines = format_table(["a", "b"], [])
    assert len(lines) == 1


def test_span_timeline_empty():
    assert span_timeline([]) == ["  (no spans)"]


def test_span_timeline_bar_placement():
    lines = span_timeline([("a", 0.0, 5.0), ("b", 5.0, 10.0)], width=10)
    assert len(lines) == 3  # axis + two rows
    bar_a = lines[1].split("|")[1]
    bar_b = lines[2].split("|")[1]
    assert bar_a == "#####     "
    assert bar_b == "     #####"
    assert lines[1].endswith("0.00-5.00s")


def test_span_timeline_explicit_axis_clips():
    # span extends past t1: bar is clipped to the axis, label intact
    (axis, row) = span_timeline([("x", 2.0, 20.0)], t0=0.0, t1=10.0,
                                width=10)
    assert "0.00" in axis and "10.00s" in axis
    bar = row.split("|")[1]
    assert bar == "  ########"
    assert row.endswith("2.00-20.00s")


def test_span_timeline_zero_duration_gets_min_width_bar():
    (_, row) = span_timeline([("p", 3.0, 3.0)], t0=0.0, t1=10.0, width=10)
    assert row.split("|")[1].count("#") == 1


def test_span_timeline_label_truncation():
    long = "x" * 100
    (_, row) = span_timeline([(long, 0.0, 1.0)], label_width=8)
    assert row.startswith("  " + "x" * 8 + "|")
