"""Tests for per-VM page state arrays."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import PageSet


def idx(*vals):
    return np.asarray(vals, dtype=np.int64)


def test_initial_state_untouched():
    ps = PageSet(10)
    assert ps.resident_pages() == 0
    assert ps.swapped_pages() == 0
    assert ps.allocated_pages() == 0
    assert ps.total_bytes == 10 * 4096


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        PageSet(0)
    with pytest.raises(ValueError):
        PageSet(4, page_size=0)


def test_make_resident_and_counts():
    ps = PageSet(10)
    ps.make_resident(idx(1, 3, 5), tick=7)
    assert ps.resident_pages() == 3
    assert ps.resident_bytes() == 3 * 4096
    assert ps.last_access[3] == 7
    ps.check_invariants()


def test_resident_in_range():
    ps = PageSet(10)
    ps.make_resident(idx(0, 1, 2, 8), tick=0)
    assert ps.resident_in(0, 4) == 3
    assert ps.resident_in(4, 10) == 1


def test_swap_out_sets_clean_copy():
    ps = PageSet(4)
    ps.make_resident(idx(0, 1), tick=0)
    ps.swap_out(idx(0))
    assert ps.swapped[0] and not ps.present[0]
    assert ps.swap_clean[0]
    ps.check_invariants()


def test_swap_in_preserves_swap_cache():
    ps = PageSet(4)
    ps.make_resident(idx(0), tick=0)
    ps.swap_out(idx(0))
    ps.make_resident(idx(0), tick=1)
    # swapped in, not re-dirtied: eviction would be free
    assert ps.present[0] and not ps.swapped[0] and ps.swap_clean[0]


def test_dirty_invalidates_swap_copy():
    ps = PageSet(4)
    ps.make_resident(idx(0), tick=0)
    ps.swap_out(idx(0))
    ps.make_resident(idx(0), tick=1)
    ps.mark_dirty(idx(0))
    assert ps.dirty[0] and not ps.swap_clean[0]


def test_fresh_page_has_no_swap_copy():
    ps = PageSet(4)
    ps.make_resident(idx(2), tick=0)
    assert not ps.swap_clean[2]


def test_drop_clears_everything():
    ps = PageSet(4)
    ps.make_resident(idx(0, 1), tick=0)
    ps.swap_out(idx(1))
    ps.drop(idx(0, 1))
    assert ps.allocated_pages() == 0
    assert not ps.swap_clean[1]


def test_clear_dirty():
    ps = PageSet(4)
    ps.make_resident(idx(0), tick=0)
    ps.mark_dirty(idx(0))
    ps.clear_dirty(idx(0))
    assert not ps.dirty[0]


def test_indices_queries():
    ps = PageSet(6)
    ps.make_resident(idx(0, 2), tick=0)
    ps.make_resident(idx(4), tick=0)
    ps.swap_out(idx(4))
    ps.mark_dirty(idx(2))
    assert ps.present_indices().tolist() == [0, 2]
    assert ps.swapped_indices().tolist() == [4]
    assert ps.dirty_indices().tolist() == [2]


def test_lru_candidates_picks_oldest():
    ps = PageSet(5)
    ps.make_resident(idx(0), tick=10)
    ps.make_resident(idx(1), tick=5)
    ps.make_resident(idx(2), tick=20)
    got = set(ps.lru_candidates(2).tolist())
    assert got == {0, 1}


def test_lru_candidates_respects_protect_mask():
    ps = PageSet(5)
    ps.make_resident(idx(0, 1, 2), tick=0)
    protect = np.zeros(5, dtype=bool)
    protect[0] = protect[1] = True
    got = ps.lru_candidates(3, protect=protect)
    assert got.tolist() == [2]


def test_lru_candidates_k_zero_or_empty():
    ps = PageSet(5)
    assert ps.lru_candidates(0).size == 0
    assert ps.lru_candidates(3).size == 0  # nothing resident


def test_non_present_in():
    ps = PageSet(6)
    ps.make_resident(idx(1, 2), tick=0)
    assert ps.non_present_in(0, 4).tolist() == [0, 3]


def test_sample_non_present_bounded_and_distinct():
    ps = PageSet(100)
    ps.make_resident(np.arange(50), tick=0)
    rng = np.random.default_rng(0)
    got = ps.sample_non_present(0, 100, 10, rng)
    assert got.size == 10
    assert len(set(got.tolist())) == 10
    assert np.all(~ps.present[got])


def test_sample_non_present_returns_all_when_few():
    ps = PageSet(10)
    ps.make_resident(np.arange(8), tick=0)
    rng = np.random.default_rng(0)
    got = ps.sample_non_present(0, 10, 5, rng)
    assert sorted(got.tolist()) == [8, 9]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["resident", "swap_out", "dirty",
                                           "drop"]),
                          st.integers(min_value=0, max_value=19)),
                max_size=60))
def test_invariants_hold_under_any_transition_sequence(ops):
    """Property: no operation sequence can violate PageSet invariants."""
    ps = PageSet(20)
    for op, page in ops:
        i = idx(page)
        if op == "resident":
            ps.make_resident(i, tick=0)
        elif op == "swap_out":
            if ps.present[page]:
                ps.swap_out(i)
        elif op == "dirty":
            if ps.present[page]:
                ps.mark_dirty(i)
        elif op == "drop":
            ps.drop(i)
        ps.check_invariants()
