"""Tests for the tick engine, periodic tasks, and RNG streams."""

import numpy as np
import pytest

from repro.sim import PeriodicTask, RngStreams, Simulator, TickEngine


class Recorder:
    """Minimal TickParticipant that logs phase invocations."""

    def __init__(self, log, name):
        self.log = log
        self.name = name

    def pre_tick(self, dt):
        self.log.append(("pre", self.name))

    def commit_tick(self, dt):
        self.log.append(("commit", self.name))


class NullArbiter:
    def __init__(self, log):
        self.log = log

    def arbitrate(self, dt):
        self.log.append(("arb", "a"))


def test_tick_engine_phase_ordering():
    sim = Simulator()
    eng = TickEngine(sim, dt=1.0)
    log = []
    eng.add_participant(Recorder(log, "p1"))
    eng.add_participant(Recorder(log, "p2"))
    eng.add_arbiter(NullArbiter(log))
    eng.start()
    sim.run(until=1.0)
    assert log == [("pre", "p1"), ("pre", "p2"), ("arb", "a"),
                   ("commit", "p1"), ("commit", "p2")]
    assert eng.tick_index == 1


def test_tick_engine_repeats():
    sim = Simulator()
    eng = TickEngine(sim, dt=0.5)
    ticks = []

    class P:
        def pre_tick(self, dt):
            pass

        def commit_tick(self, dt):
            ticks.append(sim.now)

    eng.add_participant(P())
    eng.start()
    sim.run(until=2.0)
    assert ticks == [0.5, 1.0, 1.5, 2.0]


def test_tick_engine_duplicate_participant_rejected():
    sim = Simulator()
    eng = TickEngine(sim, dt=1.0)
    p = Recorder([], "p")
    eng.add_participant(p)
    with pytest.raises(ValueError):
        eng.add_participant(p)


def test_tick_engine_start_idempotent():
    sim = Simulator()
    eng = TickEngine(sim, dt=1.0)
    count = []

    class P:
        def pre_tick(self, dt):
            pass

        def commit_tick(self, dt):
            count.append(1)

    eng.add_participant(P())
    eng.start()
    eng.start()
    sim.run(until=1.0)
    assert len(count) == 1


def test_tick_engine_rejects_bad_dt():
    with pytest.raises(ValueError):
        TickEngine(Simulator(), dt=0.0)


def test_periodic_task_fires_on_interval():
    sim = Simulator()
    times = []
    PeriodicTask(sim, 2.0, lambda now: times.append(now))
    sim.run(until=7.0)
    assert times == [2.0, 4.0, 6.0]


def test_periodic_task_cancel():
    sim = Simulator()
    times = []
    task = PeriodicTask(sim, 1.0, lambda now: times.append(now))
    sim.call_at(2.5, task.cancel)
    sim.run(until=10.0)
    assert times == [1.0, 2.0]


def test_periodic_task_interval_change():
    sim = Simulator()
    times = []
    task = PeriodicTask(sim, 1.0, lambda now: times.append(now))
    sim.call_at(2.0, lambda: task.set_interval(3.0))
    sim.run(until=9.0)
    # fires at 1, 2 with interval 1; interval becomes 3 at t=2 (after firing)
    assert times == [1.0, 2.0, 5.0, 8.0]


def test_periodic_task_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTask(sim, 0.0, lambda now: None)
    task = PeriodicTask(sim, 1.0, lambda now: None)
    with pytest.raises(ValueError):
        task.set_interval(-1.0)


def test_rng_streams_deterministic_across_instances():
    a = RngStreams(7).get("workload").random(5)
    b = RngStreams(7).get("workload").random(5)
    assert np.allclose(a, b)


def test_rng_streams_independent_of_creation_order():
    s1 = RngStreams(3)
    s1.get("x")
    first = s1.get("y").random(4)
    s2 = RngStreams(3)
    second = s2.get("y").random(4)  # "y" created first here
    assert np.allclose(first, second)


def test_rng_streams_distinct_names_distinct_sequences():
    s = RngStreams(1)
    assert not np.allclose(s.get("aaaaaaaa1").random(8),
                           s.get("aaaaaaaa2").random(8))


def test_rng_streams_seed_changes_sequences():
    a = RngStreams(1).get("w").random(4)
    b = RngStreams(2).get("w").random(4)
    assert not np.allclose(a, b)


def test_rng_streams_contains():
    s = RngStreams(0)
    assert "k" not in s
    s.get("k")
    assert "k" in s
