"""Unit tests for the flow-level network substrate."""

import pytest

from repro.net import ChannelClosed, Network, StreamChannel
from repro.sim import Simulator, TickEngine


def make_net(hosts=("a", "b", "c"), bw=100.0):
    """A network with small integral capacities for easy math (bytes/s)."""
    net = Network(default_bandwidth_bps=bw, latency_s=0.0)
    for h in hosts:
        net.add_host(h)
    return net


def test_add_host_and_lookup():
    net = make_net()
    assert net.has_host("a")
    assert not net.has_host("z")
    assert net.nic("a").tx.capacity_bps == 100.0


def test_duplicate_host_rejected():
    net = make_net()
    with pytest.raises(ValueError):
        net.add_host("a")


def test_unknown_host_flow_rejected():
    net = make_net()
    with pytest.raises(ValueError):
        net.open_flow("a", "nope")


def test_single_flow_gets_link_capacity():
    net = make_net()
    f = net.open_flow("a", "b")
    f.demand = 1000.0
    net.arbitrate(dt=1.0)
    assert f.granted == pytest.approx(100.0)


def test_demand_below_capacity_fully_granted():
    net = make_net()
    f = net.open_flow("a", "b")
    f.demand = 30.0
    net.arbitrate(dt=1.0)
    assert f.granted == pytest.approx(30.0)


def test_two_flows_share_tx_link_fairly():
    net = make_net()
    f1 = net.open_flow("a", "b")
    f2 = net.open_flow("a", "c")
    f1.demand = f2.demand = 1000.0
    net.arbitrate(dt=1.0)
    assert f1.granted == pytest.approx(50.0)
    assert f2.granted == pytest.approx(50.0)


def test_max_min_redistributes_unused_share():
    net = make_net()
    small = net.open_flow("a", "b")
    big = net.open_flow("a", "c")
    small.demand = 10.0
    big.demand = 1000.0
    net.arbitrate(dt=1.0)
    assert small.granted == pytest.approx(10.0)
    assert big.granted == pytest.approx(90.0)


def test_rx_link_is_also_a_bottleneck():
    net = make_net()
    f1 = net.open_flow("a", "c")
    f2 = net.open_flow("b", "c")
    f1.demand = f2.demand = 1000.0
    net.arbitrate(dt=1.0)
    # both flows share c.rx
    assert f1.granted + f2.granted == pytest.approx(100.0)
    assert f1.granted == pytest.approx(f2.granted)


def test_strict_priority_preempts():
    net = make_net()
    urgent = net.open_flow("a", "b", priority=0)
    bulk = net.open_flow("a", "b", priority=1)
    urgent.demand = 80.0
    bulk.demand = 1000.0
    net.arbitrate(dt=1.0)
    assert urgent.granted == pytest.approx(80.0)
    assert bulk.granted == pytest.approx(20.0)


def test_priority_leftover_goes_to_lower_class():
    net = make_net()
    urgent = net.open_flow("a", "b", priority=0)
    bulk = net.open_flow("a", "b", priority=1)
    urgent.demand = 5.0
    bulk.demand = 1000.0
    net.arbitrate(dt=1.0)
    assert urgent.granted == pytest.approx(5.0)
    assert bulk.granted == pytest.approx(95.0)


def test_intra_host_flow_unconstrained():
    net = make_net()
    f = net.open_flow("a", "a")
    f.demand = 1e9
    net.arbitrate(dt=1.0)
    assert f.granted == pytest.approx(1e9)


def test_closed_flow_reaped_and_ignored():
    net = make_net()
    f = net.open_flow("a", "b")
    f.close()
    other = net.open_flow("a", "b")
    other.demand = 1000.0
    net.arbitrate(dt=1.0)
    assert other.granted == pytest.approx(100.0)
    assert f not in net.flows


def test_total_bytes_accumulates():
    net = make_net()
    f = net.open_flow("a", "b")
    for _ in range(3):
        f.demand = 1000.0
        net.arbitrate(dt=1.0)
    assert f.total_bytes == pytest.approx(300.0)
    assert net.nic("a").tx.bytes_carried == pytest.approx(300.0)


def test_dt_scales_capacity():
    net = make_net()
    f = net.open_flow("a", "b")
    f.demand = 1000.0
    net.arbitrate(dt=0.1)
    assert f.granted == pytest.approx(10.0)


def test_rtt():
    net = Network(latency_s=0.001)
    net.add_host("a")
    assert net.rtt("a", "a") == 0.0
    net.add_host("b")
    assert net.rtt("a", "b") == pytest.approx(0.002)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        Network(default_bandwidth_bps=0)
    with pytest.raises(ValueError):
        Network(latency_s=-1)


# -- StreamChannel -----------------------------------------------------------

def setup_channel(bw=100.0, dt=1.0, priority=1, cap=None):
    sim = Simulator()
    net = make_net(bw=bw)
    eng = TickEngine(sim, dt=dt)
    eng.add_arbiter(net)
    chan = StreamChannel(sim, net, "a", "b", priority=priority,
                         demand_cap_bps=cap)
    eng.add_participant(chan)
    eng.start()
    return sim, net, eng, chan


def test_channel_delivers_job_and_fires_event():
    sim, net, eng, chan = setup_channel()
    ev = chan.send(250.0, info="blob", want_event=True)
    sim.run_until_event(ev, limit=100.0)
    # 250 bytes at 100 B/s -> 3 ticks (ends during tick at t=3)
    assert sim.now == pytest.approx(3.0)
    assert ev.value == "blob"
    assert chan.backlog == 0.0


def test_channel_jobs_complete_fifo():
    sim, net, eng, chan = setup_channel()
    order = []
    chan.send(100.0, info=1, on_complete=lambda j: order.append(j.info))
    chan.send(100.0, info=2, on_complete=lambda j: order.append(j.info))
    sim.run(until=5.0)
    assert order == [1, 2]


def test_channel_zero_byte_message_is_fifo_barrier():
    sim, net, eng, chan = setup_channel()
    order = []
    chan.send(100.0, on_complete=lambda j: order.append("data"))
    ev = chan.send(0.0, info="ctl", want_event=True,
                   on_complete=lambda j: order.append("ctl"))
    sim.run(until=2.0)
    assert ev.triggered and ev.value == "ctl"
    assert order == ["data", "ctl"]


def test_channel_demand_cap_throttles():
    sim, net, eng, chan = setup_channel(cap=10.0)  # 10 B/s self-cap
    ev = chan.send(50.0, want_event=True)
    sim.run_until_event(ev, limit=100.0)
    assert sim.now == pytest.approx(5.0)


def test_channel_close_drops_backlog():
    sim, net, eng, chan = setup_channel()
    chan.send(1000.0)
    chan.close()
    assert chan.backlog == 0.0
    with pytest.raises(RuntimeError):
        chan.send(1.0)
    sim.run(until=2.0)  # must not crash after close


def test_channel_negative_size_rejected():
    sim, net, eng, chan = setup_channel()
    with pytest.raises(ValueError):
        chan.send(-5.0)


def test_two_channels_share_bandwidth():
    sim = Simulator()
    net = make_net(bw=100.0)
    eng = TickEngine(sim, dt=1.0)
    eng.add_arbiter(net)
    c1 = StreamChannel(sim, net, "a", "b")
    c2 = StreamChannel(sim, net, "a", "b")
    eng.add_participant(c1)
    eng.add_participant(c2)
    eng.start()
    c1.send(500.0)
    c2.send(500.0)
    sim.run(until=10.0)
    assert c1.bytes_delivered == pytest.approx(500.0)
    assert c2.bytes_delivered == pytest.approx(500.0)


def test_channel_latency_delays_completion():
    sim = Simulator()
    net = Network(default_bandwidth_bps=100.0, latency_s=0.5)
    net.add_host("a")
    net.add_host("b")
    eng = TickEngine(sim, dt=1.0)
    eng.add_arbiter(net)
    chan = StreamChannel(sim, net, "a", "b")
    eng.add_participant(chan)
    eng.start()
    fired = []
    chan.send(100.0, on_complete=lambda j: fired.append(sim.now))
    sim.run(until=3.0)
    assert fired == [pytest.approx(1.5)]


def test_channel_close_fails_pending_job_events():
    sim = Simulator()
    net = make_net(bw=100.0)
    eng = TickEngine(sim, dt=1.0)
    eng.add_arbiter(net)
    chan = StreamChannel(sim, net, "a", "b")
    eng.add_participant(chan)
    eng.start()
    done = chan.send(1e6, want_event=True)  # far more than can drain
    caught = []

    def waiter():
        try:
            yield done
        except ChannelClosed as exc:
            caught.append(exc)

    sim.process(waiter())
    sim.call_in(2.5, chan.close)
    sim.run(until=10.0)
    assert done.failed
    assert len(caught) == 1  # the waiter woke instead of hanging forever


def test_channel_close_fails_job_in_latency_window():
    sim = Simulator()
    net = Network(default_bandwidth_bps=100.0, latency_s=0.5)
    net.add_host("a")
    net.add_host("b")
    eng = TickEngine(sim, dt=1.0)
    eng.add_arbiter(net)
    chan = StreamChannel(sim, net, "a", "b")
    eng.add_participant(chan)
    eng.start()
    done = chan.send(100.0, want_event=True)
    fired = []
    done.add_callback(lambda e: fired.append((sim.now, e.failed)))
    # last byte moves at the t=1.0 tick; delivery would land at t=1.5 —
    # the close at t=1.2 hits the propagation-latency window
    sim.call_in(1.2, chan.close)
    sim.run(until=5.0)
    assert fired == [(1.2, True)]
    assert isinstance(done.value, ChannelClosed)
    assert chan._landing == []  # no orphaned landing jobs


def test_rtt_topology_per_hop():
    from repro.sched.topology import Topology
    topo = Topology(uplink_bps=1e6, core_bps=2e6)
    topo.add_rack("r0")
    topo.add_rack("r1")
    topo.assign("a", "r0")
    topo.assign("b", "r0")
    topo.assign("c", "r1")
    net = Network(latency_s=0.001)
    net.set_topology(topo)
    for h in ("a", "b", "c", "ext"):
        net.add_host(h)
    assert net.hops("a", "a") == 0
    assert net.hops("a", "b") == 1  # same rack: one switch hop
    assert net.hops("a", "c") == 4  # + uplink, core, downlink
    assert net.hops("a", "ext") == 1  # endpoint outside the topology
    assert net.one_way_latency("a", "c") == pytest.approx(0.004)
    assert net.rtt("a", "b") == pytest.approx(0.002)
    assert net.rtt("a", "c") == pytest.approx(0.008)
    assert net.rtt("a", "a") == 0.0


def test_channel_completion_uses_per_hop_latency():
    from repro.sched.topology import Topology
    topo = Topology(uplink_bps=1e9)
    topo.add_rack("r0")
    topo.add_rack("r1")
    topo.assign("a", "r0")
    topo.assign("b", "r1")
    sim = Simulator()
    net = Network(default_bandwidth_bps=100.0, latency_s=0.5)
    net.set_topology(topo)
    net.add_host("a")
    net.add_host("b")
    eng = TickEngine(sim, dt=1.0)
    eng.add_arbiter(net)
    chan = StreamChannel(sim, net, "a", "b")
    eng.add_participant(chan)
    eng.start()
    fired = []
    chan.send(100.0, on_complete=lambda j: fired.append(sim.now))
    sim.run(until=5.0)
    # inter-rack, no core: 3 hops -> delivery at 1.0 + 3 * 0.5
    assert fired == [pytest.approx(2.5)]
