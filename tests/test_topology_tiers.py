"""Multi-tier topology: pods, AZs, tapered uplinks, nested fault
domains, and the planner/fleet spread that uses them.

The flat rack topology is the degenerate case and must behave exactly
as before the hierarchy existed — pod-less racks share the implicit
root pod/AZ, inter-rack paths still cross only the two ToR uplinks
(plus the optional core), and the planner's spread term reduces to the
old constant bonus. The new tiers add per-boundary bandwidth tapering
(a cross-pod flow pays the pod uplinks on top of the ToRs) and two
wider correlated-failure kinds: POD_CRASH and AZ_PARTITION.
"""

import pytest

from repro.cluster.world import World
from repro.faults import FaultKind, FaultSchedule, FaultSpec
from repro.fleet import DomainSpreadWeigher, RackSpreadWeigher
from repro.sched import HostHealth, HostHealthTracker, Topology
from repro.util import MiB
from repro.vm.vm import VmState


def tiny_tiered():
    """2 AZs x 2 pods x 2 racks, one host per rack."""
    topo = Topology.tiered(2, 2, 2, uplink_bps=8e6, oversubscription=2.0)
    for rack in topo.racks:
        topo.assign(f"{rack}h0", rack)
    return topo


# -- structure and queries ------------------------------------------------------

def test_tiered_builder_names_and_tapering():
    topo = tiny_tiered()
    assert sorted(topo.azs) == ["az0", "az1"]
    assert topo.azs["az0"].pods == ["az0p0", "az0p1"]
    assert topo.pods["az0p0"].racks == ["az0p0r0", "az0p0r1"]
    # 2:1 taper per boundary: pod uplink carries 2 ToRs at half their
    # aggregate, AZ uplink carries 2 pods at half theirs
    assert topo.racks["az0p0r0"].up.capacity_bps == 8e6
    assert topo.pods["az0p0"].up.capacity_bps == 2 * 8e6 / 2
    assert topo.azs["az0"].up.capacity_bps == 2 * 8e6 / 2
    assert topo.pod_of("az0p0r0h0") == "az0p0"
    assert topo.az_of("az0p0r0h0") == "az0"
    assert topo.hosts_in_pod("az0p0") == ["az0p0r0h0", "az0p0r1h0"]
    assert len(topo.hosts_in_az("az0")) == 4


def test_tiered_validation():
    with pytest.raises(ValueError):
        Topology.tiered(0, 2, 2, uplink_bps=1e6)
    with pytest.raises(ValueError):
        Topology.tiered(2, 2, 2, uplink_bps=1e6, oversubscription=0.5)
    topo = Topology(uplink_bps=1e6)
    with pytest.raises(KeyError):
        topo.add_pod("p0", az="nope")
    with pytest.raises(KeyError):
        topo.add_rack("r0", pod="nope")
    topo.add_az("az0")
    with pytest.raises(ValueError):
        topo.add_az("az0")


def test_crossings_is_0_or_2_with_core_modeled():
    """Regression: ``crossings`` counts ToR boundary crossings — the
    docstring's "(0 or 2)" — and must not count the core link."""
    topo = Topology(uplink_bps=1e6, core_bps=1e6)
    topo.add_rack("ra")
    topo.add_rack("rb")
    topo.assign("a0", "ra")
    topo.assign("a1", "ra")
    topo.assign("b0", "rb")
    assert topo.crossings("a0", "a1") == 0
    assert topo.crossings("a0", "b0") == 2      # was 3 with a core
    assert topo.crossings("a0", "outsider") == 0
    # the full path still includes the core: hops, not crossings
    assert topo.path_hops("a0", "b0") == 3


def test_tiered_paths_climb_to_the_lowest_common_ancestor():
    topo = tiny_tiered()

    def names(src, dst):
        return [link.name for link in topo.path_links(src, dst)]

    assert names("az0p0r0h0", "az0p0r0h0") == []
    assert names("az0p0r0h0", "az0p0r1h0") == \
        ["az0p0r0.up", "az0p0r1.down"]
    assert names("az0p0r0h0", "az0p1r0h0") == \
        ["az0p0r0.up", "az0p0.up", "az0p1.down", "az0p1r0.down"]
    assert names("az0p0r0h0", "az1p0r0h0") == \
        ["az0p0r0.up", "az0p0.up", "az0.up",
         "az1.down", "az1p0.down", "az1p0r0.down"]
    assert topo.path_hops("az0p0r0h0", "az1p0r0h0") == 6
    # crossings stays a ToR count at every depth
    assert topo.crossings("az0p0r0h0", "az1p0r0h0") == 2


def test_tiered_core_only_on_cross_az_paths():
    topo = Topology.tiered(2, 1, 1, uplink_bps=1e6, core_bps=1e6)
    for rack in topo.racks:
        topo.assign(f"{rack}h0", rack)
    cross_az = [link.name
                for link in topo.path_links("az0p0r0h0", "az1p0r0h0")]
    assert "core" in cross_az


def test_tier_distance_scale():
    topo = tiny_tiered()
    assert topo.tier_distance("az0p0r0h0", "az0p0r0h0") == 0
    assert topo.tier_distance("az0p0r0h0", "az0p0r1h0") == 1
    assert topo.tier_distance("az0p0r0h0", "az0p1r0h0") == 2
    assert topo.tier_distance("az0p0r0h0", "az1p1r1h0") == 3
    assert topo.tier_distance("az0p0r0h0", "outsider") == 0
    # flat topologies top out at 1: every rack shares the root pod
    flat = Topology(uplink_bps=1e6)
    flat.add_rack("ra")
    flat.add_rack("rb")
    flat.assign("a0", "ra")
    flat.assign("b0", "rb")
    assert flat.tier_distance("a0", "b0") == 1


def test_same_fault_domain_tiers():
    topo = tiny_tiered()
    a, b, c, d = "az0p0r0h0", "az0p0r1h0", "az0p1r0h0", "az1p0r0h0"
    assert topo.same_fault_domain(a, b, tier="pod")
    assert not topo.same_fault_domain(a, b, tier="rack")
    assert not topo.same_fault_domain(a, c, tier="pod")
    assert topo.same_fault_domain(a, c, tier="az")
    assert not topo.same_fault_domain(a, d, tier="az")
    assert not topo.same_fault_domain(a, "outsider", tier="az")
    with pytest.raises(ValueError):
        topo.same_fault_domain(a, b, tier="galaxy")
    # flat racks share the implicit root pod and AZ
    flat = Topology(uplink_bps=1e6)
    flat.add_rack("ra")
    flat.add_rack("rb")
    flat.assign("a0", "ra")
    flat.assign("b0", "rb")
    assert flat.same_fault_domain("a0", "b0", tier="pod")
    assert flat.same_fault_domain("a0", "b0", tier="az")


# -- network integration --------------------------------------------------------

def tiered_world():
    world = World(dt=0.1, net_bandwidth_bps=10e6)
    topo = Topology.tiered(2, 2, 1, uplink_bps=8e6,
                           oversubscription=2.0)
    world.use_topology(topo)
    for rack in topo.racks:
        for h in range(2):
            world.add_host(f"{rack}h{h}", 64 * MiB,
                           host_os_bytes=1 * MiB, rack=rack)
    return world, topo


def test_cross_pod_flow_pays_the_pod_uplink():
    world, topo = tiered_world()
    flow = world.network.open_flow("az0p0r0h0", "az0p1r0h0")
    assert [link.name for link in flow.links] == \
        ["az0p0r0h0.tx", "az0p0r0.up", "az0p0.up",
         "az0p1.down", "az0p1r0.down", "az0p1r0h0.rx"]
    # 1 rack/pod at 2:1 taper: the pod uplink (4e6) is the bottleneck
    flow.demand = 10e6 * 0.1
    world.network.arbitrate(0.1)
    assert flow.granted == pytest.approx(4e6 * 0.1)


def test_latency_hops_follow_the_tier_path():
    world, _ = tiered_world()
    net = world.network
    same_pod = net.hops("az0p0r0h0", "az0p0r0h1")
    cross_pod = net.hops("az0p0r0h0", "az0p1r0h0")
    cross_az = net.hops("az0p0r0h0", "az1p0r0h0")
    assert same_pod < cross_pod < cross_az


# -- nested fault kinds ---------------------------------------------------------

def fault_world():
    """Two pods of two single-host racks each, all in az0; az1 holds a
    spare; one VM per az0 host; donors out of topology."""
    world = World(dt=0.1, net_bandwidth_bps=10e6)
    topo = Topology.tiered(2, 2, 2, uplink_bps=8e6)
    world.use_topology(topo)
    hosts = []
    for rack in topo.racks:
        h = f"{rack}h0"
        world.add_host(h, 64 * MiB, host_os_bytes=1 * MiB, rack=rack)
        hosts.append(h)
    world.add_vmd([("vmdx", 256 * MiB), ("vmdy", 256 * MiB)])
    for i, h in enumerate(hosts[:4]):  # the az0 hosts
        vm = world.add_vm(f"vm{i}", 8 * MiB, h, page_size=4096)
        ns = world.vmd.create_namespace(f"vm{i}")
        world.hosts[h].place_vm(vm, 8 * MiB, ns)
    return world, topo, hosts


def test_pod_crash_takes_down_every_rack_in_the_pod():
    world, topo, hosts = fault_world()
    world.attach_faults(FaultSchedule(
        [FaultSpec(FaultKind.POD_CRASH, "az0p0", at=1.0, duration=5.0)]))
    tracker = HostHealthTracker(world, cooldown_s=1.0)
    world.run(until=2.0)
    assert topo.pods["az0p0"].up.degraded
    assert topo.racks["az0p0r0"].up.degraded
    assert world.network.nic("az0p0r0h0").tx.degraded
    assert world.vms["vm0"].state is VmState.TERMINATED
    assert world.vms["vm1"].state is VmState.TERMINATED
    # the sibling pod and the other AZ are untouched
    assert world.vms["vm2"].state is not VmState.TERMINATED
    assert not topo.pods["az0p1"].up.degraded
    assert tracker.state("az0p0r0h0") is HostHealth.DOWN
    assert tracker.state("az0p1r0h0") is HostHealth.UP
    world.run(until=8.0)
    assert not topo.pods["az0p0"].up.degraded
    assert not world.network.nic("az0p0r0h0").tx.degraded


def test_az_partition_isolates_without_killing():
    world, topo, hosts = fault_world()
    world.attach_faults(FaultSchedule(
        [FaultSpec(FaultKind.AZ_PARTITION, "az0", at=1.0,
                   duration=3.0)]))
    tracker = HostHealthTracker(world, cooldown_s=1.0)
    world.run(until=2.0)
    assert topo.azs["az0"].up.degraded
    # nothing dies: the AZ is unreachable, not powered off
    assert world.vms["vm0"].state is not VmState.TERMINATED
    assert not world.network.nic("az0p0r0h0").tx.degraded
    assert tracker.state("az0p0r0h0") is HostHealth.DEGRADED
    # a cross-AZ flow gets nothing while the partition holds
    flow = world.network.open_flow("az0p0r0h0", "az1p0r0h0")
    flow.demand = 1e6
    world.network.arbitrate(0.1)
    assert flow.granted == 0.0
    world.run(until=5.0)
    assert not topo.azs["az0"].up.degraded
    flow.demand = 1e6
    world.network.arbitrate(0.1)
    assert flow.granted > 0.0


def test_pod_fault_validation():
    world, topo, hosts = fault_world()
    with pytest.raises(ValueError):
        world.attach_faults(FaultSchedule(
            [FaultSpec(FaultKind.POD_CRASH, "nope", at=1.0)]))
    with pytest.raises(ValueError):
        world.attach_faults(FaultSchedule(
            [FaultSpec(FaultKind.AZ_PARTITION, "nope", at=1.0)]))


# -- spread scoring -------------------------------------------------------------

class _SpreadState:
    def __init__(self, name, rack_load, pod=None, az=None,
                 pod_load=0, az_load=0):
        self.name = name
        self.rack_load = rack_load
        self.pod = pod
        self.az = az
        self.pod_load = pod_load
        self.az_load = az_load


def test_domain_spread_prefers_the_emptiest_deep_domain():
    spec = object()
    w = DomainSpreadWeigher()
    # same AZ load: pod load decides; same pod load: rack load decides
    crowded = _SpreadState("a", rack_load=1, pod="p0", az="z0",
                           pod_load=8, az_load=10)
    empty_pod = _SpreadState("b", rack_load=4, pod="p1", az="z0",
                             pod_load=2, az_load=10)
    assert w.weigh(empty_pod, spec) > w.weigh(crowded, spec)
    # an emptier AZ beats any pod/rack arrangement inside a fuller one
    empty_az = _SpreadState("c", rack_load=9, pod="p2", az="z1",
                            pod_load=9, az_load=9)
    assert w.weigh(empty_az, spec) > w.weigh(empty_pod, spec)


def test_domain_spread_degrades_to_rack_spread_on_flat():
    spec = object()
    dw = DomainSpreadWeigher()
    rw = RackSpreadWeigher()
    for load in (0, 3, 17):
        flat = _SpreadState("h", rack_load=load)
        assert dw.weigh(flat, spec) == rw.weigh(flat, spec)


def test_domain_spread_validation():
    with pytest.raises(ValueError):
        DomainSpreadWeigher(tier_falloff=0.0)
    with pytest.raises(ValueError):
        DomainSpreadWeigher(tier_falloff=1.5)


def test_planner_spread_scales_with_tier_distance():
    from repro.cluster.setup import preload_dataset
    from repro.sched import MigrationPlanner
    world = World(dt=0.1, net_bandwidth_bps=10e6)
    topo = Topology.tiered(2, 2, 2, uplink_bps=80e6)
    world.use_topology(topo)
    for rack in topo.racks:
        world.add_host(f"{rack}h0", 64 * MiB, host_os_bytes=1 * MiB,
                       rack=rack)
    world.add_vmd([("vmdx", 256 * MiB)])
    vm = world.add_vm("vm0", 8 * MiB, "az0p0r0h0", page_size=4096)
    ns = world.vmd.create_namespace("vm0")
    world.hosts["az0p0r0h0"].place_vm(vm, 8 * MiB, ns)
    planner = MigrationPlanner(world, dispatch=lambda p: None,
                               exclude_hosts=("vmdx",))
    src = "az0p0r0h0"
    s1 = planner.score_destination("vm0", src, "az0p0r1h0")  # distance 1
    s2 = planner.score_destination("vm0", src, "az0p1r0h0")  # distance 2
    s3 = planner.score_destination("vm0", src, "az1p0r0h0")  # distance 3
    assert s1 < s2 < s3
    # each tier adds exactly one spread_weight step (equal headroom)
    assert s3 - s2 == pytest.approx(s2 - s1)
