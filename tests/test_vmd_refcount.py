"""VMDCluster namespace refcounting: shared images are freed exactly
once, after the last reader releases, in any release order."""

import pytest

from repro.cluster.world import World
from repro.faults import FaultKind, FaultSchedule, FaultSpec
from repro.util import MiB


def build(n_servers=2, schedule=None, tracer=None):
    world = World(dt=0.1, net_bandwidth_bps=40e6, tracer=tracer)
    world.add_host("h0", 64 * MiB, host_os_bytes=1 * MiB)
    world.add_vmd([(f"vmd{k}", 256 * MiB) for k in range(n_servers)],
                  placement_chunk_bytes=1 * MiB)
    if schedule is not None:
        world.attach_faults(schedule)
    return world


def test_retain_release_frees_bytes_only_after_last_reader():
    world = build()
    vmd = world.vmd
    ns = vmd.create_namespace("img")
    ns.preload(8 * MiB)
    assert ns.used_bytes == pytest.approx(8 * MiB)
    # three extra readers on top of the creation reference
    for _ in range(3):
        assert vmd.retain_namespace("img") is ns
    # arbitrary release order: bytes survive every non-final release
    for remaining in (3, 2, 1):
        assert vmd.release_namespace("img") == remaining
        assert "img" in vmd.namespaces
        assert ns.used_bytes == pytest.approx(8 * MiB)
    assert vmd.release_namespace("img") == 0
    assert "img" not in vmd.namespaces
    assert ns.used_bytes == pytest.approx(0.0)


def test_release_removes_tick_registration_only_at_zero():
    world = build()
    vmd = world.vmd
    engine = world.engine
    base = (len(engine._participants), len(engine._arbiters))
    vmd.create_namespace("img")
    assert (len(engine._participants), len(engine._arbiters)) \
        == (base[0] + 1, base[1] + 1)
    vmd.retain_namespace("img")
    vmd.release_namespace("img")
    # still referenced: the namespace stays in the tick loop
    assert (len(engine._participants), len(engine._arbiters)) \
        == (base[0] + 1, base[1] + 1)
    vmd.release_namespace("img")
    assert (len(engine._participants), len(engine._arbiters)) == base


def test_retain_and_release_of_unknown_namespace_raise():
    world = build()
    with pytest.raises(KeyError):
        world.vmd.retain_namespace("ghost")
    with pytest.raises(KeyError):
        world.vmd.release_namespace("ghost")


def test_server_loss_mid_clone_repairs_without_double_counting():
    """A donor crash while a replicated namespace is shared: repair
    bytes are accounted once and drain monotonically to zero."""
    schedule = FaultSchedule([FaultSpec(
        FaultKind.VMD_CRASH, "vmd0", at=1.0, lose_contents=True)])
    world = build(n_servers=3, schedule=schedule)
    vmd = world.vmd
    ns = vmd.create_namespace("img", replication=2)
    ns.preload(6 * MiB)
    vmd.retain_namespace("img")     # a second reader, as during a clone
    world.run(until=1.05)
    assert not ns.data_lost
    pending = ns.repair_pending_bytes
    assert pending > 0
    # lost copies of 6 MiB logical: never more than the logical bytes
    assert pending <= 6 * MiB + 1e-6
    last = pending
    while world.now < 30.0 and ns.repair_pending_bytes > 0:
        world.run(until=world.now + 1.0)
        assert ns.repair_pending_bytes <= last + 1e-6
        last = ns.repair_pending_bytes
    assert ns.repair_pending_bytes == pytest.approx(0.0)
    # both readers release cleanly after the repair
    assert vmd.release_namespace("img") == 1
    assert vmd.release_namespace("img") == 0
    assert "img" not in vmd.namespaces


def test_traced_data_loss_reconcile_does_not_crash():
    """Regression for the ``repair_pending_bytes`` property being
    called in the cluster's traced reconcile path (was a TypeError)."""
    from repro.obs import Tracer
    schedule = FaultSchedule([FaultSpec(
        FaultKind.VMD_CRASH, "vmd0", at=1.0, lose_contents=True)])
    tracer = Tracer()
    world = build(n_servers=3, schedule=schedule, tracer=tracer)
    ns = world.vmd.create_namespace("img", replication=2)
    ns.preload(4 * MiB)
    world.run(until=2.0)            # crashes inside run without the fix
    assert not ns.data_lost
    assert any(e.name == "server-lost" or "repair" in e.name
               for e in tracer.events)
