"""Unit tests for repro.obs: tracer semantics, exporters, the schema
check, and the wall-clock self-profiler."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SelfProfiler,
    Tracer,
    chrome_trace_doc,
    missing_categories,
    spans_of,
    trace_to_chrome,
    trace_to_jsonl,
    validate_chrome_trace,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- tracer core ---------------------------------------------------------------

def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.begin("t", "a")
    NULL_TRACER.end("t")
    NULL_TRACER.instant("t", "x")
    assert NULL_TRACER.async_begin("t", "x") == 0
    NULL_TRACER.async_end(0)
    with NULL_TRACER.span("t", "s"):
        pass
    NULL_TRACER.finish()


def test_tracer_span_nesting_lifo():
    clk = FakeClock()
    tr = Tracer(clock=clk)
    tr.begin("vm:a", "outer")
    clk.now = 1.0
    tr.begin("vm:a", "inner")
    clk.now = 2.0
    tr.end("vm:a")
    clk.now = 3.0
    tr.end("vm:a")
    spans = spans_of(tr)
    assert [(s.name, s.t0, s.t1) for s in spans] == [
        ("outer", 0.0, 3.0), ("inner", 1.0, 2.0)]


def test_tracer_end_without_begin_raises():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.end("vm:a")


def test_tracer_tracks_are_independent():
    tr = Tracer()
    tr.begin("vm:a", "x")
    with pytest.raises(ValueError):
        tr.end("vm:b")


def test_span_context_manager_closes_on_error():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        with tr.span("t", "s"):
            raise RuntimeError("boom")
    assert tr.open_depth("t") == 0


def test_async_spans_overlap_and_pair_by_id():
    clk = FakeClock()
    tr = Tracer(clock=clk)
    a = tr.async_begin("net:c", "xfer", cat="net", args={"bytes": 1.0})
    clk.now = 1.0
    b = tr.async_begin("net:c", "xfer", cat="net", args={"bytes": 2.0})
    clk.now = 2.0
    tr.async_end(a)
    clk.now = 3.0
    tr.async_end(b)
    spans = spans_of(tr)
    assert len(spans) == 2
    assert spans[0].args["bytes"] == 1.0 and spans[0].t1 == 2.0
    assert spans[1].args["bytes"] == 2.0 and spans[1].t1 == 3.0


def test_async_end_unknown_id_is_ignored():
    tr = Tracer()
    tr.async_end(0)
    tr.async_end(999)
    assert len(tr.events) == 0


def test_finish_closes_open_spans():
    clk = FakeClock()
    tr = Tracer(clock=clk)
    tr.begin("vm:a", "migration")
    aid = tr.async_begin("faults", "host-crash")
    assert aid != 0
    clk.now = 5.0
    tr.finish()
    spans = spans_of(tr)
    assert {(s.name, s.t1) for s in spans} == {
        ("migration", 5.0), ("host-crash", 5.0)}
    assert all(s.args.get("unclosed") for s in spans)


def test_span_args_merge_begin_and_end():
    tr = Tracer()
    tr.begin("t", "s", args={"a": 1})
    tr.end("t", args={"b": 2})
    (span,) = spans_of(tr)
    assert span.args == {"a": 1, "b": 2}
    assert span.duration == 0.0


def test_tracer_is_a_null_tracer_subtype():
    # components type against NullTracer; a live Tracer must substitute
    assert isinstance(Tracer(), NullTracer)
    assert Tracer().enabled is True


# -- exporters -----------------------------------------------------------------

def sample_tracer():
    clk = FakeClock()
    tr = Tracer(clock=clk)
    tr.instant("planner", "plan", cat="planner", args={"vm": "vm0"})
    tr.begin("vm:vm0", "migration", cat="migration")
    clk.now = 1.5
    aid = tr.async_begin("net:c", "xfer", cat="net")
    clk.now = 2.0
    tr.async_end(aid)
    tr.counter("host:h0", "load", values={"vms": 3})
    clk.now = 4.0
    tr.end("vm:vm0")
    return tr


def test_chrome_doc_structure():
    doc = chrome_trace_doc(sample_tracer())
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    # one process_name + (thread_name + sort_index) per track
    tracks = {e["args"]["name"] for e in events
              if e.get("ph") == "M" and e["name"] == "thread_name"}
    assert tracks == {"planner", "vm:vm0", "net:c", "host:h0"}
    # sim seconds -> microseconds
    ends = [e for e in events if e["ph"] == "E"]
    assert ends[0]["ts"] == 4.0e6


def test_chrome_trace_roundtrip_and_determinism(tmp_path):
    p1 = trace_to_chrome(sample_tracer(), tmp_path / "a.json")
    p2 = trace_to_chrome(sample_tracer(), tmp_path / "b.json")
    assert p1.read_bytes() == p2.read_bytes()
    doc = json.loads(p1.read_text())
    assert validate_chrome_trace(doc) == []


def test_jsonl_roundtrip(tmp_path):
    path = trace_to_jsonl(sample_tracer(), tmp_path / "t.jsonl")
    recs = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(recs) == 6
    assert recs[0] == {"t": 0.0, "ph": "i", "track": "planner",
                       "name": "plan", "cat": "planner",
                       "args": {"vm": "vm0"}}
    # async events carry their pairing id
    assert {r["id"] for r in recs if r["ph"] in ("b", "e")} == {1}


def test_empty_tracer_exports(tmp_path):
    tr = Tracer()
    doc = chrome_trace_doc(tr)
    assert validate_chrome_trace(doc) == []
    assert trace_to_jsonl(tr, tmp_path / "e.jsonl").read_text() == ""
    assert spans_of(tr) == []


def test_spans_of_drops_unmatched_begins():
    tr = Tracer()
    tr.begin("t", "open")
    tr.begin("t", "closed")
    tr.end("t")
    assert [s.name for s in spans_of(tr)] == ["closed"]


# -- schema check --------------------------------------------------------------

def test_validate_rejects_malformed_docs():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) == ["missing traceEvents array"]
    bad_phase = {"traceEvents": [
        {"ph": "Z", "ts": 0, "pid": 1, "tid": 1, "name": "x"}]}
    assert any("unknown phase" in e
               for e in validate_chrome_trace(bad_phase))


def test_validate_catches_unbalanced_spans():
    end_only = {"traceEvents": [
        {"ph": "E", "ts": 0, "pid": 1, "tid": 1, "name": "x"}]}
    assert any("E without matching B" in e
               for e in validate_chrome_trace(end_only))
    open_span = {"traceEvents": [
        {"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "x"}]}
    assert any("unclosed span" in e
               for e in validate_chrome_trace(open_span))


def test_validate_catches_unpaired_async():
    doc = {"traceEvents": [
        {"ph": "b", "ts": 0, "pid": 1, "tid": 1, "name": "x",
         "cat": "net", "id": 7}]}
    assert any("unclosed async" in e for e in validate_chrome_trace(doc))
    doc = {"traceEvents": [
        {"ph": "e", "ts": 0, "pid": 1, "tid": 1, "name": "x",
         "cat": "net", "id": 7}]}
    assert any("async end without begin" in e
               for e in validate_chrome_trace(doc))


def test_missing_categories():
    doc = chrome_trace_doc(sample_tracer())
    assert missing_categories(doc, ["planner", "net"]) == []
    assert missing_categories(doc, ["fault", "net"]) == ["fault"]


def test_check_cli(tmp_path, capsys):
    from repro.obs.check import main
    path = trace_to_chrome(sample_tracer(), tmp_path / "t.json")
    assert main([str(path), "--require", "planner,net"]) == 0
    assert main([str(path), "--require", "fault"]) == 1
    assert main([str(tmp_path / "missing.json")]) == 1
    out = capsys.readouterr().out
    assert "ok:" in out and "FAIL" in out


# -- self-profiler -------------------------------------------------------------

def test_profiler_attributes_sections():
    prof = SelfProfiler()
    with prof.section("a"):
        pass
    with prof.section("a"):
        pass
    wrapped = prof.wrap(lambda x: x * 2, "b")
    assert wrapped(21) == 42
    rep = prof.report(wall_s=100.0)
    assert rep["sections"]["a"]["calls"] == 2
    assert rep["sections"]["b"]["calls"] == 1
    shares = [s["share"] for s in rep["sections"].values()]
    assert abs(sum(shares) - 1.0) < 1e-9
    assert rep["wall_s"] == 100.0
    assert rep["other_s"] == pytest.approx(100.0 - rep["measured_s"])
    json.dumps(rep)


def test_profiler_wrap_bills_on_exception():
    prof = SelfProfiler()

    def boom():
        raise RuntimeError

    with pytest.raises(RuntimeError):
        prof.wrap(boom, "x")()
    assert prof.report()["sections"]["x"]["calls"] == 1


def test_profiler_empty_report():
    rep = SelfProfiler().report()
    assert rep == {"sections": {}, "measured_s": 0.0}


def test_profiler_other_bucket_shares():
    prof = SelfProfiler()
    with prof.section("a"):
        pass
    rep = prof.report(wall_s=100.0)
    # the unattributed remainder is an explicit section, not a hidden
    # over-count: every share uses the wall-clock denominator
    other = rep["sections"]["other"]
    assert other["calls"] == 0
    assert other["s"] == pytest.approx(rep["other_s"])
    assert other["share"] == pytest.approx(rep["other_s"] / 100.0)
    assert rep["sections"]["a"]["share"] == \
        pytest.approx(rep["sections"]["a"]["s"] / 100.0)
    # without wall_s there is no "other" and shares sum to 1.0
    rep2 = prof.report()
    assert "other" not in rep2["sections"]
    assert sum(s["share"] for s in rep2["sections"].values()) == \
        pytest.approx(1.0)


# -- exporter round-trips -------------------------------------------------------

def test_chrome_counter_events():
    doc = chrome_trace_doc(sample_tracer())
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == 1
    (ev,) = counters
    assert ev["name"] == "load"
    assert ev["cat"] == "-"  # counters carry no category
    assert ev["args"] == {"vms": 3}
    assert ev["ts"] == pytest.approx(2.0 * 1e6)  # sim seconds -> µs
    assert validate_chrome_trace(doc) == []


def test_jsonl_instant_round_trip(tmp_path):
    tr = sample_tracer()
    path = trace_to_jsonl(tr, tmp_path / "t.jsonl")
    records = [json.loads(line)
               for line in path.read_text().splitlines()]
    assert len(records) == len(tr.events)
    instants = [r for r in records if r["ph"] == "i"]
    assert instants == [{"t": 0.0, "ph": "i", "track": "planner",
                         "name": "plan", "cat": "planner",
                         "args": {"vm": "vm0"}}]
    # every original event survives with its timing and identity intact
    for rec, ev in zip(records, tr.events):
        assert rec["t"] == ev.t and rec["ph"] == ev.ph
        assert rec["track"] == ev.track and rec["name"] == ev.name
