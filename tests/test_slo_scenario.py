"""The SLO-aware shedding scenario: selection, attribution, and the
determinism of its metrics exports."""

import json

from repro.experiments.slo import SloScenarioConfig, make_slo, slo_run
from repro.obs.export import trace_to_chrome
from repro.obs.tracer import Tracer
from repro.telemetry import MetricsRegistry, metrics_to_jsonl

UNTIL = 15.0


def test_blind_selector_sheds_the_serving_tenant():
    res = slo_run(blind=True, until=UNTIL)
    assert res["migrated"] == ["srv0"]
    assert res["outcomes"] == {"completed": 1}
    # the tenant pays: violation windows accrued, attributed to its own
    # in-flight migration (phase-classified, not "unattributed")
    assert res["violation_s"] > 0
    causes = res["attribution"]["srv0"]
    assert all(c.startswith("srv0#a0:") for c in causes)
    assert res["violation_s"] == sum(causes.values())


def test_aware_selector_protects_the_serving_tenant():
    res = slo_run(blind=False, until=UNTIL)
    # both SLO-free batch VMs move instead of the serving tenant
    assert res["migrated"] == ["b0", "b1"]
    assert res["outcomes"] == {"completed": 2}
    assert res["violation_s"] == 0.0
    assert res["attribution"] == {}


def test_aware_beats_blind_on_violation_seconds():
    aware = slo_run(blind=False, until=UNTIL)
    blind = slo_run(blind=True, until=UNTIL)
    assert aware["violation_s"] < blind["violation_s"]


def test_watermark_settles_below_target_in_both_arms():
    cfg = SloScenarioConfig()
    usable = cfg.host_memory_bytes - cfg.host_os_bytes
    target = cfg.watermark.low_watermark * usable
    for blind in (False, True):
        lab = slo_run(blind=blind, until=UNTIL)["lab"]
        host = lab.world.hosts["r0h0"]
        left = sum(host.memory.binding(n).cgroup.reservation_bytes
                   for n in host.vms)
        assert left <= target


def test_same_seed_metrics_export_byte_identical(tmp_path):
    paths = []
    for i in range(2):
        reg = MetricsRegistry()
        res = slo_run(blind=True, until=UNTIL, metrics=reg)
        assert res["violation_s"] > 0
        paths.append(metrics_to_jsonl(reg, tmp_path / f"m{i}.jsonl"))
    b0, b1 = (p.read_bytes() for p in paths)
    assert b0 == b1
    # every line is valid JSON and the header counts the instruments
    lines = b0.decode().splitlines()
    header = json.loads(lines[0])
    assert header["instruments"] == len(lines) - 1
    names = [json.loads(ln)["name"] for ln in lines[1:]]
    assert names == sorted(names)
    assert any(n.startswith("slo.") for n in names)
    assert any(n.startswith("pressure.") for n in names)
    assert any(n.startswith("migration.") for n in names)


def test_traced_run_emits_telemetry_and_slo_categories(tmp_path):
    tracer = Tracer()
    slo_run(blind=True, until=UNTIL, tracer=tracer)
    tracer.finish()
    path = trace_to_chrome(tracer, tmp_path / "t.json")
    doc = json.loads(path.read_text())
    cats = {ev.get("cat") for ev in doc["traceEvents"]}
    assert {"telemetry", "slo", "migration", "planner"} <= cats
    from repro.obs.check import validate_chrome_trace
    assert validate_chrome_trace(doc) == []


def test_pressure_relief_visible_in_index():
    reg = MetricsRegistry()
    lab = make_slo(metrics=reg)
    lab.run(until=UNTIL)
    hot = reg.get("pressure.host.r0h0")
    # shedding two VMs must drop the hot host's pressure from its peak
    assert max(hot.v) > hot.value
    # rack and cluster rollups exist and bound each other sanely
    assert 0.0 <= reg.get("pressure.cluster").value <= 1.0
    assert set(lab.pressure.racks) == {"r0", "r1"}
