"""Tests for time series, recorder, and analysis helpers."""

import numpy as np
import pytest

from repro.metrics import Recorder, TimeSeries, recovery_time, window_mean


def fill(series, pairs):
    for t, v in pairs:
        series.append(t, v)
    return series


def test_series_append_and_views():
    s = TimeSeries("x", initial_capacity=2)
    for i in range(10):  # force growth
        s.append(float(i), float(i * 2))
    assert len(s) == 10
    assert s.t.tolist() == [float(i) for i in range(10)]
    assert s.v[3] == 6.0


def test_series_views_read_only():
    s = fill(TimeSeries(), [(0, 1)])
    with pytest.raises(ValueError):
        s.t[0] = 5.0


def test_series_mean_and_empty():
    s = fill(TimeSeries(), [(0, 2), (1, 4)])
    assert s.mean() == 3.0
    with pytest.raises(ValueError):
        TimeSeries().mean()


def test_series_between():
    s = fill(TimeSeries(), [(0, 1), (1, 2), (2, 3), (3, 4)])
    sub = s.between(1.0, 3.0)
    assert sub.t.tolist() == [1.0, 2.0]
    assert sub.v.tolist() == [2.0, 3.0]


def test_series_resample_buckets():
    s = fill(TimeSeries(), [(0.1, 1), (0.9, 3), (1.5, 10)])
    r = s.resample(1.0)
    assert r.t.tolist() == [0.5, 1.5]
    assert r.v.tolist() == [2.0, 10.0]


def test_series_resample_validation():
    with pytest.raises(ValueError):
        TimeSeries().resample(0.0)
    assert len(TimeSeries().resample(1.0)) == 0


def test_recorder_creates_and_accumulates():
    r = Recorder()
    r.record("vm1.tput", 0.0, 5.0)
    r.record("vm1.tput", 1.0, 7.0)
    assert len(r.series("vm1.tput")) == 2
    assert r.has("vm1.tput")
    assert not r.has("vm2.tput")


def test_recorder_matching_prefix():
    r = Recorder()
    r.record("vm1.tput", 0, 1)
    r.record("vm2.tput", 0, 1)
    r.record("host.swap", 0, 1)
    # dotted-segment semantics: a bare "vm" matches neither vm1 nor vm2
    assert [s.name for s in r.matching("vm")] == []
    assert [s.name for s in r.matching("vm1")] == ["vm1.tput"]
    assert r.names() == ["host.swap", "vm1.tput", "vm2.tput"]


def test_recorder_matching_segment_boundary():
    """"vm1" must not match "vm10.*" (prefix collision regression)."""
    r = Recorder()
    r.record("vm1", 0, 1)
    r.record("vm1.tput", 0, 1)
    r.record("vm1.wss", 0, 1)
    r.record("vm10.tput", 0, 1)
    r.record("vm10", 0, 1)
    assert [s.name for s in r.matching("vm1")] == \
        ["vm1", "vm1.tput", "vm1.wss"]
    assert [s.name for s in r.matching("vm10")] == ["vm10", "vm10.tput"]


def _resample_reference(series, dt):
    """The pre-vectorization loop implementation, kept as the oracle."""
    out = TimeSeries(series.name)
    if len(series) == 0:
        return out
    buckets = np.floor(series.t / dt).astype(np.int64)
    for b in np.unique(buckets):
        mask = buckets == b
        out.append((b + 0.5) * dt, float(series.v[mask].sum())
                   / int(mask.sum()))
    return out


def test_series_resample_matches_reference():
    rng = np.random.default_rng(7)
    s = TimeSeries()
    t = np.cumsum(rng.uniform(0.01, 0.4, size=500))
    # integer-valued floats: bucket sums are exact in either summation
    # order, so the comparison is bitwise
    v = rng.integers(0, 1000, size=500).astype(float)
    for ti, vi in zip(t, v):
        s.append(float(ti), float(vi))
    for dt in (0.1, 0.5, 2.0):
        got = s.resample(dt)
        want = _resample_reference(s, dt)
        assert got.t.tolist() == want.t.tolist()
        assert got.v.tolist() == want.v.tolist()


def test_series_resample_singleton():
    s = fill(TimeSeries("one"), [(3.2, 5.0)])
    r = s.resample(1.0)
    assert len(r) == 1
    assert r.t.tolist() == [3.5]
    assert r.v.tolist() == [5.0]


def test_window_mean():
    r = Recorder()
    for t, v in [(0, 10), (1, 20), (2, 100)]:
        r.record("x", t, v)
    assert window_mean(r.series("x"), 0, 2) == 15.0


def test_recovery_time_simple():
    s = TimeSeries()
    # drops at t=100, recovers at t=150 and stays up
    for t in range(0, 300):
        v = 100.0 if (t < 100 or t >= 150) else 10.0
        s.append(float(t), v)
    rec = recovery_time(s, start=100.0, target=90.0, smooth_window=1.0,
                        sustain=5.0)
    assert rec == pytest.approx(50.0, abs=2.0)


def test_recovery_time_ignores_transient_spike():
    s = TimeSeries()
    for t in range(0, 300):
        if t < 100:
            v = 100.0
        elif t == 120:
            v = 100.0  # one-tick spike during degradation
        elif t < 200:
            v = 10.0
        else:
            v = 100.0
    # append once per loop iteration
        s.append(float(t), v)
    rec = recovery_time(s, start=100.0, target=90.0, smooth_window=1.0,
                        sustain=10.0)
    assert rec == pytest.approx(100.0, abs=2.0)


def test_recovery_time_never_recovers():
    s = TimeSeries()
    for t in range(100):
        s.append(float(t), 10.0)
    assert recovery_time(s, start=0.0, target=50.0, smooth_window=1.0) is None


def test_recovery_time_recovers_at_series_end():
    s = TimeSeries()
    for t in range(100):
        s.append(float(t), 100.0 if t >= 95 else 10.0)
    # recovery streak runs to the end of the series: counts even if shorter
    # than the sustain window
    rec = recovery_time(s, start=0.0, target=90.0, smooth_window=1.0,
                        sustain=30.0)
    assert rec is not None
