"""Tests for the SSD swap device arbiter and cgroups."""

import pytest

from repro.mem import Cgroup, SSDSwapDevice


def test_queue_kind_validation():
    dev = SSDSwapDevice("ssd")
    with pytest.raises(ValueError):
        dev.open_queue("q", "append")  # type: ignore[arg-type]


def test_single_reader_gets_full_read_bandwidth():
    dev = SSDSwapDevice("ssd", read_bps=100.0, write_bps=50.0)
    q = dev.open_queue("r", "read")
    q.demand = 1000.0
    dev.arbitrate(dt=1.0)
    assert q.granted == pytest.approx(100.0)


def test_readers_share_fairly():
    dev = SSDSwapDevice("ssd", read_bps=100.0)
    q1 = dev.open_queue("r1", "read")
    q2 = dev.open_queue("r2", "read")
    q1.demand = q2.demand = 1000.0
    dev.arbitrate(dt=1.0)
    assert q1.granted == pytest.approx(50.0)
    assert q2.granted == pytest.approx(50.0)


def test_mixed_io_penalty_applies_to_both_pools():
    dev = SSDSwapDevice("ssd", read_bps=100.0, write_bps=100.0,
                        mixed_efficiency=0.5)
    r = dev.open_queue("r", "read")
    w = dev.open_queue("w", "write")
    r.demand = w.demand = 1000.0
    dev.arbitrate(dt=1.0)
    assert r.granted == pytest.approx(50.0)
    assert w.granted == pytest.approx(50.0)


def test_no_penalty_for_pure_reads():
    dev = SSDSwapDevice("ssd", read_bps=100.0, mixed_efficiency=0.5)
    r = dev.open_queue("r", "read")
    w = dev.open_queue("w", "write")
    r.demand = 1000.0
    w.demand = 0.0
    dev.arbitrate(dt=1.0)
    assert r.granted == pytest.approx(100.0)


def test_closed_queue_reaped():
    dev = SSDSwapDevice("ssd", read_bps=100.0)
    q1 = dev.open_queue("r1", "read")
    q1.close()
    q2 = dev.open_queue("r2", "read")
    q2.demand = 1000.0
    dev.arbitrate(dt=1.0)
    assert q2.granted == pytest.approx(100.0)


def test_demand_resets_each_round():
    dev = SSDSwapDevice("ssd", read_bps=100.0)
    q = dev.open_queue("r", "read")
    q.demand = 60.0
    dev.arbitrate(dt=1.0)
    dev.arbitrate(dt=1.0)  # no new demand declared
    assert q.granted == 0.0
    assert q.total_granted == pytest.approx(60.0)


def test_capacity_accounting():
    dev = SSDSwapDevice("ssd", capacity_bytes=100.0)
    dev.allocate(70.0)
    dev.allocate(30.0)
    with pytest.raises(RuntimeError):
        dev.allocate(1.0)
    dev.release(50.0)
    dev.allocate(50.0)
    assert dev.used_bytes == pytest.approx(100.0)


def test_release_never_goes_negative():
    dev = SSDSwapDevice("ssd")
    dev.release(10.0)
    assert dev.used_bytes == 0.0


def test_device_parameter_validation():
    with pytest.raises(ValueError):
        SSDSwapDevice("x", read_bps=0)
    with pytest.raises(ValueError):
        SSDSwapDevice("x", mixed_efficiency=0.0)
    with pytest.raises(ValueError):
        SSDSwapDevice("x", mixed_efficiency=1.5)


# -- Cgroup -------------------------------------------------------------------

def test_cgroup_reservation_roundtrip():
    cg = Cgroup("cg.vm1", 1000.0)
    assert cg.reservation_bytes == 1000.0
    cg.set_reservation(500.0)
    assert cg.reservation_bytes == 500.0


def test_cgroup_negative_reservation_rejected():
    with pytest.raises(ValueError):
        Cgroup("cg", -1.0)
    cg = Cgroup("cg", 10.0)
    with pytest.raises(ValueError):
        cg.set_reservation(-5.0)


def test_cgroup_swap_accounting_monotonic():
    cg = Cgroup("cg", 0.0)
    cg.account_swap_in(100.0)
    cg.account_swap_out(50.0)
    cg.account_swap_in(25.0)
    assert cg.swap_in_bytes_total == 125.0
    assert cg.swap_out_bytes_total == 50.0
    assert cg.swap_traffic_total() == 175.0
