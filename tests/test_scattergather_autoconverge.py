"""Tests for the extension techniques: Scatter-Gather migration and
pre-copy auto-converge."""

import numpy as np
import pytest

from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.core import PrecopyMigration, ScatterGatherMigration
from repro.core.base import MigrationConfig
from repro.util import GiB, KiB, MiB


def tiny_cfg(seed=0, **overrides):
    defaults = dict(
        dt=0.1, seed=seed, page_size=4096,
        net_bandwidth_bps=10e6, net_latency_s=1e-4,
        ssd_read_bps=5e6, ssd_write_bps=3e6,
        ssd_capacity_bytes=1 * GiB, vmd_server_bytes=1 * GiB,
        host_os_bytes=1 * MiB,
        migration=MigrationConfig(backlog_cap_bytes=2 * MiB,
                                  stopcopy_threshold_bytes=256 * KiB))
    defaults.update(overrides)
    return TestbedConfig(**defaults)


def sg_lab(busy=False, gather_bps=2e6, vm_mib=32, reservation_mib=16,
           seed=0):
    lab = make_single_vm_lab("agile", vm_mib * MiB, busy=busy,
                             host_memory_bytes=64 * MiB,
                             reservation_bytes=reservation_mib * MiB,
                             busy_margin_bytes=0.5 * MiB,
                             config=tiny_cfg(seed=seed))

    def launch():
        lab.manager = ScatterGatherMigration(
            lab.world.sim, lab.world.network, lab.src, lab.dst,
            lab.migrate_vm, lab.world.recorder,
            config=lab.config.migration,
            workload=lab.workload_of(lab.migrate_vm),
            gather_bps=gather_bps)
        lab.world.engine.add_participant(lab.manager, order=0)
        lab.manager.start()

    lab._launch = launch
    return lab


def test_scatter_frees_source_and_stages_pages():
    lab = sg_lab()
    lab.run_until_migrated(start=2.0, limit=300.0)
    r = lab.report
    assert r.source_free_time is not None
    assert r.end_time == r.source_free_time
    assert not lab.src.memory.has_vm("vm0")
    # the resident 16 MiB were scattered; the cold 16 MiB skipped
    assert r.scatter_bytes == pytest.approx(16 * MiB, rel=0.02)
    assert r.pages_skipped_swapped == 16 * MiB // 4096
    # no page data crossed the direct channel (metadata only)
    assert r.precopy_bytes == 0.0 and r.push_bytes == 0.0
    assert r.metadata_bytes < 6 * MiB


def test_scatter_faster_than_direct_when_pages_cold():
    """Scatter runs at source-NIC speed independent of the destination:
    the source is free in about resident_bytes / NIC time."""
    lab = sg_lab()
    lab.run_until_migrated(start=2.0, limit=300.0)
    r = lab.report
    # 16 MiB at 10 MB/s ≈ 1.7 s (plus CPU-state handover)
    assert r.source_free_time - r.start_time < 4.0


def test_gather_completes_in_background():
    # reservation covers the whole VM so the gather can finish
    lab = sg_lab(gather_bps=4e6, reservation_mib=40)
    lab.run_until_migrated(start=2.0, limit=300.0, settle=20.0)
    vm = lab.migrate_vm
    # after settling, the background gather pulled everything in
    assert vm.pages.swapped_pages() == 0
    assert vm.pages.resident_pages() == vm.n_pages
    assert lab.report.gather_bytes > 0
    # gather traffic is reported separately from migration transfer
    assert lab.report.gather_bytes not in (lab.report.total_bytes,)


def test_no_gather_leaves_cold_pages_on_vmd():
    lab = sg_lab(gather_bps=None, reservation_mib=40)
    lab.run_until_migrated(start=2.0, limit=300.0, settle=10.0)
    vm = lab.migrate_vm
    assert vm.pages.swapped_pages() > 0  # idle VM: nothing faults them in
    assert lab.report.gather_bytes == 0.0


def test_busy_vm_demand_faults_during_scatter():
    lab = sg_lab(busy=True, vm_mib=24, reservation_mib=8, gather_bps=2e6)
    lab.run_until_migrated(start=5.0, limit=600.0, settle=10.0)
    r = lab.report
    assert r.source_free_time is not None
    # the workload kept running at the destination
    tput = lab.world.recorder.series("vm0.throughput")
    assert tput.between(r.end_time, r.end_time + 10.0).mean() > 0


def test_scatter_gather_requires_vmd_backend():
    lab = make_single_vm_lab("pre-copy", 16 * MiB, busy=False,
                             host_memory_bytes=64 * MiB,
                             reservation_bytes=32 * MiB,
                             config=tiny_cfg())
    with pytest.raises(TypeError):
        ScatterGatherMigration(
            lab.world.sim, lab.world.network, lab.src, lab.dst,
            lab.migrate_vm, lab.world.recorder,
            dst_backend=lab.dst_backend_for_migration,
            config=lab.config.migration)


# -- auto-converge ---------------------------------------------------------------

def autoconverge_lab(auto, seed=0):
    lab = make_single_vm_lab("pre-copy", 24 * MiB, busy=True,
                             host_memory_bytes=64 * MiB,
                             reservation_bytes=24 * MiB,
                             busy_margin_bytes=0.5 * MiB,
                             config=tiny_cfg(
                                 seed=seed,
                                 migration=MigrationConfig(
                                     backlog_cap_bytes=2 * MiB,
                                     stopcopy_threshold_bytes=64 * KiB,
                                     max_rounds=12)))

    # a write-everywhere workload: pre-copy cannot converge on its own
    from repro.cluster.scenarios import scale_params_to_page
    from repro.workloads.kv import ycsb_redis_params
    wl = lab.workloads[0]
    wl.params = scale_params_to_page(
        ycsb_redis_params(write_fraction=1.0, write_region_fraction=1.0),
        4096)

    def launch():
        lab.manager = PrecopyMigration(
            lab.world.sim, lab.world.network, lab.src, lab.dst,
            lab.migrate_vm, lab.world.recorder,
            dst_backend=lab.dst_backend_for_migration,
            config=lab.config.migration,
            workload=lab.workload_of(lab.migrate_vm),
            auto_converge=auto)
        lab.world.engine.add_participant(lab.manager, order=0)
        lab.manager.start()

    lab._launch = launch
    return lab


def test_auto_converge_throttles_and_reduces_retransmission():
    plain = autoconverge_lab(False, seed=3)
    plain.run_until_migrated(start=5.0, limit=600.0)
    throttled = autoconverge_lab(True, seed=3)
    throttled.run_until_migrated(start=5.0, limit=600.0)
    # throttling lets pre-copy converge with less data on the wire
    assert (throttled.report.total_bytes < plain.report.total_bytes)
    # ... at the cost of guest performance during migration (the §VI
    # criticism): fewer ops completed while migrating
    wl_plain = plain.workload_of(plain.migrate_vm)
    wl_thr = throttled.workload_of(throttled.migrate_vm)
    assert wl_thr.total_ops < wl_plain.total_ops
    # the brake is lifted after migration
    assert wl_thr.cpu_throttle == 1.0
