"""repro.fleet scheduler service: boot lifecycle + ledger sharing,
retry/reject, decommission-drain, and crash-during-drain recovery."""

from dataclasses import replace

from repro.experiments.fleet import FleetConfig, make_fleet
from repro.faults import FaultKind, FaultSchedule, FaultSpec
from repro.fleet import DemandConfig, VmSpec
from repro.util import MiB


def quiet_config(**overrides) -> FleetConfig:
    """A 2x2 cluster with no demand stream and no auto-decommission —
    tests drive the scheduler by hand."""
    base = FleetConfig(
        n_racks=2, hosts_per_rack=2,
        host_memory_bytes=64 * MiB,
        demand=DemandConfig(base_rate_per_s=0.0, horizon_s=1.0),
        decommission_host=None)
    return replace(base, **overrides) if overrides else base


def vm_spec(name, memory=16 * MiB, lifetime=5.0, tenant="t0"):
    return VmSpec(name=name, tenant=tenant, memory_bytes=memory,
                  workload="kv", arrival_s=0.0, lifetime_s=lifetime)


def test_boot_lifecycle_shares_the_reservation_ledger():
    fleet = make_fleet(quiet_config())
    sched, planner = fleet.scheduler, fleet.control.planner
    host = sched.submit(vm_spec("vma"))
    assert host is not None
    # during the boot delay the claim sits in the planner ledger and the
    # host view reports it — placement and migration see one truth
    assert planner.reserved_on(host) == 16 * MiB
    assert fleet.view.refresh()[host].reserved_bytes == 16 * MiB
    fleet.run(until=1.0)
    # booted: pages registered, claim released, lifecycle tracked
    assert sched.counters["booted"] == 1
    assert planner.reserved_on(host) == 0.0
    assert fleet.world.vms["vma"].host == host
    assert fleet.world.hosts[host].memory.has_vm("vma")
    assert "vma" in fleet.world.vmd.namespaces
    # lease expiry: the VM leaves no residue anywhere
    fleet.run(until=8.0)
    assert sched.counters["departed"] == 1
    assert "vma" not in fleet.world.vms
    assert "vma" not in fleet.world.hosts[host].vms
    assert "vma" not in fleet.world.vmd.namespaces
    assert not fleet.world.hosts[host].memory.has_vm("vma")


def test_boot_window_reservation_prevents_double_booking():
    fleet = make_fleet(quiet_config())
    sched = fleet.scheduler
    first = sched.submit(vm_spec("vma", memory=40 * MiB))
    second = sched.submit(vm_spec("vmb", memory=40 * MiB))
    # without the boot ledger both 40 MiB boots would pick the same
    # freest host and overcommit it when the pages landed
    assert first is not None and second is not None
    assert first != second


def test_boot_retry_backoff_then_reject():
    fleet = make_fleet(quiet_config())
    sched = fleet.scheduler
    assert sched.submit(vm_spec("vmbig", memory=200 * MiB)) is None
    # backoff 1 + 2 + 4 s: attempts at ~0, 1, 3, 7 → rejected at 7
    fleet.run(until=10.0)
    assert sched.counters["retried"] == 3
    assert sched.counters["rejected"] == 1
    assert sched.rejected == ["vmbig"]
    assert sched.counters["booted"] == 0
    assert "vmbig" not in fleet.world.vms


def test_decommission_drain_evacuates_and_retires():
    fleet = make_fleet(quiet_config())
    sched = fleet.scheduler
    host = sched.submit(vm_spec("vma", lifetime=None))
    fleet.run(until=1.0)
    assert fleet.world.vms["vma"].host == host
    sched.decommission(host)
    fleet.run(until=30.0)
    # the resident evacuated through the planner and the host retired
    assert sched.counters["drained_hosts"] == 1
    assert host in fleet.view.retired
    assert fleet.world.vms["vma"].host != host
    assert fleet.world.vms["vma"].is_running
    assert not fleet.world.hosts[host].vms
    # a retired host takes no further placements
    other = sched.submit(vm_spec("vmb"))
    assert other is not None and other != host


def test_host_crash_during_drain_requeues_pending_boots():
    """The satellite scenario: a host crashes while draining, with a
    boot still inside its boot delay targeting it — the boot must fail
    back into the retry queue, not land on the corpse."""
    # all four hosts are empty and tie on score: the first submit
    # deterministically picks the lexicographic minimum, r0h0
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "r0h0", at=0.3)])
    fleet = make_fleet(quiet_config(), schedule=schedule)
    sched = fleet.scheduler
    target = sched.submit(vm_spec("vma"))        # boot completes at 0.5
    assert target == "r0h0"
    fleet.world.sim.call_at(0.2, sched.decommission, "r0h0")
    fleet.run(until=5.0)
    # the pending boot was pulled back at the crash and re-placed on a
    # surviving host after backoff
    assert sched.counters["crash_requeued"] == 1
    assert sched.counters["booted"] == 1
    assert fleet.world.vms["vma"].host != "r0h0"
    assert fleet.world.vms["vma"].is_running
    # the crashed host's claim was released with the requeue
    assert fleet.control.planner.reserved_on("r0h0") == 0.0
    # the (empty) drain still completed
    assert sched.counters["drained_hosts"] == 1
    assert any("requeue vma" in line for line in sched.placement_log)


def test_crash_outside_drain_also_requeues():
    schedule = FaultSchedule(
        [FaultSpec(FaultKind.HOST_CRASH, "r0h0", at=0.2)])
    fleet = make_fleet(quiet_config(), schedule=schedule)
    sched = fleet.scheduler
    assert sched.submit(vm_spec("vma")) == "r0h0"
    fleet.run(until=5.0)
    assert sched.counters["crash_requeued"] == 1
    assert fleet.world.vms["vma"].host != "r0h0"
    assert fleet.world.vms["vma"].is_running


# -- clone boots --------------------------------------------------------------

def flash_config(**overrides):
    """A flash-crowd config with no background churn — tests see only
    the hot tenant's clone boots."""
    from repro.experiments.flashcrowd import FlashCrowdConfig
    base = FlashCrowdConfig(
        demand=DemandConfig(base_rate_per_s=0.0, horizon_s=1.0),
        n_replicas=3, serving_target=3, flash_at=0.5, until=10.0)
    return replace(base, **overrides) if overrides else base


def test_clone_boots_fork_from_the_registered_parent():
    from repro.experiments.flashcrowd import make_flashcrowd
    fc = make_flashcrowd(flash_config())
    fc.run()
    sched = fc.scheduler
    # every hot boot went through the clone path, via the same
    # pipeline + ledger as a full boot
    assert sched.counters["booted"] == 3
    assert sched.counters["cloned"] == 3
    assert any(l.startswith("clone hot0 <- hotparent")
               for l in sched.placement_log)
    assert fc.clone.counters["snapshots"] == 1
    assert fc.clone.counters["serving"] == 3
    # replicas live under fleet lifecycle tracking like any boot
    for name in ("hot0", "hot1", "hot2"):
        assert name in sched.running
        assert fc.clone.owns(name)


def test_clone_tenant_filter_keeps_other_tenants_on_full_boots():
    from repro.experiments.flashcrowd import make_flashcrowd
    fc = make_flashcrowd(flash_config())
    sched = fc.scheduler
    # same geometry as the parent, different tenant: must not clone
    sched.submit(VmSpec(name="other", tenant="t0",
                        memory_bytes=fc.config.parent_memory_bytes,
                        workload="kv", arrival_s=0.0, lifetime_s=None))
    fc.run(until=2.0)
    assert sched.counters["cloned"] >= 1     # the hot tenant cloned
    assert not fc.clone.owns("other")
    assert "other" in fc.world.vmd.namespaces  # full boot: own namespace


def test_clone_replica_departure_tears_down_clone_resources():
    from repro.experiments.flashcrowd import make_flashcrowd
    fc = make_flashcrowd(flash_config())
    fc.run(until=5.0)
    sched = fc.scheduler
    vmd = fc.world.vmd
    image_ns = fc.clone.replicas["hot0"].image.namespace.name
    sched.depart("hot0")
    assert "hot0" not in sched.running
    assert "hot0" not in fc.world.vms
    assert not fc.clone.owns("hot0")
    assert "hot0.cow" not in vmd.namespaces   # overlay freed
    assert image_ns in vmd.namespaces         # siblings still hold refs
    # the remaining siblings are untouched
    assert fc.clone.owns("hot1") and fc.clone.owns("hot2")
    # all siblings gone + image dropped -> the image namespace frees
    sched.depart("hot1")
    sched.depart("hot2")
    fc.clone.drop_image("hotparent")
    assert image_ns not in vmd.namespaces
