"""Small API-contract tests across modules (error paths, accessors)."""

import numpy as np
import pytest

from repro.cluster import World
from repro.host import Host
from repro.mem import SSDSwapDevice
from repro.net import Network
from repro.util import GiB, KiB, MiB, PAGE_SIZE
from repro.vm import VirtualMachine
from repro.workloads import PhasePlan


def test_constants():
    assert KiB == 1024
    assert MiB == KiB ** 2
    assert GiB == KiB ** 3
    assert PAGE_SIZE == 4096


def test_phase_plan_constant():
    plan = PhasePlan.constant(5, 50)
    assert plan.region_at(0.0) == (5, 50)
    assert plan.region_at(1e9) == (5, 50)


def test_phase_plan_before_first_phase_uses_first():
    plan = PhasePlan([(10.0, 0, 5)])
    assert plan.region_at(0.0) == (0, 5)


def test_host_remove_unknown_vm():
    net = Network()
    host = Host("h", 64 * MiB, net, host_os_bytes=1 * MiB)
    with pytest.raises(KeyError):
        host.remove_vm("ghost")


def test_world_double_vmd_rejected():
    w = World()
    w.add_vmd([("i0", 1 * GiB)])
    with pytest.raises(RuntimeError):
        w.add_vmd([("i1", 1 * GiB)])


def test_world_vmd_reuses_existing_network_host():
    w = World()
    w.network.add_host("i0")
    vmd = w.add_vmd([("i0", 1 * GiB)])
    assert vmd.total_free_bytes() == 1 * GiB
    assert vmd.total_used_bytes() == 0.0


def test_world_cpu_of_accessor():
    w = World()
    w.add_host("h1", 64 * MiB, cpu_cores=6, host_os_bytes=1 * MiB)
    assert w.cpu_of("h1").cores == 6


def test_vm_repr_and_host_repr_do_not_crash():
    net = Network()
    host = Host("h", 64 * MiB, net, host_os_bytes=1 * MiB)
    vm = VirtualMachine("v", 4 * MiB, host="h")
    assert "v" in repr(vm)
    assert "h" in repr(host)


def test_place_vm_duplicate_rejected():
    net = Network()
    host = Host("h", 64 * MiB, net, host_os_bytes=1 * MiB)
    vm = VirtualMachine("v", 4 * MiB, host="h")
    dev = SSDSwapDevice("ssd")
    host.place_vm(vm, 4 * MiB, dev)
    with pytest.raises(ValueError):
        host.place_vm(vm, 4 * MiB, dev)
    with pytest.raises(ValueError):
        host.place_vm_with_cgroup(vm, None, dev)


def test_memory_manager_free_bytes_tracks_residency():
    net = Network()
    host = Host("h", 10 * MiB, net, host_os_bytes=2 * MiB)
    vm = VirtualMachine("v", 4 * MiB, host="h")
    host.place_vm(vm, 4 * MiB, SSDSwapDevice("ssd"))
    assert host.memory.free_bytes() == 8 * MiB
    host.memory.fault_in("v", np.arange(256))  # 1 MiB
    assert host.memory.free_bytes() == 7 * MiB


def test_vm_page_geometry_rounding():
    vm = VirtualMachine("v", 10 * 4096 + 100, page_size=4096)
    assert vm.n_pages == 10  # rounds to whole pages


def test_network_flows_listing():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    f = net.open_flow("a", "b")
    assert f in net.flows
    f.close()
    net.arbitrate(1.0)
    assert f not in net.flows
