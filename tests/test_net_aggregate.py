"""Differential tests: the aggregated fill vs the reference oracle.

The aggregated fast path (``Network(aggregate=True)``, the default)
coalesces same-path flows per priority class into one aggregate for the
progressive-filling loop, then redistributes grants max-min by member
demand. Like the per-flow fast path it must be *bit-identical* to the
dict-based reference arbiter — ``==``, not approximately — because the
weighted fill replays the same float operations in the same order.
These tests drive three networks (aggregated, per-flow fast, reference)
in lockstep through fan-in-heavy populations on flat and three-tier
topologies, where many flows genuinely share a path and the aggregate
branch does real coalescing work.
"""

import random

import pytest

from repro.net import DEFAULT_AGGREGATE, Network
from repro.sched.topology import Topology

SEEDS = [0, 1, 7, 42, 1234]


def test_aggregation_is_the_default():
    assert DEFAULT_AGGREGATE is True
    assert Network().aggregate is True
    assert Network(aggregate=False).aggregate is False


class TriFabric:
    """Three identically-configured networks — aggregated fast path,
    per-flow fast path, reference oracle — driven in lockstep with an
    exact three-way grant comparison after every ``arbitrate``."""

    def __init__(self, hosts, bw=1e6, topology_factory=None):
        self.agg = Network(default_bandwidth_bps=bw, fast_path=True,
                           aggregate=True)
        self.fast = Network(default_bandwidth_bps=bw, fast_path=True,
                            aggregate=False)
        self.ref = Network(default_bandwidth_bps=bw, fast_path=False)
        self.nets = (self.agg, self.fast, self.ref)
        if topology_factory is not None:
            for net in self.nets:
                net.set_topology(topology_factory())
        for h in hosts:
            for net in self.nets:
                net.add_host(h)
        self.triples = []

    def open_flow(self, src, dst, priority=1):
        triple = tuple(net.open_flow(src, dst, priority=priority)
                       for net in self.nets)
        self.triples.append(triple)
        return triple

    def close_triple(self, triple):
        for f in triple:
            f.close()
        self.triples.remove(triple)

    def set_demand(self, triple, demand):
        for f in triple:
            f.demand = demand

    def degrade_nic(self, host, factor):
        for net in self.nets:
            net.nic(host).tx.degrade(factor)
            net.nic(host).rx.degrade(factor)

    def restore_nic(self, host):
        for net in self.nets:
            net.nic(host).tx.restore()
            net.nic(host).rx.restore()

    def set_partition(self, groups):
        for net in self.nets:
            net.set_partition(groups)

    def tick(self, dt):
        for net in self.nets:
            net.arbitrate(dt)
        for af, ff, rf in self.triples:
            assert af.granted == rf.granted, (
                f"aggregate divergence on {af.name}: "
                f"agg={af.granted!r} ref={rf.granted!r}")
            assert ff.granted == rf.granted, (
                f"fast divergence on {ff.name}: "
                f"fast={ff.granted!r} ref={rf.granted!r}")
            assert af.total_bytes == rf.total_bytes

    def assert_links_identical(self):
        def link_bytes(net):
            return {lk.name: lk.bytes_carried
                    for nic in (net.nic(h) for h in net._nics)
                    for lk in (nic.tx, nic.rx)}
        assert link_bytes(self.agg) == link_bytes(self.ref)
        assert link_bytes(self.fast) == link_bytes(self.ref)


def tiered_topo():
    """2 AZs x 2 pods x 2 racks x 2 hosts with tapered uplinks."""
    t = Topology.tiered(2, 2, 2, uplink_bps=2e6, oversubscription=2.0)
    for rack in t.racks:
        for h in range(2):
            t.assign(f"{rack}h{h}", rack)
    return t


def tiered_hosts():
    t = Topology.tiered(2, 2, 2, uplink_bps=2e6)
    return [f"{rack}h{h}" for rack in t.racks for h in range(2)]


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_fanin_lanes(seed):
    """Many parallel lanes per (src, dst) pair — the population the
    aggregation exists for: whole lanes coalesce to one aggregate."""
    rng = random.Random(seed)
    hosts = [f"h{i}" for i in range(6)]
    tri = TriFabric(hosts, bw=1e6)
    # 4 fan-in groups x 8 lanes each, plus a few singleton flows so the
    # grouping sees mixed aggregate sizes
    for _ in range(4):
        src, dst = rng.sample(hosts, 2)
        for _ in range(8):
            tri.open_flow(src, dst, priority=rng.randint(0, 1))
    for _ in range(6):
        src, dst = rng.sample(hosts, 2)
        tri.open_flow(src, dst, priority=rng.randint(0, 1))
    for _ in range(150):
        for triple in tri.triples:
            if rng.random() < 0.8:
                tri.set_demand(triple, rng.uniform(0.0, 3e5))
        tri.tick(dt=0.1)
    tri.assert_links_identical()


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_tiered_topology_churn(seed):
    """Random churn across a three-tier fabric: flows cross ToR, pod
    and AZ uplinks, and equal demands land on shared tier paths."""
    rng = random.Random(seed)
    hosts = tiered_hosts()
    tri = TriFabric(hosts, bw=1e6, topology_factory=tiered_topo)
    for _ in range(30):
        src, dst = rng.sample(hosts, 2)
        tri.open_flow(src, dst, priority=rng.randint(0, 2))
    for _ in range(120):
        for triple in tri.triples:
            tri.set_demand(triple, rng.uniform(0.0, 4e5))
        if tri.triples and rng.random() < 0.05:
            tri.close_triple(rng.choice(tri.triples))
        if rng.random() < 0.1:
            src, dst = rng.sample(hosts, 2)
            tri.open_flow(src, dst, priority=rng.randint(0, 2))
        tri.tick(dt=0.1)
    tri.assert_links_identical()


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_differential_tiered_faults(seed):
    """Degraded NICs and an AZ-shaped partition on the tiered fabric."""
    rng = random.Random(seed)
    hosts = tiered_hosts()
    az0 = [h for h in hosts if h.startswith("az0")]
    tri = TriFabric(hosts, bw=1e6, topology_factory=tiered_topo)
    for _ in range(24):
        src, dst = rng.sample(hosts, 2)
        tri.open_flow(src, dst, priority=rng.randint(0, 1))
    degraded = set()
    for step in range(120):
        for triple in tri.triples:
            tri.set_demand(triple, rng.uniform(0.0, 3e5))
        roll = rng.random()
        if roll < 0.05:
            h = rng.choice(hosts)
            tri.degrade_nic(h, rng.choice([0.0, 0.25, 0.5]))
            degraded.add(h)
        elif roll < 0.10 and degraded:
            tri.restore_nic(degraded.pop())
        if step == 40:
            tri.set_partition([az0])
        if step == 80:
            for net in tri.nets:
                net.clear_partition()
        tri.tick(dt=0.1)
    tri.assert_links_identical()


def test_aggregate_equal_demand_lanes_split_exactly():
    """16 identical lanes over one bottleneck: each gets capacity/16,
    and a higher-demand singleton on the same path gets the same share
    (max-min: equal split until demands differ)."""
    tri = TriFabric(["a", "b"], bw=1600.0)
    lanes = [tri.open_flow("a", "b") for _ in range(16)]
    for lane in lanes:
        tri.set_demand(lane, 1000.0)
    tri.tick(dt=1.0)
    for lane in lanes:
        assert lane[0].granted == 100.0


def test_aggregate_mixed_demands_peel_in_order():
    """Small-demand lanes saturate and exit the fill while big lanes
    keep absorbing headroom — the ascending-demand peel must happen at
    member (not aggregate) granularity."""
    tri = TriFabric(["a", "b", "c"], bw=1000.0)
    smalls = [tri.open_flow("a", "b") for _ in range(8)]
    bigs = [tri.open_flow("a", "b") for _ in range(8)]
    other = tri.open_flow("a", "c")
    for _ in range(5):
        for f in smalls:
            tri.set_demand(f, 10.0)
        for f in bigs:
            tri.set_demand(f, 500.0)
        tri.set_demand(other, 500.0)
        tri.tick(dt=1.0)
        # smalls fully satisfied; the rest split what remains
        for f in smalls:
            assert f[0].granted == 10.0
        for f in bigs:
            assert f[0].granted == pytest.approx(
                (1000.0 - 80.0) / 9, rel=1e-12)


def test_aggregate_priority_classes_stay_separate():
    """Lanes of different priorities between the same pair must not
    coalesce across classes: class 0 drains first, exactly."""
    tri = TriFabric(["a", "b"], bw=100.0)
    paging = [tri.open_flow("a", "b", priority=0) for _ in range(14)]
    bulk = [tri.open_flow("a", "b", priority=1) for _ in range(14)]
    for _ in range(3):
        for f in paging:
            tri.set_demand(f, 5.0)
        for f in bulk:
            tri.set_demand(f, 100.0)
        tri.tick(dt=1.0)
        for f in paging:
            assert f[0].granted == 5.0
        total_bulk = sum(f[0].granted for f in bulk)
        assert total_bulk == pytest.approx(30.0)
