"""End-to-end integration: WSS trackers + watermark trigger + Agile.

This wires the whole control loop of §III-B at a tiny scale: trackers
estimate each VM's working set, the trigger notices the aggregate
crossing the high watermark, the selection picks the fewest VMs, and an
Agile migration relieves the source — the complete system the paper
describes.
"""

import pytest

from repro.cluster.scenarios import (
    TestbedConfig,
    make_pressure_scenario,
)
from repro.core import AgileMigration, WatermarkTrigger, WssTracker
from repro.core.trigger import WatermarkConfig
from repro.core.wss import WssTrackerConfig
from repro.core.base import MigrationConfig
from repro.util import GiB, MiB
from repro.workloads import PhasePlan


def test_full_rebalance_loop():
    cfg = TestbedConfig(
        dt=0.25, seed=2, page_size=4096, net_bandwidth_bps=20e6,
        ssd_read_bps=10e6, ssd_write_bps=6e6, ssd_capacity_bytes=1 * GiB,
        vmd_server_bytes=1 * GiB, host_os_bytes=1 * MiB,
        migration=MigrationConfig(backlog_cap_bytes=4 * MiB))
    lab = make_pressure_scenario(
        "agile", "kv", n_vms=3, vm_memory_bytes=48 * MiB,
        host_memory_bytes=97 * MiB, reservation_bytes=16 * MiB,
        kv_dataset_bytes=40 * MiB, config=cfg)
    world = lab.world

    # All three VMs query their whole 40 MiB dataset: working sets far
    # exceed what the 96 MiB host can hold.
    for wl in lab.workloads:
        wl.plan = PhasePlan([(0.0, 0, 40 * MiB // 4096)])

    trackers = {
        vm.name: WssTracker(
            world.sim, vm.name, lambda vm=vm: world.manager_of(vm.host),
            world.recorder,
            config=WssTrackerConfig(min_reservation_bytes=4 * MiB),
            max_reservation_bytes=44 * MiB)
        for vm in lab.vms
    }

    migrated = []

    def launch(names):
        for name in names:
            vm = world.vms[name]
            trackers[name].stop()
            mgr = AgileMigration(world.sim, world.network, lab.src,
                                 lab.dst, vm, world.recorder,
                                 config=cfg.migration,
                                 workload=lab.workload_of(vm))
            world.engine.add_participant(mgr, order=0)
            mgr.start()
            migrated.append(mgr)

    trigger = WatermarkTrigger(
        world.sim, usable_bytes=lab.src.memory.usable_bytes(),
        wss_of=lambda: {n: t.estimated_wss_bytes()
                        for n, t in trackers.items()
                        if world.vms[n].host == "src"
                        and not world.vms[n].migrating},
        migrate=launch, recorder=world.recorder,
        config=WatermarkConfig(high_watermark=0.9, low_watermark=0.6,
                               check_interval_s=5.0))

    world.run(until=400.0)

    # The trackers grew reservations under swap pressure, the trigger
    # fired, and at least one VM was migrated off the source.
    assert trigger.trigger_count >= 1
    assert len(migrated) >= 1
    done = [m for m in migrated if m.done.triggered]
    assert done, "triggered migration(s) never completed"
    moved = {m.vm.name for m in done}
    for name in moved:
        assert world.vms[name].host == "dst"
        assert not lab.src.memory.has_vm(name)
    # the source kept at least one VM
    assert len(lab.src.vms) >= 1
    # aggregate WSS telemetry was recorded for the operator
    assert world.recorder.has("trigger.aggregate_wss")
