"""Tests for the host memory manager (residency, eviction, writeback)."""

import numpy as np
import pytest

from repro.mem import HostMemoryManager, SSDSwapDevice
from repro.net import Network
from repro.host import Host
from repro.vm import VirtualMachine

PAGE = 4096
MiB = 2 ** 20


def make_host(mem_mib=10, os_mib=1):
    net = Network()
    return Host("h", mem_mib * MiB, net, host_os_bytes=os_mib * MiB)


def make_vm(name="vm1", pages=100):
    return VirtualMachine(name, pages * PAGE, host="h")


def place(host, vm, reservation_pages, dev=None):
    dev = dev or SSDSwapDevice("ssd")
    return host.place_vm(vm, reservation_pages * PAGE, dev), dev


def test_register_and_query():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 50)
    assert host.memory.has_vm("vm1")
    assert binding.cgroup.reservation_bytes == 50 * PAGE
    assert host.memory.free_bytes() == host.memory.usable_bytes()


def test_duplicate_registration_rejected():
    host = make_host()
    vm = make_vm()
    place(host, vm, 50)
    with pytest.raises(ValueError):
        host.place_vm(vm, 10 * PAGE, SSDSwapDevice("ssd2"))


def test_fault_in_fresh_pages_costs_no_io():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 50)
    read = host.memory.fault_in("vm1", np.arange(10))
    assert read == 0.0
    assert vm.pages.resident_pages() == 10
    assert binding.cgroup.swap_in_bytes_total == 0.0


def test_fault_in_swapped_pages_costs_reads():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 50)
    host.memory.fault_in("vm1", np.arange(10))
    vm.pages.swap_out(np.arange(5))
    read = host.memory.fault_in("vm1", np.arange(5))
    assert read == 5 * PAGE
    assert binding.cgroup.swap_in_bytes_total == 5 * PAGE


def test_cgroup_cap_triggers_lru_eviction():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 10)
    host.memory.fault_in("vm1", np.arange(8))
    host.memory.tick = 5
    host.memory.fault_in("vm1", np.arange(8, 16))  # 16 resident > 10 cap
    assert vm.pages.resident_pages() == 10
    # the evicted pages are the oldest (ticks 0 vs 5)
    assert np.all(~vm.pages.present[:6])
    assert np.all(vm.pages.swapped[:6])


def test_eviction_of_fresh_pages_queues_writeback():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 10)
    host.memory.fault_in("vm1", np.arange(15))
    assert binding.writeback_backlog == 5 * PAGE
    assert binding.cgroup.swap_out_bytes_total == 5 * PAGE


def test_eviction_of_swap_clean_pages_is_free():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 10)
    host.memory.fault_in("vm1", np.arange(10))
    vm.pages.swap_out(np.arange(10))  # now all have valid swap copies
    binding.writeback_backlog = 0.0
    host.memory.fault_in("vm1", np.arange(10))  # swap back in (clean)
    host.memory.tick = 1
    host.memory.fault_in("vm1", np.arange(10, 15))  # forces eviction of 5
    assert binding.writeback_backlog == 0.0  # clean pages, no writeback
    assert vm.pages.resident_pages() == 10


def test_dirty_pages_need_writeback_on_reeviction():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 10)
    host.memory.fault_in("vm1", np.arange(10))
    vm.pages.swap_out(np.arange(10))
    host.memory.fault_in("vm1", np.arange(10))
    binding.writeback_backlog = 0.0
    host.memory.dirty("vm1", np.arange(10))  # invalidates swap copies
    host.memory.tick = 1
    host.memory.fault_in("vm1", np.arange(10, 12))
    assert binding.writeback_backlog == 2 * PAGE


def test_protect_mask_prevents_eviction():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 10)
    host.memory.fault_in("vm1", np.arange(10))
    protect = np.zeros(vm.n_pages, dtype=bool)
    protect[:10] = True
    binding.protect = protect
    host.memory.tick = 1
    host.memory.fault_in("vm1", np.arange(10, 15))
    # protected pages stay; the newly faulted ones are the only candidates
    assert np.all(vm.pages.present[:10])


def test_host_capacity_enforced_across_vms():
    # host: 10 MiB - 1 MiB OS = 9 MiB usable = 2304 pages
    host = make_host(mem_mib=10, os_mib=1)
    dev = SSDSwapDevice("ssd")
    vm1 = make_vm("vm1", pages=2000)
    vm2 = make_vm("vm2", pages=2000)
    host.place_vm(vm1, 2000 * PAGE, dev)
    host.place_vm(vm2, 2000 * PAGE, dev)  # reservations exceed host RAM
    host.memory.fault_in("vm1", np.arange(2000))
    host.memory.fault_in("vm2", np.arange(2000))
    total = host.memory.total_resident_bytes()
    assert total <= host.memory.usable_bytes() + PAGE


def test_writeback_drains_via_tick_protocol():
    host = make_host()
    vm = make_vm()
    dev = SSDSwapDevice("ssd", write_bps=4 * PAGE)  # 4 pages/s
    binding, _ = place(host, vm, 10, dev=dev)
    host.memory.fault_in("vm1", np.arange(18))  # evicts 8 fresh pages
    assert binding.writeback_backlog == 8 * PAGE
    host.memory.pre_tick(1.0)
    dev.arbitrate(1.0)
    host.memory.commit_tick(1.0)
    assert binding.writeback_backlog == 4 * PAGE


def test_free_vm_memory_keeps_swap_state():
    host = make_host()
    vm = make_vm()
    place(host, vm, 10)
    host.memory.fault_in("vm1", np.arange(15))  # 5 evicted to swap
    host.memory.free_vm_memory("vm1")
    assert vm.pages.resident_pages() == 0
    assert vm.pages.swapped_pages() == 5  # per-VM swap survives (§IV-B)


def test_unregister_closes_queues():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 10)
    host.remove_vm("vm1")
    assert not host.memory.has_vm("vm1")
    assert not binding.fault_queue.active
    assert not binding.write_queue.active


def test_shrink_to_reservation():
    host = make_host()
    vm = make_vm()
    binding, _ = place(host, vm, 50)
    host.memory.fault_in("vm1", np.arange(40))
    binding.cgroup.set_reservation(20 * PAGE)
    evicted = host.memory.shrink_to_reservation("vm1")
    assert evicted == 20
    assert vm.pages.resident_pages() == 20


def test_invalid_host_memory_config():
    net = Network()
    with pytest.raises(ValueError):
        Host("h", 100 * MiB, net, host_os_bytes=200 * MiB)


def test_adopt_vm_carries_cgroup_and_backend():
    net = Network()
    src = Host("src", 10 * MiB, net, host_os_bytes=1 * MiB)
    dst = Host("dst", 10 * MiB, net, host_os_bytes=1 * MiB)
    vm = make_vm()
    dev = SSDSwapDevice("ssd")
    binding, _ = place(src, vm, 10, dev=dev)
    src.remove_vm("vm1")
    new_binding = dst.adopt_vm(vm, binding)
    assert vm.host == "dst"
    assert new_binding.cgroup is binding.cgroup
    assert new_binding.backend is dev
