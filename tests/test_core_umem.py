"""Unit tests for the UMEM destination fault handler."""

import numpy as np
import pytest

from repro.core.base import MigrationReport, PendingScan
from repro.core.umem import UmemFaultHandler
from repro.mem import PageSet, SSDSwapDevice
from repro.net import Network


def build(n_pages=10, pending=(0, 1, 2, 3), swapped=()):
    net = Network(default_bandwidth_bps=100.0, latency_s=0.0)
    net.add_host("src")
    net.add_host("dst")
    src_pages = PageSet(n_pages)
    if swapped:
        idx = np.asarray(swapped)
        src_pages.make_resident(idx, tick=0)
        src_pages.swap_out(idx)
    mask = np.zeros(n_pages, dtype=bool)
    mask[list(pending)] = True
    scan = PendingScan(mask)
    dev = SSDSwapDevice("ssd", read_bps=50.0)
    report = MigrationReport("post-copy", "vm0")
    umem = UmemFaultHandler(net, "src", "dst", "vm0", scan, src_pages,
                            dev, report)
    return net, dev, scan, report, umem


def test_source_pending_mask_is_scan_pending():
    net, dev, scan, report, umem = build()
    mask = umem.source_pending_mask()
    assert mask is scan.pending
    assert mask[0] and not mask[5]


def test_demand_all_resident_pages_no_device_reads():
    net, dev, scan, report, umem = build(pending=(0, 1), swapped=())
    umem.demand_source(40.0)
    assert umem.flow.demand == 40.0
    assert umem.read_q.demand == 0.0
    net.arbitrate(dt=1.0)
    assert umem.granted_source() == pytest.approx(40.0)


def test_demand_swapped_pages_couples_to_source_device():
    # 4 pending pages, 2 swapped at the source: sigma = 0.5
    net, dev, scan, report, umem = build(pending=(0, 1, 2, 3),
                                         swapped=(0, 1))
    umem.demand_source(40.0)
    assert umem.read_q.demand == pytest.approx(20.0)
    net.arbitrate(dt=1.0)
    dev.arbitrate(dt=1.0)
    # network grants 40, device grants 20: effective = min(40, 20/0.5)
    assert umem.granted_source() == pytest.approx(40.0)


def test_slow_source_device_limits_demand_paging():
    net, dev, scan, report, umem = build(pending=(0, 1, 2, 3),
                                         swapped=(0, 1, 2, 3))
    umem.demand_source(1000.0)  # sigma = 1.0 -> all need device reads
    net.arbitrate(dt=1.0)
    dev.arbitrate(dt=1.0)  # device read_bps = 50
    assert umem.granted_source() == pytest.approx(50.0)


def test_notify_fetched_updates_scan_and_report():
    net, dev, scan, report, umem = build(pending=(0, 1, 2, 3))
    umem.notify_fetched(np.array([1, 2]))
    assert scan.remaining == 2
    assert report.pages_demand_fetched == 2
    assert report.demand_bytes == 2 * 4096


def test_close_releases_flow_and_queue():
    net, dev, scan, report, umem = build()
    umem.close()
    assert not umem.flow.active
    assert not umem.read_q.active


def test_priority_zero_preempts_bulk_traffic():
    net, dev, scan, report, umem = build()
    bulk = net.open_flow("src", "dst", priority=1, name="bulk")
    bulk.demand = 1000.0
    umem.demand_source(80.0)
    net.arbitrate(dt=1.0)
    assert umem.flow.granted == pytest.approx(80.0)
    assert bulk.granted == pytest.approx(20.0)


def test_sigma_zero_when_scan_empty():
    net, dev, scan, report, umem = build(pending=())
    umem.demand_source(10.0)
    assert umem.read_q.demand == 0.0
    net.arbitrate(dt=1.0)
    assert umem.granted_source() == pytest.approx(10.0)
