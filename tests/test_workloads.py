"""Tests for the workload engine (throughput model, fault effects)."""

import numpy as np
import pytest

from repro.cluster import World, preload_dataset
from repro.util import MiB
from repro.workloads import (
    IdleWorkload,
    KeyValueWorkload,
    OLTPWorkload,
    PhasePlan,
    WorkloadParams,
    ycsb_redis_params,
)

PAGE = 4096


def small_world(host_mem_mib=64, seed=1, dt=0.5):
    w = World(dt=dt, seed=seed, net_bandwidth_bps=50e6)
    w.add_host("h1", host_mem_mib * MiB, host_os_bytes=4 * MiB)
    w.add_client_host()
    return w


def add_kv(w, vm_mem_mib=32, reservation_mib=16, dataset_mib=24,
           dev=None, params=None, host="h1", name="vm1"):
    vm = w.add_vm(name, vm_mem_mib * MiB, host)
    dev = dev or w.add_ssd(f"ssd.{name}", read_bps=20e6, write_bps=10e6)
    w.hosts[host].place_vm(vm, reservation_mib * MiB, dev)
    preload_dataset(vm, w.manager_of(host), dataset_mib * MiB)
    wl = KeyValueWorkload(
        vm, w.network, "client", w.manager_of, w.recorder,
        w.rng(f"wl.{name}"), dataset_bytes=dataset_mib * MiB,
        params=params, sim_now=lambda: w.sim.now)
    w.add_workload(wl)
    return vm, wl


def test_phase_plan_steps():
    plan = PhasePlan([(0.0, 0, 10), (5.0, 0, 100)])
    assert plan.region_at(0.0) == (0, 10)
    assert plan.region_at(4.9) == (0, 10)
    assert plan.region_at(5.0) == (0, 100)


def test_phase_plan_validation():
    with pytest.raises(ValueError):
        PhasePlan([])
    with pytest.raises(ValueError):
        PhasePlan([(0.0, 5, 5)])


def test_preload_splits_resident_and_swapped():
    w = small_world()
    vm, wl = add_kv(w, vm_mem_mib=32, reservation_mib=16, dataset_mib=24)
    # 16 MiB resident (the reservation), 8 MiB swapped
    assert vm.pages.resident_bytes() == 16 * MiB
    assert vm.pages.swapped_bytes() == 8 * MiB
    # the tail of the dataset is resident, the head swapped
    assert vm.pages.swapped[0]
    assert vm.pages.present[24 * MiB // PAGE - 1]


def test_preload_respects_host_free_memory():
    w = small_world(host_mem_mib=16)  # 12 MiB usable
    vm = w.add_vm("vm1", 32 * MiB, "h1")
    dev = w.add_ssd("ssd")
    w.hosts["h1"].place_vm(vm, 30 * MiB, dev)  # reservation > host RAM
    preload_dataset(vm, w.manager_of("h1"), 24 * MiB)
    assert vm.pages.resident_bytes() <= 12 * MiB


def test_fitting_workload_reaches_cpu_or_net_bound():
    w = small_world()
    # dataset fits entirely in the reservation: no faults at all
    vm, wl = add_kv(w, vm_mem_mib=32, reservation_mib=30, dataset_mib=16)
    w.run(until=20.0)
    tput = w.recorder.series("vm1.throughput")
    steady = tput.between(10.0, 20.0).mean()
    p = wl.params
    cpu_bound = vm.vcpus / p.cpu_s_per_op
    net_bound = 50e6 / p.bytes_per_op
    assert steady == pytest.approx(min(cpu_bound, net_bound), rel=0.1)
    assert wl.total_ops > 0


def test_thrashing_workload_much_slower():
    w = small_world()
    fit_vm, fit_wl = add_kv(w, name="vmfit", vm_mem_mib=32,
                            reservation_mib=30, dataset_mib=16)
    thrash_vm, thrash_wl = add_kv(w, name="vmthrash", vm_mem_mib=32,
                                  reservation_mib=8, dataset_mib=24)
    w.run(until=30.0)
    fit = w.recorder.series("vmfit.throughput").between(10, 30).mean()
    thrash = w.recorder.series("vmthrash.throughput").between(10, 30).mean()
    assert thrash < 0.5 * fit


def test_thrashing_generates_swap_traffic():
    w = small_world()
    vm, wl = add_kv(w, reservation_mib=8, dataset_mib=24)
    w.run(until=20.0)
    cg = w.manager_of("h1").binding("vm1").cgroup
    assert cg.swap_in_bytes_total > 0
    assert cg.swap_out_bytes_total > 0  # evictions of dirtied pages


def test_readahead_amplifies_device_traffic():
    w1 = small_world(seed=3)
    _, wl1 = add_kv(w1, reservation_mib=8, dataset_mib=24,
                    params=ycsb_redis_params(readahead=1.0))
    w1.run(until=20.0)
    w2 = small_world(seed=3)
    _, wl2 = add_kv(w2, reservation_mib=8, dataset_mib=24,
                    params=ycsb_redis_params(readahead=8.0))
    w2.run(until=20.0)
    per_op_1 = (w1.manager_of("h1").binding("vm1").cgroup.swap_in_bytes_total
                / max(wl1.total_ops, 1))
    per_op_2 = (w2.manager_of("h1").binding("vm1").cgroup.swap_in_bytes_total
                / max(wl2.total_ops, 1))
    assert per_op_2 > 3 * per_op_1


def test_suspended_vm_records_zero_throughput():
    w = small_world()
    vm, wl = add_kv(w, reservation_mib=30, dataset_mib=16)
    w.run(until=5.0)
    vm.suspend()
    w.run(until=10.0)
    late = w.recorder.series("vm1.throughput").between(6.0, 10.0)
    assert late.mean() == 0.0
    vm.resume()
    w.run(until=15.0)
    assert w.recorder.series("vm1.throughput").between(12.0, 15.0).mean() > 0


def test_network_contention_reduces_throughput():
    """A competing bulk flow on the host NIC squeezes client traffic."""
    w = small_world()
    vm, wl = add_kv(w, reservation_mib=30, dataset_mib=16)
    w.run(until=10.0)
    before = w.recorder.series("vm1.throughput").between(5, 10).mean()

    class Hog:
        def __init__(self, net):
            self.flow = net.open_flow("h1", "client", name="hog")

        def pre_tick(self, dt):
            self.flow.demand = 1e12

        def commit_tick(self, dt):
            pass

    w.engine.add_participant(Hog(w.network))
    w.run(until=20.0)
    after = w.recorder.series("vm1.throughput").between(15, 20).mean()
    assert after < 0.7 * before


def test_query_ramp_increases_faults():
    w = small_world()
    vm = w.add_vm("vm1", 32 * MiB, "h1")
    dev = w.add_ssd("ssd", read_bps=20e6, write_bps=10e6)
    w.hosts["h1"].place_vm(vm, 16 * MiB, dev)
    preload_dataset(vm, w.manager_of("h1"), 24 * MiB)
    wl = KeyValueWorkload(
        vm, w.network, "client", w.manager_of, w.recorder, w.rng("wl"),
        dataset_bytes=24 * MiB,
        query_plan=[(0.0, 4 * MiB), (20.0, 24 * MiB)],
        sim_now=lambda: w.sim.now)
    w.add_workload(wl)
    w.run(until=40.0)
    small_phase = w.recorder.series("vm1.throughput").between(10, 20).mean()
    big_phase = w.recorder.series("vm1.throughput").between(30, 40).mean()
    # querying beyond the reservation thrashes; the small phase fits
    assert big_phase < 0.7 * small_phase


def test_paper_ramp_plan_schedule():
    plan = KeyValueWorkload.paper_ramp_plan(2)
    assert plan[0] == (0.0, 200 * MiB)
    assert plan[1][0] == 250.0


def test_kv_validation():
    w = small_world()
    vm = w.add_vm("vm1", 8 * MiB, "h1")
    dev = w.add_ssd("ssd")
    w.hosts["h1"].place_vm(vm, 8 * MiB, dev)
    with pytest.raises(ValueError):
        KeyValueWorkload(vm, w.network, "client", w.manager_of, w.recorder,
                         w.rng("x"), dataset_bytes=16 * MiB)


def test_oltp_runs_and_is_slower_than_kv():
    w = small_world()
    vm = w.add_vm("vm1", 32 * MiB, "h1")
    dev = w.add_ssd("ssd", read_bps=20e6, write_bps=10e6)
    w.hosts["h1"].place_vm(vm, 30 * MiB, dev)
    preload_dataset(vm, w.manager_of("h1"), 16 * MiB)
    wl = OLTPWorkload(vm, w.network, "client", w.manager_of, w.recorder,
                      w.rng("oltp"), dataset_bytes=16 * MiB,
                      sim_now=lambda: w.sim.now)
    w.add_workload(wl)
    w.run(until=20.0)
    trans = w.recorder.series("vm1.throughput").between(10, 20).mean()
    assert 0 < trans < 1000  # transactions, not KV ops


def test_idle_workload_records_zero():
    w = small_world()
    vm = w.add_vm("vm1", 8 * MiB, "h1")
    dev = w.add_ssd("ssd")
    w.hosts["h1"].place_vm(vm, 8 * MiB, dev)
    w.add_workload(IdleWorkload(vm, w.recorder, sim_now=lambda: w.sim.now))
    w.run(until=5.0)
    assert w.recorder.series("vm1.throughput").mean() == 0.0


def test_determinism_same_seed_same_result():
    results = []
    for _ in range(2):
        w = small_world(seed=42)
        vm, wl = add_kv(w, reservation_mib=8, dataset_mib=24)
        w.run(until=15.0)
        results.append(wl.total_ops)
    assert results[0] == results[1]


def test_different_seeds_pick_different_pages():
    states = []
    for seed in (1, 2):
        w = small_world(seed=seed)
        vm, wl = add_kv(w, reservation_mib=8, dataset_mib=24)
        w.run(until=15.0)
        states.append(vm.pages.present.copy())
    # ops totals may coincide (resource-bound), but the sampled pages differ
    assert not np.array_equal(states[0], states[1])
