"""Unit tests for the discrete-event kernel."""

import math

import pytest

from repro.sim import Event, Interrupt, Simulator, Timeout
from repro.sim.kernel import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_in_runs_at_right_time():
    sim = Simulator()
    seen = []
    sim.call_in(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]


def test_call_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(3.0, lambda: seen.append(sim.now))
    sim.call_at(1.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.0, 3.0]


def test_fifo_order_for_simultaneous_callbacks():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_at(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.call_in(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.call_at(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run(until=20.0)
    assert sim.now == 20.0


def test_run_until_includes_boundary_events():
    sim = Simulator()
    seen = []
    sim.call_at(4.0, seen.append, "x")
    sim.run(until=4.0)
    assert seen == ["x"]


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event("e")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    ev.succeed(42)
    sim.run()
    assert got == [42]
    assert ev.triggered and not ev.failed


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_callback_added_after_trigger_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("late")
    sim.run()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    sim.run()
    assert got == ["late"]


def test_timeout_fires_after_delay():
    sim = Simulator()
    t = sim.timeout(2.5, value="done")
    sim.run()
    assert sim.now == 2.5
    assert t.triggered and t.value == "done"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_sequencing_with_timeouts():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(1.0)
        trace.append(("mid", sim.now))
        yield sim.timeout(2.0)
        trace.append(("end", sim.now))
        return "retval"

    p = sim.process(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]
    assert p.triggered and p.value == "retval"


def test_process_join():
    sim = Simulator()
    result = []

    def child():
        yield sim.timeout(5.0)
        return 99

    def parent():
        value = yield sim.process(child())
        result.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert result == [(5.0, 99)]


def test_process_waits_on_event_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        v = yield ev
        got.append(v)

    sim.process(waiter())
    sim.call_in(2.0, lambda: ev.succeed("hello"))
    sim.run()
    assert got == ["hello"]


def test_failed_event_raises_in_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    sim.process(waiter())
    sim.call_in(1.0, lambda: ev.fail(ValueError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    p = sim.process(sleeper())
    sim.call_in(3.0, lambda: p.interrupt("wake"))
    sim.run(until=10.0)
    assert log == [(3.0, "wake")]


def test_interrupted_process_ignores_stale_timeout():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(5.0)
            log.append("timeout-completed")
        except Interrupt:
            yield sim.timeout(1.0)
            log.append(("resumed", sim.now))

    p = sim.process(sleeper())
    sim.call_in(2.0, lambda: p.interrupt())
    sim.run()
    # The original 5s timeout firing at t=5 must not wake the process twice.
    assert log == [("resumed", 3.0)]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    p.interrupt()  # must not raise
    sim.run()
    assert p.triggered


def test_all_of_waits_for_every_event():
    sim = Simulator()
    ts = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
    done = sim.all_of(ts)
    sim.run()
    assert done.triggered
    assert done.value == [3.0, 1.0, 2.0]
    assert sim.now == 3.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    done = sim.all_of([])
    assert done.triggered and done.value == []


def test_any_of_fires_on_first():
    sim = Simulator()
    fired = []
    done = sim.any_of([sim.timeout(4.0, "slow"), sim.timeout(1.0, "fast")])
    done.add_callback(lambda e: fired.append((sim.now, e.value)))
    sim.run()
    assert fired == [(1.0, "fast")]


def test_run_until_event():
    sim = Simulator()
    ev = sim.event()
    sim.call_in(7.0, lambda: ev.succeed("v"))
    sim.call_in(100.0, lambda: None)
    assert sim.run_until_event(ev) == "v"
    assert sim.now == 7.0


def test_run_until_event_queue_drain_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run_until_event(ev)


def test_run_until_event_limit_raises():
    sim = Simulator()
    ev = sim.event()
    sim.call_in(50.0, lambda: ev.succeed(None))
    with pytest.raises(SimulationError):
        sim.run_until_event(ev, limit=10.0)


def test_peek_reports_next_time():
    sim = Simulator()
    assert sim.peek() == math.inf
    sim.call_in(2.0, lambda: None)
    assert sim.peek() == 2.0


def test_process_yielding_garbage_fails():
    sim = Simulator()

    def bad():
        yield 42  # not an Event

    p = sim.process(bad())
    sim.run()
    assert p.failed
    assert isinstance(p.value, SimulationError)


def test_all_of_propagates_input_failure():
    sim = Simulator()
    boom = RuntimeError("disk died")
    ok = sim.timeout(1.0, "ok")
    bad = sim.event("bad")
    sim.call_in(2.0, lambda: bad.fail(boom))
    done = sim.all_of([ok, bad])
    caught = []

    def waiter():
        try:
            yield done
        except RuntimeError as exc:
            caught.append(exc)

    sim.process(waiter())
    sim.run()
    assert done.failed and done.value is boom
    assert caught == [boom]


def test_all_of_first_failure_wins():
    sim = Simulator()
    first = RuntimeError("first")
    e1, e2 = sim.event("e1"), sim.event("e2")
    sim.call_in(1.0, lambda: e1.fail(first))
    sim.call_in(2.0, lambda: e2.fail(RuntimeError("second")))
    done = sim.all_of([e1, e2])
    sim.run()
    assert done.failed and done.value is first
    assert sim.now == 2.0  # the late second failure is absorbed, not raised


def test_any_of_propagates_failure_of_first_event():
    sim = Simulator()
    boom = ValueError("fault injected")
    bad = sim.event("bad")
    sim.call_in(1.0, lambda: bad.fail(boom))
    done = sim.any_of([bad, sim.timeout(5.0, "slow")])
    caught = []

    def waiter():
        try:
            yield done
        except ValueError as exc:
            caught.append(exc)

    sim.process(waiter())
    sim.run()
    assert done.failed and done.value is boom
    assert caught == [boom]


def test_any_of_success_before_late_failure():
    sim = Simulator()
    bad = sim.event("bad")
    sim.call_in(3.0, lambda: bad.fail(RuntimeError("late")))
    done = sim.any_of([sim.timeout(1.0, "fast"), bad])
    sim.run()
    assert done.triggered and not done.failed
    assert done.value == "fast"
