"""End-to-end flash-crowd scenario: the quick clone run exercises
snapshot + fork + hydration through the fleet scheduler, the ablation
separates the arms, and two same-seed runs are byte-identical —
placement log, serving log, clone log, and the exported trace."""

from dataclasses import replace

from repro.experiments.flashcrowd import (
    flashcrowd_ablation,
    flashcrowd_run,
    quick_config,
)
from repro.obs import Tracer, chrome_trace_doc, trace_to_jsonl
from repro.obs.check import missing_categories, validate_chrome_trace


def run_quick(tmp_path, tag, provision="clone"):
    tracer = Tracer()
    cfg = replace(quick_config(seed=0), provision=provision)
    res = flashcrowd_run(cfg, tracer=tracer)
    path = tmp_path / f"flashcrowd-{tag}.jsonl"
    trace_to_jsonl(tracer, path)
    return res, path, tracer


def test_quick_clone_run_reaches_target_via_forks(tmp_path):
    res, _, _ = run_quick(tmp_path, "life")
    c = res["counters"]
    fc = res["scenario"]
    # every hot replica booted as a clone fork, none full-copy
    assert c["cloned"] == fc.config.n_replicas
    assert fc.clone.counters["snapshots"] == 1
    assert fc.clone.counters["forks"] == fc.config.n_replicas
    assert fc.clone.counters["failed"] == 0
    assert res["time_to_n_serving"] is not None
    assert res["bytes_to_serving"] is not None
    # background churn ran alongside (identical in the fullcopy arm)
    assert c["booted"] > fc.config.n_replicas
    # every live clone replica is placed and accounted for
    for name in fc.clone.replicas:
        vm = fc.world.vms[name]
        assert fc.world.hosts[vm.host].memory.has_vm(name)


def test_same_seed_runs_are_byte_identical(tmp_path):
    res_a, trace_a, _ = run_quick(tmp_path, "a")
    res_b, trace_b, _ = run_quick(tmp_path, "b")
    assert res_a["placement_log"] == res_b["placement_log"]
    assert res_a["serving_log"] == res_b["serving_log"]
    assert res_a["clone_log"] == res_b["clone_log"]
    assert res_a["counters"] == res_b["counters"]
    assert res_a["time_to_n_serving"] == res_b["time_to_n_serving"]
    assert res_a["bytes_to_serving"] == res_b["bytes_to_serving"]
    assert trace_a.read_bytes() == trace_b.read_bytes()


def test_quick_trace_passes_the_obs_validator(tmp_path):
    _, _, tracer = run_quick(tmp_path, "obs")
    doc = chrome_trace_doc(tracer)
    assert validate_chrome_trace(doc) == []
    # clone provisioning emits under its own category, alongside the
    # fleet scheduler driving it and the VMD underneath
    required = ["clone", "fleet", "vmd", "umem"]
    assert missing_categories(doc, required) == []


def test_fullcopy_arm_serves_without_clones(tmp_path):
    res, _, _ = run_quick(tmp_path, "full", provision="fullcopy")
    assert res["counters"]["cloned"] == 0
    assert res["scenario"].clone is None
    assert res["time_to_n_serving"] is not None
    # each hot replica paid a full parent-memory stream
    fc = res["scenario"]
    assert len(fc.fullcopy.reports) == fc.config.n_replicas
    assert res["provision_bytes"] >= (fc.config.n_replicas
                                      * fc.config.parent_memory_bytes
                                      - 1.0)


def test_ablation_clone_beats_fullcopy_on_time_and_bytes():
    res = flashcrowd_ablation(seed=0, quick=True)
    assert res["clone_wins_time"]
    assert res["clone_time"] < res["fullcopy_time"]
    # clones also moved fewer bytes to reach N serving
    assert res["clone_bytes"] < res["fullcopy_bytes"]
    # both arms saw the identical demand stream
    assert res["clone"]["arrivals"] == res["fullcopy"]["arrivals"]
    assert (res["clone"]["counters"]["submitted"]
            == res["fullcopy"]["counters"]["submitted"])
