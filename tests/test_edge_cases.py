"""Edge cases across modules: empty VMs, conservation properties,
engine management paths."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Network, StreamChannel
from repro.sim import Simulator, TickEngine
from repro.util import GiB, KiB, MiB
from tests.test_migration import make_lab, tiny_cfg


def test_migrate_vm_with_fully_swapped_memory():
    """A VM whose memory is entirely cold: Agile moves almost nothing."""
    lab = make_lab("agile", vm_mib=16, reservation_mib=32)
    vm = lab.migrate_vm
    vm.pages.swap_out(vm.pages.present_indices())
    # account the swap space for the freshly evicted pages
    lab.world.vmd.namespaces["vm0"].preload(vm.pages.swapped_bytes())
    lab.run_until_migrated(start=2.0, limit=100.0)
    r = lab.report
    assert r.pages_sent == 0
    assert r.pages_skipped_swapped == vm.n_pages
    # only metadata moved: CPU state + offsets + bitmap
    assert r.total_bytes < 6 * MiB
    assert r.total_time < 2.0


def test_migrate_vm_with_no_allocated_memory():
    """A freshly booted VM that never touched its memory."""
    lab = make_lab("pre-copy", vm_mib=16, reservation_mib=32)
    vm = lab.migrate_vm
    vm.pages.drop(np.arange(vm.n_pages))
    lab.run_until_migrated(start=2.0, limit=100.0)
    r = lab.report
    assert r.pages_sent == 0
    assert vm.host == "dst"
    assert r.total_bytes == pytest.approx(vm.cpu_state_bytes)


def test_postcopy_idle_vm_no_demand_fetches():
    lab = make_lab("post-copy", vm_mib=16, reservation_mib=32)
    lab.run_until_migrated(start=2.0, limit=200.0)
    assert lab.report.pages_demand_fetched == 0
    assert lab.report.demand_bytes == 0.0


def test_tick_engine_remove_unknown_participant():
    eng = TickEngine(Simulator(), dt=1.0)
    with pytest.raises(ValueError):
        eng.remove_participant(object())


def test_tick_engine_remove_registered_participant():
    sim = Simulator()
    eng = TickEngine(sim, dt=1.0)
    calls = []

    class P:
        def pre_tick(self, dt):
            calls.append("pre")

        def commit_tick(self, dt):
            pass

    p = P()
    eng.add_participant(p)
    eng.start()
    sim.run(until=1.0)
    eng.remove_participant(p)
    sim.run(until=3.0)
    assert calls == ["pre"]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=500), min_size=1,
                max_size=15),
       st.integers(min_value=10, max_value=400))
def test_channel_conserves_bytes(job_sizes, bw):
    """Property: every queued byte is delivered exactly once, in order."""
    sim = Simulator()
    net = Network(default_bandwidth_bps=float(bw), latency_s=0.0)
    net.add_host("a")
    net.add_host("b")
    eng = TickEngine(sim, dt=1.0)
    eng.add_arbiter(net)
    chan = StreamChannel(sim, net, "a", "b")
    eng.add_participant(chan)
    eng.start()
    done = []
    for i, size in enumerate(job_sizes):
        chan.send(float(size), info=i, on_complete=lambda j: done.append(j))
    horizon = sum(job_sizes) / bw + 5.0
    sim.run(until=horizon)
    assert [j.info for j in done] == list(range(len(job_sizes)))
    assert sum(j.size for j in done) == sum(job_sizes)
    assert chan.backlog == 0.0
    assert chan.flow.total_bytes == pytest.approx(sum(job_sizes), abs=1e-6)


def test_zero_latency_intra_host_channel():
    sim = Simulator()
    net = Network(default_bandwidth_bps=100.0, latency_s=0.001)
    net.add_host("a")
    eng = TickEngine(sim, dt=1.0)
    eng.add_arbiter(net)
    chan = StreamChannel(sim, net, "a", "a")
    eng.add_participant(chan)
    eng.start()
    times = []
    chan.send(1e9, on_complete=lambda j: times.append(sim.now))
    sim.run(until=2.0)
    # intra-host: unconstrained bandwidth, no propagation latency
    assert times == [1.0]
