"""Tests for working-set tracking (§IV-D) and the watermark trigger (§III-B)."""

import pytest

from repro.cluster import World, preload_dataset
from repro.core import WssTracker, WssTrackerConfig, WatermarkTrigger
from repro.core.trigger import WatermarkConfig, select_vms_to_migrate
from repro.sim import Simulator
from repro.util import MiB
from repro.workloads import KeyValueWorkload, ycsb_redis_params


def build(dataset_mib=8, reservation_mib=24, seed=0, tracker_cfg=None,
          max_reservation_mib=28):
    w = World(dt=0.25, seed=seed, net_bandwidth_bps=50e6)
    w.add_host("h1", 64 * MiB, host_os_bytes=4 * MiB)
    w.add_client_host()
    vm = w.add_vm("vm1", 32 * MiB, "h1")
    dev = w.add_ssd("ssd", read_bps=20e6, write_bps=10e6)
    w.hosts["h1"].place_vm(vm, reservation_mib * MiB, dev)
    preload_dataset(vm, w.manager_of("h1"), dataset_mib * MiB)
    wl = KeyValueWorkload(vm, w.network, "client", w.manager_of, w.recorder,
                          w.rng("wl"), dataset_bytes=dataset_mib * MiB,
                          sim_now=lambda: w.sim.now)
    w.add_workload(wl)
    cfg = tracker_cfg or WssTrackerConfig(min_reservation_bytes=2 * MiB)
    tracker = WssTracker(w.sim, "vm1", lambda: w.manager_of(vm.host),
                         w.recorder, config=cfg,
                         max_reservation_bytes=max_reservation_mib * MiB)
    return w, vm, wl, tracker


def reservation(w):
    return w.manager_of("h1").binding("vm1").cgroup.reservation_bytes


def test_reservation_shrinks_toward_working_set():
    w, vm, wl, tracker = build(dataset_mib=8, reservation_mib=24)
    w.run(until=120.0)
    # 8 MiB working set: the reservation should have come down near it
    assert reservation(w) < 14 * MiB
    assert reservation(w) >= 2 * MiB


def test_reservation_oscillates_near_wss_not_below_floor():
    cfg = WssTrackerConfig(min_reservation_bytes=2 * MiB,
                           stable_samples=1000)  # stay in fast mode
    w, vm, wl, tracker = build(dataset_mib=8, reservation_mib=12,
                               tracker_cfg=cfg)
    w.run(until=200.0)
    res = reservation(w)
    # hugging the 8 MiB working set: within alpha/beta band, not collapsed
    assert 5 * MiB < res < 13 * MiB


def test_reservation_grows_under_swap_pressure():
    w, vm, wl, tracker = build(dataset_mib=16, reservation_mib=4)
    w.run(until=60.0)
    assert reservation(w) > 4 * MiB


def test_tracker_respects_max_reservation():
    w, vm, wl, tracker = build(dataset_mib=16, reservation_mib=4,
                               max_reservation_mib=6)
    w.run(until=120.0)
    assert reservation(w) <= 6 * MiB


def test_tracker_switches_to_slow_mode_when_stable():
    w, vm, wl, tracker = build(dataset_mib=8, reservation_mib=9)
    assert tracker.in_fast_mode
    w.run(until=300.0)
    assert not tracker.in_fast_mode


def test_tracker_records_series():
    w, vm, wl, tracker = build()
    w.run(until=30.0)
    assert w.recorder.has("vm1.reservation")
    assert w.recorder.has("vm1.swap_rate")


def test_tracker_stop():
    w, vm, wl, tracker = build()
    w.run(until=10.0)
    tracker.stop()
    before = reservation(w)
    w.run(until=40.0)
    assert reservation(w) == before


def test_tracker_estimated_wss():
    w, vm, wl, tracker = build()
    w.run(until=60.0)
    assert tracker.estimated_wss_bytes() == reservation(w)


def test_tracker_config_validation():
    with pytest.raises(ValueError):
        WssTrackerConfig(alpha=1.2)
    with pytest.raises(ValueError):
        WssTrackerConfig(beta=0.9)
    with pytest.raises(ValueError):
        WssTrackerConfig(tau_bps=0)


# -- selection -----------------------------------------------------------------

def test_select_none_needed():
    assert select_vms_to_migrate({"a": 10, "b": 10}, target_bytes=25) == []


def test_select_fewest_largest_first():
    wss = {"a": 10.0, "b": 30.0, "c": 20.0}
    # total 60, target 35: removing b (30) is enough
    assert select_vms_to_migrate(wss, 35.0) == ["b"]


def test_select_multiple():
    wss = {"a": 10.0, "b": 30.0, "c": 20.0}
    # target 12: need b and c out
    assert select_vms_to_migrate(wss, 12.0) == ["b", "c"]


def test_select_deterministic_ties():
    wss = {"b": 10.0, "a": 10.0, "c": 10.0}
    assert select_vms_to_migrate(wss, 21.0) == ["a"]


def test_select_all_if_needed():
    wss = {"a": 5.0, "b": 5.0}
    assert select_vms_to_migrate(wss, 0.0) == ["a", "b"]


# -- watermark trigger ------------------------------------------------------------

def make_trigger(wss_values, usable=100.0, high=0.9, low=0.7):
    sim = Simulator()
    calls = []
    state = {"wss": dict(wss_values)}
    trig = WatermarkTrigger(
        sim, usable, wss_of=lambda: state["wss"],
        migrate=lambda names: calls.append(list(names)),
        config=WatermarkConfig(high_watermark=high, low_watermark=low,
                               check_interval_s=1.0))
    return sim, trig, calls, state


def test_trigger_fires_above_high_watermark():
    sim, trig, calls, state = make_trigger({"a": 50.0, "b": 45.0})
    sim.run(until=2.0)
    assert calls == [["a"]]  # removing a (50) brings 95 -> 45 < 70
    assert trig.trigger_count == 1


def test_trigger_quiet_below_high_watermark():
    sim, trig, calls, state = make_trigger({"a": 40.0, "b": 45.0})
    sim.run(until=5.0)
    assert calls == []


def test_trigger_does_not_refire_until_rearmed():
    sim, trig, calls, state = make_trigger({"a": 50.0, "b": 45.0})
    sim.run(until=5.0)
    assert len(calls) == 1
    trig.rearm()
    sim.run(until=8.0)
    assert len(calls) == 2


def test_trigger_stop():
    sim, trig, calls, state = make_trigger({"a": 95.0})
    trig.stop()
    sim.run(until=5.0)
    assert calls == []


def test_trigger_validation():
    with pytest.raises(ValueError):
        WatermarkConfig(high_watermark=0.5, low_watermark=0.8)
    sim = Simulator()
    with pytest.raises(ValueError):
        WatermarkTrigger(sim, 0.0, lambda: {}, lambda names: None)
