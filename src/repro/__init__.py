"""repro — Agile Live Migration of Virtual Machines (IPPS 2016).

A full-system reproduction of Deshpande et al.'s Agile VM migration:
a deterministic discrete-event simulation of a virtualized cluster
(hosts, memory management, swap devices, the VMD remote-memory store,
an Ethernet fabric) with three live-migration engines — pre-copy,
post-copy, and Agile — plus transparent working-set tracking and the
watermark migration trigger.

Quick start::

    from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
    from repro.util import GiB

    lab = make_single_vm_lab("agile", 10 * GiB, busy=True,
                             config=TestbedConfig(seed=42))
    lab.run_until_migrated(start=60.0, limit=4000.0)
    print(lab.report.total_time, lab.report.total_bytes)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the migration techniques, UMEM fault handling,
  WSS tracking, watermark trigger (the paper's contribution);
* :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.mem`,
  :mod:`repro.vmd`, :mod:`repro.vm`, :mod:`repro.host`,
  :mod:`repro.workloads` — the substrates;
* :mod:`repro.cluster` — testbed assembly and §V scenarios;
* :mod:`repro.experiments` — per-table/figure experiment runners + CLI.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
