"""Scale harness: synthesize N-rack datacenters and measure the fabric.

The fabric bench builds two identical networks — one per arbiter
implementation — and replays the same deterministic churn trace through
both: migration flows that open, live for a while, and close; paired
priority-0 demand-paging flows; mostly-idle per-host application
channels that burst occasionally; rack partitions that split and heal;
NICs that degrade and recover. Every decision comes from one seeded
generator per driver, so two drivers with the same seed produce the same
flow population and demand sequence tick for tick — which is what makes
the grant-equality check meaningful and the timing comparison fair.

The commit bench does the same for the *memory* side: twin fleets of
per-host memory managers (one batched, one scalar oracle) replay the
same seeded fault/dirty/shrink churn and the per-tick commit protocol
(pre-tick demand declaration → device arbitration → commit drain) is
timed on each, with a verification pass comparing every backlog, grant
and residency counter exactly.

Timing passes run without recording; a separate verification pass
records per-flow grants on both networks and compares them exactly
(``==``, not approximately — the fast path is bit-identical by design).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.mem import Cgroup, HostMemoryManager, SSDSwapDevice
from repro.net.network import Network
from repro.sched.topology import Topology
from repro.vm import VirtualMachine

__all__ = ["ScaleConfig", "cluster_bench", "commit_bench", "commit_share",
           "fabric_bench", "run_scale"]

_PAGE = 4096


@dataclass(frozen=True)
class ScaleConfig:
    """The 200-host default; ``quick()`` shrinks it for CI smoke runs,
    ``tier3()`` is the 1000-host three-tier datapoint."""

    n_racks: int = 10
    hosts_per_rack: int = 20
    #: topology tiers: 1 = flat racks (+ optional core), 3 = a nested
    #: AZ → pod → rack fabric built by :meth:`Topology.tiered` with
    #: per-tier oversubscription tapering
    tiers: int = 1
    n_azs: int = 2
    pods_per_az: int = 5
    racks_per_pod: int = 10
    oversubscription: float = 2.0
    #: VMD-style fan-in lanes per host: each host opens this many
    #: parallel priority-1 flows to one randomly chosen server host.
    #: Lanes of one (host, server) pair share the identical tier path,
    #: so the aggregated fill coalesces them — the population the
    #: aggregation exists for. 0 disables (and keeps the churn trace
    #: byte-identical to the pre-aggregation harness).
    fanin_lanes: int = 0
    #: per-tick probability each fan-in lane declares demand
    fanin_active_prob: float = 0.5
    #: concurrently live migration flow slots (the "100-flow" scenario)
    n_migrations: int = 100
    #: fraction of migration slots that carry a paired priority-0
    #: demand-paging flow in the reverse direction
    paging_fraction: float = 0.3
    #: mostly-idle application channels per host (the idle population is
    #: the point: the reference arbiter scans every open flow per tick,
    #: the fast path's registry never visits a flow that stays quiet)
    idle_channels_per_host: int = 4
    #: per-tick probability an idle channel bursts for one tick
    app_burst_prob: float = 0.06
    #: migration slot lifetime bounds (ticks) before churn reopens it
    migration_ticks_min: int = 20
    migration_ticks_max: int = 120
    #: a partition isolating one rack toggles every this many ticks
    partition_every: int = 97
    #: a random NIC degrades/restores every this many ticks
    degrade_every: int = 41
    ticks: int = 400
    dt: float = 0.1
    seed: int = 0
    nic_bps: float = 117e6
    uplink_bps: float = 8 * 117e6
    #: simulated seconds for the end-to-end cluster bench
    cluster_sim_s: float = 20.0
    cluster_racks: int = 6
    cluster_hosts_per_rack: int = 8
    #: nest the cluster bench's racks into pods/AZs (0 = flat, the
    #: historical shape); forwarded to the datacenter scenario
    cluster_racks_per_pod: int = 0
    cluster_pods_per_az: int = 0
    #: commit-path bench: hosts × VMs of memory-manager churn (the
    #: 200-host datapoint for the batched commit state); hosts are dense
    #: (16 VMs) because per-host batching is what is being measured
    commit_hosts: int = 200
    commit_vms_per_host: int = 16
    commit_vm_pages: int = 256
    commit_ticks: int = 200
    #: fraction of VMs doing fault/dirty work per tick; the idle rest is
    #: the point — the scalar oracle still visits every binding per tick
    commit_activity: float = 0.1

    @staticmethod
    def quick(seed: int = 0) -> "ScaleConfig":
        """CI-sized: the same structure at a fraction of the work."""
        return ScaleConfig(
            n_racks=4, hosts_per_rack=8, n_migrations=24,
            idle_channels_per_host=2, ticks=120, seed=seed,
            cluster_sim_s=8.0, cluster_racks=3, cluster_hosts_per_rack=4,
            commit_hosts=40, commit_ticks=80)

    @staticmethod
    def tier3(seed: int = 0, quick: bool = False) -> "ScaleConfig":
        """The 1000-host datapoint: 2 AZs × 5 pods × 10 racks × 10
        hosts behind 2:1 oversubscribed tier uplinks, with VMD-style
        fan-in lanes so same-path flow populations exist for the
        aggregated fill to coalesce. ``quick`` keeps all 1000 hosts but
        cuts ticks/lanes to fit the CI budget (the reference arbiter is
        what makes this bench expensive)."""
        cluster = dict(cluster_sim_s=6.0, cluster_racks=12,
                       cluster_hosts_per_rack=8, cluster_racks_per_pod=2,
                       cluster_pods_per_az=3)
        if quick:
            return ScaleConfig(
                tiers=3, n_azs=2, pods_per_az=5, racks_per_pod=10,
                hosts_per_rack=10, n_migrations=100,
                idle_channels_per_host=1, fanin_lanes=4,
                ticks=30, seed=seed, commit_hosts=40, commit_ticks=80,
                **cluster)
        return ScaleConfig(
            tiers=3, n_azs=2, pods_per_az=5, racks_per_pod=10,
            hosts_per_rack=10, n_migrations=200,
            idle_channels_per_host=1, fanin_lanes=6,
            ticks=100, seed=seed, **cluster)

    @property
    def total_racks(self) -> int:
        if self.tiers == 3:
            return self.n_azs * self.pods_per_az * self.racks_per_pod
        return self.n_racks

    @property
    def n_hosts(self) -> int:
        return self.total_racks * self.hosts_per_rack


class _FabricDriver:
    """One network + the deterministic churn replayed onto it."""

    def __init__(self, cfg: ScaleConfig, fast_path: bool,
                 aggregate: bool = False):
        self.cfg = cfg
        self.rng = np.random.default_rng(cfg.seed)
        self.net = Network(default_bandwidth_bps=cfg.nic_bps,
                           latency_s=2e-4, fast_path=fast_path,
                           aggregate=aggregate)
        if cfg.tiers == 3:
            self.topo = Topology.tiered(
                cfg.n_azs, cfg.pods_per_az, cfg.racks_per_pod,
                uplink_bps=cfg.uplink_bps,
                oversubscription=cfg.oversubscription)
            rack_names = list(self.topo.racks)
        else:
            self.topo = Topology(uplink_bps=cfg.uplink_bps)
            rack_names = [f"r{r}" for r in range(cfg.n_racks)]
            for rack in rack_names:
                self.topo.add_rack(rack)
        self.hosts: list[str] = []
        self.rack_hosts: list[list[str]] = []
        for rack in rack_names:
            members = []
            for h in range(cfg.hosts_per_rack):
                name = f"{rack}h{h}"
                self.net.add_host(name)
                self.topo.assign(name, rack)
                members.append(name)
                self.hosts.append(name)
            self.rack_hosts.append(members)
        self.net.set_topology(self.topo)

        # Migration slots: flow + optional reverse paging flow + lifetime.
        self.mig_flows = []
        self.paging_flows = []
        self.mig_expiry = np.zeros(cfg.n_migrations, dtype=np.int64)
        for slot in range(cfg.n_migrations):
            self._reopen_slot(slot, tick=0)
        # Application channels: long-lived, mostly idle.
        self.app_flows = []
        for name in self.hosts:
            for k in range(cfg.idle_channels_per_host):
                dst = self._pick_other(name)
                prio = 1 if k % 2 == 0 else 2
                self.app_flows.append(self.net.open_flow(
                    name, dst, priority=prio, name=f"app:{name}:{k}"))
        # VMD-style fan-in: each host streams to one server host over
        # ``fanin_lanes`` parallel lanes. The lanes share one tier path,
        # so they coalesce into one aggregate per (host, server) pair.
        self.fanin_flows = []
        if cfg.fanin_lanes:
            for name in self.hosts:
                server = self._pick_other(name)
                for k in range(cfg.fanin_lanes):
                    self.fanin_flows.append(self.net.open_flow(
                        name, server, priority=1,
                        name=f"vmd:{name}->{server}:{k}"))
        self._partitioned = False
        self._degraded = None
        self.peak_active = 0
        self.total_opened = (cfg.n_migrations + len(self.app_flows)
                             + len(self.fanin_flows))

    # -- churn ---------------------------------------------------------------
    def _pick_other(self, host: str) -> str:
        while True:
            other = self.hosts[int(self.rng.integers(len(self.hosts)))]
            if other != host:
                return other

    def _reopen_slot(self, slot: int, tick: int) -> None:
        cfg = self.cfg
        src = self.hosts[int(self.rng.integers(len(self.hosts)))]
        dst = self._pick_other(src)
        flow = self.net.open_flow(src, dst, priority=1,
                                  name=f"mig:{slot}")
        paging = None
        if self.rng.random() < cfg.paging_fraction:
            paging = self.net.open_flow(dst, src, priority=0,
                                        name=f"page:{slot}")
        if slot < len(self.mig_flows):
            self.mig_flows[slot] = flow
            self.paging_flows[slot] = paging
        else:
            self.mig_flows.append(flow)
            self.paging_flows.append(paging)
        self.mig_expiry[slot] = tick + int(self.rng.integers(
            cfg.migration_ticks_min, cfg.migration_ticks_max))

    def _churn(self, tick: int) -> None:
        for slot in np.nonzero(self.mig_expiry <= tick)[0]:
            self.mig_flows[slot].close()
            if self.paging_flows[slot] is not None:
                self.paging_flows[slot].close()
            self._reopen_slot(int(slot), tick)
            self.total_opened += 1

    def _faults(self, tick: int) -> None:
        cfg = self.cfg
        if cfg.partition_every and tick and tick % cfg.partition_every == 0:
            if self._partitioned:
                self.net.clear_partition()
                self._partitioned = False
            else:
                rack = int(self.rng.integers(len(self.rack_hosts)))
                self.net.set_partition([self.rack_hosts[rack]])
                self._partitioned = True
        if cfg.degrade_every and tick and tick % cfg.degrade_every == 0:
            if self._degraded is not None:
                self._degraded.restore()
                self._degraded = None
            else:
                nic = self.net.nic(
                    self.hosts[int(self.rng.integers(len(self.hosts)))])
                link = nic.tx if self.rng.random() < 0.5 else nic.rx
                link.degrade(float(self.rng.uniform(0.2, 0.8)))
                self._degraded = link

    # -- demands -------------------------------------------------------------
    def _declare(self, tick: int) -> int:
        cfg = self.cfg
        dt = cfg.dt
        active = 0
        mig_scale = self.rng.uniform(0.2, 1.0, size=cfg.n_migrations)
        for slot, flow in enumerate(self.mig_flows):
            flow.demand = float(mig_scale[slot]) * cfg.nic_bps * dt
            active += 1
            paging = self.paging_flows[slot]
            if paging is not None:
                paging.demand = 0.05 * cfg.nic_bps * dt
                active += 1
        bursts = self.rng.random(len(self.app_flows)) < cfg.app_burst_prob
        sizes = self.rng.uniform(0.05, 0.4, size=len(self.app_flows))
        for i in np.nonzero(bursts)[0]:
            self.app_flows[i].demand = float(sizes[i]) * cfg.nic_bps * dt
            active += 1
        if self.fanin_flows:
            on = self.rng.random(len(self.fanin_flows)) \
                < cfg.fanin_active_prob
            scale = self.rng.uniform(0.02, 0.2, size=len(self.fanin_flows))
            for i in np.nonzero(on)[0]:
                self.fanin_flows[i].demand = \
                    float(scale[i]) * cfg.nic_bps * dt
                active += 1
        return active

    # -- execution -----------------------------------------------------------
    def run(self, record: bool = False) -> dict:
        cfg = self.cfg
        grants: list[list[float]] = []
        arb_s = 0.0
        t0 = time.perf_counter()
        for tick in range(cfg.ticks):
            self._churn(tick)
            self._faults(tick)
            n_active = self._declare(tick)
            self.peak_active = max(self.peak_active, n_active)
            a0 = time.perf_counter()
            self.net.arbitrate(cfg.dt)
            arb_s += time.perf_counter() - a0
            if record:
                row = [f.granted for f in self.mig_flows]
                row += [0.0 if f is None else f.granted
                        for f in self.paging_flows]
                row += [f.granted for f in self.app_flows]
                row += [f.granted for f in self.fanin_flows]
                grants.append(row)
        wall = time.perf_counter() - t0
        return {
            "wall_s": wall,
            "ticks_per_s": cfg.ticks / wall if wall > 0 else float("inf"),
            "arbiter_us_per_tick": arb_s / cfg.ticks * 1e6,
            "grants": grants,
            "peak_active_flows": self.peak_active,
            "open_flows": len(self.net.flows),
            "flows_opened": self.total_opened,
        }


def fabric_bench(cfg: ScaleConfig, check_grants: bool = True,
                 repeats: int = 2) -> dict:
    """Time all three arbiters on the same churn trace; verify grants.

    The three arms are the aggregated fast path (same-path flows
    coalesced per priority class), the per-flow fast path, and the
    dict-based reference oracle. Each is timed ``repeats`` times and the
    best pass is kept — the trace is deterministic, so repeats only
    strip scheduler noise. ``speedup_aggregated`` is aggregated-vs-
    *reference* ticks/s: the acceptance metric is measured against the
    oracle, not against the already-fast vector path.
    """
    def best(fast_path: bool, aggregate: bool) -> dict:
        return min((_FabricDriver(cfg, fast_path=fast_path,
                                  aggregate=aggregate).run()
                    for _ in range(repeats)),
                   key=lambda r: r["wall_s"])

    timed_agg = best(fast_path=True, aggregate=True)
    timed_fast = best(fast_path=True, aggregate=False)
    timed_ref = best(fast_path=False, aggregate=False)
    keys = ("wall_s", "ticks_per_s", "arbiter_us_per_tick")
    result = {
        "hosts": cfg.n_hosts,
        "racks": cfg.total_racks,
        "tiers": cfg.tiers,
        "fanin_lanes": cfg.fanin_lanes,
        "migration_slots": cfg.n_migrations,
        "ticks": cfg.ticks,
        "peak_active_flows": timed_fast["peak_active_flows"],
        "flows_opened": timed_fast["flows_opened"],
        "aggregated": {k: timed_agg[k] for k in keys},
        "fast": {k: timed_fast[k] for k in keys},
        "reference": {k: timed_ref[k] for k in keys},
    }
    result["speedup_ticks_per_s"] = (
        result["fast"]["ticks_per_s"] / result["reference"]["ticks_per_s"])
    result["speedup_arbiter"] = (
        result["reference"]["arbiter_us_per_tick"]
        / result["fast"]["arbiter_us_per_tick"])
    result["speedup_aggregated"] = (
        result["aggregated"]["ticks_per_s"]
        / result["reference"]["ticks_per_s"])
    result["speedup_aggregated_arbiter"] = (
        result["reference"]["arbiter_us_per_tick"]
        / result["aggregated"]["arbiter_us_per_tick"])
    if check_grants:
        rec_agg = _FabricDriver(cfg, fast_path=True,
                                aggregate=True).run(record=True)
        rec_fast = _FabricDriver(cfg, fast_path=True,
                                 aggregate=False).run(record=True)
        rec_ref = _FabricDriver(cfg, fast_path=False,
                                aggregate=False).run(record=True)
        mismatches = sum(
            1 for a, b in zip(rec_fast["grants"], rec_ref["grants"])
            if a != b)
        agg_mismatches = sum(
            1 for a, b in zip(rec_agg["grants"], rec_ref["grants"])
            if a != b)
        result["grants_match"] = mismatches == 0
        result["grant_ticks_compared"] = len(rec_fast["grants"])
        result["grant_mismatch_ticks"] = mismatches
        result["aggregated_grants_match"] = agg_mismatches == 0
        result["aggregated_grant_mismatch_ticks"] = agg_mismatches
    return result


class _CommitDriver:
    """One fleet of per-host memory managers + deterministic churn.

    Every third host is overcommitted (reservations sum past usable
    memory) so fault storms exercise host-pressure eviction and victim
    selection; the slow write device keeps writeback backlogs alive so
    the commit drain has real work. Most VMs stay idle on most ticks —
    the population the scalar oracle pays for and the batch skips.
    """

    def __init__(self, cfg: ScaleConfig, fast_path: bool):
        self.cfg = cfg
        self.rng = np.random.default_rng(cfg.seed)
        self.pairs: list[tuple[HostMemoryManager, SSDSwapDevice]] = []
        self.flat: list[tuple[HostMemoryManager, str]] = []
        vm_pages = cfg.commit_vm_pages
        n_vms = cfg.commit_vms_per_host
        for h in range(cfg.commit_hosts):
            tight = h % 3 == 0
            res_pages = vm_pages if tight else vm_pages // 2
            usable = int(n_vms * res_pages * _PAGE
                         * (0.6 if tight else 1.5))
            mgr = HostMemoryManager(
                f"h{h}", usable + (1 << 20), host_os_bytes=(1 << 20),
                fast_path=fast_path)
            # write bandwidth drains an eviction storm within a few
            # ticks: the steady state has a mostly-idle VM population
            # (zero backlog), which is what the batch skips and the
            # scalar oracle pays for
            dev = SSDSwapDevice(f"ssd{h}", read_bps=4096 * _PAGE,
                                write_bps=1024 * _PAGE)
            for v in range(n_vms):
                name = f"h{h}v{v}"
                vm = VirtualMachine(name, vm_pages * _PAGE, host=f"h{h}")
                mgr.register_vm(vm, Cgroup(name, res_pages * _PAGE), dev)
                self.flat.append((mgr, name))
            self.pairs.append((mgr, dev))

    def _churn(self) -> None:
        # activity concentrates on a few hot hosts per tick: at any
        # instant most of a fleet is quiet, and that idle majority is
        # exactly the population whose per-tick cost the batch removes
        cfg, rng = self.cfg, self.rng
        n_vms = cfg.commit_vms_per_host
        width = max(8, cfg.commit_vm_pages // 8)
        hot = rng.integers(cfg.commit_hosts,
                           size=max(1, int(cfg.commit_hosts
                                           * cfg.commit_activity)))
        for h in hot:
            mgr, _dev = self.pairs[int(h)]
            for v in rng.integers(n_vms, size=2):
                name = f"h{int(h)}v{int(v)}"
                lo = int(rng.integers(cfg.commit_vm_pages - width))
                idx = np.arange(lo, lo + width)
                mgr.fault_in(name, idx)
                if rng.random() < 0.5:
                    pages = mgr.binding(name).pages
                    mgr.dirty(name, idx[pages.present[idx]])
        if rng.random() < 0.25:  # a WSS-controller reservation move
            mgr, name = self.flat[int(rng.integers(len(self.flat)))]
            b = mgr.binding(name)
            b.cgroup.set_reservation(float(rng.integers(
                cfg.commit_vm_pages // 4, cfg.commit_vm_pages + 1)) * _PAGE)
            mgr.shrink_to_reservation(name)

    def run(self, record: bool = False) -> dict:
        cfg = self.cfg
        dt = cfg.dt
        states: list[list[tuple]] = []
        manager_s = 0.0
        protocol_s = 0.0
        t0 = time.perf_counter()
        for _ in range(cfg.commit_ticks):
            self._churn()
            p0 = time.perf_counter()
            for mgr, _dev in self.pairs:
                mgr.pre_tick(dt)
            m1 = time.perf_counter()
            for _mgr, dev in self.pairs:
                dev.arbitrate(dt)
            m2 = time.perf_counter()
            for mgr, _dev in self.pairs:
                mgr.commit_tick(dt)
            p1 = time.perf_counter()
            protocol_s += p1 - p0
            manager_s += (m1 - p0) + (p1 - m2)
            if record:
                states.append([self._state(mgr, name)
                               for mgr, name in self.flat])
        wall = time.perf_counter() - t0
        return {
            "wall_s": wall,
            "ticks_per_s": (cfg.commit_ticks / wall if wall > 0
                            else float("inf")),
            "protocol_us_per_tick": protocol_s / cfg.commit_ticks * 1e6,
            "manager_us_per_tick": manager_s / cfg.commit_ticks * 1e6,
            "states": states,
        }

    @staticmethod
    def _state(mgr: HostMemoryManager, name: str) -> tuple:
        b = mgr.binding(name)
        return (b.writeback_backlog, b.write_queue.granted,
                b.write_queue.total_granted, b.pages.resident_pages(),
                b.pages.swapped_pages(), b.cgroup.swap_in_bytes_total,
                b.cgroup.swap_out_bytes_total)


def commit_bench(cfg: ScaleConfig, check_states: bool = True,
                 repeats: int = 2) -> dict:
    """Time the batched commit path against the scalar oracle.

    Mirrors :func:`fabric_bench`: both fleets replay the same seeded
    churn, the best of ``repeats`` timing passes is kept, and a separate
    recording pass holds every per-VM backlog/grant/residency counter to
    exact (``==``) equality per tick.
    """
    timed_fast = min((_CommitDriver(cfg, fast_path=True).run()
                      for _ in range(repeats)),
                     key=lambda r: r["wall_s"])
    timed_ref = min((_CommitDriver(cfg, fast_path=False).run()
                     for _ in range(repeats)),
                    key=lambda r: r["wall_s"])
    keys = ("wall_s", "ticks_per_s", "protocol_us_per_tick",
            "manager_us_per_tick")
    result = {
        "hosts": cfg.commit_hosts,
        "vms": cfg.commit_hosts * cfg.commit_vms_per_host,
        "ticks": cfg.commit_ticks,
        "fast": {k: timed_fast[k] for k in keys},
        "reference": {k: timed_ref[k] for k in keys},
    }
    result["speedup_ticks_per_s"] = (
        result["fast"]["ticks_per_s"] / result["reference"]["ticks_per_s"])
    result["speedup_protocol"] = (
        result["reference"]["protocol_us_per_tick"]
        / result["fast"]["protocol_us_per_tick"])
    #: the headline: manager pre-tick + commit drain alone (the device
    #: arbitration between them is the same code on both paths)
    result["speedup_manager"] = (
        result["reference"]["manager_us_per_tick"]
        / result["fast"]["manager_us_per_tick"])
    if check_states:
        rec_fast = _CommitDriver(cfg, fast_path=True).run(record=True)
        rec_ref = _CommitDriver(cfg, fast_path=False).run(record=True)
        mismatches = sum(
            1 for a, b in zip(rec_fast["states"], rec_ref["states"])
            if a != b)
        result["states_match"] = mismatches == 0
        result["state_ticks_compared"] = len(rec_fast["states"])
        result["state_mismatch_ticks"] = mismatches
    return result


def cluster_bench(cfg: ScaleConfig, profile: bool = True,
                  tracer=None) -> dict:
    """End-to-end ticks/s of the scaled datacenter rebalance scenario.

    ``profile`` attaches a :class:`repro.obs.SelfProfiler` to the tick
    engine and the planner, so the result attributes wall-clock to
    subsystems (network arbitration, device arbitration, planner pump,
    commit phase); ``tracer`` optionally records the run's sim-clock
    trace as well.
    """
    from repro.experiments.datacenter import (
        DatacenterConfig, honeypot_schedule, make_datacenter)
    from repro.obs.profiler import SelfProfiler
    dc_cfg = DatacenterConfig(
        n_racks=cfg.cluster_racks,
        hosts_per_rack=cfg.cluster_hosts_per_rack,
        racks_per_pod=cfg.cluster_racks_per_pod,
        pods_per_az=cfg.cluster_pods_per_az,
        seed=cfg.seed)
    dc = make_datacenter(honeypot_schedule(), dc_cfg, tracer=tracer)
    prof = None
    if profile:
        prof = SelfProfiler()
        dc.world.engine.profiler = prof
        planner = dc.control.planner
        planner.pump = prof.wrap(planner.pump, "planner.pump")
    t0 = time.perf_counter()
    dc.run(until=cfg.cluster_sim_s)
    wall = time.perf_counter() - t0
    ticks = dc.world.engine.tick_index
    out = {
        "hosts": dc_cfg.n_racks * dc_cfg.hosts_per_rack,
        "vms": len(dc.world.vms),
        "sim_s": cfg.cluster_sim_s,
        "wall_s": wall,
        "ticks": ticks,
        "ticks_per_s": ticks / wall if wall > 0 else float("inf"),
        "migration_attempts": len(dc.control.supervisor.attempts),
    }
    if prof is not None:
        out["profile"] = prof.report(wall_s=wall)
    return out


def run_scale(cfg: ScaleConfig, check_grants: bool = True,
              with_cluster: bool = True, profile: bool = True,
              with_commit: bool = True, tracer=None,
              repeats: int = 2) -> dict:
    """The full scale probe: fabric + commit micro-benches, cluster
    macro-bench. ``repeats=1`` halves the timing cost of configs where
    the reference arbiter dominates (the tier-3 datapoint)."""
    out = {
        "config": asdict(cfg),
        "fabric": fabric_bench(cfg, check_grants=check_grants,
                               repeats=repeats),
    }
    if with_commit:
        out["commit"] = commit_bench(cfg, check_states=check_grants)
    if with_cluster:
        out["cluster"] = cluster_bench(cfg, profile=profile, tracer=tracer)
    return out


def check_regression(current: dict, baseline: dict,
                     max_regression: float = 2.0) -> list[str]:
    """Compare a fresh run against a checked-in baseline.

    Returns human-readable failures for any tracked throughput metric
    that regressed by more than ``max_regression``× (wall-clock noise and
    runner variance is why the gate is that loose).
    """
    failures: list[str] = []

    def gate(label: str, cur: float, base: float) -> None:
        if base > 0 and cur < base / max_regression:
            failures.append(
                f"{label}: {cur:,.0f} vs baseline {base:,.0f} "
                f"(allowed floor {base / max_regression:,.0f})")

    gate("fabric fast ticks/s",
         current["fabric"]["fast"]["ticks_per_s"],
         baseline["fabric"]["fast"]["ticks_per_s"])
    if "aggregated" in current["fabric"] \
            and "aggregated" in baseline["fabric"]:
        gate("fabric aggregated ticks/s",
             current["fabric"]["aggregated"]["ticks_per_s"],
             baseline["fabric"]["aggregated"]["ticks_per_s"])
    if "commit" in current and "commit" in baseline:
        gate("commit fast ticks/s",
             current["commit"]["fast"]["ticks_per_s"],
             baseline["commit"]["fast"]["ticks_per_s"])
    if "cluster" in current and "cluster" in baseline:
        gate("cluster ticks/s",
             current["cluster"]["ticks_per_s"],
             baseline["cluster"]["ticks_per_s"])
    if not current["fabric"].get("grants_match", True):
        failures.append("fast-path grants diverged from the reference")
    if not current["fabric"].get("aggregated_grants_match", True):
        failures.append(
            "aggregated-fill grants diverged from the reference")
    if not current.get("commit", {}).get("states_match", True):
        failures.append(
            "batched commit state diverged from the scalar oracle")
    return failures


def commit_share(res: dict) -> float | None:
    """The cluster bench's ``tick.commit`` wall-clock share, if profiled."""
    sections = (res.get("cluster", {}).get("profile", {})
                .get("sections", {}))
    sec = sections.get("tick.commit")
    return None if sec is None else float(sec["share"])


def format_summary(res: dict) -> list[str]:
    """Stable text rendering for the CLI and the bench log."""
    fab = res["fabric"]
    tier_note = (f", tier-{fab['tiers']}" if fab.get("tiers", 1) != 1
                 else "")
    lines = [
        f"fabric: {fab['hosts']} hosts / {fab['racks']} racks{tier_note}, "
        f"{fab['migration_slots']} migration slots, {fab['ticks']} ticks "
        f"(peak {fab['peak_active_flows']} active flows, "
        f"{fab['flows_opened']} opened)",
        f"  fast      {fab['fast']['ticks_per_s']:10,.0f} ticks/s   "
        f"{fab['fast']['arbiter_us_per_tick']:8,.0f} us/tick",
        f"  reference {fab['reference']['ticks_per_s']:10,.0f} ticks/s   "
        f"{fab['reference']['arbiter_us_per_tick']:8,.0f} us/tick",
        f"  speedup   {fab['speedup_ticks_per_s']:.1f}x ticks/s, "
        f"{fab['speedup_arbiter']:.1f}x arbiter",
    ]
    if "aggregated" in fab:
        lines.insert(1, (
            f"  aggregated{fab['aggregated']['ticks_per_s']:10,.0f}"
            f" ticks/s   "
            f"{fab['aggregated']['arbiter_us_per_tick']:8,.0f} us/tick"
            f"  ({fab['speedup_aggregated']:.1f}x vs reference)"))
    if "grants_match" in fab:
        lines.append(
            f"  grants    {'identical' if fab['grants_match'] else 'DIVERGED'}"
            f" over {fab['grant_ticks_compared']} ticks")
        if "aggregated_grants_match" in fab:
            lines.append(
                f"  agg-grants "
                f"{'identical' if fab['aggregated_grants_match'] else 'DIVERGED'}"
                f" over {fab['grant_ticks_compared']} ticks")
    if "commit" in res:
        com = res["commit"]
        lines.append(
            f"commit: {com['hosts']} hosts / {com['vms']} VMs, "
            f"{com['ticks']} ticks")
        lines.append(
            f"  batched   {com['fast']['ticks_per_s']:10,.0f} ticks/s   "
            f"{com['fast']['manager_us_per_tick']:8,.0f} mgr-us/tick")
        lines.append(
            f"  oracle    {com['reference']['ticks_per_s']:10,.0f} ticks/s   "
            f"{com['reference']['manager_us_per_tick']:8,.0f} mgr-us/tick")
        lines.append(
            f"  speedup   {com['speedup_manager']:.1f}x manager, "
            f"{com['speedup_protocol']:.1f}x commit protocol")
        if "states_match" in com:
            lines.append(
                f"  states    "
                f"{'identical' if com['states_match'] else 'DIVERGED'}"
                f" over {com['state_ticks_compared']} ticks")
    if "cluster" in res:
        clu = res["cluster"]
        lines.append(
            f"cluster: {clu['hosts']} hosts / {clu['vms']} VMs, "
            f"{clu['sim_s']:g} sim-s in {clu['wall_s']:.2f} s wall "
            f"({clu['ticks_per_s']:,.0f} ticks/s, "
            f"{clu['migration_attempts']} migration attempts)")
        prof = clu.get("profile")
        if prof:
            top = sorted(prof["sections"].items(),
                         key=lambda kv: -kv[1]["s"])[:4]
            lines.append("  profile  " + ", ".join(
                f"{name} {sec['share'] * 100:.0f}%" for name, sec in top))
    return lines


def write_json(res: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(res, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_json(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
