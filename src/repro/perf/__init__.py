"""Performance harness: hundred-host scale scenarios and their metrics.

The paper's contention effects come out of per-tick arbitration; this
package measures what that costs at datacenter scale so the trajectory
(ticks/s, arbiter µs/tick, peak flows) is tracked across PRs in
``BENCH_scale.json``. Three probes:

* :func:`fabric_bench` — a synthetic N-rack fabric with churning
  migration flows and mostly-idle application channels, driven through
  both arbiter implementations; reports their throughput and verifies
  the fast path's grants are identical to the reference oracle's;
* :func:`commit_bench` — fleets of per-host memory managers (batched
  vs scalar-oracle commit state) replaying the same fault/dirty/shrink
  churn; reports commit-protocol throughput and verifies the batched
  state is identical to the oracle's;
* :func:`cluster_bench` — the full datacenter rebalance scenario
  (world, control plane, engines) scaled up, reporting end-to-end
  ticks/s.

``python -m repro.experiments scale`` runs all three and emits the JSON.
"""

from repro.perf.scale import (
    ScaleConfig,
    cluster_bench,
    commit_bench,
    commit_share,
    fabric_bench,
    run_scale,
)

__all__ = ["ScaleConfig", "cluster_bench", "commit_bench", "commit_share",
           "fabric_bench", "run_scale"]
