"""Load-aware round-robin placement of written pages across VMD servers.

Quoting §IV-A: *"The load-aware algorithm works by selecting a VMD server
in round-robin order, which reports having any unused memory."* We apply
the same policy at byte-batch granularity: a write batch is carved into
chunks assigned to successive servers that still report free memory.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.vmd.server import VMDServer

__all__ = ["RoundRobinPlacement"]


class RoundRobinPlacement:
    """Stateful round-robin cursor over a server list.

    ``placeable`` is an optional health filter (see
    :meth:`~repro.vmd.VMDCluster.attach_health`): servers it rejects are
    skipped by new placements — a donor on a DOWN or freshly recovered
    host takes no new pages even though its ``alive`` flag may already be
    back — but existing contents stay readable.
    """

    def __init__(self, servers: Sequence[VMDServer],
                 chunk_bytes: float = 4 * 2 ** 20,
                 placeable: Optional[Callable[[VMDServer], bool]] = None):
        if not servers:
            raise ValueError("placement needs at least one server")
        if chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        self.servers = list(servers)
        self.chunk_bytes = float(chunk_bytes)
        self.placeable = placeable
        self._cursor = 0

    def _usable(self, server: VMDServer) -> bool:
        return server.alive and (self.placeable is None
                                 or self.placeable(server))

    def split_write(self, n_bytes: float) -> dict[VMDServer, float]:
        """Assign ``n_bytes`` of writes to servers, load-aware round-robin.

        Returns the byte count destined to each chosen server. Bytes that
        no server can hold are dropped from the result (the caller sees a
        smaller total and stalls, like a full block device).
        """
        plan: dict[VMDServer, float] = {}
        remaining = float(n_bytes)
        n = len(self.servers)
        stalled = 0
        while remaining > 0 and stalled < n:
            server = self.servers[self._cursor % n]
            self._cursor += 1
            # Free memory net of what this plan already assigned: the
            # actual allocation happens when grants land, so the plan must
            # not oversubscribe a server within the tick. Dead donors
            # report no free memory (the gossip goes silent).
            available = (server.free_bytes - plan.get(server, 0.0)
                         if self._usable(server) else 0.0)
            if available <= 0:
                stalled += 1
                continue
            stalled = 0
            take = min(self.chunk_bytes, remaining, available)
            plan[server] = plan.get(server, 0.0) + take
            remaining -= take
        return plan

    def placeable_bytes(self) -> float:
        """Total free memory across usable servers (caps write demand)."""
        return sum(s.free_bytes for s in self.servers if self._usable(s))
