"""Virtualized Memory Device (VMD) — cluster-wide remote memory.

The paper's VMD (§IV-A, derived from MemX) aggregates free memory of
intermediate hosts into a block device. We reproduce its architecture:

* :class:`VMDServer` — a kernel-module analogue on each intermediate host:
  donates memory, allocates only on write, reports availability;
* :class:`VMDNamespace` — one logical partition per VM, exported to that
  VM's host as a block device (``/dev/blk1`` … in the paper). Implements
  the same :class:`~repro.mem.device.SwapBackend` queue interface as the
  local SSD, so the memory manager and migration managers are agnostic to
  the backing store;
* load-aware round-robin placement of written pages across servers;
* all traffic rides the simulated Ethernet (client↔server flows), so VMD
  I/O naturally contends with migration and application traffic.
"""

from repro.vmd.server import VMDServer
from repro.vmd.placement import RoundRobinPlacement
from repro.vmd.namespace import VMDNamespace
from repro.vmd.cluster import VMDCluster

__all__ = ["RoundRobinPlacement", "VMDCluster", "VMDNamespace", "VMDServer"]
