"""VMD cluster: servers plus namespace factory and tick wiring.

The paper's deployment runs a VMD server on every intermediate host and a
VMD client on the source/destination hosts; clients export one namespace
per VM. :class:`VMDCluster` owns the server list and creates correctly
registered namespaces.
"""

from __future__ import annotations

from repro.net.network import Network
from repro.obs.tracer import NULL_TRACER
from repro.sim.periodic import TickEngine
from repro.vmd.namespace import VMDNamespace
from repro.vmd.placement import RoundRobinPlacement
from repro.vmd.server import VMDServer

__all__ = ["VMDCluster", "ADAPTER_ORDER"]

#: tick order for resource adapters (namespaces): after all consumers
#: (order 0) in the pre phase, and after the network (order 0) in the
#: arbitration phase.
ADAPTER_ORDER = 10


class VMDCluster:
    """The distributed memory pool and its per-VM namespaces."""

    def __init__(self, network: Network, engine: TickEngine,
                 servers: list[VMDServer],
                 placement_chunk_bytes: float = 256 * 2 ** 10,
                 tracer=None):
        if not servers:
            raise ValueError("VMD cluster needs at least one server")
        for s in servers:
            if not network.has_host(s.host):
                raise ValueError(f"server host not in network: {s.host}")
        self.network = network
        self.engine = engine
        self.servers = list(servers)
        self.placement_chunk_bytes = float(placement_chunk_bytes)
        self.namespaces: dict[str, VMDNamespace] = {}
        #: reader count per namespace; creation takes the first reference
        #: and clone replicas take more (shared parent images) — bytes and
        #: tick registrations are only freed when the last reader releases
        self._refs: dict[str, int] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._placeable = None  # set by attach_health()
        #: open async "server-down" span per failed donor host
        self._down_spans: dict[str, int] = {}

    def attach_health(self, tracker) -> None:
        """Skip donors on unhealthy hosts when placing new pages.

        ``tracker`` is a :class:`~repro.sched.HostHealthTracker` (duck
        typed: only ``donor_placeable(host)`` is used). Applies to every
        existing namespace and to namespaces created afterwards; donors
        ruled out keep serving reads of what they already hold.
        """
        self._placeable = lambda server: tracker.donor_placeable(server.host)
        for ns in self.namespaces.values():
            ns.placement.placeable = self._placeable

    def create_namespace(self, name: str,
                         replication: int = 1) -> VMDNamespace:
        """Create (and tick-register) the per-VM namespace ``name``."""
        if name in self.namespaces:
            raise ValueError(f"namespace exists: {name}")
        ns = VMDNamespace(
            name, self.network, self.servers,
            RoundRobinPlacement(self.servers,
                                chunk_bytes=self.placement_chunk_bytes,
                                placeable=self._placeable),
            replication=replication)
        self.namespaces[name] = ns
        self._refs[name] = 1
        # pre-phase only: a namespace's commit-phase work happens in its
        # arbitrate() (translating flow grants), so registering it for
        # the commit phase would only add a no-op call per tick per VM
        self.engine.add_participant(ns, order=ADAPTER_ORDER, phases=("pre",))
        self.engine.add_arbiter(ns, order=ADAPTER_ORDER)
        if self.tracer.enabled:
            self.tracer.instant(
                "vmd", "create-namespace", cat="vmd",
                args={"namespace": name, "replication": int(replication),
                      "servers": len(self.servers)})
        return ns

    def retain_namespace(self, name: str) -> VMDNamespace:
        """Take another reference on a shared namespace (clone replicas
        reading a parent image). Every retain needs a matching
        :meth:`release_namespace`."""
        ns = self.namespaces.get(name)
        if ns is None:
            raise KeyError(f"no such namespace: {name}")
        self._refs[name] += 1
        return ns

    def release_namespace(self, name: str) -> int:
        """Drop one reference; retire the namespace when the last reader
        is gone: give its stored bytes back to the donors and drop it
        from the tick protocol. Returns the remaining reference count.

        Long-lived fleet churn would otherwise accumulate one dead tick
        participant per departed VM. The caller must have unregistered
        the VM from its host first (that closes the namespace's fault/
        writeback queues).
        """
        ns = self.namespaces.get(name)
        if ns is None:
            raise KeyError(f"no such namespace: {name}")
        self._refs[name] -= 1
        remaining = self._refs[name]
        if remaining > 0:
            if self.tracer.enabled:
                self.tracer.instant("vmd", "release-namespace", cat="vmd",
                                    args={"namespace": name,
                                          "refs": remaining})
            return remaining
        del self.namespaces[name]
        del self._refs[name]
        ns.release(ns.used_bytes)
        self.engine.remove_participant(ns)
        self.engine.remove_arbiter(ns)
        if self.tracer.enabled:
            self.tracer.instant("vmd", "release-namespace", cat="vmd",
                                args={"namespace": name, "refs": 0})
        return 0

    # -- donor failures (fault injection) -------------------------------------
    def server_on(self, host: str) -> VMDServer:
        """The donor running on ``host`` (raises if there is none)."""
        for s in self.servers:
            if s.host == host:
                return s
        raise KeyError(f"no VMD server on host: {host}")

    def fail_server(self, server: VMDServer,
                    lose_contents: bool = False) -> None:
        """Crash a donor and, on content loss, reconcile every namespace
        (drop the destroyed copies, queue background re-replication)."""
        server.fail(lose_contents=lose_contents)
        if self.tracer.enabled and server.host not in self._down_spans:
            self._down_spans[server.host] = self.tracer.async_begin(
                "vmd", "server-down", cat="vmd",
                args={"host": server.host,
                      "lost_contents": bool(lose_contents)})
        if lose_contents:
            for ns in self.namespaces.values():
                ns.handle_server_loss(server)
                if self.tracer.enabled:
                    pending = float(ns.repair_pending_bytes)
                    if pending > 0:
                        self.tracer.instant(
                            "vmd", "repair-queued", cat="vmd",
                            args={"namespace": ns.name,
                                  "pending_bytes": pending})

    def recover_server(self, server: VMDServer) -> None:
        """Bring a crashed donor back into the pool."""
        server.recover()
        span = self._down_spans.pop(server.host, 0)
        if span:
            self.tracer.async_end(span)

    def total_free_bytes(self) -> float:
        return sum(s.free_bytes for s in self.servers)

    def total_used_bytes(self) -> float:
        return sum(s.used_bytes for s in self.servers)
