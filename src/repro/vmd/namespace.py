"""VMD namespace: a per-VM block device backed by remote memory.

A namespace is the paper's logical partition of the aggregate memory
space, exported to the VM's current host as a block device. It implements
the same queue-based :class:`~repro.mem.device.SwapBackend` interface as
the local SSD, but grants are produced by network flows to the VMD
servers, so VMD I/O competes with every other byte on the hosts' NICs.

Because the device is *per-VM and portable*, queues are opened with the
requesting host: while the VM runs at the source its fault/writeback
queues move bytes between the source and the intermediates; after
migration the destination opens its own queues and the source side is
disconnected (§IV-B) — the stored pages persist on the servers.
"""

from __future__ import annotations

from typing import Optional

from repro.mem.device import DeviceQueue, Kind
from repro.net.flow import Flow
from repro.net.network import Network
from repro.vmd.placement import RoundRobinPlacement
from repro.vmd.server import VMDServer

__all__ = ["VMDNamespace", "VmdQueue"]


class VmdQueue(DeviceQueue):
    """A device queue whose grants come from client↔server network flows."""

    __slots__ = ("host", "priority", "flows")

    def __init__(self, name: str, kind: Kind, host: str, priority: int):
        super().__init__(name, kind)
        self.host = host
        self.priority = priority
        #: per-server flow carrying this queue's traffic
        self.flows: dict[VMDServer, Flow] = {}

    def close(self) -> None:
        super().close()
        for flow in self.flows.values():
            flow.close()
        self.flows.clear()


class VMDNamespace:
    """One VM's portable swap device.

    Registration: add as a tick **participant with a late order** (its
    ``pre_tick`` translates consumer queue demands into flow demands, so
    it must run after consumers) *and* as an **arbiter after the network**
    (its ``arbitrate`` translates flow grants back into queue grants and
    allocates server memory for accepted writes). The
    :class:`~repro.cluster.ClusterBuilder` wires this up.
    """

    def __init__(self, name: str, network: Network,
                 servers: list[VMDServer],
                 placement: Optional[RoundRobinPlacement] = None,
                 replication: int = 1):
        if not servers:
            raise ValueError("namespace needs at least one server")
        if not 1 <= replication <= len(servers):
            raise ValueError("replication must be in [1, n_servers]")
        self.name = name
        self.network = network
        self.servers = list(servers)
        self.placement = placement or RoundRobinPlacement(servers)
        #: copies kept of every page; > 1 tolerates donor failures at the
        #: cost of write amplification (an extension beyond the paper,
        #: whose single-copy VMD loses cold pages with a donor host)
        self.replication = int(replication)
        self._queues: list[VmdQueue] = []
        #: bytes of this namespace stored per server (placement outcome)
        self._stored: dict[VMDServer, float] = {s: 0.0 for s in servers}
        #: write plans computed in pre-tick, applied to grants in commit
        self._write_plans: dict[VmdQueue, dict[VMDServer, float]] = {}
        #: set when a content-losing donor crash destroyed the *only* copy
        #: of part of this namespace (replication == 1): reads can never
        #: complete and the owning VM is unrecoverable
        self.data_lost = False
        #: physical bytes whose replication factor must be restored after
        #: a content-losing donor crash (drained by background repair)
        self._repair_backlog = 0.0
        #: lifetime bytes re-replicated onto surviving donors
        self.repaired_bytes = 0.0
        self._repair_flows: dict[tuple[VMDServer, VMDServer], Flow] = {}
        self._repair_plan: dict[VMDServer, Flow] = {}
        #: set by VmdQueue.close(); pre_tick compacts without scanning
        self._needs_compact = False

    # -- SwapBackend interface ---------------------------------------------------
    def open_queue(self, name: str, kind: Kind, host: Optional[str] = None,
                   priority: int = 1) -> VmdQueue:
        """Open a requester lane from ``host`` (required for VMD: the
        traffic direction depends on where the block device is attached)."""
        if host is None:
            raise ValueError("VMD queues require the requesting host")
        if not self.network.has_host(host):
            raise ValueError(f"unknown host: {host}")
        q = VmdQueue(f"{self.name}.{name}", kind, host, priority)
        q._owner = self
        self._queues.append(q)
        return q

    # -- space accounting ----------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        return sum(self._stored.values())

    def preload(self, n_bytes: float) -> float:
        """Place ``n_bytes`` (times the replication factor) on the
        servers without network cost.

        Used by scenario setup for state that was swapped out *before*
        the measured window begins (e.g. the cold part of a Redis dataset
        loaded during the unmeasured load phase). Returns logical bytes
        placed.
        """
        per_copy: list[float] = []
        for _ in range(self.replication):
            plan = self.placement.split_write(n_bytes)
            copy_placed = 0.0
            for server, nbytes in plan.items():
                accepted = server.allocate(nbytes)
                self._stored[server] += accepted
                copy_placed += accepted
            per_copy.append(copy_placed)
        return min(per_copy)

    def release(self, n_bytes: float) -> None:
        """Free ``n_bytes`` proportionally across servers (swap slots
        recycled when a VM's pages are discarded)."""
        total = self.used_bytes
        if total <= 0:
            return
        frac = min(1.0, n_bytes / total)
        for server, stored in self._stored.items():
            give_back = stored * frac
            server.release(give_back)
            self._stored[server] = stored - give_back

    # -- donor failures -------------------------------------------------------
    @property
    def repair_pending_bytes(self) -> float:
        """Bytes still awaiting background re-replication."""
        return self._repair_backlog

    def handle_server_loss(self, server: VMDServer) -> float:
        """A donor crashed *and lost its contents*: reconcile.

        The copies it stored are gone. With ``replication >= 2`` the data
        is still readable from surviving donors and the lost copies are
        queued for background re-replication; with a single copy the
        namespace has lost data irrecoverably (:attr:`data_lost`), which
        the Agile engine turns into a VM failure.

        Returns the physical bytes lost on that server. Content-preserving
        crashes (``VMDServer.fail()`` without ``lose_contents``) must NOT
        call this — reads simply stall until the donor recovers.
        """
        lost = self._stored.get(server, 0.0)
        if lost <= 0:
            return 0.0
        self._stored[server] = 0.0
        if self.replication >= 2:
            self._repair_backlog += lost
        else:
            self.data_lost = True
        return lost

    def _plan_repair(self, dt: float) -> None:
        """Declare background flows re-copying lost replicas.

        One surviving donor (the one holding the most of this namespace)
        streams to targets chosen by the normal write placement, at a low
        priority so repair never competes with foreground I/O.
        """
        src = max((s for s in self.servers
                   if s.alive and self._stored.get(s, 0.0) > 0),
                  key=lambda s: self._stored[s], default=None)
        if src is None:
            return  # no surviving copy reachable this tick; retry later
        want = min(self._repair_backlog, src.service_bps * dt)
        self._repair_plan = {}
        for target, nbytes in self.placement.split_write(want).items():
            if target is src or not target.alive:
                continue  # already holds the copy / can't accept
            flow = self._repair_flow_for(src, target)
            flow.demand = min(nbytes, target.service_bps * dt)
            self._repair_plan[target] = flow

    def _repair_flow_for(self, src: VMDServer, dst: VMDServer) -> Flow:
        flow = self._repair_flows.get((src, dst))
        if flow is None:
            flow = self.network.open_flow(
                src.host, dst.host, priority=2,
                name=f"vmd:{self.name}.repair:{src.host}->{dst.host}")
            self._repair_flows[(src, dst)] = flow
        return flow

    def _close_repair_flows(self) -> None:
        for flow in self._repair_flows.values():
            flow.close()
        self._repair_flows.clear()
        self._repair_plan = {}

    # -- tick protocol ----------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        if self._needs_compact:
            self._queues = [q for q in self._queues if q.active]
            self._needs_compact = False
        self._write_plans.clear()
        for q in self._queues:
            if q.demand <= 0:
                continue
            if q.kind == "write":
                # One placement plan, scaled by the replication factor
                # (the wire carries the amplified bytes; the queue's
                # grant is de-amplified back to logical bytes in
                # arbitrate). A single split advances the round-robin
                # cursor once per queue per tick and plans the demand
                # against server availability once — splitting per copy
                # planned r × demand against the same free space — and
                # the per-server ``service_bps * dt`` cap then bounds
                # the *merged* replica traffic, not each copy.
                plan = self.placement.split_write(q.demand)
                if self.replication > 1:
                    r = float(self.replication)
                    merged = {server: nbytes * r
                              for server, nbytes in plan.items()}
                else:
                    merged = plan
                self._write_plans[q] = merged
                for server, nbytes in merged.items():
                    flow = self._flow_for(q, server)
                    flow.demand = min(nbytes, server.service_bps * dt)
            else:
                self._plan_reads(q, dt)
        if self._repair_backlog > 0:
            self._plan_repair(dt)

    def _plan_reads(self, q: VmdQueue, dt: float) -> None:
        """Spread read demand across *alive* servers by stored share.

        With a single copy per page, a dead donor makes its share of the
        namespace unreachable: no flow demand is placed for it, so reads
        stall at whatever the surviving servers hold — the availability
        hazard replication exists to close.
        """
        alive = {s: stored for s, stored in self._stored.items()
                 if s.alive and stored > 0}
        total = sum(alive.values())
        if total > 0:
            weights = {s: stored / total for s, stored in alive.items()}
        else:
            live = [s for s in self.servers if s.alive]
            if not live:
                return  # nothing reachable: reads stall entirely
            # nothing stored yet (e.g. writeback still in flight): spread
            # evenly — the data is reachable via the swap-cache semantics
            weights = {s: 1.0 / len(live) for s in live}
        for server, w in weights.items():
            flow = self._flow_for(q, server)
            flow.demand = min(q.demand * w, server.service_bps * dt)

    def commit_tick(self, dt: float) -> None:
        """No commit-phase work; grants were produced in :meth:`arbitrate`.

        Kept to satisfy the :class:`TickParticipant` protocol, but the
        cluster registers namespaces with ``phases=("pre",)`` so the tick
        engine never actually calls this.
        """

    def arbitrate(self, dt: float) -> None:
        for q in self._queues:
            granted = 0.0
            for server, flow in q.flows.items():
                g = flow.granted
                flow.demand = 0.0
                if g <= 0:
                    continue
                granted += g
                if q.kind == "write":
                    accepted = server.allocate(g)
                    self._stored[server] += accepted
            if q.kind == "write" and self.replication > 1:
                # the wire moved r copies; the caller wrote g/r bytes
                granted /= self.replication
            q.granted = granted
            q.total_granted += granted
            q.demand = 0.0
        if self._repair_plan:
            for target, flow in self._repair_plan.items():
                g = flow.granted
                flow.demand = 0.0
                if g <= 0:
                    continue
                if not target.alive:
                    # The target died between _plan_repair and now (the
                    # injector fires mid-tick): the copy never landed.
                    # Don't store into a corpse — the backlog keeps the
                    # bytes (it only shrinks by accepted) and the next
                    # pre_tick re-plans onto surviving donors.
                    continue
                accepted = target.allocate(g)
                self._stored[target] = self._stored.get(target, 0.0) + accepted
                self.repaired_bytes += accepted
                self._repair_backlog = max(0.0,
                                           self._repair_backlog - accepted)
            self._repair_plan = {}
            if self._repair_backlog <= 1e-6:
                self._repair_backlog = 0.0
                self._close_repair_flows()

    # -- internals -----------------------------------------------------------
    def _flow_for(self, q: VmdQueue, server: VMDServer) -> Flow:
        flow = q.flows.get(server)
        if flow is None:
            if q.kind == "read":
                src, dst = server.host, q.host
            else:
                src, dst = q.host, server.host
            flow = self.network.open_flow(
                src, dst, priority=q.priority,
                name=f"vmd:{q.name}:{server.host}")
            q.flows[server] = flow
        return flow
