"""VMD server: a memory donor on an intermediate host.

Mirrors the paper's VMD server kernel module: no memory is reserved in
advance — pages are allocated only when a write request arrives — and the
server advertises its remaining free memory to clients (the paper uses
periodic updates; we let placement read the current value, which is the
zero-staleness limit of that protocol).

A server can optionally model a *disk-backed tier* (§IV-A suggests HDs or
SSDs alongside memory) by capping its service bandwidth below NIC speed.
"""

from __future__ import annotations

__all__ = ["VMDServer"]


class VMDServer:
    """Memory donor on one intermediate host.

    Parameters
    ----------
    host:
        The host name this server runs on (must exist in the network).
    capacity_bytes:
        Donatable memory.
    service_bps:
        Per-tick service-rate cap in bytes/s; ``inf`` for a pure in-memory
        server (NIC-limited), finite for a disk-backed tier.
    """

    def __init__(self, host: str, capacity_bytes: float,
                 service_bps: float = float("inf")):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if service_bps <= 0:
            raise ValueError("service bandwidth must be positive")
        self.host = host
        self.capacity_bytes = float(capacity_bytes)
        self.service_bps = float(service_bps)
        self.used_bytes = 0.0
        #: a crashed donor serves nothing and accepts nothing; the pages
        #: it held are unreachable until it recovers (see
        #: :class:`~repro.vmd.namespace.VMDNamespace` replication)
        self.alive = True
        #: set by a content-losing crash: the stored copies are *gone*, not
        #: merely unreachable, and namespaces must reconcile (replication
        #: repair or data loss)
        self.contents_lost = False

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def has_free_memory(self) -> bool:
        """The availability signal gossiped to clients."""
        return self.alive and self.free_bytes > 0

    def fail(self, lose_contents: bool = False) -> None:
        """Crash the donor host.

        By default its memory contents survive a recover — modeling a
        network partition / reboot-with-preserved-store. With
        ``lose_contents`` the donor's RAM is wiped (power loss / kernel
        panic): every copy it stored is destroyed, and namespaces must be
        told via :meth:`~repro.vmd.cluster.VMDCluster.on_server_failed` so
        they can reconcile (drop the copies, start replication repair).
        """
        self.alive = False
        if lose_contents:
            self.contents_lost = True
            self.used_bytes = 0.0

    def recover(self) -> None:
        """Rejoin the pool. A donor that lost its contents comes back
        empty but immediately re-admits writes (allocation is on-write,
        so no warm-up is needed)."""
        self.alive = True
        self.contents_lost = False

    def allocate(self, n_bytes: float) -> float:
        """Allocate up to ``n_bytes`` (on write); returns bytes accepted."""
        take = min(n_bytes, self.free_bytes)
        self.used_bytes += take
        return take

    def release(self, n_bytes: float) -> None:
        self.used_bytes = max(0.0, self.used_bytes - n_bytes)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<VMDServer on {self.host} "
                f"{self.used_bytes/2**20:.0f}/{self.capacity_bytes/2**20:.0f}"
                f" MiB>")
