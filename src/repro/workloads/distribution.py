"""Access distributions over a workload's query region.

The paper's YCSB runs use a uniform key distribution (§V-A), which
:class:`UniformAccess` models exactly. YCSB's default *zipfian*
distribution is provided as :class:`ZipfAccess` — an extension that
matters for migration studies because a skewed working set makes the
"hot pages in memory, cold pages on the per-VM swap" split far sharper,
which is precisely the regime Agile migration exploits.

A distribution answers two questions about the region ``[lo, hi)``:

* ``class_probability(mask)`` — the probability that one page access
  lands in the page class described by a region-relative boolean mask
  (e.g. "missing and swapped");
* ``sample(mask, k, rng)`` — which ``k`` distinct pages of that class
  the tick's accesses actually touched.

Both are exact under the per-page weight model (no bucketing).
"""

from __future__ import annotations

import numpy as np

__all__ = ["AccessDistribution", "UniformAccess", "ZipfAccess"]


class AccessDistribution:
    """Base class; implementations may cache per-region-size state."""

    def class_probability(self, mask: np.ndarray) -> float:
        raise NotImplementedError

    def sample(self, mask: np.ndarray, k: int,
               rng: np.random.Generator) -> np.ndarray:
        """Region-relative indices of up to ``k`` distinct pages in
        ``mask``, drawn by access probability."""
        raise NotImplementedError


class UniformAccess(AccessDistribution):
    """Every page of the region is equally likely (the paper's setup)."""

    def class_probability(self, mask: np.ndarray) -> float:
        if mask.size == 0:
            return 0.0
        return float(np.count_nonzero(mask)) / mask.size

    def sample(self, mask: np.ndarray, k: int,
               rng: np.random.Generator) -> np.ndarray:
        cand = np.flatnonzero(mask)
        if cand.size <= k:
            return cand
        return rng.choice(cand, size=k, replace=False)


class ZipfAccess(AccessDistribution):
    """Zipf-distributed page popularity: page 0 is the hottest.

    ``theta`` is the YCSB/Zipf skew parameter (YCSB default 0.99).
    Weights are ``rank^-theta``, normalized over the current region
    size; they are recomputed lazily when the region size changes (the
    paper's load ramp grows the queried range).
    """

    def __init__(self, theta: float = 0.99):
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.theta = float(theta)
        self._weights = np.empty(0)

    def _weights_for(self, n: int) -> np.ndarray:
        if self._weights.size != n:
            ranks = np.arange(1, n + 1, dtype=np.float64)
            w = ranks ** (-self.theta)
            self._weights = w / w.sum()
        return self._weights

    def class_probability(self, mask: np.ndarray) -> float:
        if mask.size == 0:
            return 0.0
        w = self._weights_for(mask.size)
        return float(w[mask].sum())

    def sample(self, mask: np.ndarray, k: int,
               rng: np.random.Generator) -> np.ndarray:
        cand = np.flatnonzero(mask)
        if cand.size <= k:
            return cand
        w = self._weights_for(mask.size)[cand]
        total = w.sum()
        if total <= 0:
            return rng.choice(cand, size=k, replace=False)
        return rng.choice(cand, size=k, replace=False, p=w / total)
