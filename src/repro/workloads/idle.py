"""Idle VM workload (Figures 7-8's 'idle VM' configuration).

The VM's memory is fully allocated (a booted guest with its dataset
loaded) but nothing touches it during the experiment, so the workload
issues no operations, declares no demands, and records zero throughput.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.metrics.recorder import Recorder
from repro.vm.vm import VirtualMachine

__all__ = ["IdleWorkload"]


class IdleWorkload:
    """A tick participant that does nothing but record 0 ops/s."""

    def __init__(self, vm: VirtualMachine, recorder: Recorder,
                 sim_now: Optional[Callable[[], float]] = None):
        self.vm = vm
        self.recorder = recorder
        self._now = sim_now or (lambda: 0.0)
        self.fault_router = None
        self.total_ops = 0.0

    def pre_tick(self, dt: float) -> None:  # noqa: D102 - protocol impl
        pass

    def commit_tick(self, dt: float) -> None:  # noqa: D102 - protocol impl
        self.recorder.record(f"{self.vm.name}.throughput", self._now(), 0.0)
