"""Sysbench OLTP over MySQL workload model (§V-C2).

Each transaction is much heavier than a KV op: it reads a spread of index
and row pages across the whole dataset and writes several pages (rows +
redo). Throughput is reported in transactions/s, matching Table I's
Sysbench rows.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.mem.manager import HostMemoryManager
from repro.metrics.recorder import Recorder
from repro.net.network import Network
from repro.vm.vm import VirtualMachine
from repro.workloads.base import PhasePlan, Workload, WorkloadParams

__all__ = ["OLTPWorkload", "sysbench_mysql_params"]


def sysbench_mysql_params(**overrides) -> WorkloadParams:
    """Calibrated defaults for the Sysbench OLTP client."""
    base = WorkloadParams(
        cpu_s_per_op=8e-3,         # per-transaction CPU (query parsing etc.)
        threads=8,
        pages_per_op=48.0,         # B-tree descents + row pages per txn
        bytes_per_op=8000.0,       # result set
        write_fraction=0.3,
        dirty_pages_per_write=10.0,
        write_region_fraction=0.25,  # rows + redo/index hot set
        readahead=8.0,
        swap_fault_latency_s=250e-6,
        source_fault_latency_s=1e-3,
        max_swapin_bps=20e6,       # more parallel I/O than the KV store
    )
    return base.scaled(**overrides) if overrides else base


class OLTPWorkload(Workload):
    """Sysbench OLTP against a MySQL dataset in VM memory.

    The whole ``dataset_bytes`` region is queried uniformly (Sysbench
    default); the dataset occupies the first pages of guest memory.
    """

    def __init__(self, vm: VirtualMachine, network: Network,
                 client_host: str,
                 manager_of: Callable[[str], HostMemoryManager],
                 recorder: Recorder, rng: np.random.Generator,
                 dataset_bytes: float,
                 params: Optional[WorkloadParams] = None,
                 distribution=None, cpu_of=None,
                 sim_now: Optional[Callable[[], float]] = None):
        page = vm.pages.page_size
        dataset_pages = int(dataset_bytes // page)
        if not 0 < dataset_pages <= vm.n_pages:
            raise ValueError("dataset must fit in VM memory")
        self.dataset_pages = dataset_pages
        super().__init__(vm, PhasePlan.constant(0, dataset_pages), network,
                         client_host, manager_of, recorder, rng,
                         params=params or sysbench_mysql_params(),
                         distribution=distribution, cpu_of=cpu_of,
                         sim_now=sim_now)
