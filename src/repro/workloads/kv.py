"""YCSB-over-Redis workload model (§V-A).

An in-memory key-value store queried by an external YCSB client with
read-mostly operations over a uniform distribution. Two modeling notes
anchored in how Redis actually behaves:

* records are ~1 KB, so one op touches one page and produces ~1.2 KB of
  response traffic;
* Redis updates per-key metadata (LRU clock, access stats) on *reads*,
  so a large fraction of touched pages are dirtied even by a read-only
  YCSB run — this is what makes pre-copy retransmit gigabytes in
  Table III despite the workload issuing no writes.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.mem.manager import HostMemoryManager
from repro.metrics.recorder import Recorder
from repro.net.network import Network
from repro.util import GiB, MiB
from repro.vm.vm import VirtualMachine
from repro.workloads.base import PhasePlan, Workload, WorkloadParams

__all__ = ["KeyValueWorkload", "ycsb_redis_params"]


def ycsb_redis_params(**overrides) -> WorkloadParams:
    """Calibrated defaults for the YCSB/Redis client."""
    base = WorkloadParams(
        cpu_s_per_op=50e-6,        # Redis GET service time
        threads=16,
        pages_per_op=1.0,          # ~1 KB record in one page
        bytes_per_op=1200.0,       # record + protocol overhead
        write_fraction=0.5,        # read-triggered metadata dirtying
        dirty_pages_per_write=1.0,
        write_region_fraction=0.15,  # hot dict/metadata pages
        readahead=8.0,
        swap_fault_latency_s=250e-6,
        source_fault_latency_s=1e-3,
        max_swapin_bps=12e6,       # synchronous swap-in ceiling per VM
    )
    return base.scaled(**overrides) if overrides else base


class KeyValueWorkload(Workload):
    """YCSB querying a Redis dataset held in VM memory.

    Parameters
    ----------
    dataset_bytes:
        The loaded Redis dataset size (9 GB in §V-A). The dataset
        occupies the first ``dataset_bytes`` of guest memory.
    query_plan:
        Phases of ``(start_time, queried_bytes)`` — the fraction of the
        dataset the client draws keys from, as in the paper's ramp from
        200 MB to 6 GB. Defaults to querying the whole dataset.
    """

    def __init__(self, vm: VirtualMachine, network: Network,
                 client_host: str,
                 manager_of: Callable[[str], HostMemoryManager],
                 recorder: Recorder, rng: np.random.Generator,
                 dataset_bytes: float,
                 query_plan: Optional[list[tuple[float, float]]] = None,
                 params: Optional[WorkloadParams] = None,
                 distribution=None, cpu_of=None,
                 sim_now: Optional[Callable[[], float]] = None):
        page = vm.pages.page_size
        dataset_pages = int(dataset_bytes // page)
        if dataset_pages <= 0:
            raise ValueError("dataset smaller than one page")
        if dataset_pages > vm.n_pages:
            raise ValueError("dataset larger than VM memory")
        self.dataset_pages = dataset_pages
        if query_plan is None:
            phases = [(0.0, 0, dataset_pages)]
        else:
            phases = [(t, 0, max(1, min(dataset_pages, int(b // page))))
                      for t, b in query_plan]
        super().__init__(vm, PhasePlan(phases), network, client_host,
                         manager_of, recorder, rng,
                         params=params or ycsb_redis_params(),
                         distribution=distribution, cpu_of=cpu_of,
                         sim_now=sim_now)

    @staticmethod
    def paper_ramp_plan(vm_index: int, small_bytes: float = 200 * MiB,
                        large_bytes: float = 6 * GiB,
                        ramp_start: float = 150.0,
                        stagger: float = 50.0) -> list[tuple[float, float]]:
        """The §V-A load schedule: every client first queries 200 MB; from
        t=150 s the clients switch to 6 GB one by one, 50 s apart."""
        return [(0.0, small_bytes),
                (ramp_start + vm_index * stagger, large_bytes)]
