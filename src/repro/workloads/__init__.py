"""Application workload models.

The paper drives its VMs with YCSB against in-VM Redis servers and
Sysbench OLTP against in-VM MySQL servers, from clients on an external
host. We model both as closed-loop clients issuing operations against the
VM's guest memory: each op costs CPU time, touches pages drawn uniformly
from the currently queried region (the paper's YCSB runs use a uniform
distribution), sends a response over the network, and — when a touched
page is not resident — blocks on fault service from the swap device, the
migration source, or the VMD. Throughput therefore emerges from memory
residency and resource contention, which is exactly the quantity
Figures 4-6 and 10 and Table I plot.
"""

from repro.workloads.base import (
    FaultRouter,
    PhasePlan,
    Workload,
    WorkloadParams,
)
from repro.workloads.distribution import (
    AccessDistribution,
    UniformAccess,
    ZipfAccess,
)
from repro.workloads.kv import KeyValueWorkload, ycsb_redis_params
from repro.workloads.oltp import OLTPWorkload, sysbench_mysql_params
from repro.workloads.idle import IdleWorkload

__all__ = [
    "AccessDistribution",
    "FaultRouter",
    "IdleWorkload",
    "KeyValueWorkload",
    "OLTPWorkload",
    "PhasePlan",
    "UniformAccess",
    "Workload",
    "ZipfAccess",
    "WorkloadParams",
    "sysbench_mysql_params",
    "ycsb_redis_params",
]
