"""The workload engine: closed-loop clients over guest memory.

Model
-----
A workload is a closed loop of ``threads`` client threads issuing
operations against a *query region* of the VM's memory (a page range that
changes over time via a :class:`PhasePlan` — e.g. YCSB first querying
200 MB, later 6 GB of a 9 GB dataset, §V-A). Per operation:

* ``cpu_s_per_op`` seconds of vCPU time;
* ``pages_per_op`` page touches drawn uniformly from the region;
* ``bytes_per_op`` of response traffic to the external client host;
* a touched non-resident page *faults*. Fault service depends on where
  the page lives: the VM's swap device (readahead-amplified block I/O),
  the migration source (post-copy demand paging), or nowhere (fresh
  zero-fill).

Each tick the engine computes the expected per-op fault mix from the page
state counts, declares resource demands (device reads, network), and
after arbitration executes as many whole operations as the binding
resource allows:

``ops = min(cpu bound, thread-latency bound, swap grant, source grant,
network grant)``

then applies the page-state side effects (swap-ins, LRU touches, dirty
bits, evictions via the memory manager). All sampling is vectorized and
seeded; runs are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.mem.manager import HostMemoryManager, VmMemoryBinding
from repro.metrics.recorder import Recorder
from repro.net.flow import Flow
from repro.net.network import Network
from repro.util import PAGE_SIZE
from repro.vm.vm import VirtualMachine

__all__ = ["FaultRouter", "PhasePlan", "Workload", "WorkloadParams"]


@runtime_checkable
class FaultRouter(Protocol):
    """Destination-side fault routing installed by a migration manager.

    While a VM is in its post-copy phase, touched pages that are neither
    resident nor swapped may be *owed by the source* (they were dirtied
    during the pre-copy round, or never transferred at all). The router
    owns the demand-paging channel to the source and tells the workload
    which pages those are.
    """

    def source_pending_mask(self) -> Optional[np.ndarray]:
        """Boolean mask over all VM pages owed by the source, or None."""

    def demand_source(self, n_bytes: float) -> None:
        """Declare demand-paging bytes for this tick (pre phase)."""

    def granted_source(self) -> float:
        """Bytes granted on the demand-paging channel (commit phase)."""

    def notify_fetched(self, idx: np.ndarray) -> None:
        """Pages obtained via demand paging (the source stops pushing them)."""


@dataclass(frozen=True)
class WorkloadParams:
    """Tunable workload characteristics (see module docstring)."""

    cpu_s_per_op: float = 50e-6
    threads: int = 8
    pages_per_op: float = 1.0
    bytes_per_op: float = 1500.0
    write_fraction: float = 0.05
    #: pages dirtied by one write op
    dirty_pages_per_write: float = 1.0
    #: writes land in this prefix fraction of the query region (the hot
    #: write set — e.g. Redis dict/metadata pages are re-dirtied over and
    #: over; uniform dirtying over the whole dataset would wildly
    #: overstate unique dirty bytes and writeback traffic)
    write_region_fraction: float = 1.0
    #: Linux swap readahead: pages of block I/O per swap fault
    readahead: float = 8.0
    #: per-VM swap-in bandwidth ceiling (bytes/s), or None. Swap faults
    #: are synchronous in the faulting vCPU: readahead batching gives
    #: limited parallelism, so a VM cannot pull pages from its swap
    #: device at wire speed no matter how many are missing. This is the
    #: effective queue-depth × cluster / latency product of the real
    #: swap-in path, and it is what keeps a whole host of thrashing VMs
    #: from saturating the fabric.
    max_swapin_bps: Optional[float] = None
    #: service latency charged per fault (blocks a client thread)
    swap_fault_latency_s: float = 250e-6
    source_fault_latency_s: float = 1e-3
    minor_fault_latency_s: float = 5e-6
    #: cap on pages sampled for LRU touch updates per tick (cost control)
    touch_sample_cap: int = 2048

    def scaled(self, **kwargs) -> "WorkloadParams":
        return replace(self, **kwargs)


class PhasePlan:
    """A step function time → queried page range.

    Built from ``(start_time, lo_page, hi_page)`` triples sorted by time;
    the region in force at time *t* is the last phase with start ≤ t.
    """

    def __init__(self, phases: Sequence[tuple[float, int, int]]):
        if not phases:
            raise ValueError("need at least one phase")
        ordered = sorted(phases, key=lambda p: p[0])
        for start, lo, hi in ordered:
            if not 0 <= lo < hi:
                raise ValueError(f"bad region [{lo}, {hi})")
        self._starts = np.array([p[0] for p in ordered])
        self._regions = [(p[1], p[2]) for p in ordered]

    def region_at(self, t: float) -> tuple[int, int]:
        i = int(np.searchsorted(self._starts, t, side="right")) - 1
        if i < 0:
            i = 0
        return self._regions[i]

    @staticmethod
    def constant(lo: int, hi: int) -> "PhasePlan":
        return PhasePlan([(0.0, lo, hi)])


@dataclass
class _TickPlan:
    """Pre-tick estimates carried into the commit phase."""

    lo: int = 0
    hi: int = 0
    ops_bound: float = 0.0
    lam_swap: float = 0.0
    lam_src: float = 0.0
    lam_fresh: float = 0.0
    running: bool = False
    src_mask: Optional[np.ndarray] = None


class Workload:
    """Closed-loop client workload bound to one VM. Tick participant."""

    def __init__(self, vm: VirtualMachine, plan: PhasePlan,
                 network: Network, client_host: str,
                 manager_of: Callable[[str], HostMemoryManager],
                 recorder: Recorder, rng: np.random.Generator,
                 params: Optional[WorkloadParams] = None,
                 distribution: Optional["AccessDistribution"] = None,
                 cpu_of: Optional[Callable[[str], "object"]] = None,
                 sim_now: Optional[Callable[[], float]] = None):
        from repro.workloads.distribution import UniformAccess

        self.vm = vm
        #: optional host-CPU arbiter lookup (host name -> CpuArbiter);
        #: when absent the host CPU is assumed uncontended (the paper's
        #: experiments never oversubscribe cores)
        self.cpu_of = cpu_of
        self._cpu_shares: dict[str, object] = {}
        self.plan = plan
        self.network = network
        self.client_host = client_host
        self.manager_of = manager_of
        self.recorder = recorder
        self.rng = rng
        self.params = params or WorkloadParams()
        self.distribution = distribution or UniformAccess()
        self._now = sim_now or (lambda: 0.0)
        #: installed by a migration manager during the post-copy phase
        self.fault_router: Optional[FaultRouter] = None
        #: vCPU throttle in (0, 1]; pre-copy auto-converge (SDPS-style)
        #: slows the guest down to let the migration catch up with the
        #: dirty rate
        self.cpu_throttle: float = 1.0
        self._flow: Optional[Flow] = None
        self._flow_host: Optional[str] = None
        self._plan_state = _TickPlan()
        self.total_ops = 0.0
        #: carry for fractional ops between ticks (keeps rates unbiased)
        self._op_carry = 0.0
        #: last tick's achieved ops (drives demand sizing, see pre_tick)
        self._last_ops = 0.0
        #: recorder key built once (commit_tick records every tick)
        self._throughput_key = f"{vm.name}.throughput"

    # -- helpers ---------------------------------------------------------------
    def _binding(self) -> VmMemoryBinding:
        return self.manager_of(self.vm.host).binding(self.vm.name)

    def _cpu_share(self):
        """The VM's CPU lane on its *current* host (lazily opened)."""
        if self.cpu_of is None:
            return None
        share = self._cpu_shares.get(self.vm.host)
        if share is None:
            share = self.cpu_of(self.vm.host).open_share(
                f"{self.vm.name}.cpu")
            self._cpu_shares[self.vm.host] = share
        return share

    def _client_flow(self) -> Flow:
        """(Re)open the response-traffic flow from the VM's current host."""
        if self._flow is None or self._flow_host != self.vm.host:
            if self._flow is not None:
                self._flow.close()
            self._flow = self.network.open_flow(
                self.vm.host, self.client_host,
                name=f"{self.vm.name}.client")
            self._flow_host = self.vm.host
        return self._flow

    # -- tick protocol ----------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        p = self.params
        st = self._plan_state
        st.running = self.vm.is_running
        if not st.running:
            return
        pages = self.vm.pages
        lo, hi = self.plan.region_at(self._now())
        hi = min(hi, pages.n_pages)
        st.lo, st.hi = lo, hi
        n_region = hi - lo
        if n_region <= 0:
            st.ops_bound = 0.0
            return

        present = pages.present[lo:hi]
        swapped = pages.swapped[lo:hi]
        dist = self.distribution

        st.src_mask = None
        p_src = 0.0
        if self.fault_router is not None:
            mask = self.fault_router.source_pending_mask()
            if mask is not None:
                region_src = mask[lo:hi] & ~present & ~swapped
                p_src = dist.class_probability(region_src)
                st.src_mask = mask

        # Per-access probabilities of each fault class, weighted by the
        # access distribution (uniform: plain residency fractions).
        p_swap = dist.class_probability(swapped)
        q = dist.class_probability(~present)
        p_fresh = max(0.0, q - p_swap - p_src)
        st.lam_swap = p.pages_per_op * p_swap
        st.lam_src = p.pages_per_op * p_src
        st.lam_fresh = p.pages_per_op * p_fresh

        # Closed-loop bounds: CPU capacity and thread latency.
        # (source_fault_latency_s includes the network round trip)
        per_op = (p.cpu_s_per_op
                  + st.lam_swap * p.swap_fault_latency_s
                  + st.lam_src * p.source_fault_latency_s
                  + st.lam_fresh * p.minor_fault_latency_s)
        ops_cpu = self.vm.vcpus * dt / p.cpu_s_per_op
        ops_lat = p.threads * dt / per_op
        # auto-converge stalls the guest's vCPUs outright, so every
        # bound scales down — not just the CPU term
        st.ops_bound = min(ops_cpu, ops_lat) * self.cpu_throttle

        # Demands are sized from *achieved* throughput (AIMD-style probe:
        # last tick's ops + 30 % headroom), not the optimistic CPU bound.
        # A thrashing VM whose ops are fault-limited must not declare
        # phantom network demand — on a fair-shared link that phantom
        # would steal real bandwidth from migration streams and peers.
        ops_demand = min(st.ops_bound,
                         max(self._last_ops * 1.3, st.ops_bound * 0.05))

        page_size = pages.page_size
        if st.lam_swap > 0:
            swap_demand = ops_demand * st.lam_swap * p.readahead * page_size
            if p.max_swapin_bps is not None:
                swap_demand = min(swap_demand, p.max_swapin_bps * dt)
            self._binding().fault_queue.demand += swap_demand
        if st.lam_src > 0 and self.fault_router is not None:
            self.fault_router.demand_source(
                ops_demand * st.lam_src * page_size)
        self._client_flow().demand = ops_demand * p.bytes_per_op
        share = self._cpu_share()
        if share is not None:
            share.demand += ops_demand * p.cpu_s_per_op

    def commit_tick(self, dt: float) -> None:
        st = self._plan_state
        t = self._now()
        if not st.running or st.ops_bound <= 0:
            self.recorder.record(self._throughput_key, t, 0.0)
            return
        p = self.params
        pages = self.vm.pages
        page_size = pages.page_size
        mm = self.manager_of(self.vm.host)

        # Resource-limited op counts.
        ops = st.ops_bound
        if st.lam_swap > 0:
            g = self._binding().fault_queue.granted
            ops = min(ops, g / (st.lam_swap * p.readahead * page_size))
        if st.lam_src > 0 and self.fault_router is not None:
            g = self.fault_router.granted_source()
            ops = min(ops, g / (st.lam_src * page_size))
        if p.bytes_per_op > 0:
            ops = min(ops, self._client_flow().granted / p.bytes_per_op)
        share = self._cpu_share()
        if share is not None and p.cpu_s_per_op > 0:
            ops = min(ops, share.granted / p.cpu_s_per_op)
        ops = max(ops, 0.0)

        # Integerize page effects with a fractional carry.
        self._op_carry += ops
        whole_ops = float(np.floor(self._op_carry))
        self._op_carry -= whole_ops

        lo, hi = st.lo, st.hi
        k_swap = self._round(whole_ops * st.lam_swap)
        k_src = self._round(whole_ops * st.lam_src)
        k_fresh = self._round(whole_ops * st.lam_fresh)

        region_present = pages.present[lo:hi]
        region_swapped = pages.swapped[lo:hi]

        if k_swap > 0:
            idx = self._sample(lo, region_swapped, k_swap)
            if idx.size:
                mm.fault_in(self.vm.name, idx)
                # readahead reads extra device bytes beyond the fault page
                extra = (p.readahead - 1.0) * idx.size * page_size
                if extra > 0:
                    self._binding().cgroup.account_swap_in(extra)
        if k_src > 0 and st.src_mask is not None:
            cand = st.src_mask[lo:hi] & ~region_present & ~region_swapped
            idx = self._sample(lo, cand, k_src)
            if idx.size:
                mm.fault_in(self.vm.name, idx)
                self.fault_router.notify_fetched(idx)
        if k_fresh > 0:
            cand = ~pages.present[lo:hi] & ~pages.swapped[lo:hi]
            if st.src_mask is not None:
                cand &= ~st.src_mask[lo:hi]
            idx = self._sample(lo, cand, k_fresh)
            if idx.size:
                mm.fault_in(self.vm.name, idx)

        # LRU touches on hit pages (sampled, capped). Using the access
        # distribution keeps hot pages recently-used under skewed access,
        # which is what makes LRU retain the hot set.
        n_touch = int(min(whole_ops * p.pages_per_op, p.touch_sample_cap))
        if n_touch > 0:
            touched = self._sample(lo, pages.present[lo:hi], n_touch)
            if touched.size:
                pages.touch(touched, mm.tick)

        # Writes dirty pages within the hot write set.
        k_dirty = self._round(
            whole_ops * p.write_fraction * p.dirty_pages_per_write)
        if k_dirty > 0:
            w_mask = pages.present[lo:hi].copy()
            w_len = max(1, int((hi - lo) * p.write_region_fraction))
            w_mask[w_len:] = False
            idx = self._sample(lo, w_mask, k_dirty)
            if idx.size:
                mm.dirty(self.vm.name, idx)

        self.total_ops += whole_ops
        self._last_ops = ops
        self.recorder.record(self._throughput_key, t, whole_ops / dt)

    # -- internals ---------------------------------------------------------------
    def _round(self, x: float) -> int:
        """Probabilistic rounding: unbiased at low rates."""
        base = int(np.floor(x))
        frac = x - base
        return base + (1 if self.rng.random() < frac else 0)

    def _sample(self, lo: int, region_mask: np.ndarray, k: int) -> np.ndarray:
        """Sample up to ``k`` distinct pages of a region-relative class,
        weighted by the access distribution; returns absolute indices."""
        return lo + self.distribution.sample(region_mask, k, self.rng)
