"""The virtual machine: a KVM/QEMU process in the paper's terms.

A :class:`VirtualMachine` owns a :class:`~repro.mem.pages.PageSet` (its
guest physical memory as exposed through the QEMU process's address
space), a vCPU count, and a lifecycle state. During migration the
authoritative :attr:`pages` object is replaced by the destination copy at
the CPU-state switchover — the source-side array stays alive inside the
migration manager for the push phase, mirroring how the source QEMU
process lingers until all pages have been pushed (§III-2).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.mem.pages import PageSet
from repro.util import PAGE_SIZE

__all__ = ["VirtualMachine", "VmState"]


class VmState(enum.Enum):
    RUNNING = "running"
    #: suspended for the migration downtime window
    SUSPENDED = "suspended"
    TERMINATED = "terminated"


class VirtualMachine:
    """One VM instance.

    Parameters
    ----------
    name:
        Unique VM identifier.
    memory_bytes:
        Guest physical memory size.
    vcpus:
        Number of virtual CPUs (caps the workload's CPU budget).
    host:
        Name of the host currently executing the VM.
    page_size:
        Page granularity for all state arrays and I/O accounting.
    """

    def __init__(self, name: str, memory_bytes: float, vcpus: int = 2,
                 host: str = "", page_size: int = PAGE_SIZE):
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if vcpus <= 0:
            raise ValueError("vcpus must be positive")
        self.name = name
        self.memory_bytes = float(memory_bytes)
        self.vcpus = int(vcpus)
        self.host = host
        self.page_size = int(page_size)
        n_pages = int(round(memory_bytes / page_size))
        if n_pages <= 0:
            raise ValueError("memory smaller than one page")
        self.pages = PageSet(n_pages, page_size)
        self.state = VmState.RUNNING
        #: CPU execution state size for downtime accounting (vCPU registers
        #: + device state; a few MB in QEMU)
        self.cpu_state_bytes = 4 * 2 ** 20
        #: set while a migration manager owns this VM
        self.migrating = False

    @property
    def n_pages(self) -> int:
        return self.pages.n_pages

    # -- lifecycle ---------------------------------------------------------------
    def suspend(self) -> None:
        if self.state is not VmState.RUNNING:
            raise RuntimeError(f"cannot suspend VM in state {self.state}")
        self.state = VmState.SUSPENDED

    def resume(self, host: Optional[str] = None,
               pages: Optional[PageSet] = None) -> None:
        """Resume execution, optionally on a new host with a new memory copy
        (the migration switchover)."""
        if self.state is not VmState.SUSPENDED:
            raise RuntimeError(f"cannot resume VM in state {self.state}")
        if host is not None:
            self.host = host
        if pages is not None:
            if pages.n_pages != self.pages.n_pages:
                raise ValueError("replacement PageSet has wrong geometry")
            self.pages = pages
        self.state = VmState.RUNNING

    def terminate(self) -> None:
        self.state = VmState.TERMINATED

    @property
    def is_running(self) -> bool:
        return self.state is VmState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<VM {self.name} {self.memory_bytes/2**30:.1f}GiB "
                f"on {self.host} {self.state.value}>")
