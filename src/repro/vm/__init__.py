"""Virtual machine model: guest memory, vCPUs, lifecycle."""

from repro.vm.vm import VirtualMachine, VmState

__all__ = ["VirtualMachine", "VmState"]
