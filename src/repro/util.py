"""Small shared utilities."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["fair_share", "GiB", "MiB", "KiB", "PAGE_SIZE"]

KiB = 1024
MiB = 1024 ** 2
GiB = 1024 ** 3

#: Real page size used for all fault and transfer accounting (bytes).
#: Scenario configs scale *sizes*, never the page size (see DESIGN.md §1).
PAGE_SIZE = 4096


def fair_share(demands: Sequence[float], capacity: float) -> np.ndarray:
    """Max-min fair division of ``capacity`` among ``demands``.

    Classic water-filling: every demand receives the same fill level except
    those satisfied earlier at their (smaller) demand. The result sums to
    ``min(capacity, sum(demands))``.

    >>> fair_share([10, 40, 100], 90).tolist()
    [10.0, 40.0, 40.0]
    """
    d = np.asarray(demands, dtype=np.float64)
    if np.any(d < 0):
        raise ValueError("demands must be non-negative")
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    n = d.size
    grant = np.zeros(n)
    if n == 0 or capacity <= 0:
        return grant
    if d.sum() <= capacity:
        return d.copy()
    order = np.argsort(d, kind="stable")
    remaining = float(capacity)
    active = n
    for pos, i in enumerate(order):
        share = remaining / active
        take = min(d[i], share)
        grant[i] = take
        remaining -= take
        active -= 1
    return grant
