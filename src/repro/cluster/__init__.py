"""Cluster assembly: one-stop wiring of all substrates.

:class:`World` owns the kernel, tick engine, network, recorder, and RNG
streams, and provides factory methods that register each component in the
right tick phase and order. Scenario builders (see
:mod:`repro.cluster.scenarios`) assemble the paper's testbed out of it.
"""

from repro.cluster.world import World
from repro.cluster.setup import preload_dataset

__all__ = ["World", "preload_dataset"]
