"""Scenario setup helpers.

The paper's experiments start from a state where a dataset was already
loaded into the VM *before* the measured window: pages beyond the memory
reservation (or host capacity) were swapped out during loading. Rather
than simulating the unmeasured load phase, :func:`preload_dataset` places
the page state directly — resident pages up to the effective limit, the
remainder on the VM's swap device with valid (clean) swap copies.
"""

from __future__ import annotations

import numpy as np

from repro.mem.device import SSDSwapDevice
from repro.mem.manager import HostMemoryManager, VmMemoryBinding
from repro.vm.vm import VirtualMachine
from repro.vmd.namespace import VMDNamespace

__all__ = ["preload_dataset"]


def preload_dataset(vm: VirtualMachine, manager: HostMemoryManager,
                    dataset_bytes: float,
                    cold_tail_bytes: float = 0.0,
                    dirty_resident: bool = False) -> VmMemoryBinding:
    """Install a loaded dataset in ``vm``'s first pages.

    Residency is capped by the VM's cgroup reservation *and* the host's
    free memory; the excess is swapped out to the VM's swap backend with
    clean copies (it was written there during loading). Pages are aged
    oldest-first so LRU eviction behaves sensibly from tick 0.

    ``cold_tail_bytes`` allocates additional pages *after* the dataset
    that start out swapped — the guest OS image, page cache, and other
    memory a long-running VM has touched but is not using. Baseline
    migrations must move these bytes; Agile sends only their offsets.

    ``dirty_resident`` marks resident pages dirty (a freshly written
    dataset that never hit swap, e.g. for write-heavy scenarios).
    Returns the VM's binding for convenience.
    """
    binding = manager.binding(vm.name)
    pages = vm.pages
    page = pages.page_size
    n_data = int(dataset_bytes // page)
    n_cold = int(cold_tail_bytes // page)
    if n_data <= 0 or n_data + n_cold > pages.n_pages:
        raise ValueError(
            f"dataset ({n_data}) + cold tail ({n_cold}) pages exceed VM")

    limit_bytes = min(binding.cgroup.reservation_bytes,
                      max(0.0, manager.free_bytes()))
    n_resident = min(n_data, int(limit_bytes // page))
    n_swapped = n_data - n_resident

    # The *end* of the dataset was loaded last, so it stays resident and
    # the beginning was evicted during loading (matches a linear load).
    resident_idx = np.arange(n_swapped, n_data)
    swapped_idx = np.concatenate([
        np.arange(0, n_swapped),
        np.arange(n_data, n_data + n_cold),
    ])
    pages.make_resident(resident_idx, tick=0)
    if dirty_resident:
        pages.mark_dirty(resident_idx)
    if swapped_idx.size > 0:
        swapped_bytes = float(swapped_idx.size) * page
        # swap_out (not raw bit flips) keeps the PageSet residency
        # counter exact; the pages were never resident, so this only
        # sets the swapped/swap-clean bits
        pages.swap_out(swapped_idx)
        backend = binding.backend
        if isinstance(backend, VMDNamespace):
            placed = backend.preload(swapped_bytes)
            if placed < swapped_bytes:
                raise RuntimeError("VMD servers too small for preload")
        elif isinstance(backend, SSDSwapDevice):
            backend.allocate(swapped_bytes)
    pages.check_invariants()
    return binding
