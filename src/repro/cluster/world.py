"""The World: a fully wired simulated cluster.

Tick ordering conventions (see :class:`repro.sim.TickEngine`):

* participants, order 0 — workloads and migration managers (declare
  demands / consume grants);
* participants, order 5 — host memory managers (writeback demand/drain);
* participants & arbiters, order 10 — VMD namespaces (translate queue
  demands to flows, then flow grants back to queues);
* arbiters, order 0 — the network and local SSD devices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.host.host import Host
from repro.mem.device import SSDSwapDevice
from repro.mem.manager import HostMemoryManager
from repro.metrics.recorder import Recorder
from repro.net.network import Network
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.telemetry.instruments import NULL_METRICS, NullRegistry
from repro.sim.kernel import Simulator
from repro.sim.periodic import TickEngine
from repro.sim.rng import RngStreams
from repro.vm.vm import VirtualMachine
from repro.vmd.cluster import VMDCluster
from repro.vmd.server import VMDServer

__all__ = ["World", "MANAGER_ORDER", "WORKLOAD_ORDER"]

WORKLOAD_ORDER = 0
MANAGER_ORDER = 5


class World:
    """Owns and wires every simulation component for one experiment."""

    def __init__(self, dt: float = 0.1, seed: int = 0,
                 net_bandwidth_bps: float = 117e6,
                 net_latency_s: float = 2e-4,
                 tracer: Optional[NullTracer] = None,
                 metrics: Optional[NullRegistry] = None):
        self.sim = Simulator()
        #: observability sink (see :mod:`repro.obs`); the no-op default
        #: keeps every instrumentation site at one attribute check
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(lambda: self.sim.now)
        #: live-metrics sink (see :mod:`repro.telemetry`); same no-op
        #: default contract as the tracer
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.metrics.bind_clock(lambda: self.sim.now)
        self.engine = TickEngine(self.sim, dt=dt)
        self.network = Network(default_bandwidth_bps=net_bandwidth_bps,
                               latency_s=net_latency_s)
        self.network.metrics = self.metrics
        self.engine.add_arbiter(self.network, order=0)
        self.recorder = Recorder()
        self.rngs = RngStreams(seed)
        self.hosts: dict[str, Host] = {}
        self.vms: dict[str, VirtualMachine] = {}
        self.ssds: dict[str, SSDSwapDevice] = {}
        self.vmd: Optional[VMDCluster] = None
        self.faults = None  # set by attach_faults()
        self.topology = None  # set by use_topology()
        self._started = False
        self._usage_subs: list = []
        self._usage_task = None

    # -- topology -----------------------------------------------------------
    def use_topology(self, topology) -> None:
        """Adopt a :class:`~repro.sched.Topology` (racks + ToR uplinks).

        Call before adding hosts/flows: subsequently added hosts can be
        assigned to racks (``add_host(..., rack=...)``), inter-rack flows
        cross the rack uplinks, and rack-crash faults become valid.
        """
        if self.topology is not None:
            raise RuntimeError("topology already set")
        self.topology = topology
        self.network.set_topology(topology)

    def add_host(self, name: str, memory_bytes: float,
                 cpu_cores: int = 12,
                 host_os_bytes: float = 200 * 2 ** 20,
                 nic_bandwidth_bps: Optional[float] = None,
                 rack: Optional[str] = None) -> Host:
        host = Host(name, memory_bytes, self.network, cpu_cores=cpu_cores,
                    host_os_bytes=host_os_bytes,
                    nic_bandwidth_bps=nic_bandwidth_bps)
        self.hosts[name] = host
        host.memory.metrics = self.metrics
        if rack is not None:
            if self.topology is None:
                raise RuntimeError("use_topology() before rack assignment")
            self.topology.assign(name, rack)
        self.engine.add_participant(host.memory, order=MANAGER_ORDER)
        self.engine.add_arbiter(host.cpu, order=0)
        return host

    def add_client_host(self, name: str = "client") -> None:
        """An external host running benchmark clients (no memory model)."""
        self.network.add_host(name)

    def add_ssd(self, name: str, **kwargs) -> SSDSwapDevice:
        dev = SSDSwapDevice(name, **kwargs)
        self.ssds[name] = dev
        self.engine.add_arbiter(dev, order=0)
        return dev

    def add_vmd(self, servers: list[tuple[str, float]],
                placement_chunk_bytes: float = 256 * 2 ** 10) -> VMDCluster:
        """Create the VMD from ``(host_name, donated_bytes)`` descriptors.

        Intermediate hosts are attached to the network automatically; they
        donate memory but run no VMs, so no memory manager is created.
        """
        if self.vmd is not None:
            raise RuntimeError("VMD already created")
        objs = []
        for host_name, capacity in servers:
            if not self.network.has_host(host_name):
                self.network.add_host(host_name)
            objs.append(VMDServer(host_name, capacity))
        self.vmd = VMDCluster(self.network, self.engine, objs,
                              placement_chunk_bytes=placement_chunk_bytes,
                              tracer=self.tracer)
        return self.vmd

    def attach_faults(self, schedule, log=None):
        """Install a fault-injection engine driven by ``schedule``.

        Returns the :class:`~repro.faults.FaultInjector`; call before
        :meth:`run`. The injector is kept on :attr:`faults` so engines and
        supervisors can subscribe to fault events.
        """
        from repro.faults.injector import FaultInjector
        if self.faults is not None:
            raise RuntimeError("faults already attached")
        self.faults = FaultInjector(self, schedule, log=log)
        return self.faults

    # -- usage feed ----------------------------------------------------------
    def start_usage_feed(self, interval_s: float = 1.0) -> None:
        """Periodically sample every host's resident bytes into the
        recorder (``host.<name>.used_bytes``) and notify subscribers.

        The planner's pressure forecast feeds from this. Idempotent: a
        second call (another control plane, a test) keeps the first
        task's cadence so the sample series — and everything downstream
        of it — stays deterministic.
        """
        if self._usage_task is not None:
            return
        from repro.sim.periodic import PeriodicTask
        self._usage_task = PeriodicTask(self.sim, interval_s,
                                        self._sample_usage)

    def subscribe_usage(self, fn) -> None:
        """Call ``fn(host_name, t, used_bytes)`` on every sample."""
        self._usage_subs.append(fn)

    def _sample_usage(self, now: float) -> None:
        publish = self.metrics.enabled
        for name in sorted(self.hosts):
            used = self.hosts[name].memory.total_resident_bytes()
            self.recorder.record(f"host.{name}.used_bytes", now, used)
            if publish:
                self.metrics.gauge(f"mem.host.{name}.used_bytes").set(used)
            for fn in self._usage_subs:
                fn(name, now, used)

    # -- helpers ---------------------------------------------------------------
    def manager_of(self, host_name: str) -> HostMemoryManager:
        return self.hosts[host_name].memory

    def cpu_of(self, host_name: str):
        return self.hosts[host_name].cpu

    def add_vm(self, name: str, memory_bytes: float, host: str,
               vcpus: int = 2, page_size: int = 4096) -> VirtualMachine:
        vm = VirtualMachine(name, memory_bytes, vcpus=vcpus, host=host,
                            page_size=page_size)
        self.vms[name] = vm
        return vm

    def add_workload(self, workload, order: int = WORKLOAD_ORDER):
        self.engine.add_participant(workload, order=order)
        return workload

    def rng(self, name: str) -> np.random.Generator:
        return self.rngs.get(name)

    @property
    def now(self) -> float:
        return self.sim.now

    # -- execution ----------------------------------------------------------
    def run(self, until: float) -> None:
        if not self._started:
            self.engine.start()
            self._started = True
        self.sim.run(until=until)
