"""Scenario builders reproducing the paper's testbed (§V).

Two experiment families:

* :func:`make_single_vm_lab` — §V-B / Figures 7-8: one idle or busy VM on
  a 6 GB source host, migrated to an equally small destination while the
  VM's memory size sweeps past the host's capacity;
* :func:`make_pressure_scenario` — §V-A / §V-C / Figures 4-6 and
  Tables I-III: four 10 GB VMs on a 23 GB source host running YCSB/Redis
  or Sysbench/MySQL; one VM is migrated to relieve memory pressure.

Scale note (DESIGN.md §1): page state is modeled at a 32 KiB *cluster*
granularity for the big scenarios — one fault swaps in one cluster, which
matches Linux's 32 KiB (8-page) swap readahead exactly while shrinking the
page arrays 8×. All sizes, bandwidths, and times are unscaled. The per-write
dirty granularity is rescaled to real 4 KiB pages via the
``dirty_pages_per_write`` parameter so dirtying rates stay faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.cluster.setup import preload_dataset
from repro.cluster.world import World
from repro.core.agile import AgileMigration
from repro.core.base import MigrationConfig, MigrationManager
from repro.core.postcopy import PostcopyMigration
from repro.core.precopy import PrecopyMigration
from repro.mem.device import SwapBackend
from repro.util import GiB, KiB, MiB
from repro.vm.vm import VirtualMachine
from repro.workloads.base import WorkloadParams
from repro.workloads.idle import IdleWorkload
from repro.workloads.kv import KeyValueWorkload, ycsb_redis_params
from repro.workloads.oltp import OLTPWorkload, sysbench_mysql_params

__all__ = [
    "Technique",
    "TestbedConfig",
    "MigrationLab",
    "make_single_vm_lab",
    "make_pressure_scenario",
    "scale_params_to_page",
]

Technique = Literal["pre-copy", "post-copy", "agile"]

_MANAGERS = {
    "pre-copy": PrecopyMigration,
    "post-copy": PostcopyMigration,
    "agile": AgileMigration,
}


def scale_params_to_page(params: WorkloadParams,
                         page_size: int) -> WorkloadParams:
    """Adjust granularity-sensitive workload knobs to the model page size.

    * fault I/O: one fault reads one model page (cluster); the base
      ``readahead`` is defined against 4 KiB pages, so rescale it to keep
      bytes-per-fault ≈ readahead × 4 KiB (floored at one cluster);
    * dirtying: a guest write dirties 4 KiB, i.e. a fraction
      ``4 KiB / page_size`` of a cluster.
    """
    ratio = 4096 / page_size
    return params.scaled(
        readahead=max(1.0, params.readahead * ratio),
        dirty_pages_per_write=params.dirty_pages_per_write * ratio,
    )


@dataclass(frozen=True)
class TestbedConfig:
    """The paper's hardware, §V: 1 Gbps Ethernet, SSD swap, 12-core hosts."""

    __test__ = False  # not a pytest class despite the name

    dt: float = 0.25
    seed: int = 0
    page_size: int = 32 * KiB
    net_bandwidth_bps: float = 117e6     # 1 Gbps goodput
    net_latency_s: float = 2e-4
    #: effective random-access swap bandwidth of the 2013-era SATA SSD —
    #: far below its sequential spec sheet, which is what makes the swap
    #: device the bottleneck the paper describes
    ssd_read_bps: float = 60e6
    ssd_write_bps: float = 40e6
    ssd_mixed_efficiency: float = 0.65
    ssd_capacity_bytes: float = 30 * GiB  # the paper's 30 GB swap partition
    vmd_server_bytes: float = 64 * GiB
    #: number of intermediate hosts donating memory to the VMD (the paper
    #: uses one and argues performance is insensitive to the count)
    vmd_servers: int = 1
    #: copies of every page the VMD keeps (must be ≤ vmd_servers);
    #: replication ≥ 2 survives a content-losing donor crash
    vmd_replication: int = 1
    host_os_bytes: float = 200 * MiB
    migration: MigrationConfig = field(default_factory=MigrationConfig)


@dataclass
class MigrationLab:
    """A wired scenario plus handles for driving the migration."""

    world: World
    technique: Technique
    config: TestbedConfig
    vms: list[VirtualMachine]
    workloads: list
    migrate_vm: VirtualMachine
    dst_backend_for_migration: Optional[SwapBackend]
    manager: Optional[MigrationManager] = None
    supervisor: Optional[object] = None  # MigrationSupervisor when supervised
    final: Optional[object] = None       # Event with the final attempt report

    @property
    def src(self):
        return self.world.hosts["src"]

    @property
    def dst(self):
        return self.world.hosts["dst"]

    def workload_of(self, vm: VirtualMachine):
        for wl in self.workloads:
            if wl.vm is vm:
                return wl
        return None

    def start_migration_at(self, t: float) -> None:
        """Schedule the migration of ``migrate_vm`` at simulation time t."""
        self.world.sim.call_at(t, self._launch)

    def manager_factory(self) -> MigrationManager:
        """Build a fresh (unstarted, unregistered) manager for
        ``migrate_vm``; remembered on :attr:`manager`."""
        cls = _MANAGERS[self.technique]
        self.manager = cls(
            self.world.sim, self.world.network, self.src, self.dst,
            self.migrate_vm, self.world.recorder,
            dst_backend=self.dst_backend_for_migration,
            config=self.config.migration,
            workload=self.workload_of(self.migrate_vm),
            tracer=self.world.tracer)
        return self.manager

    def _launch(self) -> None:
        mgr = self.manager_factory()
        engine = self.world.engine
        engine.add_participant(mgr, order=0)
        # leave the tick protocol on completion (see MigrationSupervisor)
        mgr.done.add_callback(lambda _ev: engine.remove_participant(mgr))
        mgr.start()

    def start_supervised_migration_at(self, t: float, policy=None,
                                      trigger=None, health=None):
        """Like :meth:`start_migration_at`, but under a
        :class:`~repro.faults.MigrationSupervisor`: aborted attempts are
        retried with backoff, and fault events (if the world has an
        injector attached) are routed to the in-flight manager. The
        final attempt's report lands on :attr:`final`. Pass a
        :class:`~repro.sched.HostHealthTracker` as ``health`` to park
        retries until the destination is back UP instead of blind
        backoff.
        """
        from repro.faults.recovery import MigrationSupervisor
        self.supervisor = MigrationSupervisor(self.world, policy=policy,
                                              trigger=trigger, health=health)

        def go() -> None:
            self.final = self.supervisor.dispatch(self.manager_factory)

        self.world.sim.call_at(t, go)
        return self.supervisor

    def run_until_migrated(self, start: float, limit: float,
                           settle: float = 0.0) -> None:
        """Run: warmup → migration at ``start`` → completion (+settle)."""
        self.start_migration_at(start)
        self.world.run(until=start)
        if self.manager is None:  # pragma: no cover - defensive
            raise RuntimeError("migration failed to launch")
        self.world.sim.run_until_event(self.manager.done, limit=limit)
        if settle > 0:
            self.world.run(until=self.world.sim.now + settle)

    @property
    def report(self):
        if self.manager is None:
            raise RuntimeError("migration not started")
        return self.manager.report


def _attach_backends(world: World, technique: Technique,
                     cfg: TestbedConfig, n_vms: int):
    """Swap backends per technique: a shared SSD per host for the
    baselines, one portable VMD namespace per VM for Agile."""
    if technique == "agile":
        servers = [(f"vmdsrv{k}", cfg.vmd_server_bytes / cfg.vmd_servers)
                   for k in range(cfg.vmd_servers)]
        vmd = world.add_vmd(servers, placement_chunk_bytes=16 * MiB)
        backends = [vmd.create_namespace(f"vm{i}",
                                         replication=cfg.vmd_replication)
                    for i in range(n_vms)]
        dst_backend = None  # the namespace travels with each VM
    else:
        src_ssd = world.add_ssd(
            "ssd.src", read_bps=cfg.ssd_read_bps,
            write_bps=cfg.ssd_write_bps,
            mixed_efficiency=cfg.ssd_mixed_efficiency,
            capacity_bytes=cfg.ssd_capacity_bytes)
        dst_ssd = world.add_ssd(
            "ssd.dst", read_bps=cfg.ssd_read_bps,
            write_bps=cfg.ssd_write_bps,
            mixed_efficiency=cfg.ssd_mixed_efficiency,
            capacity_bytes=cfg.ssd_capacity_bytes)
        backends = [src_ssd] * n_vms
        dst_backend = dst_ssd
    return backends, dst_backend


def make_single_vm_lab(technique: Technique, vm_memory_bytes: float,
                       busy: bool,
                       host_memory_bytes: float = 6 * GiB,
                       dst_memory_bytes: Optional[float] = None,
                       reservation_bytes: Optional[float] = None,
                       busy_margin_bytes: float = 500 * MiB,
                       config: Optional[TestbedConfig] = None,
                       tracer=None,
                       ) -> MigrationLab:
    """§V-B: one VM on a small host; idle or running a busy Redis server.

    The busy VM's Redis dataset is ``vm_memory − 500 MB`` (the paper's
    setup), queried in full by an external YCSB client. The cgroup
    reservation defaults to what the host can hold (~5.5 GB on the 6 GB
    host).
    """
    cfg = config or TestbedConfig()
    world = World(dt=cfg.dt, seed=cfg.seed,
                  net_bandwidth_bps=cfg.net_bandwidth_bps,
                  net_latency_s=cfg.net_latency_s, tracer=tracer)
    world.add_host("src", host_memory_bytes, host_os_bytes=cfg.host_os_bytes)
    world.add_host("dst", dst_memory_bytes or host_memory_bytes,
                   host_os_bytes=cfg.host_os_bytes)
    world.add_client_host()

    backends, dst_backend = _attach_backends(world, technique, cfg, 1)
    vm = world.add_vm("vm0", vm_memory_bytes, "src", vcpus=2,
                      page_size=cfg.page_size)
    if reservation_bytes is None:
        usable = host_memory_bytes - cfg.host_os_bytes - 300 * MiB
        reservation_bytes = min(vm_memory_bytes, usable)
    world.hosts["src"].place_vm(vm, reservation_bytes, backends[0])

    if busy:
        dataset = max(cfg.page_size, vm_memory_bytes - busy_margin_bytes)
        preload_dataset(vm, world.manager_of("src"), dataset,
                        cold_tail_bytes=vm_memory_bytes - dataset)
        params = scale_params_to_page(ycsb_redis_params(), cfg.page_size)
        wl = KeyValueWorkload(
            vm, world.network, "client", world.manager_of, world.recorder,
            world.rng("wl.vm0"), dataset_bytes=dataset, params=params,
            cpu_of=world.cpu_of, sim_now=lambda: world.sim.now)
    else:
        # Idle VM: fully allocated memory, nothing touching it.
        preload_dataset(vm, world.manager_of("src"), vm_memory_bytes)
        wl = IdleWorkload(vm, world.recorder, sim_now=lambda: world.sim.now)
    world.add_workload(wl)

    return MigrationLab(world=world, technique=technique, config=cfg,
                        vms=[vm], workloads=[wl], migrate_vm=vm,
                        dst_backend_for_migration=dst_backend)


def make_pressure_scenario(technique: Technique,
                           workload_kind: Literal["kv", "oltp"] = "kv",
                           n_vms: int = 4,
                           vm_memory_bytes: float = 10 * GiB,
                           host_memory_bytes: float = 23 * GiB,
                           reservation_bytes: float = 6 * GiB,
                           kv_dataset_bytes: float = 9 * GiB,
                           oltp_dataset_bytes: float = 8 * GiB,
                           config: Optional[TestbedConfig] = None,
                           tracer=None,
                           ) -> MigrationLab:
    """§V-A / §V-C: n VMs under memory pressure at the source; one is
    migrated to relieve it.

    KV mode installs the paper's load ramp (200 MB → 6 GB starting at
    150 s, staggered 50 s); OLTP mode queries the whole dataset from the
    start.

    Reservations default to the *working set size* (6 GB), following
    §V-A: "we manually adjust the VMs' memory reservation to reflect its
    working set size". The memory pressure is then host-level — four
    6 GB working sets (plus the host OS) exceed 23 GB, and after one VM
    leaves, the remaining three fit, which is what lets performance
    recover (Figures 4-6).
    """
    cfg = config or TestbedConfig()
    world = World(dt=cfg.dt, seed=cfg.seed,
                  net_bandwidth_bps=cfg.net_bandwidth_bps,
                  net_latency_s=cfg.net_latency_s, tracer=tracer)
    world.add_host("src", host_memory_bytes, host_os_bytes=cfg.host_os_bytes)
    world.add_host("dst", host_memory_bytes, host_os_bytes=cfg.host_os_bytes)
    world.add_client_host()

    backends, dst_backend = _attach_backends(world, technique, cfg, n_vms)

    vms, workloads = [], []
    for i in range(n_vms):
        vm = world.add_vm(f"vm{i}", vm_memory_bytes, "src", vcpus=2,
                          page_size=cfg.page_size)
        world.hosts["src"].place_vm(vm, reservation_bytes, backends[i])
        if workload_kind == "kv":
            preload_dataset(vm, world.manager_of("src"), kv_dataset_bytes,
                            cold_tail_bytes=vm_memory_bytes
                            - kv_dataset_bytes)
            params = scale_params_to_page(ycsb_redis_params(), cfg.page_size)
            wl = KeyValueWorkload(
                vm, world.network, "client", world.manager_of,
                world.recorder, world.rng(f"wl.vm{i}"),
                dataset_bytes=kv_dataset_bytes,
                query_plan=KeyValueWorkload.paper_ramp_plan(i),
                params=params, cpu_of=world.cpu_of,
                sim_now=lambda: world.sim.now)
        else:
            preload_dataset(vm, world.manager_of("src"), oltp_dataset_bytes,
                            cold_tail_bytes=vm_memory_bytes
                            - oltp_dataset_bytes)
            params = scale_params_to_page(sysbench_mysql_params(),
                                          cfg.page_size)
            wl = OLTPWorkload(
                vm, world.network, "client", world.manager_of,
                world.recorder, world.rng(f"wl.vm{i}"),
                dataset_bytes=oltp_dataset_bytes, params=params,
                cpu_of=world.cpu_of, sim_now=lambda: world.sim.now)
        world.add_workload(wl)
        vms.append(vm)
        workloads.append(wl)

    return MigrationLab(world=world, technique=technique, config=cfg,
                        vms=vms, workloads=workloads, migrate_vm=vms[0],
                        dst_backend_for_migration=dst_backend)

@dataclass
class WssLab:
    """§V-D scenario: one VM with dynamic working-set tracking."""

    world: World
    vm: VirtualMachine
    workload: KeyValueWorkload
    tracker: "object"  # WssTracker (typed loosely to avoid an import cycle)

    def run(self, until: float) -> None:
        self.world.run(until=until)


def make_wss_lab(vm_memory_bytes: float = 5 * GiB,
                 dataset_bytes: float = 1.5 * GiB,
                 host_memory_bytes: float = 128 * GiB,
                 initial_reservation_bytes: Optional[float] = None,
                 query_plan: Optional[list[tuple[float, float]]] = None,
                 config: Optional[TestbedConfig] = None,
                 tracker_config: Optional["object"] = None,
                 tracer=None) -> WssLab:
    """§V-D / Figures 9-10: transparent WSS tracking on a single host.

    A 5 GB VM holds a 1.5 GB Redis dataset queried by an external YCSB
    client; the tracker (α = 0.95, β = 1.03, τ = 4 KB/s) dynamically
    adjusts the cgroup reservation to hug the working set. A custom
    ``query_plan`` exercises re-convergence after the WSS changes.
    """
    from repro.core.wss import WssTracker, WssTrackerConfig

    cfg = config or TestbedConfig()
    world = World(dt=cfg.dt, seed=cfg.seed,
                  net_bandwidth_bps=cfg.net_bandwidth_bps,
                  net_latency_s=cfg.net_latency_s, tracer=tracer)
    world.add_host("h1", host_memory_bytes, host_os_bytes=cfg.host_os_bytes)
    world.add_client_host()
    ssd = world.add_ssd(
        "ssd.h1", read_bps=cfg.ssd_read_bps, write_bps=cfg.ssd_write_bps,
        mixed_efficiency=cfg.ssd_mixed_efficiency,
        capacity_bytes=cfg.ssd_capacity_bytes)
    vm = world.add_vm("vm0", vm_memory_bytes, "h1", vcpus=2,
                      page_size=cfg.page_size)
    if initial_reservation_bytes is None:
        initial_reservation_bytes = vm_memory_bytes  # the paper's 5 GB
    world.hosts["h1"].place_vm(vm, initial_reservation_bytes, ssd)
    preload_dataset(vm, world.manager_of("h1"), dataset_bytes)
    params = scale_params_to_page(ycsb_redis_params(), cfg.page_size)
    wl = KeyValueWorkload(
        vm, world.network, "client", world.manager_of, world.recorder,
        world.rng("wl.vm0"), dataset_bytes=dataset_bytes,
        query_plan=query_plan, params=params, cpu_of=world.cpu_of,
        sim_now=lambda: world.sim.now)
    world.add_workload(wl)
    tracker = WssTracker(
        world.sim, "vm0", lambda: world.manager_of(vm.host), world.recorder,
        config=tracker_config or WssTrackerConfig(),
        max_reservation_bytes=vm_memory_bytes, tracer=world.tracer)
    return WssLab(world=world, vm=vm, workload=wl, tracker=tracker)
