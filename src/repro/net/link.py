"""Unidirectional link with a byte-rate capacity.

A host NIC is modeled as a pair of links (tx, rx). The switch fabric is
assumed non-blocking, so links only exist at host edges.
"""

from __future__ import annotations

__all__ = ["Link"]


class Link:
    """A unidirectional capacity-constrained pipe.

    Parameters
    ----------
    name:
        Diagnostic label, e.g. ``"src.tx"``.
    capacity_bps:
        Capacity in **bytes per second** (1 Gbps Ethernet ≈ 117 MB/s of
        goodput after framing overhead; scenario configs use 117e6).
    """

    __slots__ = ("name", "nominal_bps", "capacity_bps", "bytes_carried")

    def __init__(self, name: str, capacity_bps: float):
        if capacity_bps <= 0:
            raise ValueError(f"link capacity must be positive: {capacity_bps}")
        self.name = name
        #: healthy capacity; :attr:`capacity_bps` is the *current* one
        #: (fault injection degrades it, possibly to zero)
        self.nominal_bps = float(capacity_bps)
        self.capacity_bps = float(capacity_bps)
        #: lifetime bytes carried, for utilization accounting
        self.bytes_carried = 0.0

    def capacity_per_tick(self, dt: float) -> float:
        return self.capacity_bps * dt

    # -- fault injection -----------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Scale capacity to ``factor`` × nominal (0 = link down)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"degradation factor must be in [0, 1]: {factor}")
        self.capacity_bps = self.nominal_bps * factor

    def restore(self) -> None:
        """Return to nominal capacity (fault reverted)."""
        self.capacity_bps = self.nominal_bps

    @property
    def degraded(self) -> bool:
        return self.capacity_bps < self.nominal_bps

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name} {self.capacity_bps/1e6:.0f} MB/s>"
