"""Unidirectional link with a byte-rate capacity.

A host NIC is modeled as a pair of links (tx, rx). The switch fabric is
assumed non-blocking, so links only exist at host edges.
"""

from __future__ import annotations

__all__ = ["Link"]


class Link:
    """A unidirectional capacity-constrained pipe.

    Parameters
    ----------
    name:
        Diagnostic label, e.g. ``"src.tx"``.
    capacity_bps:
        Capacity in **bytes per second** (1 Gbps Ethernet ≈ 117 MB/s of
        goodput after framing overhead; scenario configs use 117e6).
    """

    __slots__ = ("name", "capacity_bps", "bytes_carried")

    def __init__(self, name: str, capacity_bps: float):
        if capacity_bps <= 0:
            raise ValueError(f"link capacity must be positive: {capacity_bps}")
        self.name = name
        self.capacity_bps = float(capacity_bps)
        #: lifetime bytes carried, for utilization accounting
        self.bytes_carried = 0.0

    def capacity_per_tick(self, dt: float) -> float:
        return self.capacity_bps * dt

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name} {self.capacity_bps/1e6:.0f} MB/s>"
