"""Flow-level network substrate.

Models a cluster Ethernet fabric the way the paper's testbed behaves: each
host has a full-duplex NIC (1 Gbps in the paper) attached to a non-blocking
top-of-rack switch, so contention happens only at host NICs. Data movement
is modeled as *flows* between hosts; every tick the :class:`Network`
arbiter divides NIC capacity among active flows with max-min fairness,
honoring strict priority classes (demand-paging traffic preempts bulk
migration traffic, as in the paper's implementation).

:class:`StreamChannel` provides a job-queue abstraction on top of a flow:
callers enqueue transfers and receive completion events, which is how the
migration managers and the VMD move bytes.
"""

from repro.net.link import Link
from repro.net.flow import Flow
from repro.net.network import DEFAULT_AGGREGATE, Network
from repro.net.channel import ChannelClosed, StreamChannel, TransferJob

__all__ = ["ChannelClosed", "DEFAULT_AGGREGATE", "Flow", "Link", "Network",
           "StreamChannel", "TransferJob"]
