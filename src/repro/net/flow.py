"""A flow: a demand for bytes between two hosts within one tick.

Owners set :attr:`Flow.demand` during the *pre-tick* phase; the
:class:`~repro.net.network.Network` arbiter fills :attr:`Flow.granted`
during arbitration; owners read it during *commit*. Demands do not persist
across ticks — an owner with a backlog re-declares every tick (the
:class:`~repro.net.channel.StreamChannel` helper does this bookkeeping).

``demand`` is a property: on fast-path networks, setting a positive
demand registers the flow in the network's active set for the coming
tick, so the arbiter touches only flows that actually want bytes instead
of scanning every idle flow in the fabric.
"""

from __future__ import annotations

from typing import Sequence

from repro.net.link import Link

__all__ = ["Flow"]


class Flow:
    """A unidirectional byte stream crossing a set of links.

    Parameters
    ----------
    name:
        Diagnostic label.
    links:
        The links this flow traverses (tx of the source host, rx of the
        destination host). An intra-host flow traverses no links and is
        granted its full demand.
    priority:
        Strict priority class; **lower numbers are served first**. The
        paper serves post-copy demand-paging requests ahead of the active
        push, which we express as priority 0 vs 1.
    """

    __slots__ = ("name", "links", "priority", "_demand", "granted",
                 "total_bytes", "active", "src", "dst",
                 "_registry", "_marked", "_seq", "_lids", "_link_ids")

    def __init__(self, name: str, links: Sequence[Link], priority: int = 1,
                 src: str = "", dst: str = ""):
        self.name = name
        self.links = tuple(links)
        self.priority = int(priority)
        #: endpoint host names (used by partition fault injection)
        self.src = src
        self.dst = dst
        #: bytes requested for the current tick (set in pre-tick)
        self._demand = 0.0
        #: bytes granted for the current tick (set by the arbiter)
        self.granted = 0.0
        #: lifetime bytes granted
        self.total_bytes = 0.0
        #: closed flows are skipped by the arbiter and may be reaped
        self.active = True
        # -- fast-path bookkeeping (set by Network.open_flow) --------------
        #: owning network's flow registry (None on reference-path networks)
        self._registry = None
        #: already queued in the registry's pending-active list this tick
        self._marked = False
        #: open order; canonical arbitration order within a tick
        self._seq = 0
        #: interned link indices as a plain tuple (scalar fill path)
        self._lids: tuple[int, ...] = ()
        #: interned link indices as an ndarray (vectorized fill path)
        self._link_ids = None

    @property
    def demand(self) -> float:
        return self._demand

    @demand.setter
    def demand(self, value: float) -> None:
        self._demand = value
        if value > 0 and self._registry is not None and not self._marked:
            self._marked = True
            self._registry._mark_active(self)

    def close(self) -> None:
        """Mark the flow finished; the network reaps it on the next tick."""
        self.active = False
        self._demand = 0.0
        if self._registry is not None:
            self._registry._mark_closed(self)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Flow {self.name} prio={self.priority} "
                f"total={self.total_bytes/1e6:.1f}MB>")
