"""The network arbiter: hosts, flows, and max-min fair allocation.

Every tick, :meth:`Network.arbitrate` performs progressive filling
(water-filling) of flow rates subject to link capacities and flow demands,
one strict priority class at a time. This is the standard fluid
approximation of TCP sharing on a switched Ethernet and is what makes the
paper's contention effects emerge: migration traffic squeezing application
traffic on the source NIC, demand-paging requests contending with the
active push, and VMD reads sharing the destination NIC with page fetches
from the source.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.net.flow import Flow
from repro.net.link import Link

__all__ = ["Network", "NIC"]


class NIC:
    """A host's network interface: a tx link and an rx link."""

    __slots__ = ("host", "tx", "rx")

    def __init__(self, host: str, bandwidth_bps: float):
        self.host = host
        self.tx = Link(f"{host}.tx", bandwidth_bps)
        self.rx = Link(f"{host}.rx", bandwidth_bps)


class Network:
    """Cluster fabric: per-host NICs plus the flow arbiter.

    Register with a :class:`~repro.sim.TickEngine` as an arbiter::

        net = Network(default_bandwidth_bps=117e6, latency_s=2e-4)
        net.add_host("source"); net.add_host("dest")
        engine.add_arbiter(net)
    """

    def __init__(self, default_bandwidth_bps: float = 117e6,
                 latency_s: float = 2e-4):
        if default_bandwidth_bps <= 0:
            raise ValueError("default bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.default_bandwidth_bps = float(default_bandwidth_bps)
        self.latency_s = float(latency_s)
        self._nics: dict[str, NIC] = {}
        self._flows: list[Flow] = []
        #: optional datacenter topology: inter-rack flows additionally
        #: cross its ToR uplink links (see repro.sched.Topology)
        self._topology = None
        #: host → partition-group id; empty = fully connected. Flows whose
        #: endpoints sit in different groups receive no bandwidth (the
        #: switch fabric is split; fault injection sets/clears this).
        self._partition: dict[str, int] = {}

    # -- topology -----------------------------------------------------------
    def add_host(self, host: str, bandwidth_bps: Optional[float] = None) -> NIC:
        """Attach a host to the fabric with its own full-duplex NIC."""
        if host in self._nics:
            raise ValueError(f"host already attached: {host}")
        nic = NIC(host, bandwidth_bps or self.default_bandwidth_bps)
        self._nics[host] = nic
        return nic

    def has_host(self, host: str) -> bool:
        return host in self._nics

    def nic(self, host: str) -> NIC:
        return self._nics[host]

    def set_topology(self, topology) -> None:
        """Route future flows through ``topology``'s rack uplinks.

        Must be called before any flow is opened — existing flows have
        their link paths baked in and would silently bypass the uplinks.
        """
        if self._flows:
            raise RuntimeError("set_topology() before opening flows")
        self._topology = topology

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip latency between two hosts (0 for intra-host)."""
        if src == dst:
            return 0.0
        return 2.0 * self.latency_s

    # -- flows ----------------------------------------------------------------
    def open_flow(self, src: str, dst: str, priority: int = 1,
                  name: str = "") -> Flow:
        """Create a flow from ``src`` to ``dst``.

        An intra-host flow (``src == dst``) crosses no links and always
        receives its full demand (memory-to-memory copy is not modeled as
        a bottleneck, matching the paper's focus on network and swap I/O).
        """
        for h in (src, dst):
            if h not in self._nics:
                raise ValueError(f"unknown host: {h}")
        if src == dst:
            links: tuple[Link, ...] = ()
        else:
            extra: tuple[Link, ...] = ()
            if self._topology is not None:
                extra = self._topology.path_links(src, dst)
            links = (self._nics[src].tx, *extra, self._nics[dst].rx)
        flow = Flow(name or f"{src}->{dst}", links, priority=priority,
                    src=src, dst=dst)
        self._flows.append(flow)
        return flow

    @property
    def flows(self) -> list[Flow]:
        return list(self._flows)

    # -- partitions (fault injection) -----------------------------------------
    def set_partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Split the fabric: hosts in different groups cannot exchange bytes.

        Hosts not named in any group form one implicit extra group (so a
        partition isolating a single host is just ``[{"that_host"}]``).
        Replaces any previous partition.
        """
        mapping: dict[str, int] = {}
        for gid, group in enumerate(groups):
            for host in group:
                if host not in self._nics:
                    raise ValueError(f"unknown host: {host}")
                if host in mapping:
                    raise ValueError(f"host in two partition groups: {host}")
                mapping[host] = gid
        self._partition = mapping

    def clear_partition(self) -> None:
        """Heal the fabric (fault reverted)."""
        self._partition = {}

    def reachable(self, src: str, dst: str) -> bool:
        """Whether bytes can currently move from ``src`` to ``dst``."""
        if src == dst or not self._partition:
            return True
        implicit = len(self._partition) + 1  # the "everyone else" group
        return (self._partition.get(src, implicit)
                == self._partition.get(dst, implicit))

    # -- arbitration ------------------------------------------------------------
    def arbitrate(self, dt: float) -> None:
        """Grant each flow its max-min fair share of link capacity.

        Priority classes are strict: class 0 is allocated against full
        link capacities; class 1 sees only the remaining headroom, etc.
        Within a class, allocation is max-min fair with demand caps
        (progressive filling).
        """
        # Reap closed flows.
        if any(not f.active for f in self._flows):
            self._flows = [f for f in self._flows if f.active]

        remaining: dict[Link, float] = {}
        active = [f for f in self._flows if f.demand > 0]
        if self._partition:
            # Partitioned flows get nothing; their demand is consumed all
            # the same so owners re-declare next tick (and heal cleanly).
            cut = [f for f in active if not self.reachable(f.src, f.dst)]
            for f in cut:
                f.demand = 0.0
            if cut:
                active = [f for f in active if self.reachable(f.src, f.dst)]
        for f in self._flows:
            f.granted = 0.0
        for f in active:
            for link in f.links:
                remaining.setdefault(link, link.capacity_per_tick(dt))

        for prio in sorted({f.priority for f in active}):
            batch = [f for f in active if f.priority == prio]
            self._fill(batch, remaining)

        for f in active:
            # Demands are per-tick declarations: the arbiter consumes them,
            # so a participant that goes quiet stops receiving bandwidth.
            f.demand = 0.0
            if f.granted > 0:
                f.total_bytes += f.granted
                for link in f.links:
                    link.bytes_carried += f.granted

    @staticmethod
    def _fill(flows: list[Flow], remaining: dict[Link, float]) -> None:
        """Progressive filling of one priority class (rates in bytes/tick)."""
        unfrozen = [f for f in flows if f.demand > 0]
        # Intra-host flows are unconstrained: grant demand immediately.
        for f in list(unfrozen):
            if not f.links:
                f.granted = f.demand
                unfrozen.remove(f)

        guard = 0
        while unfrozen:
            guard += 1
            if guard > 10000:  # pragma: no cover - algorithmic safety net
                raise RuntimeError("progressive filling failed to converge")
            # Count unfrozen flows per link.
            counts: dict[Link, int] = {}
            for f in unfrozen:
                for link in f.links:
                    counts[link] = counts.get(link, 0) + 1
            # The smallest feasible uniform increment.
            delta = min(
                min(remaining[l] / n for l, n in counts.items()),
                min(f.demand - f.granted for f in unfrozen),
            )
            delta = max(delta, 0.0)
            for f in unfrozen:
                f.granted += delta
                for link in f.links:
                    remaining[link] -= delta
            # Freeze demand-satisfied flows and flows on exhausted links.
            eps = 1e-9
            still = []
            for f in unfrozen:
                if f.granted >= f.demand - eps:
                    f.granted = min(f.granted, f.demand)
                    continue
                if any(remaining[l] <= eps for l in f.links):
                    continue
                still.append(f)
            if len(still) == len(unfrozen) and delta <= eps:
                break  # nothing can advance (all links exhausted)
            unfrozen = still
