"""The network arbiter: hosts, flows, and max-min fair allocation.

Every tick, :meth:`Network.arbitrate` performs progressive filling
(water-filling) of flow rates subject to link capacities and flow demands,
one strict priority class at a time. This is the standard fluid
approximation of TCP sharing on a switched Ethernet and is what makes the
paper's contention effects emerge: migration traffic squeezing application
traffic on the source NIC, demand-paging requests contending with the
active push, and VMD reads sharing the destination NIC with page fetches
from the source.

Two arbitration implementations share that contract:

* the **reference path** (``fast_path=False``) is the original per-tick
  algorithm: rebuild a link→headroom dict, scan every flow, run
  dict-based progressive filling — simple, and kept as the oracle;
* the **fast path** (the default) keeps a persistent flow registry —
  links are interned to integer indices at ``open_flow`` time, setting a
  positive demand enqueues the flow in the tick's active set, and the
  progressive filling runs over a reusable NumPy headroom array (a
  scalar loop for small priority classes, ``bincount``/``reduceat``
  vectorization for large ones). Idle flows cost nothing. The fast path
  performs the *same* floating-point operations in the same order as the
  reference, so grants are bit-identical — enforced by the randomized
  differential tests in ``tests/test_net_fastpath.py``.

On top of the fast path, **flow aggregation** (the default; see
:data:`DEFAULT_AGGREGATE`) coalesces flows of one priority class that
traverse the *same* link path — the dominant shape at datacenter scale,
where many per-VM/per-queue flows between one host pair share one
tier-crossing path — into a single aggregate for the fill loop. The
aggregate participates in filling with weight = its unfrozen member
count, and grants are redistributed to members max-min fairly by demand.
Aggregation is a pure reindexing of the same arithmetic (see
``_fill_fast_aggregate``), so grants remain bit-identical to the
reference oracle; ``tests/test_net_aggregate.py`` enforces this with
three-way differential runs.
"""

from __future__ import annotations

import operator
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.net.flow import Flow
from repro.net.link import Link
from repro.telemetry.instruments import NULL_METRICS

__all__ = ["Network", "NIC", "DEFAULT_AGGREGATE"]

_seq_of = operator.attrgetter("_seq")

#: default for ``Network(aggregate=...)``. Flip to ``False`` to run a
#: whole scenario with the unaggregated vector fill (the ablation arm
#: the aggregation differential tests and ``fabric_bench`` compare
#: against); grants are bit-identical either way.
DEFAULT_AGGREGATE = True

#: priority classes at or below this size use the scalar filling loop —
#: NumPy call overhead beats the win for a handful of flows (the common
#: case: one demand-paging flow in class 0, a few migrations in class 1)
_SCALAR_BATCH = 12


class NIC:
    """A host's network interface: a tx link and an rx link."""

    __slots__ = ("host", "tx", "rx")

    def __init__(self, host: str, bandwidth_bps: float):
        self.host = host
        self.tx = Link(f"{host}.tx", bandwidth_bps)
        self.rx = Link(f"{host}.rx", bandwidth_bps)


class Network:
    """Cluster fabric: per-host NICs plus the flow arbiter.

    Register with a :class:`~repro.sim.TickEngine` as an arbiter::

        net = Network(default_bandwidth_bps=117e6, latency_s=2e-4)
        net.add_host("source"); net.add_host("dest")
        engine.add_arbiter(net)

    ``fast_path=False`` selects the reference arbiter (the oracle the
    differential tests compare against); grants are bit-identical either
    way.
    """

    def __init__(self, default_bandwidth_bps: float = 117e6,
                 latency_s: float = 2e-4, fast_path: bool = True,
                 aggregate: Optional[bool] = None):
        if default_bandwidth_bps <= 0:
            raise ValueError("default bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.default_bandwidth_bps = float(default_bandwidth_bps)
        self.latency_s = float(latency_s)
        self.fast_path = bool(fast_path)
        #: coalesce same-path flows per priority class in the vector
        #: fill (None → module default). Only meaningful on the fast path.
        self.aggregate = (DEFAULT_AGGREGATE if aggregate is None
                          else bool(aggregate))
        self._nics: dict[str, NIC] = {}
        self._flows: list[Flow] = []
        #: optional datacenter topology: inter-rack flows additionally
        #: cross its ToR uplink links (see repro.sched.Topology)
        self._topology = None
        #: host → partition-group id; empty = fully connected. Flows whose
        #: endpoints sit in different groups receive no bandwidth (the
        #: switch fabric is split; fault injection sets/clears this).
        self._partition: dict[str, int] = {}
        # -- fast-path state -------------------------------------------------
        #: interned links: Link → index, and index → Link
        self._link_index: dict[Link, int] = {}
        self._links: list[Link] = []
        #: reusable per-link headroom array (bytes this tick); refreshed
        #: each arbitrate for the links active flows touch
        self._remaining = np.empty(0, dtype=np.float64)
        #: flows that declared a positive demand since the last arbitrate
        self._pending: list[Flow] = []
        #: flows granted bytes last tick (their ``granted`` is zeroed at
        #: the start of the next arbitrate instead of scanning all flows)
        self._granted_last: list[Flow] = []
        self._closed_any = False
        self._flow_seq = 0
        #: live-metrics sink; the no-op default keeps the per-tick
        #: accounting behind one attribute check (a World with metrics
        #: enabled re-assigns this)
        self.metrics = NULL_METRICS

    # -- topology -----------------------------------------------------------
    def add_host(self, host: str, bandwidth_bps: Optional[float] = None) -> NIC:
        """Attach a host to the fabric with its own full-duplex NIC."""
        if host in self._nics:
            raise ValueError(f"host already attached: {host}")
        nic = NIC(host, bandwidth_bps or self.default_bandwidth_bps)
        self._nics[host] = nic
        return nic

    def has_host(self, host: str) -> bool:
        return host in self._nics

    def nic(self, host: str) -> NIC:
        return self._nics[host]

    def set_topology(self, topology) -> None:
        """Route future flows through ``topology``'s rack uplinks.

        Must be called before any flow is opened — existing flows have
        their link paths baked in and would silently bypass the uplinks.
        """
        if self._flows:
            raise RuntimeError("set_topology() before opening flows")
        self._topology = topology

    def hops(self, src: str, dst: str) -> int:
        """Store-and-forward hops on the src→dst path (0 intra-host).

        Without a topology — or when either endpoint is outside it, or
        both share a rack — a transfer crosses one switch hop. An
        inter-rack transfer additionally crosses every topology link on
        the tier path: the ToR uplinks, any pod/AZ uplinks between the
        endpoints, and the core (if modeled). Counted via the topology's
        ``path_hops`` (its ``crossings`` counts ToR escapes only, not
        path length).
        """
        if src == dst:
            return 0
        extra = 0
        if self._topology is not None:
            extra = self._topology.path_hops(src, dst)
        return 1 + extra

    def one_way_latency(self, src: str, dst: str) -> float:
        """Propagation delay of one src→dst delivery, charged per hop."""
        return self.latency_s * self.hops(src, dst)

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip latency between two hosts (0 for intra-host)."""
        return 2.0 * self.one_way_latency(src, dst)

    # -- flows ----------------------------------------------------------------
    def open_flow(self, src: str, dst: str, priority: int = 1,
                  name: str = "") -> Flow:
        """Create a flow from ``src`` to ``dst``.

        An intra-host flow (``src == dst``) crosses no links and always
        receives its full demand (memory-to-memory copy is not modeled as
        a bottleneck, matching the paper's focus on network and swap I/O).
        """
        for h in (src, dst):
            if h not in self._nics:
                raise ValueError(f"unknown host: {h}")
        if src == dst:
            links: tuple[Link, ...] = ()
        else:
            extra: tuple[Link, ...] = ()
            if self._topology is not None:
                extra = self._topology.path_links(src, dst)
            links = (self._nics[src].tx, *extra, self._nics[dst].rx)
        flow = Flow(name or f"{src}->{dst}", links, priority=priority,
                    src=src, dst=dst)
        self._flow_seq += 1
        flow._seq = self._flow_seq
        if self.fast_path:
            lids = tuple(self._intern(link) for link in links)
            flow._lids = lids
            flow._link_ids = np.asarray(lids, dtype=np.intp)
            flow._registry = self
        self._flows.append(flow)
        return flow

    @property
    def flows(self) -> list[Flow]:
        return list(self._flows)

    # -- flow registry (fast path) --------------------------------------------
    def _intern(self, link: Link) -> int:
        idx = self._link_index.get(link)
        if idx is None:
            idx = len(self._links)
            self._link_index[link] = idx
            self._links.append(link)
        return idx

    def _mark_active(self, flow: Flow) -> None:
        self._pending.append(flow)

    def _mark_closed(self, flow: Flow) -> None:
        self._closed_any = True

    # -- partitions (fault injection) -----------------------------------------
    def set_partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Split the fabric: hosts in different groups cannot exchange bytes.

        Hosts not named in any group form one implicit extra group (so a
        partition isolating a single host is just ``[{"that_host"}]``).
        Replaces any previous partition.
        """
        mapping: dict[str, int] = {}
        for gid, group in enumerate(groups):
            for host in group:
                if host not in self._nics:
                    raise ValueError(f"unknown host: {host}")
                if host in mapping:
                    raise ValueError(f"host in two partition groups: {host}")
                mapping[host] = gid
        self._partition = mapping

    def clear_partition(self) -> None:
        """Heal the fabric (fault reverted)."""
        self._partition = {}

    def reachable(self, src: str, dst: str) -> bool:
        """Whether bytes can currently move from ``src`` to ``dst``."""
        if src == dst or not self._partition:
            return True
        implicit = len(self._partition) + 1  # the "everyone else" group
        return (self._partition.get(src, implicit)
                == self._partition.get(dst, implicit))

    # -- arbitration ------------------------------------------------------------
    def arbitrate(self, dt: float) -> None:
        """Grant each flow its max-min fair share of link capacity.

        Priority classes are strict: class 0 is allocated against full
        link capacities; class 1 sees only the remaining headroom, etc.
        Within a class, allocation is max-min fair with demand caps
        (progressive filling).
        """
        if self.fast_path:
            self._arbitrate_fast(dt)
        else:
            self._arbitrate_reference(dt)
        if self.metrics.enabled:
            granted = 0.0
            active = 0
            for f in self._flows:
                if f.granted > 0:
                    granted += f.granted
                    active += 1
            m = self.metrics
            m.counter("net.granted_bytes").inc(granted)
            m.gauge("net.active_flows").set(active)
            m.rate("net.throughput_bytes").mark(granted)

    # -- reference implementation (the oracle) ---------------------------------
    def _arbitrate_reference(self, dt: float) -> None:
        # Reap closed flows.
        if any(not f.active for f in self._flows):
            self._flows = [f for f in self._flows if f.active]

        remaining: dict[Link, float] = {}
        active = [f for f in self._flows if f.demand > 0]
        if self._partition:
            # Partitioned flows get nothing; their demand is consumed all
            # the same so owners re-declare next tick (and heal cleanly).
            cut = [f for f in active if not self.reachable(f.src, f.dst)]
            for f in cut:
                f.demand = 0.0
            if cut:
                active = [f for f in active if self.reachable(f.src, f.dst)]
        for f in self._flows:
            f.granted = 0.0
        for f in active:
            for link in f.links:
                remaining.setdefault(link, link.capacity_per_tick(dt))

        for prio in sorted({f.priority for f in active}):
            batch = [f for f in active if f.priority == prio]
            self._fill(batch, remaining)

        for f in active:
            # Demands are per-tick declarations: the arbiter consumes them,
            # so a participant that goes quiet stops receiving bandwidth.
            f.demand = 0.0
            if f.granted > 0:
                f.total_bytes += f.granted
                for link in f.links:
                    link.bytes_carried += f.granted

    @staticmethod
    def _fill(flows: list[Flow], remaining: dict[Link, float]) -> None:
        """Progressive filling of one priority class (rates in bytes/tick)."""
        unfrozen = [f for f in flows if f.demand > 0]
        # Intra-host flows are unconstrained: grant demand immediately.
        for f in list(unfrozen):
            if not f.links:
                f.granted = f.demand
                unfrozen.remove(f)

        guard = 0
        while unfrozen:
            guard += 1
            if guard > 10000:  # pragma: no cover - algorithmic safety net
                raise RuntimeError("progressive filling failed to converge")
            # Count unfrozen flows per link.
            counts: dict[Link, int] = {}
            for f in unfrozen:
                for link in f.links:
                    counts[link] = counts.get(link, 0) + 1
            # The smallest feasible uniform increment.
            delta = min(
                min(remaining[l] / n for l, n in counts.items()),
                min(f.demand - f.granted for f in unfrozen),
            )
            delta = max(delta, 0.0)
            for f in unfrozen:
                f.granted += delta
                for link in f.links:
                    remaining[link] -= delta
            # Freeze demand-satisfied flows and flows on exhausted links.
            eps = 1e-9
            still = []
            for f in unfrozen:
                if f.granted >= f.demand - eps:
                    f.granted = min(f.granted, f.demand)
                    continue
                if any(remaining[l] <= eps for l in f.links):
                    continue
                still.append(f)
            if len(still) == len(unfrozen) and delta <= eps:
                break  # nothing can advance (all links exhausted)
            unfrozen = still

    # -- fast implementation ----------------------------------------------------
    def _arbitrate_fast(self, dt: float) -> None:
        """Same contract and bit-identical grants as the reference, but
        O(active flows) per tick instead of O(all flows)."""
        # Zero only last tick's grants instead of scanning every flow.
        for f in self._granted_last:
            f.granted = 0.0
        granted_now: list[Flow] = []
        self._granted_last = granted_now

        if self._closed_any:
            self._flows = [f for f in self._flows if f.active]
            self._closed_any = False

        pending, self._pending = self._pending, []
        active = []
        for f in pending:
            f._marked = False
            if f.active and f._demand > 0:
                active.append(f)
        if self._partition:
            reachable = self.reachable
            cut = [f for f in active if not reachable(f.src, f.dst)]
            for f in cut:
                f._demand = 0.0
            if cut:
                active = [f for f in active if reachable(f.src, f.dst)]
        if not active:
            return
        # Canonical order = open order, matching the reference's scan of
        # self._flows (demand-declaration order is caller-dependent).
        active.sort(key=_seq_of)

        # Refresh per-link headroom for touched links only. Same floats
        # as the reference's ``capacity_per_tick(dt)``: one multiply.
        nlinks = len(self._links)
        if self._remaining.shape[0] < nlinks:
            self._remaining = np.empty(nlinks, dtype=np.float64)
        rem, links = self._remaining, self._links
        srt = np.sort(np.concatenate([f._link_ids for f in active]))
        if srt.shape[0]:
            keep = np.empty(srt.shape[0], dtype=bool)
            keep[0] = True
            np.not_equal(srt[1:], srt[:-1], out=keep[1:])
            uids = srt[keep]
            caps = [links[i].capacity_bps for i in uids.tolist()]
            rem[uids] = np.asarray(caps, dtype=np.float64) * dt

        batches: dict[int, list[Flow]] = {}
        for f in active:
            batches.setdefault(f.priority, []).append(f)
        for prio in sorted(batches):
            batch = batches[prio]
            if len(batch) <= _SCALAR_BATCH:
                self._fill_fast_scalar(batch, rem)
            elif self.aggregate:
                self._fill_fast_aggregate(batch, rem)
            else:
                self._fill_fast_vector(batch, rem)

        for f in active:
            f._demand = 0.0
            g = f.granted
            if g > 0:
                f.total_bytes += g
                for link in f.links:
                    link.bytes_carried += g
                granted_now.append(f)

    @staticmethod
    def _fill_fast_scalar(flows: list[Flow], rem: np.ndarray) -> None:
        """Reference filling loop over the interned headroom array —
        identical arithmetic, no per-tick dict rebuild."""
        unfrozen = [f for f in flows if f._demand > 0]
        for f in list(unfrozen):
            if not f._lids:
                f.granted = f._demand
                unfrozen.remove(f)

        guard = 0
        while unfrozen:
            guard += 1
            if guard > 10000:  # pragma: no cover - algorithmic safety net
                raise RuntimeError("progressive filling failed to converge")
            counts: dict[int, int] = {}
            for f in unfrozen:
                for lid in f._lids:
                    counts[lid] = counts.get(lid, 0) + 1
            delta = min(
                min(rem[lid] / n for lid, n in counts.items()),
                min(f._demand - f.granted for f in unfrozen),
            )
            delta = max(delta, 0.0)
            for f in unfrozen:
                f.granted += delta
                for lid in f._lids:
                    rem[lid] -= delta
            eps = 1e-9
            still = []
            for f in unfrozen:
                if f.granted >= f._demand - eps:
                    f.granted = min(f.granted, f._demand)
                    continue
                if any(rem[lid] <= eps for lid in f._lids):
                    continue
                still.append(f)
            if len(still) == len(unfrozen) and delta <= eps:
                break
            unfrozen = still

    @staticmethod
    def _fill_fast_vector(flows: list[Flow], rem: np.ndarray) -> None:
        """Vectorized progressive filling for large priority classes.

        Performs the same increment sequence as the reference, with two
        exactness arguments doing the heavy lifting:

        * headroom is decremented once per (flow, link) incidence via
          ``np.subtract.at`` — unbuffered, so repeated indices accumulate
          exactly like the reference's per-flow loop (and within one
          iteration all incidences subtract the *same* delta, so the
          incidence order is irrelevant);
        * every unfrozen flow in a class carries the same accumulated
          grant ``g`` (all start at zero and receive the same deltas), and
          float subtraction is monotone, so the reference's
          ``min(f.demand - f.granted)`` equals ``min(demand) - g``
          bit-for-bit.

        Together these let the loop keep a single scalar ``g`` and touch
        per-flow state only when a flow freezes. The class works on a
        *dense* copy of its links' headroom (written back on exit), so the
        steady-state iteration is four whole-array NumPy calls with no
        gathers: divide, min, ``subtract.at``, min. Links whose unfrozen
        count reaches zero leave the working set via an ``inf`` sentinel
        (their true headroom is restored at write-back), which keeps them
        out of both the delta min and the exhausted-link check exactly
        like the reference's shrinking count dict does.
        """
        unfrozen = [f for f in flows if f._demand > 0]
        rest = []
        for f in unfrozen:
            if not f._lids:
                f.granted = f._demand
            else:
                rest.append(f)
        if not rest:
            return

        eps = 1e-9
        inf = np.inf
        n = len(rest)
        ids_raw = np.concatenate([f._link_ids for f in rest])
        bounds = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(np.fromiter((len(f._lids) for f in rest),
                              dtype=np.intp, count=n), out=bounds[1:])
        demand = [f._demand for f in rest]
        # the reference's ``demand - eps`` floats (scalar math: identical)
        demand_me = [d - eps for d in demand]
        #: flow indices in ascending-demand order: demand-satisfied
        #: freezes peel a prefix of this walk (fl-subtraction is monotone,
        #: so min demand also yields the min ``demand - eps`` threshold)
        order = sorted(range(n), key=demand.__getitem__)
        ptr = 0

        # Dense link universe for this class: remD is a working copy of
        # the touched links' headroom, written back before returning.
        # (np.unique by hand — sort + neighbour mask beats the hash path.)
        srt = np.sort(ids_raw)
        keep = np.empty(srt.shape[0], dtype=bool)
        keep[0] = True
        np.not_equal(srt[1:], srt[:-1], out=keep[1:])
        used = srt[keep]
        ids_all = np.searchsorted(used, ids_raw)
        entry_flow = np.repeat(np.arange(n, dtype=np.intp),
                               np.diff(bounds))
        remD = rem[used]  # fancy indexing copies
        nu = remD.shape[0]
        buf = np.empty(nu, dtype=np.float64)
        ids_list = ids_all.tolist()  # python ints for the freeze loop
        #: headroom of links that left the working set (count hit zero),
        #: by dense id — restored at write-back over the inf sentinel
        stale: dict[int, float] = {}

        alive_flags = [True] * n
        entry_alive = np.ones(ids_all.shape[0], dtype=bool)
        ids_alive = ids_all
        ef_alive = entry_flow
        ef_fresh = True  # ef_alive matches entry_alive (recomputed lazily)
        #: unfrozen-flow count per link (floats: division needs no cast;
        #: 1.0 sentinel on stale links keeps the divide inf, not nan)
        counts = np.bincount(ids_all, minlength=nu).astype(np.float64)
        d_min = demand[order[0]]
        d_min_me = d_min - eps
        n_alive = n

        g = 0.0
        guard = 0
        subtract_at = np.subtract.at
        divide = np.divide
        amin = np.minimum.reduce
        while True:
            guard += 1
            if guard > 10000:  # pragma: no cover - algorithmic safety net
                raise RuntimeError("progressive filling failed to converge")
            divide(remD, counts, out=buf)
            delta = float(amin(buf))
            gap = d_min - g
            if gap < delta:
                delta = gap
            if delta < 0.0:
                delta = 0.0
            subtract_at(remD, ids_alive, delta)
            g += delta
            # Scalar pre-checks: a flow froze this iteration iff the
            # smallest alive demand is now met or some working link is
            # exhausted — only then touch per-flow state.
            sat_any = g >= d_min_me
            dead_any = float(amin(remD)) <= eps
            if not (sat_any or dead_any):
                if delta <= eps:
                    break  # nothing can advance (all links exhausted)
                continue
            # Freeze demand-satisfied flows and flows on exhausted links
            # (demand check first, mirroring the reference's ``continue``).
            frozen: set[int] = set()
            if sat_any:
                k = ptr
                while k < n:
                    i = order[k]
                    if alive_flags[i]:
                        if demand_me[i] > g:
                            break
                        frozen.add(i)
                    k += 1
            if dead_any:
                # Flows incident to an exhausted link, via the alive
                # entry list (no per-link membership bookkeeping).
                if not ef_fresh:
                    ef_alive = entry_flow[entry_alive]
                    ef_fresh = True
                frozen.update(ef_alive[(remD <= eps)[ids_alive]].tolist())
            for i in frozen:
                f = rest[i]
                f.granted = min(g, f._demand) if g >= demand_me[i] else g
                alive_flags[i] = False
                b0 = bounds[i]
                b1 = bounds[i + 1]
                entry_alive[b0:b1] = False
                for lid in ids_list[b0:b1]:
                    c = counts[lid] - 1.0
                    if c == 0.0:
                        stale[lid] = remD[lid]
                        remD[lid] = inf
                        counts[lid] = 1.0
                    else:
                        counts[lid] = c
            n_alive -= len(frozen)
            if not n_alive:
                break
            ids_alive = ids_all[entry_alive]
            ef_fresh = False
            while not alive_flags[order[ptr]]:
                ptr += 1
            d_min = demand[order[ptr]]
            d_min_me = d_min - eps
        # Flows still unfrozen at exhaustion keep their accumulated grant.
        if n_alive:
            for i, f in enumerate(rest):
                if alive_flags[i]:
                    f.granted = g
        # Write the class's headroom consumption back for later classes.
        for lid, v in stale.items():
            remD[lid] = v
        rem[used] = remD

    @staticmethod
    def _fill_fast_aggregate(flows: list[Flow], rem: np.ndarray) -> None:
        """Vectorized progressive filling over *aggregates* of same-path
        flows (one priority class).

        Flows whose interned link paths are identical — the common shape
        once a topology funnels per-VM/per-queue flows between one host
        pair through one tier-crossing path — are coalesced into a
        single fill entity. The aggregate participates in the fill with
        weight = its count of unfrozen members, and the arbiter's grant
        is redistributed to members max-min fairly by demand.

        Exactness relative to the reference oracle is by construction,
        not by approximation — aggregation only *reindexes* the same
        floating-point operations:

        * every unfrozen flow of the class receives the same delta each
          iteration, so a single scalar accumulated grant ``g`` serves
          all members of all aggregates (the same argument the flat
          vector fill uses); a member freezes by demand exactly when
          ``g`` crosses its own demand, so member demands — not
          aggregate sums — drive the delta min via the global
          ascending-demand peel;
        * the per-link unfrozen-flow *count* is the weight sum of the
          incident aggregates (all members of an aggregate share its
          links); sums and decrements of integer-valued floats are
          exact, so ``remD / counts`` matches the reference's division
          by integer counts bit-for-bit;
        * the reference subtracts ``delta`` from a link once per
          unfrozen incident *flow*; repeated float subtraction has no
          closed form, so headroom is decremented with ``np.subtract.at``
          over each aggregate's links repeated weight-many times —
          unbuffered repeated-index subtraction reproduces the
          reference's per-flow loop exactly (within an iteration all
          incidences subtract the *same* delta, so order is irrelevant);
        * a link exhaustion freezes every unfrozen flow incident to the
          link; members of one aggregate share identical links, so whole
          aggregates freeze together — the dense incidence of the
          exhaustion check is per-aggregate, not per-flow.

        The savings: the dense link universe, counts, division, min
        scans, freeze bookkeeping, and the exhaustion check all shrink
        from per-flow to per-aggregate incidence — O(aggregates × path
        links) ≈ O(host-pairs × tiers) instead of O(flows × links). Only
        the headroom subtraction keeps per-flow multiplicity (as it must
        for bit-identity), and its index array is rebuilt only when a
        freeze changes the alive set.
        """
        unfrozen = [f for f in flows if f._demand > 0]
        rest = []
        for f in unfrozen:
            if not f._lids:
                f.granted = f._demand
            else:
                rest.append(f)
        if not rest:
            return

        # Group members by identical path (first-occurrence order).
        groups: dict[tuple[int, ...], list[int]] = {}
        for i, f in enumerate(rest):
            groups.setdefault(f._lids, []).append(i)
        agg_paths = list(groups)
        members = list(groups.values())
        na = len(agg_paths)

        eps = 1e-9
        inf = np.inf
        n = len(rest)
        demand = [f._demand for f in rest]
        # the reference's ``demand - eps`` floats (scalar math: identical)
        demand_me = [d - eps for d in demand]
        order = sorted(range(n), key=demand.__getitem__)
        ptr = 0
        agg_of = [0] * n
        for a, mem in enumerate(members):
            for i in mem:
                agg_of[i] = a

        # Dense link universe over *aggregate* paths (not flow incidence).
        agg_lens = np.fromiter((len(p) for p in agg_paths),
                               dtype=np.intp, count=na)
        ids_raw = np.fromiter((lid for p in agg_paths for lid in p),
                              dtype=np.intp, count=int(agg_lens.sum()))
        bounds = np.zeros(na + 1, dtype=np.intp)
        np.cumsum(agg_lens, out=bounds[1:])
        srt = np.sort(ids_raw)
        keep = np.empty(srt.shape[0], dtype=bool)
        keep[0] = True
        np.not_equal(srt[1:], srt[:-1], out=keep[1:])
        used = srt[keep]
        ids_agg = np.searchsorted(used, ids_raw)
        entry_agg = np.repeat(np.arange(na, dtype=np.intp), agg_lens)
        remD = rem[used]  # fancy indexing copies
        nu = remD.shape[0]
        buf = np.empty(nu, dtype=np.float64)
        ids_list = ids_agg.tolist()  # python ints for the freeze loop
        stale: dict[int, float] = {}

        alive_flags = [True] * n
        #: unfrozen member count per aggregate (the fill weight)
        w_np = np.fromiter((len(m) for m in members), dtype=np.intp,
                           count=na)
        entry_alive = np.ones(ids_agg.shape[0], dtype=bool)
        #: per-link unfrozen-flow count = Σ weights of incident
        #: aggregates (integer-valued floats: sums/decrements are exact,
        #: and the 1.0 sentinel on stale links keeps the divide inf)
        counts = np.bincount(ids_agg, weights=w_np[entry_agg],
                             minlength=nu)
        ids_ent = ids_agg            # dense lids of alive entries
        ea_agg = entry_agg           # aggregate index of alive entries
        sub_ids = np.repeat(ids_ent, w_np[ea_agg])
        d_min = demand[order[0]]
        d_min_me = d_min - eps
        n_alive = n

        g = 0.0
        guard = 0
        subtract_at = np.subtract.at
        divide = np.divide
        amin = np.minimum.reduce
        while True:
            guard += 1
            if guard > 10000:  # pragma: no cover - algorithmic safety net
                raise RuntimeError("progressive filling failed to converge")
            divide(remD, counts, out=buf)
            delta = float(amin(buf))
            gap = d_min - g
            if gap < delta:
                delta = gap
            if delta < 0.0:
                delta = 0.0
            subtract_at(remD, sub_ids, delta)
            g += delta
            sat_any = g >= d_min_me
            dead_any = float(amin(remD)) <= eps
            if not (sat_any or dead_any):
                if delta <= eps:
                    break  # nothing can advance (all links exhausted)
                continue
            # Freeze demand-satisfied members and every member of
            # aggregates on exhausted links (demand check first,
            # mirroring the reference's ``continue``).
            frozen: set[int] = set()
            if sat_any:
                k = ptr
                while k < n:
                    i = order[k]
                    if alive_flags[i]:
                        if demand_me[i] > g:
                            break
                        frozen.add(i)
                    k += 1
            if dead_any:
                for a in ea_agg[(remD <= eps)[ids_ent]].tolist():
                    frozen.update(i for i in members[a] if alive_flags[i])
            by_agg: dict[int, int] = {}
            for i in frozen:
                f = rest[i]
                f.granted = min(g, f._demand) if g >= demand_me[i] else g
                alive_flags[i] = False
                a = agg_of[i]
                by_agg[a] = by_agg.get(a, 0) + 1
            for a, k in by_agg.items():
                w_np[a] -= k
                kf = float(k)
                if not w_np[a]:
                    entry_alive[bounds[a]:bounds[a + 1]] = False
                for lid in ids_list[bounds[a]:bounds[a + 1]]:
                    c = counts[lid] - kf
                    if c == 0.0:
                        stale[lid] = remD[lid]
                        remD[lid] = inf
                        counts[lid] = 1.0
                    else:
                        counts[lid] = c
            n_alive -= len(frozen)
            if not n_alive:
                break
            ids_ent = ids_agg[entry_alive]
            ea_agg = entry_agg[entry_alive]
            sub_ids = np.repeat(ids_ent, w_np[ea_agg])
            while not alive_flags[order[ptr]]:
                ptr += 1
            d_min = demand[order[ptr]]
            d_min_me = d_min - eps
        # Members still unfrozen at exhaustion keep their accumulated grant.
        if n_alive:
            for i, f in enumerate(rest):
                if alive_flags[i]:
                    f.granted = g
        # Write the class's headroom consumption back for later classes.
        for lid, v in stale.items():
            remD[lid] = v
        rem[used] = remD
