"""StreamChannel: ordered transfer jobs over a flow.

The migration managers and the VMD move data as discrete *jobs* (a batch of
pages, a fault response, a CPU-state blob). A :class:`StreamChannel` owns a
:class:`~repro.net.flow.Flow`, declares the queue backlog as the flow's
demand each tick, drains granted bytes through the job queue FIFO, and
fires each job's completion event once its last byte has been delivered
(plus one propagation latency).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.net.flow import Flow
from repro.net.network import Network
from repro.obs.tracer import NULL_TRACER
from repro.sim.kernel import Event, Simulator

__all__ = ["ChannelClosed", "StreamChannel", "TransferJob"]


class ChannelClosed(RuntimeError):
    """Raised into waiters of in-flight jobs when their channel closes.

    An aborted migration tears its stream down mid-transfer; any process
    yielding on a job's completion event receives this instead of
    hanging forever on an event that can no longer fire.
    """


class TransferJob:
    """One queued transfer: ``size`` bytes plus optional completion hooks."""

    __slots__ = ("size", "remaining", "done", "info", "on_complete",
                 "span_id")

    def __init__(self, size: float, done: Optional[Event], info: Any,
                 on_complete: Optional[Callable[["TransferJob"], None]]):
        self.size = float(size)
        self.remaining = float(size)
        self.done = done
        self.info = info
        self.on_complete = on_complete
        self.span_id = 0


class StreamChannel:
    """FIFO byte stream between two hosts with per-job completion events.

    Register as a tick participant. ``send()`` may be called at any time
    (typically from commit phase or from control processes); bytes start
    moving on the next tick.

    Parameters
    ----------
    sim, network:
        Kernel and fabric.
    src, dst:
        Host names.
    priority:
        Flow priority class (0 = served first).
    demand_cap_bps:
        Optional rate cap (bytes/s) the owner imposes on itself, e.g. a
        throttled active-push rate.
    """

    def __init__(self, sim: Simulator, network: Network, src: str, dst: str,
                 priority: int = 1, name: str = "",
                 demand_cap_bps: Optional[float] = None,
                 tracer=None):
        self.sim = sim
        self.network = network
        self.src = src
        self.dst = dst
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.name = name or f"chan:{src}->{dst}"
        self.flow = network.open_flow(src, dst, priority=priority,
                                      name=self.name)
        self.demand_cap_bps = demand_cap_bps
        self._jobs: deque[TransferJob] = deque()
        #: jobs fully drained but still inside the propagation-latency
        #: window (their completion has been scheduled, not yet landed)
        self._landing: list[TransferJob] = []
        self._backlog = 0.0
        self.bytes_delivered = 0.0
        self.closed = False

    # -- sending ------------------------------------------------------------
    def send(self, size: float, info: Any = None,
             on_complete: Optional[Callable[[TransferJob], None]] = None,
             want_event: bool = False) -> Optional[Event]:
        """Enqueue ``size`` bytes; returns a completion event if requested.

        Zero-byte jobs carry no payload but keep FIFO order: they complete
        only after every byte queued before them has been delivered —
        usable as barriers/sentinels (e.g. "all pages have arrived").
        """
        if self.closed:
            raise RuntimeError(f"channel {self.name} is closed")
        if size < 0:
            raise ValueError(f"negative transfer size: {size}")
        done = self.sim.event(f"{self.name}:job") if want_event else None
        job = TransferJob(size, done, info, on_complete)
        if self.tracer.enabled and size > 0:
            job.span_id = self.tracer.async_begin(
                f"net:{self.name}", "xfer", cat="net",
                args={"bytes": float(size)})
        self._jobs.append(job)
        self._backlog += size
        return done

    @property
    def backlog(self) -> float:
        """Bytes enqueued but not yet delivered."""
        return self._backlog

    @property
    def in_flight(self) -> int:
        return len(self._jobs)

    def close(self) -> None:
        """Drop pending jobs and release the flow.

        Every undelivered job whose sender asked for a completion event
        — still queued, or drained but inside the propagation-latency
        window — has that event *failed* with :class:`ChannelClosed`, so
        processes yielding on it are woken with the exception instead of
        waiting forever on a delivery that will never land.
        """
        if self.closed:
            return
        self.closed = True
        orphans = [j for j in self._jobs if j.done is not None]
        orphans += [j for j in self._landing if j.done is not None]
        if self.tracer.enabled:
            for job in list(self._jobs) + self._landing:
                if job.span_id:
                    self.tracer.async_end(job.span_id,
                                          args={"dropped": True})
        self._jobs.clear()
        self._landing.clear()
        self._backlog = 0.0
        self.flow.close()
        for job in orphans:
            if not job.done.triggered:
                job.done.fail(ChannelClosed(
                    f"channel {self.name} closed with job in flight"))

    # -- tick protocol ---------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        if self.closed:
            return
        demand = self._backlog
        if self.demand_cap_bps is not None:
            demand = min(demand, self.demand_cap_bps * dt)
        self.flow.demand = demand

    def commit_tick(self, dt: float) -> None:
        if self.closed:
            return
        budget = self.flow.granted
        self.flow.demand = 0.0
        self.bytes_delivered += min(budget, self._backlog)
        while self._jobs and (budget > 0 or self._jobs[0].remaining <= 1e-9):
            job = self._jobs[0]
            take = min(budget, job.remaining)
            job.remaining -= take
            budget -= take
            if job.remaining <= 1e-9:
                self._jobs.popleft()
                self._complete_later(job)
        # Recompute the backlog exactly: an incrementally-tracked float
        # drifts over hundreds of thousands of partial drains, and a
        # backlog that reads zero while jobs still hold bytes deadlocks
        # the demand loop.
        self._backlog = sum(j.remaining for j in self._jobs)

    # -- internal -----------------------------------------------------------
    def _complete_later(self, job: TransferJob) -> None:
        delay = self.network.one_way_latency(self.src, self.dst)
        self._landing.append(job)

        def finish() -> None:
            if self.closed:
                # the channel was torn down (abort/failure) inside the
                # propagation-latency window: close() already failed the
                # job's event — the delivery never lands
                return
            self._landing.remove(job)
            if job.span_id:
                self.tracer.async_end(job.span_id)
            if job.on_complete is not None:
                job.on_complete(job)
            if job.done is not None and not job.done.triggered:
                job.done.succeed(job.info)

        self.sim.call_in(delay, finish)
