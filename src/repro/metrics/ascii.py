"""Terminal rendering helpers for experiment output.

The benches, examples, and the CLI all print timelines and tables to the
terminal; these helpers keep that rendering in one place.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.metrics.series import TimeSeries

__all__ = ["sparkline", "render_series", "format_table", "span_timeline"]

_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 70,
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Compress ``values`` into a fixed-width density string.

    By default the scale runs from 0 to the series maximum. ``lo`` /
    ``hi`` pin the scale instead (values outside are clamped), so
    bounded signals — a ``[0, 1]`` pressure index, an SLO floor — render
    against their domain rather than the observed range, and two
    sparklines drawn with the same bounds are directly comparable.
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return ""
    floor = 0.0 if lo is None else float(lo)
    top = (v.max() if hi is None else float(hi)) - floor
    if top <= 0:
        return " " * min(width, v.size)
    v = np.clip((v - floor) / top, 0.0, 1.0)
    bins = np.array_split(v, min(width, v.size))
    return "".join(_BLOCKS[int(b.mean() * (len(_BLOCKS) - 1))]
                   for b in bins)


def render_series(series: TimeSeries, t0: float = 0.0,
                  t1: Optional[float] = None, width: int = 70,
                  label: str = "") -> str:
    """One labelled sparkline line: ``label |chart| max=…``."""
    if t1 is None:
        t1 = float(series.t[-1]) if len(series) else 0.0
    sub = series.between(t0, t1)
    if len(sub) == 0:
        return f"  {label:<22s} |{'':{width}s}| (empty)"
    resampled = sub.resample(max((t1 - t0) / width, 1e-9))
    line = sparkline(resampled.v, width)
    return f"  {label:<22s} |{line:<{width}s}| max={resampled.v.max():,.0f}"


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 indent: str = "  ") -> list[str]:
    """Fixed-width text table (right-aligned numbers, left-aligned text)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    cols = list(zip(*([list(headers)] + str_rows))) if str_rows \
        else [headers]
    widths = [max(len(c) for c in col) for col in cols]
    lines = [indent + "  ".join(h.ljust(w)
                                for h, w in zip(headers, widths))]
    for row in str_rows:
        cells = []
        for cell, w, orig in zip(row, widths, row):
            cells.append(cell.rjust(w) if _numeric(orig) else cell.ljust(w))
        lines.append(indent + "  ".join(cells))
    return lines


def span_timeline(spans: Iterable[tuple],
                  t0: Optional[float] = None,
                  t1: Optional[float] = None,
                  width: int = 60,
                  label_width: int = 28) -> list[str]:
    """ASCII Gantt chart of ``(label, start, end)`` rows.

    Rows share one time axis from ``t0`` to ``t1`` (defaulting to the
    earliest start / latest end); each prints as a labelled bar plus
    its absolute interval, so traced migration phases can be inspected
    without leaving the terminal::

        vm0 round-1       |####                | 0.10-2.30s
        vm0 stop-and-copy |    ##              | 2.30-3.10s
    """
    rows = [(str(label), float(s), float(e)) for label, s, e in spans]
    if not rows:
        return ["  (no spans)"]
    lo = min(s for _, s, _ in rows) if t0 is None else float(t0)
    hi = max(e for _, _, e in rows) if t1 is None else float(t1)
    if hi <= lo:
        hi = lo + 1.0
    scale = width / (hi - lo)
    lines = [f"  {'':<{label_width}s}|{lo:<{width - 9}.2f}{hi:>8.2f}s|"]
    for label, s, e in rows:
        i0 = int(np.clip((s - lo) * scale, 0, width - 1))
        i1 = int(np.clip(np.ceil((e - lo) * scale), i0 + 1, width))
        bar = " " * i0 + "#" * (i1 - i0) + " " * (width - i1)
        lines.append(f"  {label:<{label_width}.{label_width}s}|{bar}| "
                     f"{s:.2f}-{e:.2f}s")
    return lines


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:,.1f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    try:
        float(cell.replace(",", ""))
        return True
    except ValueError:
        return False
