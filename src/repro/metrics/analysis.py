"""Analysis helpers for the paper's derived metrics.

The paper reports, beyond raw timelines: the time for the average YCSB
throughput to recover to 90 % of its maximum (§V-A3) and window-averaged
application performance during migration (Table I).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.metrics.series import TimeSeries

__all__ = ["recovery_time", "window_mean"]


def window_mean(series: TimeSeries, t0: float, t1: float) -> float:
    """Mean value over [t0, t1) — Table I's 'performance through the
    migration' statistic."""
    sub = series.between(t0, t1)
    return sub.mean()


def recovery_time(series: TimeSeries, start: float, target: float,
                  smooth_window: float = 10.0,
                  sustain: float = 10.0) -> Optional[float]:
    """Seconds after ``start`` until the smoothed series first reaches
    ``target`` and stays at or above it for ``sustain`` seconds.

    Returns None if the series never recovers. This implements the
    paper's 'time to restore performance to 90 % of maximum' metric; the
    sustain requirement avoids counting transient spikes during
    thrashing as recovery.
    """
    sm = series.resample(smooth_window) if smooth_window > 0 else series
    t, v = sm.t, sm.v
    after = t >= start
    t, v = t[after], v[after]
    if t.size == 0:
        return None
    ok = v >= target
    i = 0
    while i < t.size:
        if not ok[i]:
            i += 1
            continue
        # find how long the streak lasts
        j = i
        while j < t.size and ok[j]:
            j += 1
        streak_end = t[j - 1] if j - 1 < t.size else t[-1]
        if streak_end - t[i] >= sustain or j == t.size:
            return float(t[i] - start)
        i = j
    return None
