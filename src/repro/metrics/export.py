"""Result export: time series and migration reports to CSV / JSON.

Experiment results should outlive the Python process — these helpers
serialize a :class:`~repro.metrics.Recorder`'s series and
:class:`~repro.core.base.MigrationReport` objects into plain files that
plotting tools and spreadsheets can ingest.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.metrics.recorder import Recorder
from repro.metrics.series import TimeSeries

__all__ = ["fault_log_to_csv", "fault_log_to_dict", "report_to_dict",
           "series_to_csv", "recorder_to_csv", "recorder_to_json"]

PathLike = Union[str, Path]


def report_to_dict(report: Any) -> dict:
    """A migration report as a JSON-ready dict (including derived
    totals, which dataclass serialization would drop)."""
    out = dataclasses.asdict(report)
    for key, value in out.items():
        if isinstance(value, enum.Enum):
            out[key] = value.value
    out["total_bytes"] = report.total_bytes
    out["total_time"] = report.total_time
    return out


def fault_log_to_dict(log: Any, until: Optional[float] = None) -> dict:
    """A :class:`~repro.faults.FaultLog` as a JSON-ready dict: the event
    timeline plus the downtime-attribution summary. ``until`` truncates
    still-open VM outages (defaults to the last event's time)."""
    events = log.to_rows()
    if until is None:
        until = events[-1][0] if events else 0.0
    return {
        "events": [{"t": t, "action": action, "kind": kind,
                    "target": target, "detail": detail}
                   for t, action, kind, target, detail in events],
        "outages": [{"vm": vm, "start": start, "end": end}
                    for vm, start, end in log.outages],
        "mttr": log.mttr(),
        "vm_unavailable_seconds": log.vm_unavailable_seconds(until),
        "unavailable_vms": log.unavailable_vms(),
    }


def fault_log_to_csv(log: Any, path: PathLike) -> Path:
    """The fault/recovery event timeline as a
    ``t,action,kind,target,detail`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t", "action", "kind", "target", "detail"])
        for t, action, kind, target, detail in log.to_rows():
            writer.writerow([repr(float(t)), action, kind, target, detail])
    return path


def series_to_csv(series: TimeSeries, path: PathLike) -> Path:
    """One series as a two-column ``t,value`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t", series.name or "value"])
        for t, v in zip(series.t, series.v):
            writer.writerow([repr(float(t)), repr(float(v))])
    return path


def recorder_to_csv(recorder: Recorder, path: PathLike,
                    names: Optional[Iterable[str]] = None) -> Path:
    """All (or selected) series in long form: ``series,t,value``."""
    path = Path(path)
    selected = list(names) if names is not None else recorder.names()
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "t", "value"])
        for name in selected:
            s = recorder.series(name)
            for t, v in zip(s.t, s.v):
                writer.writerow([name, repr(float(t)), repr(float(v))])
    return path


def recorder_to_json(recorder: Recorder, path: PathLike,
                     names: Optional[Iterable[str]] = None,
                     reports: Optional[dict] = None,
                     fault_log: Optional[Any] = None) -> Path:
    """A JSON document with series arrays, optional migration reports,
    and an optional fault/recovery log
    (``{"series": {...}, "reports": ..., "faults": ...}``)."""
    path = Path(path)
    selected = list(names) if names is not None else recorder.names()
    doc: dict = {"series": {}}
    for name in selected:
        s = recorder.series(name)
        doc["series"][name] = {"t": s.t.tolist(), "v": s.v.tolist()}
    if reports:
        doc["reports"] = {k: report_to_dict(r) for k, r in reports.items()}
    if fault_log is not None:
        doc["faults"] = fault_log_to_dict(fault_log)
    path.write_text(json.dumps(doc))
    return path
