"""Result export: time series and migration reports to CSV / JSON.

Experiment results should outlive the Python process — these helpers
serialize a :class:`~repro.metrics.Recorder`'s series and
:class:`~repro.core.base.MigrationReport` objects into plain files that
plotting tools and spreadsheets can ingest.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.metrics.recorder import Recorder
from repro.metrics.series import TimeSeries

__all__ = ["report_to_dict", "series_to_csv", "recorder_to_csv",
           "recorder_to_json"]

PathLike = Union[str, Path]


def report_to_dict(report: Any) -> dict:
    """A migration report as a JSON-ready dict (including derived
    totals, which dataclass serialization would drop)."""
    out = dataclasses.asdict(report)
    out["total_bytes"] = report.total_bytes
    out["total_time"] = report.total_time
    return out


def series_to_csv(series: TimeSeries, path: PathLike) -> Path:
    """One series as a two-column ``t,value`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t", series.name or "value"])
        for t, v in zip(series.t, series.v):
            writer.writerow([repr(float(t)), repr(float(v))])
    return path


def recorder_to_csv(recorder: Recorder, path: PathLike,
                    names: Optional[Iterable[str]] = None) -> Path:
    """All (or selected) series in long form: ``series,t,value``."""
    path = Path(path)
    selected = list(names) if names is not None else recorder.names()
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "t", "value"])
        for name in selected:
            s = recorder.series(name)
            for t, v in zip(s.t, s.v):
                writer.writerow([name, repr(float(t)), repr(float(v))])
    return path


def recorder_to_json(recorder: Recorder, path: PathLike,
                     names: Optional[Iterable[str]] = None,
                     reports: Optional[dict] = None) -> Path:
    """A JSON document with series arrays and optional migration reports
    (``{"series": {name: {"t": [...], "v": [...]}}, "reports": ...}``)."""
    path = Path(path)
    selected = list(names) if names is not None else recorder.names()
    doc: dict = {"series": {}}
    for name in selected:
        s = recorder.series(name)
        doc["series"][name] = {"t": s.t.tolist(), "v": s.v.tolist()}
    if reports:
        doc["reports"] = {k: report_to_dict(r) for k, r in reports.items()}
    path.write_text(json.dumps(doc))
    return path
