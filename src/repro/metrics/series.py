"""Append-only time series with NumPy views."""

from __future__ import annotations

import numpy as np

__all__ = ["TimeSeries"]


class TimeSeries:
    """A (time, value) sequence with amortized O(1) append.

    Backed by growable NumPy buffers; exposes read-only array views so
    analysis code can vectorize without copying.
    """

    def __init__(self, name: str = "", initial_capacity: int = 1024):
        self.name = name
        self._t = np.empty(max(1, initial_capacity), dtype=np.float64)
        self._v = np.empty(max(1, initial_capacity), dtype=np.float64)
        self._n = 0

    def append(self, t: float, v: float) -> None:
        if self._n == self._t.size:
            self._t = np.concatenate([self._t, np.empty_like(self._t)])
            self._v = np.concatenate([self._v, np.empty_like(self._v)])
        self._t[self._n] = t
        self._v[self._n] = v
        self._n += 1

    def __len__(self) -> int:
        return self._n

    @property
    def t(self) -> np.ndarray:
        """Times (read-only view)."""
        out = self._t[:self._n]
        out.flags.writeable = False
        return out

    @property
    def v(self) -> np.ndarray:
        """Values (read-only view)."""
        out = self._v[:self._n]
        out.flags.writeable = False
        return out

    def mean(self) -> float:
        if self._n == 0:
            raise ValueError(f"series {self.name!r} is empty")
        return float(self._v[:self._n].mean())

    def between(self, t0: float, t1: float) -> "TimeSeries":
        """Sub-series with t0 <= t < t1."""
        mask = (self._t[:self._n] >= t0) & (self._t[:self._n] < t1)
        out = TimeSeries(self.name, initial_capacity=int(mask.sum()) or 1)
        tt, vv = self._t[:self._n][mask], self._v[:self._n][mask]
        out._t[:tt.size] = tt
        out._v[:vv.size] = vv
        out._n = tt.size
        return out

    def resample(self, dt: float) -> "TimeSeries":
        """Bucket-average the series at interval ``dt`` (plot smoothing).

        Vectorized: occupied buckets come from one ``np.unique`` pass
        and the per-bucket means from ``np.bincount`` sums/counts —
        no Python loop over buckets.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if self._n == 0:
            return TimeSeries(self.name)
        t, v = self.t, self.v
        buckets = np.floor(t / dt).astype(np.int64)
        uniq, inverse = np.unique(buckets, return_inverse=True)
        sums = np.bincount(inverse, weights=v, minlength=uniq.size)
        counts = np.bincount(inverse, minlength=uniq.size)
        out = TimeSeries(self.name, initial_capacity=int(uniq.size))
        out._t[:uniq.size] = (uniq + 0.5) * dt
        out._v[:uniq.size] = sums / counts
        out._n = int(uniq.size)
        return out
