"""Measurement: time series, recorders, and report helpers.

Everything the paper's evaluation plots or tabulates is computed from
these primitives: per-tick throughput series (Figures 4-6, 10), migration
reports (Tables II-III, Figures 7-8), and WSS traces (Figure 9).
"""

from repro.metrics.series import TimeSeries
from repro.metrics.recorder import Recorder
from repro.metrics.analysis import recovery_time, window_mean
from repro.metrics.export import (
    fault_log_to_csv,
    fault_log_to_dict,
    recorder_to_csv,
    recorder_to_json,
    report_to_dict,
    series_to_csv,
)

__all__ = [
    "Recorder",
    "TimeSeries",
    "fault_log_to_csv",
    "fault_log_to_dict",
    "recorder_to_csv",
    "recorder_to_json",
    "recovery_time",
    "report_to_dict",
    "series_to_csv",
    "window_mean",
]
