"""Named-series recorder shared by all instrumented components."""

from __future__ import annotations

from repro.metrics.series import TimeSeries

__all__ = ["Recorder"]


class Recorder:
    """A registry of named :class:`TimeSeries`.

    Components record under hierarchical names, e.g.
    ``"vm1.throughput"``, ``"vm1.wss"``, ``"src.swap.read_bps"``.
    """

    def __init__(self) -> None:
        self._series: dict[str, TimeSeries] = {}

    def record(self, name: str, t: float, v: float) -> None:
        s = self._series.get(name)
        if s is None:
            s = TimeSeries(name)
            self._series[name] = s
        s.append(t, v)

    def series(self, name: str) -> TimeSeries:
        return self._series[name]

    def has(self, name: str) -> bool:
        return name in self._series

    def names(self) -> list[str]:
        return sorted(self._series)

    def matching(self, prefix: str) -> list[TimeSeries]:
        """Series named ``prefix`` or nested under it.

        Matching is on dotted-segment boundaries: ``"vm1"`` matches
        ``"vm1"`` and ``"vm1.throughput"`` but *not*
        ``"vm10.throughput"``.
        """
        dotted = prefix + "."
        return [s for n, s in sorted(self._series.items())
                if n == prefix or n.startswith(dotted)]
