"""Swap block devices with bandwidth arbitration.

The paper's baselines swap to a 30 GB partition of a SATA SSD shared by
all VMs and by the Migration Manager; the contention on that device is the
direct cause of the thrashing behaviour in Figure 7. We model the device
as two capacity pools (read and write) divided max-min fairly among named
:class:`DeviceQueue` handles each tick, with an efficiency penalty when
reads and writes are in flight simultaneously (mixed I/O degrades SSD
throughput).

The same :class:`DeviceQueue` handle is the interface the VMD-backed
per-VM swap devices implement (see :mod:`repro.vmd.device`), so consumers
— workloads faulting pages in, the memory manager writing evictions back,
migration managers reading swapped pages — are agnostic to the backing
store, exactly like the paper's block-device abstraction (§IV-A).
"""

from __future__ import annotations

from typing import Literal, Optional, Protocol, runtime_checkable

from repro.util import fair_share

__all__ = ["DeviceQueue", "SSDSwapDevice", "SwapBackend"]

Kind = Literal["read", "write"]


class DeviceQueue:
    """One requester's lane on a device.

    ``demand`` is set (or accumulated) during pre-tick; ``granted`` is
    filled by the device's arbitration; both are reset at the start of the
    next arbitration round.
    """

    __slots__ = ("name", "kind", "demand", "granted",
                 "total_granted", "active", "_owner")

    def __init__(self, name: str, kind: Kind):
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be 'read' or 'write': {kind}")
        self.name = name
        self.kind = kind
        self.demand = 0.0
        self.granted = 0.0
        self.total_granted = 0.0
        self.active = True
        #: the arbiter that owns this lane; close() flags it for
        #: compaction so arbitrate() need not scan for dead queues
        self._owner = None

    def close(self) -> None:
        self.active = False
        self.demand = 0.0
        # a consumer reading a just-closed queue in the same commit phase
        # must not re-consume last tick's grant
        self.granted = 0.0
        owner = self._owner
        if owner is not None:
            owner._needs_compact = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DeviceQueue {self.name} {self.kind}>"


@runtime_checkable
class SwapBackend(Protocol):
    """What a per-VM (or shared) swap device must provide."""

    def open_queue(self, name: str, kind: Kind,
                   host: Optional[str] = None) -> DeviceQueue: ...


class SSDSwapDevice:
    """A locally-attached SSD swap device (the baselines' backing store).

    Register with the tick engine as an **arbiter**.

    Parameters
    ----------
    read_bps / write_bps:
        Sequential read/write bandwidth in bytes/s.
    mixed_efficiency:
        Multiplier applied to both pools when reads and writes are both
        demanded in the same tick (default 0.7 — mixed random I/O is
        slower than pure sequential streams).
    capacity_bytes:
        Size of the swap partition; writes beyond it raise, mirroring a
        full swap device (the paper provisions 30 GB).
    """

    def __init__(self, name: str, read_bps: float = 400e6,
                 write_bps: float = 200e6, mixed_efficiency: float = 0.7,
                 capacity_bytes: float = float("inf")):
        if read_bps <= 0 or write_bps <= 0:
            raise ValueError("device bandwidth must be positive")
        if not 0 < mixed_efficiency <= 1:
            raise ValueError("mixed_efficiency must be in (0, 1]")
        self.name = name
        self.read_bps = float(read_bps)
        self.write_bps = float(write_bps)
        self.mixed_efficiency = float(mixed_efficiency)
        self.capacity_bytes = float(capacity_bytes)
        self.used_bytes = 0.0
        #: fault-injection multiplier on both bandwidth pools (wear /
        #: thermal throttling / controller resets degrade service rate)
        self.degrade_factor = 1.0
        self._queues: list[DeviceQueue] = []
        self._needs_compact = False

    # -- queue management -------------------------------------------------------
    def open_queue(self, name: str, kind: Kind,
                   host: Optional[str] = None) -> DeviceQueue:
        """Create a requester lane. ``host`` is ignored: the device is local."""
        q = DeviceQueue(name, kind)
        q._owner = self
        self._queues.append(q)
        return q

    # -- space accounting (the namespace analogue for a shared device) -----------
    def allocate(self, n_bytes: float) -> None:
        if self.used_bytes + n_bytes > self.capacity_bytes:
            raise RuntimeError(
                f"swap device {self.name} full: "
                f"{self.used_bytes + n_bytes} > {self.capacity_bytes}")
        self.used_bytes += n_bytes

    def release(self, n_bytes: float) -> None:
        self.used_bytes = max(0.0, self.used_bytes - n_bytes)

    # -- fault injection -----------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Scale both bandwidth pools to ``factor`` × nominal."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degradation factor must be in (0, 1]: {factor}")
        self.degrade_factor = float(factor)

    def restore(self) -> None:
        self.degrade_factor = 1.0

    # -- arbitration ------------------------------------------------------------
    def arbitrate(self, dt: float) -> None:
        if self._needs_compact:
            self._queues = [q for q in self._queues if q.active]
            self._needs_compact = False
        reads = [q for q in self._queues if q.kind == "read"]
        writes = [q for q in self._queues if q.kind == "write"]
        read_demand = sum(q.demand for q in reads)
        write_demand = sum(q.demand for q in writes)
        eff = (self.mixed_efficiency
               if read_demand > 0 and write_demand > 0 else 1.0)
        eff *= self.degrade_factor
        self._grant(reads, self.read_bps * dt * eff)
        self._grant(writes, self.write_bps * dt * eff)

    @staticmethod
    def _grant(queues: list[DeviceQueue], capacity: float) -> None:
        # A lane closed between compaction and here must get nothing; a
        # closed lane's demand is zero, and max-min water-filling gives a
        # zero demand a zero grant without shifting anyone else's, so
        # filtering is grant-identical to the unfiltered division.
        queues = [q for q in queues if q.active]
        if not queues:
            return
        grants = fair_share([q.demand for q in queues], capacity)
        for q, g in zip(queues, grants):
            q.granted = float(g)
            q.total_granted += float(g)
            q.demand = 0.0
