"""Dense per-host commit-phase state for the batched memory manager.

At hundreds of hosts the per-tick cost of :class:`HostMemoryManager` is
dominated by Python loops that visit every registered VM even when
nothing changed: the pre-tick writeback-demand declaration, the commit
writeback drain, and the eviction loop's victim search. A
:class:`HostCommitBatch` interns each VM binding into a slot of dense
NumPy arrays (writeback backlog, last declared demand, page size,
reservation, registration sequence) so that each tick touches only the
slots with work — ``flatnonzero`` over the backlog array instead of a
Python loop over all bindings — and the host-pressure victim search is
one vectorized argmax instead of a per-binding scan.

Oracle policy
-------------
The scalar per-binding path in :class:`HostMemoryManager` is retained as
the reference implementation (``fast_path=False``). The batch is
**bit-identical** to it by construction:

* backlog cells are IEEE-754 doubles updated with the same operations in
  the same per-VM order (``flatnonzero`` returns ascending slot indices,
  and slots of live bindings are only compared, never reordered);
* the victim search replicates the scalar dict-order/strict-``>``
  tie-break exactly: among maximal overshoots the slot with the smallest
  registration sequence wins, which is the first-inserted binding;
* totals are exact integer arithmetic (page counts × page size), the
  same values the scalar path sums per binding.

``tests/test_mem_batch.py`` drives both paths through randomized twin
scenarios and asserts equality with ``==`` after every tick.

Bindings attach via :meth:`add` / detach via :meth:`remove`; while
attached, ``VmMemoryBinding.writeback_backlog`` proxies to the slot cell
so external writers (migration engines re-keying a binding) stay
coherent with the arrays. Residency is *not* cached here: the
:class:`~repro.mem.pages.PageSet` counter makes per-VM residency O(1),
so host totals sum the per-binding counters and the victim search
gathers fresh counts — no cache to go stale when scenario setup or
migration engines touch page state directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.manager import VmMemoryBinding

__all__ = ["HostCommitBatch"]


class HostCommitBatch:
    """Slot-interned per-VM commit state for one host."""

    __slots__ = ("bindings", "seq", "active", "page_size", "reservation",
                 "backlog", "last_wq_demand", "_free", "_next_seq",
                 "_watch_cbs", "n_active", "_maybe_work")

    def __init__(self, capacity: int = 8):
        n = max(1, int(capacity))
        self.bindings: list[Optional["VmMemoryBinding"]] = [None] * n
        #: registration order; ties in the victim search resolve to the
        #: smallest sequence = the scalar path's first-in-dict-order win
        self.seq = np.zeros(n, dtype=np.int64)
        self.active = np.zeros(n, dtype=bool)
        self.page_size = np.ones(n, dtype=np.int64)
        self.reservation = np.zeros(n, dtype=np.float64)
        self.backlog = np.zeros(n, dtype=np.float64)
        #: the demand value written at the last pre-tick; a slot with
        #: zero backlog and zero last-written demand is provably already
        #: at demand 0 (nothing else writes writeback demand), so the
        #: pre-tick active set can skip it
        self.last_wq_demand = np.zeros(n, dtype=np.float64)
        self._free = list(range(n - 1, -1, -1))
        self._next_seq = 0
        self._watch_cbs: dict[int, object] = {}
        self.n_active = 0
        #: conservative "some slot may carry backlog or stale demand"
        #: flag: set by every backlog write, cleared by a pre-tick that
        #: finds nothing — a fully idle host pays one attribute check
        #: per phase instead of array scans
        self._maybe_work = False

    # -- slot management ------------------------------------------------------
    def _grow(self) -> None:
        old = self.active.size
        new = old * 2
        self.bindings.extend([None] * old)
        for name in ("seq", "page_size"):
            arr = np.zeros(new, dtype=np.int64)
            if name == "page_size":
                arr[:] = 1
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        for name in ("reservation", "backlog", "last_wq_demand"):
            arr = np.zeros(new, dtype=np.float64)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        grown = np.zeros(new, dtype=bool)
        grown[:old] = self.active
        self.active = grown
        self._free.extend(range(new - 1, old - 1, -1))

    def add(self, binding: "VmMemoryBinding") -> int:
        """Intern a binding; returns its slot and attaches the proxy."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self.bindings[slot] = binding
        self.seq[slot] = self._next_seq
        self._next_seq += 1
        self.active[slot] = True
        self.page_size[slot] = binding.pages.page_size
        self.reservation[slot] = binding.cgroup.reservation_bytes
        self.backlog[slot] = binding._backlog
        if binding._backlog != 0.0:
            self._maybe_work = True
        self.last_wq_demand[slot] = 0.0
        self.n_active += 1

        def _on_reservation(new_bytes: float, _slot: int = slot) -> None:
            self.reservation[_slot] = new_bytes

        self._watch_cbs[slot] = _on_reservation
        binding.cgroup.add_reservation_watcher(_on_reservation)
        binding._batch = self
        binding._slot = slot
        return slot

    def remove(self, slot: int) -> None:
        """Release a slot; the binding's debt dies with the VM."""
        binding = self.bindings[slot]
        binding.cgroup.remove_reservation_watcher(self._watch_cbs.pop(slot))
        binding._batch = None
        binding._slot = -1
        binding._backlog = 0.0
        self.bindings[slot] = None
        self.active[slot] = False
        self.backlog[slot] = 0.0
        self.last_wq_demand[slot] = 0.0
        self.reservation[slot] = 0.0
        self.page_size[slot] = 1
        self.n_active -= 1
        self._free.append(slot)

    # -- tick work ------------------------------------------------------------
    def pre_tick_demands(self, debt_cap: float) -> None:
        """Declare writeback demand and throttle faults under debt.

        Only slots whose stored queue demand could differ from the
        current backlog are visited; an idle host costs one flag check.
        """
        if not self._maybe_work:
            return
        # both arrays are non-negative, so the sum is nonzero exactly
        # where either is (one numpy op instead of three)
        work = np.flatnonzero(self.backlog + self.last_wq_demand)
        if work.size == 0:
            self._maybe_work = False
            return
        vals = self.backlog[work]
        self.last_wq_demand[work] = vals
        bindings = self.bindings
        busy = False
        for i, d in zip(work.tolist(), vals.tolist()):
            b = bindings[i]
            b.write_queue.demand = d
            if d > 0.0:
                busy = True
                if d > debt_cap:
                    fq = b.fault_queue
                    if fq.demand > 0:
                        fq.demand *= debt_cap / d
        if not busy:
            # every visited slot just declared 0 and slots outside the
            # work set were already clean: the host is idle again
            self._maybe_work = False

    def drain(self) -> None:
        """Apply this tick's write grants to the backlog cells."""
        if not self._maybe_work:
            return
        work = np.flatnonzero(self.backlog)
        if work.size == 0:
            return
        bindings = self.bindings
        grants = np.fromiter(
            (bindings[i].write_queue.granted for i in work.tolist()),
            dtype=np.float64, count=work.size)
        # the scalar oracle skips zero grants, but max(0, b - 0) == b
        # for the non-negative backlogs in the work set, so the
        # unconditional vector update is bit-identical
        self.backlog[work] = np.maximum(0.0, self.backlog[work] - grants)

    # -- victim search --------------------------------------------------------
    def pick_victim(self) -> Optional["VmMemoryBinding"]:
        """The binding most over its reservation (ties: first registered).

        Bit-identical to the scalar dict-order scan with strict ``>``:
        the scalar loop keeps the first binding attaining the maximum
        overshoot, which is exactly the minimal-sequence maximal slot.
        """
        idx = np.flatnonzero(self.active)
        if idx.size == 0:
            return None
        res = np.fromiter(
            (self.bindings[i].pages.resident_pages() for i in idx),
            dtype=np.int64, count=idx.size)
        live = res > 0
        if not live.any():
            return None
        idx = idx[live]
        over = ((res[live] * self.page_size[idx]).astype(np.float64)
                - self.reservation[idx])
        ties = idx[over == over.max()]
        if ties.size > 1:
            winner = ties[np.argmin(self.seq[ties])]
        else:
            winner = ties[0]
        return self.bindings[int(winner)]
