"""Host CPU arbiter: vCPU time sharing among colocated VMs.

The paper's hosts have twelve 2.1 GHz Xeons and its experiments keep the
aggregate vCPU count below that, so CPU contention never binds there —
but a faithful host model must still enforce the physical core budget
when consolidation pushes past it. Each VM's workload declares the CPU
seconds it wants per tick; the arbiter divides ``cores × dt`` seconds
max-min fairly (CFS-like; a VM's own vCPU count already caps its demand).
"""

from __future__ import annotations

from repro.util import fair_share

__all__ = ["CpuArbiter", "CpuShare"]


class CpuShare:
    """One VM's lane on the host CPU (demand/grant in cpu-seconds)."""

    __slots__ = ("name", "demand", "granted", "total_granted", "active")

    def __init__(self, name: str):
        self.name = name
        self.demand = 0.0
        self.granted = 0.0
        self.total_granted = 0.0
        self.active = True

    def close(self) -> None:
        self.active = False
        self.demand = 0.0


class CpuArbiter:
    """Divides a host's core-seconds per tick among registered shares."""

    def __init__(self, host: str, cores: int):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.host = host
        self.cores = int(cores)
        self._shares: list[CpuShare] = []

    def open_share(self, name: str) -> CpuShare:
        share = CpuShare(name)
        self._shares.append(share)
        return share

    def arbitrate(self, dt: float) -> None:
        if any(not s.active for s in self._shares):
            self._shares = [s for s in self._shares if s.active]
        if not self._shares:
            return
        grants = fair_share([s.demand for s in self._shares],
                            self.cores * dt)
        for share, g in zip(self._shares, grants):
            share.granted = float(g)
            share.total_granted += float(g)
            share.demand = 0.0
