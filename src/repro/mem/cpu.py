"""Host CPU arbiter: vCPU time sharing among colocated VMs.

The paper's hosts have twelve 2.1 GHz Xeons and its experiments keep the
aggregate vCPU count below that, so CPU contention never binds there —
but a faithful host model must still enforce the physical core budget
when consolidation pushes past it. Each VM's workload declares the CPU
seconds it wants per tick; the arbiter divides ``cores × dt`` seconds
max-min fairly (CFS-like; a VM's own vCPU count already caps its demand).

The single-share fast path grants ``min(demand, capacity)`` directly —
bit-identical to ``fair_share`` on one demand (both branches of the
water-filling reduce to exactly that comparison) — because most hosts in
the cluster scenarios run one VM and the per-tick list/array round trip
was pure overhead at scale.
"""

from __future__ import annotations

from repro.util import fair_share

__all__ = ["CpuArbiter", "CpuShare"]


class CpuShare:
    """One VM's lane on the host CPU (demand/grant in cpu-seconds)."""

    __slots__ = ("name", "demand", "granted", "total_granted", "active",
                 "_owner")

    def __init__(self, name: str):
        self.name = name
        self.demand = 0.0
        self.granted = 0.0
        self.total_granted = 0.0
        self.active = True
        self._owner = None

    def close(self) -> None:
        self.active = False
        self.demand = 0.0
        self.granted = 0.0
        owner = self._owner
        if owner is not None:
            owner._needs_compact = True


class CpuArbiter:
    """Divides a host's core-seconds per tick among registered shares."""

    def __init__(self, host: str, cores: int):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.host = host
        self.cores = int(cores)
        self._shares: list[CpuShare] = []
        self._needs_compact = False

    def open_share(self, name: str) -> CpuShare:
        share = CpuShare(name)
        share._owner = self
        self._shares.append(share)
        return share

    def arbitrate(self, dt: float) -> None:
        shares = self._shares
        if self._needs_compact:
            shares = self._shares = [s for s in shares if s.active]
            self._needs_compact = False
        if not shares:
            return
        capacity = self.cores * dt
        if len(shares) == 1:
            s = shares[0]
            d = s.demand
            g = d if d <= capacity else capacity
            s.granted = g
            s.total_granted += g
            s.demand = 0.0
            return
        grants = fair_share([s.demand for s in shares], capacity)
        for share, g in zip(shares, grants):
            share.granted = float(g)
            share.total_granted += float(g)
            share.demand = 0.0
