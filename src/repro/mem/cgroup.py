"""Memory cgroups: per-VM reservation plus swap I/O accounting.

The paper places each KVM/QEMU process in its own cgroup (§IV-B) so that
(a) the VM's resident memory is capped at the cgroup reservation, and
(b) per-VM swap activity can be read back (via ``iostat`` on the per-VM
swap device, §IV-D). :class:`Cgroup` models exactly those two roles: the
reservation is consulted by the :class:`~repro.mem.manager.HostMemoryManager`
for eviction decisions, and read/write page counters feed the WSS tracker.
"""

from __future__ import annotations

__all__ = ["Cgroup"]


class Cgroup:
    """Resource-accounting group for one VM.

    Parameters
    ----------
    name:
        Diagnostic label (the paper uses one cgroup per KVM/QEMU process).
    reservation_bytes:
        Maximum bytes the VM may keep resident; excess is evicted to the
        VM's swap device.
    """

    def __init__(self, name: str, reservation_bytes: float):
        if reservation_bytes < 0:
            raise ValueError("reservation must be non-negative")
        self.name = name
        self._reservation = float(reservation_bytes)
        #: lifetime swap traffic in bytes (monotonic counters, iostat-style)
        self.swap_in_bytes_total = 0.0
        self.swap_out_bytes_total = 0.0
        #: callbacks fired on reservation changes (the batched commit
        #: path mirrors reservations into dense per-host arrays)
        self._watchers: list = []

    # -- reservation -----------------------------------------------------------
    @property
    def reservation_bytes(self) -> float:
        return self._reservation

    def set_reservation(self, new_bytes: float) -> None:
        """Adjust the reservation (the WSS controller's actuator, §IV-D)."""
        if new_bytes < 0:
            raise ValueError("reservation must be non-negative")
        self._reservation = float(new_bytes)
        for cb in self._watchers:
            cb(self._reservation)

    def add_reservation_watcher(self, cb) -> None:
        """Register ``cb(new_bytes)`` to fire on every reservation change."""
        self._watchers.append(cb)

    def remove_reservation_watcher(self, cb) -> None:
        self._watchers.remove(cb)

    # -- accounting -----------------------------------------------------------
    def account_swap_in(self, n_bytes: float) -> None:
        self.swap_in_bytes_total += n_bytes

    def account_swap_out(self, n_bytes: float) -> None:
        self.swap_out_bytes_total += n_bytes

    def swap_traffic_total(self) -> float:
        """Total swap bytes moved (in + out), the iostat signal."""
        return self.swap_in_bytes_total + self.swap_out_bytes_total

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Cgroup {self.name} res={self._reservation/2**20:.0f}MiB>")
