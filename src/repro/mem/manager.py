"""Host memory manager: residency, cgroup caps, LRU eviction, writeback.

One :class:`HostMemoryManager` exists per physical host. It enforces two
capacity limits, in this order:

1. **cgroup reservation** — each VM's resident bytes never exceed its
   cgroup reservation (the knob the paper's WSS controller turns);
2. **host capacity** — total residency across VMs never exceeds physical
   memory minus the host OS overhead (~200 MB in the paper's testbed).

Eviction is LRU within the victim VM. Evicted pages become readable from
swap immediately, but pages without a valid swap copy enqueue *writeback*
bytes that compete for device bandwidth on subsequent ticks — this
read/write contention is the thrashing mechanism behind Figure 7.

Swap-clean tracking mirrors the Linux swap cache: a page swapped in and
not re-dirtied keeps its valid swap copy and can be evicted again for
free; dirtying a page invalidates the copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.mem.cgroup import Cgroup
from repro.mem.device import DeviceQueue, SwapBackend
from repro.mem.pages import PageSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vm import VirtualMachine

__all__ = ["HostMemoryManager", "VmMemoryBinding"]


@dataclass
class VmMemoryBinding:
    """Everything the manager tracks for one registered VM.

    ``pages`` is captured at registration time rather than read through
    the VM: during a migration the VM's authoritative page set switches
    to the destination copy, while the source host keeps managing the
    source-side copy until the push phase finishes.
    """

    vm_name: str
    pages: PageSet
    cgroup: Cgroup
    backend: SwapBackend
    #: lane used for the VM's own demand faults (owned by the workload path)
    fault_queue: DeviceQueue
    #: lane used for eviction writeback
    write_queue: DeviceQueue
    writeback_backlog: float = 0.0
    #: pages pinned against eviction (e.g. being scanned by migration)
    protect: Optional[np.ndarray] = field(default=None, repr=False)


class HostMemoryManager:
    """Tick participant managing one host's physical memory."""

    #: writeback debt above which fault admission is throttled (models the
    #: kernel stalling direct reclaim on swap writeback: dirty pages must
    #: reach the device before their frames are reused, so a reclaim storm
    #: slows page-ins instead of accumulating unbounded write debt)
    writeback_debt_cap: float = 64 * 2 ** 20

    def __init__(self, host: str, capacity_bytes: float,
                 host_os_bytes: float = 200 * 2 ** 20):
        if capacity_bytes <= host_os_bytes:
            raise ValueError("host capacity must exceed host OS overhead")
        self.host = host
        self.capacity_bytes = float(capacity_bytes)
        self.host_os_bytes = float(host_os_bytes)
        self._bindings: dict[str, VmMemoryBinding] = {}
        self.tick = 0

    # -- registration ----------------------------------------------------------
    def register_vm(self, vm: "VirtualMachine", cgroup: Cgroup,
                    backend: SwapBackend) -> VmMemoryBinding:
        if vm.name in self._bindings:
            raise ValueError(f"VM already registered: {vm.name}")
        binding = VmMemoryBinding(
            vm_name=vm.name, pages=vm.pages, cgroup=cgroup, backend=backend,
            fault_queue=backend.open_queue(f"{vm.name}.fault", "read",
                                           host=self.host),
            write_queue=backend.open_queue(f"{vm.name}.writeback", "write",
                                           host=self.host),
        )
        self._bindings[vm.name] = binding
        return binding

    def unregister_vm(self, vm_name: str) -> None:
        binding = self._bindings.pop(vm_name)
        binding.fault_queue.close()
        binding.write_queue.close()

    def binding(self, vm_name: str) -> VmMemoryBinding:
        return self._bindings[vm_name]

    def has_vm(self, vm_name: str) -> bool:
        return vm_name in self._bindings

    @property
    def bindings(self) -> list[VmMemoryBinding]:
        return list(self._bindings.values())

    # -- capacity queries --------------------------------------------------------
    def usable_bytes(self) -> float:
        return self.capacity_bytes - self.host_os_bytes

    def total_resident_bytes(self) -> float:
        return sum(b.pages.resident_bytes() for b in self._bindings.values())

    def free_bytes(self) -> float:
        return self.usable_bytes() - self.total_resident_bytes()

    # -- fault path (called during commit phase) ----------------------------------
    def fault_in(self, vm_name: str, idx: np.ndarray) -> float:
        """Make pages resident; returns bytes read from the swap device.

        Pages that were swapped are charged as swap-in I/O; never-allocated
        pages are zero-filled for free. Callers must respect their device
        read grant before calling (the grant is what limits how many pages
        they may fault per tick).
        """
        b = self._bindings[vm_name]
        pages = b.pages
        if idx.size == 0:
            return 0.0
        was_swapped = pages.swapped[idx]
        read_bytes = float(np.count_nonzero(was_swapped)) * pages.page_size
        pages.make_resident(idx, self.tick)
        b.cgroup.account_swap_in(read_bytes)
        self.ensure_capacity(vm_name)
        return read_bytes

    def dirty(self, vm_name: str, idx: np.ndarray) -> None:
        """Mark pages written: sets the migration dirty bit and invalidates
        any swap copy (the page must be written back if evicted again)."""
        self._bindings[vm_name].pages.mark_dirty(idx)

    # -- eviction -------------------------------------------------------------
    def ensure_capacity(self, vm_name: str) -> int:
        """Evict LRU pages until the VM is within its cgroup reservation and
        the host is within physical capacity. Returns pages evicted."""
        evicted = self._enforce_cgroup(self._bindings[vm_name])
        evicted += self._enforce_host()
        return evicted

    def _enforce_cgroup(self, b: VmMemoryBinding) -> int:
        pages = b.pages
        over = pages.resident_bytes() - b.cgroup.reservation_bytes
        if over <= 0:
            return 0
        k = int(np.ceil(over / pages.page_size))
        return self._evict(b, k)

    def _enforce_host(self) -> int:
        total = 0
        guard = 0
        while self.total_resident_bytes() > self.usable_bytes():
            guard += 1
            if guard > 1000:  # pragma: no cover - safety net
                raise RuntimeError("host eviction failed to converge")
            victim = self._pick_host_victim()
            if victim is None:
                break  # nothing evictable (all pages pinned)
            over = self.total_resident_bytes() - self.usable_bytes()
            k = int(np.ceil(over / victim.pages.page_size))
            n = self._evict(victim, k)
            total += n
            if n == 0:
                break
        return total

    def _pick_host_victim(self) -> Optional[VmMemoryBinding]:
        """Evict from the VM most over its reservation, else the largest."""
        best, best_over = None, -float("inf")
        for b in self._bindings.values():
            resident = b.pages.resident_bytes()
            if resident == 0:
                continue
            over = resident - b.cgroup.reservation_bytes
            if over > best_over:
                best, best_over = b, over
        return best

    def _evict(self, b: VmMemoryBinding, k: int) -> int:
        pages = b.pages
        victims = pages.lru_candidates(k, protect=b.protect)
        if victims.size == 0:
            return 0
        # Pages with a valid swap copy are dropped for free; the rest queue
        # writeback bytes that will demand device write bandwidth.
        needs_write = ~pages.swap_clean[victims]
        write_bytes = float(np.count_nonzero(needs_write)) * pages.page_size
        pages.swap_out(victims)
        pages.swap_clean[victims] = True
        b.writeback_backlog += write_bytes
        b.cgroup.account_swap_out(write_bytes)
        return int(victims.size)

    def shrink_to_reservation(self, vm_name: str) -> int:
        """Apply a reduced reservation immediately (WSS controller path)."""
        return self._enforce_cgroup(self._bindings[vm_name])

    def free_vm_memory(self, vm_name: str) -> None:
        """Drop all resident pages of a VM (source side after migration).

        The swap copies are *not* dropped: Agile migration requires the
        per-VM swap device to stay intact for the destination (§IV-B).
        """
        pages = self._bindings[vm_name].pages
        idx = pages.present_indices()
        pages.present[idx] = False
        # pages with valid swap copies stay reachable; others are gone with
        # the in-memory state (they were transferred before this is called)

    # -- tick protocol -----------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        """Declare writeback demand; throttle faults under writeback debt.

        Runs *after* the workloads' pre-tick (manager order > workload
        order), so scaling ``fault_queue.demand`` here backpressures this
        tick's swap-ins before arbitration.
        """
        for b in self._bindings.values():
            if b.writeback_backlog > 0:
                b.write_queue.demand = b.writeback_backlog
                if (b.writeback_backlog > self.writeback_debt_cap
                        and b.fault_queue.demand > 0):
                    b.fault_queue.demand *= (self.writeback_debt_cap
                                             / b.writeback_backlog)

    def commit_tick(self, dt: float) -> None:
        self.tick += 1
        for b in self._bindings.values():
            if b.write_queue.granted > 0:
                b.writeback_backlog = max(
                    0.0, b.writeback_backlog - b.write_queue.granted)
