"""Host memory manager: residency, cgroup caps, LRU eviction, writeback.

One :class:`HostMemoryManager` exists per physical host. It enforces two
capacity limits, in this order:

1. **cgroup reservation** — each VM's resident bytes never exceed its
   cgroup reservation (the knob the paper's WSS controller turns);
2. **host capacity** — total residency across VMs never exceeds physical
   memory minus the host OS overhead (~200 MB in the paper's testbed).

Eviction is LRU within the victim VM. Evicted pages become readable from
swap immediately, but pages without a valid swap copy enqueue *writeback*
bytes that compete for device bandwidth on subsequent ticks — this
read/write contention is the thrashing mechanism behind Figure 7.

Swap-clean tracking mirrors the Linux swap cache: a page swapped in and
not re-dirtied keeps its valid swap copy and can be evicted again for
free; dirtying a page invalidates the copy.

Two implementations of the tick-phase bookkeeping coexist:

* the **scalar oracle** (``fast_path=False``) loops over every binding
  per phase — the reference semantics, kept simple and auditable;
* the **batched path** (``fast_path=True``, the default) interns
  bindings into a :class:`~repro.mem.batch.HostCommitBatch` and visits
  only slots with pending work. The two are bit-identical — the
  randomized differential suite in ``tests/test_mem_batch.py`` holds
  them to exact (``==``) equality after every tick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.mem.batch import HostCommitBatch
from repro.mem.cgroup import Cgroup
from repro.mem.device import DeviceQueue, SwapBackend
from repro.mem.pages import PageSet
from repro.telemetry.instruments import NULL_METRICS

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.vm import VirtualMachine

__all__ = ["HostMemoryManager", "VmMemoryBinding"]


class VmMemoryBinding:
    """Everything the manager tracks for one registered VM.

    ``pages`` is captured at registration time rather than read through
    the VM: during a migration the VM's authoritative page set switches
    to the destination copy, while the source host keeps managing the
    source-side copy until the push phase finishes.

    ``writeback_backlog`` is a property: while the binding is interned
    in a fast-path batch it proxies the dense array cell, so engines
    that carry debt across a re-registration and the batched drain see
    one coherent value.
    """

    __slots__ = ("vm_name", "pages", "cgroup", "backend", "fault_queue",
                 "write_queue", "protect", "_backlog", "_batch", "_slot")

    def __init__(self, vm_name: str, pages: PageSet, cgroup: Cgroup,
                 backend: SwapBackend, fault_queue: DeviceQueue,
                 write_queue: DeviceQueue,
                 writeback_backlog: float = 0.0,
                 protect: Optional[np.ndarray] = None):
        self.vm_name = vm_name
        self.pages = pages
        self.cgroup = cgroup
        self.backend = backend
        #: lane used for the VM's own demand faults (owned by the workload path)
        self.fault_queue = fault_queue
        #: lane used for eviction writeback
        self.write_queue = write_queue
        #: pages pinned against eviction (e.g. being scanned by migration)
        self.protect = protect
        self._backlog = float(writeback_backlog)
        self._batch: Optional[HostCommitBatch] = None
        self._slot = -1

    @property
    def writeback_backlog(self) -> float:
        batch = self._batch
        if batch is not None:
            return float(batch.backlog[self._slot])
        return self._backlog

    @writeback_backlog.setter
    def writeback_backlog(self, value: float) -> None:
        batch = self._batch
        if batch is not None:
            batch.backlog[self._slot] = value
            if value != 0.0:
                batch._maybe_work = True
        else:
            self._backlog = float(value)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"VmMemoryBinding(vm_name={self.vm_name!r}, "
                f"writeback_backlog={self.writeback_backlog!r})")


class HostMemoryManager:
    """Tick participant managing one host's physical memory."""

    #: writeback debt above which fault admission is throttled (models the
    #: kernel stalling direct reclaim on swap writeback: dirty pages must
    #: reach the device before their frames are reused, so a reclaim storm
    #: slows page-ins instead of accumulating unbounded write debt)
    writeback_debt_cap: float = 64 * 2 ** 20

    #: resolved when ``fast_path`` is not passed explicitly; the
    #: differential tests flip this to run whole scenarios against the
    #: scalar oracle without threading a flag through every builder
    DEFAULT_FAST_PATH: bool = True

    #: live-metrics sink; class-level no-op default so standalone
    #: managers (benches, unit tests) pay one attribute check —
    #: ``World.add_host`` re-assigns the instance attribute
    metrics = NULL_METRICS

    def __init__(self, host: str, capacity_bytes: float,
                 host_os_bytes: float = 200 * 2 ** 20,
                 fast_path: Optional[bool] = None):
        if capacity_bytes <= host_os_bytes:
            raise ValueError("host capacity must exceed host OS overhead")
        self.host = host
        self.capacity_bytes = float(capacity_bytes)
        self.host_os_bytes = float(host_os_bytes)
        self._bindings: dict[str, VmMemoryBinding] = {}
        self.fast_path = (self.DEFAULT_FAST_PATH if fast_path is None
                          else bool(fast_path))
        self._batch = HostCommitBatch() if self.fast_path else None
        self.tick = 0

    # -- registration ----------------------------------------------------------
    def register_vm(self, vm: "VirtualMachine", cgroup: Cgroup,
                    backend: SwapBackend) -> VmMemoryBinding:
        if vm.name in self._bindings:
            raise ValueError(f"VM already registered: {vm.name}")
        binding = VmMemoryBinding(
            vm_name=vm.name, pages=vm.pages, cgroup=cgroup, backend=backend,
            fault_queue=backend.open_queue(f"{vm.name}.fault", "read",
                                           host=self.host),
            write_queue=backend.open_queue(f"{vm.name}.writeback", "write",
                                           host=self.host),
        )
        self._bindings[vm.name] = binding
        if self._batch is not None:
            self._batch.add(binding)
        return binding

    def unregister_vm(self, vm_name: str) -> None:
        binding = self._bindings.pop(vm_name)
        binding.fault_queue.close()
        binding.write_queue.close()
        # The VM's writeback debt departs with it: the queued writes
        # belonged to a QEMU process that no longer exists on this host,
        # so they must not keep demanding device bandwidth.
        if binding._batch is not None:
            binding._batch.remove(binding._slot)
        else:
            binding._backlog = 0.0

    def binding(self, vm_name: str) -> VmMemoryBinding:
        return self._bindings[vm_name]

    def has_vm(self, vm_name: str) -> bool:
        return vm_name in self._bindings

    @property
    def bindings(self) -> list[VmMemoryBinding]:
        return list(self._bindings.values())

    # -- capacity queries --------------------------------------------------------
    def usable_bytes(self) -> float:
        return self.capacity_bytes - self.host_os_bytes

    def total_resident_bytes(self) -> int:
        return sum(b.pages.resident_bytes() for b in self._bindings.values())

    def free_bytes(self) -> float:
        return self.usable_bytes() - self.total_resident_bytes()

    # -- fault path (called during commit phase) ----------------------------------
    def fault_in(self, vm_name: str, idx: np.ndarray) -> float:
        """Make pages resident; returns bytes read from the swap device.

        Pages that were swapped are charged as swap-in I/O; never-allocated
        pages are zero-filled for free. Callers must respect their device
        read grant before calling (the grant is what limits how many pages
        they may fault per tick).
        """
        b = self._bindings[vm_name]
        pages = b.pages
        if idx.size == 0:
            return 0.0
        was_swapped = pages.swapped[idx]
        read_bytes = float(np.count_nonzero(was_swapped)) * pages.page_size
        pages.make_resident(idx, self.tick)
        b.cgroup.account_swap_in(read_bytes)
        if read_bytes and self.metrics.enabled:
            self.metrics.counter("mem.swapin_bytes").inc(read_bytes)
        self.ensure_capacity(vm_name)
        return read_bytes

    def dirty(self, vm_name: str, idx: np.ndarray) -> None:
        """Mark pages written: sets the migration dirty bit and invalidates
        any swap copy (the page must be written back if evicted again)."""
        self._bindings[vm_name].pages.mark_dirty(idx)

    # -- eviction -------------------------------------------------------------
    def ensure_capacity(self, vm_name: str) -> int:
        """Evict LRU pages until the VM is within its cgroup reservation and
        the host is within physical capacity. Returns pages evicted."""
        evicted = self._enforce_cgroup(self._bindings[vm_name])
        evicted += self._enforce_host()
        return evicted

    def _enforce_cgroup(self, b: VmMemoryBinding) -> int:
        pages = b.pages
        over = pages.resident_bytes() - b.cgroup.reservation_bytes
        if over <= 0:
            return 0
        k = int(np.ceil(over / pages.page_size))
        return self._evict(b, k)

    def _enforce_host(self) -> int:
        total = 0
        guard = 0
        usable = self.usable_bytes()
        while self.total_resident_bytes() > usable:
            guard += 1
            if guard > 1000:  # pragma: no cover - safety net
                raise RuntimeError("host eviction failed to converge")
            victim = self._pick_host_victim()
            if victim is None:
                break  # nothing evictable (all pages pinned)
            over = self.total_resident_bytes() - usable
            k = int(np.ceil(over / victim.pages.page_size))
            n = self._evict(victim, k)
            total += n
            if n == 0:
                break
        return total

    def _pick_host_victim(self) -> Optional[VmMemoryBinding]:
        """Evict from the VM most over its reservation, else the largest."""
        if self._batch is not None:
            return self._batch.pick_victim()
        best, best_over = None, -float("inf")
        for b in self._bindings.values():
            resident = b.pages.resident_bytes()
            if resident == 0:
                continue
            over = resident - b.cgroup.reservation_bytes
            if over > best_over:
                best, best_over = b, over
        return best

    def _evict(self, b: VmMemoryBinding, k: int) -> int:
        pages = b.pages
        victims = pages.lru_candidates(k, protect=b.protect)
        if victims.size == 0:
            return 0
        # Pages with a valid swap copy are dropped for free; the rest queue
        # writeback bytes that will demand device write bandwidth.
        needs_write = ~pages.swap_clean[victims]
        write_bytes = float(np.count_nonzero(needs_write)) * pages.page_size
        pages.swap_out(victims)
        pages.swap_clean[victims] = True
        b.writeback_backlog += write_bytes
        b.cgroup.account_swap_out(write_bytes)
        return int(victims.size)

    def shrink_to_reservation(self, vm_name: str) -> int:
        """Apply a reduced reservation immediately (WSS controller path)."""
        return self._enforce_cgroup(self._bindings[vm_name])

    def free_vm_memory(self, vm_name: str) -> None:
        """Drop all resident pages of a VM (source side after migration).

        The swap copies are *not* dropped: Agile migration requires the
        per-VM swap device to stay intact for the destination (§IV-B).
        Pending writeback debt is cancelled with the process — the pages
        it covered were transferred before this is called, so phantom
        demand must not keep competing for device write bandwidth.
        """
        b = self._bindings[vm_name]
        pages = b.pages
        pages.release_resident(pages.present_indices())
        # pages with valid swap copies stay reachable; others are gone with
        # the in-memory state (they were transferred before this is called)
        b.writeback_backlog = 0.0
        b.write_queue.demand = 0.0

    # -- tick protocol -----------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        """Declare writeback demand; throttle faults under writeback debt.

        Runs *after* the workloads' pre-tick (manager order > workload
        order), so scaling ``fault_queue.demand`` here backpressures this
        tick's swap-ins before arbitration.

        The declaration is unconditional — a binding with zero backlog
        writes demand 0.0 — so stale demand cannot persist when the
        backing device's arbiter disappears mid-run (VMD server loss).
        """
        batch = self._batch
        if batch is not None:
            # guard inlined: an idle host skips even the call frame
            if batch._maybe_work:
                batch.pre_tick_demands(self.writeback_debt_cap)
            return
        cap = self.writeback_debt_cap
        for b in self._bindings.values():
            d = b._backlog
            b.write_queue.demand = d
            if d > cap and b.fault_queue.demand > 0:
                b.fault_queue.demand *= cap / d

    def commit_tick(self, dt: float) -> None:
        self.tick += 1
        batch = self._batch
        if batch is not None:
            if batch._maybe_work:
                batch.drain()
            return
        for b in self._bindings.values():
            g = b.write_queue.granted
            if g > 0:
                b._backlog = max(0.0, b._backlog - g)
