"""Per-VM page state arrays.

A :class:`PageSet` is the model of one VM's physical memory as the host
sees it. It corresponds to the union of data structures the paper's
Migration Manager consults:

* the **present** bit — page resident in host RAM (PTE present);
* the **swapped** bit — page lives on the VM's swap device, exactly the
  ``/proc/pid/pagemap`` swapped bit of §IV-C. The swap offset of page *i*
  is simply *i* in its per-VM namespace (a per-VM device needs no shared
  offset allocation, which is itself one of the design's simplifications);
* the **dirty** bitmap of the migration rounds (§IV-E);
* a **last_access** tick stamp used by the host LRU.

A page in neither state was never allocated (the guest never touched it).
All operations are NumPy-vectorized; no per-page Python loops.

Residency is counted incrementally: every transition updates a running
resident-page counter so :meth:`PageSet.resident_pages` is O(1). This is
what turns the host eviction loop from quadratic (a full bitmap scan per
iteration) into linear work, and it is why external code must never flip
``present`` directly — go through the transition methods (or
:meth:`release_resident`), which keep the counter exact. Transition
methods require **unique** index arrays (every caller passes
``flatnonzero``- or ``choice(replace=False)``-derived indices).
"""

from __future__ import annotations

import numpy as np

from repro.util import PAGE_SIZE

__all__ = ["PageSet"]


class PageSet:
    """State arrays for ``n_pages`` pages of ``page_size`` bytes each."""

    def __init__(self, n_pages: int, page_size: int = PAGE_SIZE):
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive: {n_pages}")
        if page_size <= 0:
            raise ValueError(f"page_size must be positive: {page_size}")
        self.n_pages = int(n_pages)
        self.page_size = int(page_size)
        self.present = np.zeros(n_pages, dtype=bool)
        self.swapped = np.zeros(n_pages, dtype=bool)
        self.dirty = np.zeros(n_pages, dtype=bool)
        #: a valid copy of the page exists on the swap device (swap cache);
        #: such pages can be evicted without writeback
        self.swap_clean = np.zeros(n_pages, dtype=bool)
        self.last_access = np.zeros(n_pages, dtype=np.int64)
        #: running count of set ``present`` bits (kept exact by the
        #: transition methods; O(1) residency queries)
        self._n_resident = 0

    # -- derived quantities -------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.n_pages * self.page_size

    def resident_pages(self) -> int:
        return self._n_resident

    def resident_bytes(self) -> int:
        return self.resident_pages() * self.page_size

    def swapped_pages(self) -> int:
        return int(np.count_nonzero(self.swapped))

    def swapped_bytes(self) -> int:
        return self.swapped_pages() * self.page_size

    def allocated_pages(self) -> int:
        return int(np.count_nonzero(self.present | self.swapped))

    def resident_in(self, lo: int, hi: int) -> int:
        """Resident pages within the half-open page range [lo, hi)."""
        return int(np.count_nonzero(self.present[lo:hi]))

    def check_invariants(self) -> None:
        """Kernel-style consistency checks (used by tests and hypothesis)."""
        if np.any(self.present & self.swapped):
            raise AssertionError("page both present and swapped")
        if np.any(self.swapped & ~self.swap_clean):
            raise AssertionError("swapped page without a valid swap copy")
        if self._n_resident != int(np.count_nonzero(self.present)):
            raise AssertionError(
                f"resident counter drifted: {self._n_resident} != "
                f"{int(np.count_nonzero(self.present))}")

    # -- transitions ---------------------------------------------------------
    def touch(self, idx: np.ndarray, tick: int) -> None:
        """Record access time for LRU; pages must already be present."""
        self.last_access[idx] = tick

    def mark_dirty(self, idx: np.ndarray) -> None:
        """Record guest writes: sets the migration dirty bit and invalidates
        any swap copy (the page differs from what is on the device now)."""
        self.dirty[idx] = True
        self.swap_clean[idx] = False

    def clear_dirty(self, idx: np.ndarray) -> None:
        self.dirty[idx] = False

    def make_resident(self, idx: np.ndarray, tick: int) -> int:
        """Fault pages in (from swap or fresh allocation).

        Pages read from swap keep their valid on-device copy (swap cache,
        ``swap_clean`` stays set); freshly allocated pages have none.
        Returns the number of pages that became newly resident.
        """
        newly = idx.size - int(np.count_nonzero(self.present[idx]))
        self.present[idx] = True
        self.swapped[idx] = False
        self.last_access[idx] = tick
        self._n_resident += newly
        return newly

    def swap_out(self, idx: np.ndarray) -> int:
        """Evict pages to the swap device.

        After this call every evicted page has (or is getting, via the
        manager's writeback queue) a valid copy on the device. Returns
        the number of pages that were resident before the call.
        """
        gone = int(np.count_nonzero(self.present[idx]))
        self.present[idx] = False
        self.swapped[idx] = True
        self.swap_clean[idx] = True
        self._n_resident -= gone
        return gone

    def drop(self, idx: np.ndarray) -> int:
        """Discard pages entirely (used when freeing a migrated-away VM).
        Returns the number of previously resident pages dropped."""
        gone = int(np.count_nonzero(self.present[idx]))
        self.present[idx] = False
        self.swapped[idx] = False
        self.swap_clean[idx] = False
        self._n_resident -= gone
        return gone

    def release_resident(self, idx: np.ndarray) -> int:
        """Clear only the ``present`` bits, keeping swap state untouched.

        This is the source-side teardown after a migration: resident
        pages are gone with the QEMU process, but valid swap copies stay
        reachable from the portable per-VM device (§IV-B). Returns the
        number of previously resident pages released.
        """
        gone = int(np.count_nonzero(self.present[idx]))
        self.present[idx] = False
        self._n_resident -= gone
        return gone

    # -- queries used by eviction and migration --------------------------------
    def present_indices(self) -> np.ndarray:
        return np.flatnonzero(self.present)

    def swapped_indices(self) -> np.ndarray:
        return np.flatnonzero(self.swapped)

    def dirty_indices(self) -> np.ndarray:
        return np.flatnonzero(self.dirty)

    def lru_candidates(self, k: int, protect: np.ndarray | None = None
                       ) -> np.ndarray:
        """Indices of up to ``k`` least-recently-used resident pages.

        ``protect`` (a boolean mask) excludes pages from eviction — used to
        pin pages the migration manager is about to send.
        """
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        eligible = self.present if protect is None else (self.present & ~protect)
        cand = np.flatnonzero(eligible)
        if cand.size == 0:
            return cand
        if cand.size <= k:
            return cand
        ages = self.last_access[cand]
        part = np.argpartition(ages, k - 1)[:k]
        return cand[part]

    def non_present_in(self, lo: int, hi: int) -> np.ndarray:
        """Page indices in [lo, hi) that are not resident."""
        return lo + np.flatnonzero(~self.present[lo:hi])

    def sample_non_present(self, lo: int, hi: int, k: int,
                           rng: np.random.Generator) -> np.ndarray:
        """Up to ``k`` distinct non-resident pages sampled from [lo, hi).

        Used by the statistical workload model: these are the pages the
        tick's faulting accesses landed on.
        """
        missing = self.non_present_in(lo, hi)
        if missing.size <= k:
            return missing
        return rng.choice(missing, size=k, replace=False)
