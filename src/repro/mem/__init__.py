"""Host memory substrate.

Models the pieces of the Linux/KVM memory stack the paper's mechanisms
manipulate:

* :class:`PageSet` — per-VM page-state arrays (the analogue of the guest
  physical memory plus the host PTE bits exposed via ``/proc/pid/pagemap``:
  present, swapped + swap offset, dirty, last access);
* :class:`Cgroup` — per-VM memory reservation and swap I/O accounting (the
  signal the paper's WSS tracker reads via ``iostat``);
* :class:`SSDSwapDevice` / :class:`DeviceQueue` — a bandwidth-arbitrated
  swap block device (the paper's 30 GB SSD swap partition);
* :class:`HostMemoryManager` — admission, cgroup-capped residency, LRU
  eviction, swap-in/out and writeback, host-level capacity enforcement.
"""

from repro.mem.pages import PageSet
from repro.mem.cgroup import Cgroup
from repro.mem.cpu import CpuArbiter, CpuShare
from repro.mem.device import DeviceQueue, SSDSwapDevice
from repro.mem.manager import HostMemoryManager

__all__ = [
    "Cgroup",
    "CpuArbiter",
    "CpuShare",
    "DeviceQueue",
    "HostMemoryManager",
    "PageSet",
    "SSDSwapDevice",
]
