"""SLO-aware shedding scenario: who pays for the rebalance?

An overloaded host runs one *serving* tenant (a closed-loop KV workload
with an attached throughput SLO) next to two idle *batch* VMs. The
watermark trigger fires and must shed load:

* the **blind** arm uses the default largest-first selector — it picks
  the serving VM (the biggest), and the tenant eats the migration's
  degradation window as SLO violation-seconds;
* the **aware** arm passes :func:`repro.telemetry.slo_aware_selector`,
  which sheds the SLO-free batch VMs first — two migrations instead of
  one, but the serving tenant never leaves its host.

The :class:`~repro.telemetry.SloMonitor` accrues violation-seconds per
tenant and attributes each violation window to the migration that
caused it (stop-and-copy / post-copy / live-copy / colocated), and a
:class:`~repro.telemetry.PressureIndex` publishes per-rack and cluster
pressure throughout. The ablation gate asserts the aware arm's
violation-seconds are strictly below the blind arm's — the measured
version of "migrate the cheap VMs".

Everything is deterministic: same seed ⇒ identical violation ledgers
and byte-identical metrics exports (CI re-runs and ``cmp``-checks the
JSONL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.setup import preload_dataset
from repro.cluster.world import World
from repro.core.base import MigrationConfig
from repro.core.trigger import WatermarkConfig
from repro.faults import FaultSchedule
from repro.sched import ClusterControlPlane, PlannerConfig, Topology
from repro.telemetry import (
    PressureIndex,
    SloMonitor,
    SloSpec,
    slo_aware_selector,
)
from repro.util import MiB
from repro.vm.vm import VmState
from repro.workloads.kv import KeyValueWorkload, ycsb_redis_params

__all__ = ["SloScenarioConfig", "SloLab", "make_slo", "slo_run",
           "slo_ablation"]


@dataclass(frozen=True)
class SloScenarioConfig:
    """Two racks, one hot host; MiB scale for sub-second runs."""

    __test__ = False

    dt: float = 0.1
    seed: int = 0
    net_bandwidth_bps: float = 20e6
    uplink_bps: float = 40e6
    host_memory_bytes: float = 96 * MiB
    host_os_bytes: float = 2 * MiB
    #: the serving tenant — largest VM on the hot host, so the blind
    #: largest-first selector picks it
    serving_vm_bytes: float = 24 * MiB
    serving_dataset_bytes: float = 16 * MiB
    #: the two SLO-free batch VMs the aware selector sheds instead
    batch_vm_bytes: float = 20 * MiB
    vmd_server_bytes: float = 256 * MiB
    #: ops/s floor for the serving tenant — between the worst
    #: no-migration window (~8k ops/s during warm-up; steady state is
    #: ~16.7k) and the migration-degraded window (~4k), so only
    #: migration-induced degradation breaches it
    slo_min_throughput: float = 6000.0
    probe_interval_s: float = 1.0
    technique: str = "agile"
    watermark: WatermarkConfig = field(default_factory=lambda: WatermarkConfig(
        high_watermark=0.6, low_watermark=0.45, check_interval_s=1.0))
    migration: MigrationConfig = field(default_factory=lambda: MigrationConfig(
        backlog_cap_bytes=4 * MiB, stopcopy_threshold_bytes=256 * 2 ** 10))


@dataclass
class SloLab:
    """A wired SLO scenario plus its probes."""

    world: World
    topology: Topology
    control: ClusterControlPlane
    monitor: SloMonitor
    pressure: PressureIndex
    config: SloScenarioConfig
    serving_vm: str
    batch_vms: list[str]

    def run(self, until: float) -> None:
        self.world.run(until=until)

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for report in self.control.supervisor.attempts:
            key = report.outcome.value if report.outcome else "in-flight"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def migrated_vms(self) -> list[str]:
        return sorted({r.vm_name for r in self.control.supervisor.attempts})


def make_slo(config: Optional[SloScenarioConfig] = None,
             blind: bool = False, tracer=None, metrics=None) -> SloLab:
    """Wire the scenario.

    Rack ``r0``: ``r0h0`` is the hot host (serving tenant + two batch
    VMs, aggregate WSS over the high watermark), ``r0h1`` is a spare.
    Rack ``r1``: two empty spares. ``blind`` selects the default
    largest-first trigger policy; otherwise the trigger uses the
    SLO-aware selector fed by the monitor.
    """
    cfg = config or SloScenarioConfig()
    world = World(dt=cfg.dt, seed=cfg.seed,
                  net_bandwidth_bps=cfg.net_bandwidth_bps,
                  tracer=tracer, metrics=metrics)
    topo = Topology(uplink_bps=cfg.uplink_bps)
    world.use_topology(topo)
    for rack, hosts in (("r0", ("r0h0", "r0h1")),
                        ("r1", ("r1h0", "r1h1"))):
        topo.add_rack(rack)
        for name in hosts:
            world.add_host(name, cfg.host_memory_bytes,
                           host_os_bytes=cfg.host_os_bytes, rack=rack)
    world.add_client_host()
    world.add_vmd([("vmd0", cfg.vmd_server_bytes)],
                  placement_chunk_bytes=4 * MiB)

    def place(name: str, nbytes: float) -> None:
        vm = world.add_vm(name, nbytes, "r0h0", page_size=4096)
        ns = world.vmd.create_namespace(name)
        world.hosts["r0h0"].place_vm(vm, nbytes, ns)

    place("srv0", cfg.serving_vm_bytes)
    batch = ["b0", "b1"]
    for name in batch:
        place(name, cfg.batch_vm_bytes)
        preload_dataset(world.vms[name], world.manager_of("r0h0"),
                        cfg.batch_vm_bytes)

    srv = world.vms["srv0"]
    preload_dataset(srv, world.manager_of("r0h0"),
                    cfg.serving_dataset_bytes,
                    cold_tail_bytes=cfg.serving_vm_bytes
                    - cfg.serving_dataset_bytes)
    wl = KeyValueWorkload(
        srv, world.network, "client", world.manager_of, world.recorder,
        world.rng("wl.srv0"), dataset_bytes=cfg.serving_dataset_bytes,
        params=ycsb_redis_params(), cpu_of=world.cpu_of,
        sim_now=lambda: world.sim.now)
    world.add_workload(wl)

    world.attach_faults(FaultSchedule())
    control = ClusterControlPlane(
        world, technique=cfg.technique, health_aware=True,
        planner_config=PlannerConfig(
            min_headroom_bytes=2 * MiB,
            project_watermark=cfg.watermark.high_watermark,
            move_cooldown_s=10.0),
        migration_config=cfg.migration,
        workload_of=lambda name: wl if name == "srv0" else None,
        exclude_hosts=("vmd0",))

    monitor = SloMonitor(
        world, interval_s=cfg.probe_interval_s,
        attempts=lambda: (control.supervisor.in_flight()
                          + control.supervisor.attempts))
    monitor.attach("srv0", SloSpec(min_throughput=cfg.slo_min_throughput),
                   workload=wl)
    pressure = PressureIndex(
        world,
        health=control.health.state if control.health else None)

    def wss_of() -> dict[str, float]:
        host = world.hosts["r0h0"]
        out: dict[str, float] = {}
        for name in sorted(host.vms):
            vm = world.vms[name]
            if vm.migrating or vm.state is VmState.TERMINATED:
                continue
            out[name] = host.memory.binding(name).cgroup.reservation_bytes
        return out

    select = None if blind else slo_aware_selector(monitor)
    control.add_trigger("r0h0", wss_of, config=cfg.watermark,
                        select=select)

    return SloLab(world=world, topology=topo, control=control,
                  monitor=monitor, pressure=pressure, config=cfg,
                  serving_vm="srv0", batch_vms=batch)


def slo_run(blind: bool = False,
            config: Optional[SloScenarioConfig] = None,
            until: float = 40.0, tracer=None, metrics=None) -> dict:
    """Run one arm and distill the violation ledger.

    The distillation carries everything the ablation gate compares:
    per-tenant violation-seconds, the per-migration attribution map,
    which VMs actually moved, attempt outcomes, and the pressure peaks.
    """
    lab = make_slo(config, blind=blind, tracer=tracer, metrics=metrics)
    lab.run(until=until)
    return {
        "lab": lab,
        "arm": "blind" if blind else "aware",
        "violation_s": lab.monitor.total_violation_s,
        "by_tenant": lab.monitor.violation_seconds(),
        "attribution": lab.monitor.attribution(),
        "migrated": lab.migrated_vms(),
        "outcomes": lab.outcome_counts(),
        "serving_throughput": lab.monitor._probes["srv0"].throughput,
        "pressure_cluster": lab.pressure.cluster,
    }


def slo_ablation(config: Optional[SloScenarioConfig] = None,
                 until: float = 40.0) -> dict:
    """Both arms, same seed: the aware selector must strictly reduce
    the serving tenant's violation-seconds."""
    aware = slo_run(blind=False, config=config, until=until)
    blind = slo_run(blind=True, config=config, until=until)
    return {
        "aware": aware,
        "blind": blind,
        "delta_violation_s": blind["violation_s"] - aware["violation_s"],
    }
