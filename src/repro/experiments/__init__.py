"""Experiment runners: one entry point per paper table/figure.

These are the library-level drivers behind ``benchmarks/`` and the
``python -m repro.experiments`` CLI. Each runner builds the §V testbed
scenario, executes it, and returns a plain dict of the quantities the
paper reports, so downstream code (benches, notebooks, the CLI) only
formats results.
"""

from repro.experiments.runners import (
    MIGRATE_AT,
    TABLE1_WINDOW,
    pressure_run,
    single_vm_run,
    wss_run,
)

__all__ = [
    "MIGRATE_AT",
    "TABLE1_WINDOW",
    "pressure_run",
    "single_vm_run",
    "wss_run",
]
