"""Scenario executions for every experiment in the paper's §V.

Runs are pure functions of their parameters (deterministic seeds), so
callers may cache them; the benchmark suite keeps a session-wide memo
and the CLI runs them directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.scenarios import (
    TestbedConfig,
    make_pressure_scenario,
    make_single_vm_lab,
    make_wss_lab,
)
from repro.metrics import TimeSeries, recovery_time
from repro.util import GiB

__all__ = ["MIGRATE_AT", "TABLE1_WINDOW", "pressure_run", "single_vm_run",
           "wss_run"]

#: migration trigger time for the KV pressure runs (the paper's 400 s)
MIGRATE_AT = 400.0
#: Table I averages application performance over a fixed 300 s window
#: from migration start (§V-C: "over 300 seconds")
TABLE1_WINDOW = 300.0


def _avg_series(world, n_vms: int) -> TimeSeries:
    sers = [world.recorder.series(f"vm{i}.throughput") for i in range(n_vms)]
    ts = TimeSeries("avg")
    vs = np.mean([s.v for s in sers], axis=0)
    for t, v in zip(sers[0].t, vs):
        ts.append(t, v)
    return ts


def pressure_run(technique: str, kind: str = "kv",
                 config: Optional[TestbedConfig] = None,
                 seed: Optional[int] = None, tracer=None) -> dict:
    """§V-A / §V-C (Figures 4-6, Tables I-III): four VMs under memory
    pressure; one migrates away. Returns timeline + report metrics.

    ``seed`` overrides the default RNG seed when ``config`` is not
    supplied (an explicit ``config`` carries its own seed).
    """
    migrate_at = MIGRATE_AT if kind == "kv" else 100.0
    if config is None:
        config = TestbedConfig(seed=0 if seed is None else seed)
    lab = make_pressure_scenario(technique, kind, config=config,
                                 tracer=tracer)
    lab.run_until_migrated(start=migrate_at, limit=5000.0, settle=250.0)
    r = lab.report
    avg = _avg_series(lab.world, 4)
    # KV has an unloaded warm phase before the ramp; OLTP thrashes from
    # the start, so its reference level is the post-relief plateau.
    peak = (avg.between(80.0, 140.0).mean() if kind == "kv"
            else avg.between(r.end_time + 30, r.end_time + 240).mean())
    return {
        "technique": technique,
        "kind": kind,
        "migrate_at": migrate_at,
        "report": r,
        "avg_series": avg,
        "peak": peak,
        "thrash": avg.between(migrate_at - 40, migrate_at).mean(),
        "during": avg.between(migrate_at, r.end_time).mean(),
        "after": avg.between(r.end_time + 30, r.end_time + 240).mean(),
        "table1": avg.between(migrate_at, migrate_at + TABLE1_WINDOW).mean(),
        "recovery_90": recovery_time(avg, start=migrate_at,
                                     target=0.9 * peak)
        if kind == "kv" else None,
        "total_time": r.total_time,
        "total_gib": r.total_bytes / GiB,
    }


def single_vm_run(technique: str, size_gib: float, busy: bool,
                  config: Optional[TestbedConfig] = None,
                  seed: Optional[int] = None, tracer=None) -> dict:
    """§V-B (Figures 7-8): one idle or busy VM on a 6 GB host."""
    if config is None:
        config = TestbedConfig(seed=0 if seed is None else seed)
    lab = make_single_vm_lab(technique, size_gib * GiB, busy=busy,
                             config=config, tracer=tracer)
    resident_before = lab.migrate_vm.pages.resident_bytes()
    lab.run_until_migrated(start=30.0, limit=8000.0)
    r = lab.report
    return {
        "technique": technique,
        "size_gib": size_gib,
        "busy": busy,
        "resident_gib": resident_before / GiB,
        "total_time": r.total_time,
        "total_gib": r.total_bytes / GiB,
        "downtime": r.downtime,
        "rounds": r.rounds,
        "report": r,
    }


def wss_run(config: Optional[TestbedConfig] = None,
            seed: Optional[int] = None, tracer=None) -> dict:
    """§V-D (Figures 9-10): transparent WSS tracking with a mid-run
    working-set change exercising re-convergence."""
    if config is None:
        config = TestbedConfig(seed=3 if seed is None else seed)
    lab = make_wss_lab(
        query_plan=[(0.0, 1.0 * GiB), (400.0, 1.5 * GiB)],
        config=config, tracer=tracer)
    lab.run(until=800.0)
    rec = lab.world.recorder
    return {
        "reservation": rec.series("vm0.reservation"),
        "swap_rate": rec.series("vm0.swap_rate"),
        "throughput": rec.series("vm0.throughput"),
        "tracker": lab.tracker,
    }
