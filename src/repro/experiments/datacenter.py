"""Datacenter-scale scenario: racks, correlated faults, and the control
plane rebalancing VMs across them.

:func:`make_datacenter` wires an N-rack cluster whose hosts run the
Agile stack under the :class:`~repro.sched.ClusterControlPlane`;
:func:`datacenter_run` executes it against a fault schedule and distills
the outcome counters the ablation bench and tests assert on.

The scenario is deliberately workload-free: per-VM working-set sizes are
supplied by deterministic ramp functions (``wss_ramp``), so the
watermark triggers, planner, and fault machinery are exercised without
stochastic workload noise — two same-seed runs are tick-identical, and
the MiB-scale sizes keep a full run under a second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.setup import preload_dataset
from repro.cluster.world import World
from repro.core.base import MigrationConfig, MigrationOutcome
from repro.core.trigger import WatermarkConfig
from repro.faults import FaultKind, FaultSchedule, FaultSpec
from repro.sched import ClusterControlPlane, PlannerConfig, Topology
from repro.util import MiB
from repro.vm.vm import VmState

__all__ = ["DatacenterConfig", "Datacenter", "churn_config", "churn_run",
           "datacenter_run", "honeypot_schedule", "make_datacenter"]


def honeypot_schedule() -> FaultSchedule:
    """The correlated-failure timeline of the fault-aware ablation.

    The big-memory last rack ("the honeypot") flaps: a first crash while
    the watermark triggers are deciding where to shed load, then — after
    enough time for blind migrations to land there — a long second
    crash. A health-aware planner sees the first crash (DOWN, then
    RECENTLY_FAILED through the cooldown) and routes around the rack; a
    health-blind planner is lured by its headroom and loses the migrated
    VMs to the second crash.
    """
    return FaultSchedule([
        FaultSpec(FaultKind.RACK_CRASH, "r2", at=0.5, duration=5.5),
        FaultSpec(FaultKind.RACK_CRASH, "r2", at=11.5, duration=30.0),
    ])


@dataclass(frozen=True)
class DatacenterConfig:
    """Small-but-structured cluster: MiB scale for sub-second runs."""

    __test__ = False

    n_racks: int = 3
    hosts_per_rack: int = 4
    #: nest racks into pods (every ``racks_per_pod`` racks share one
    #: pod) and pods into AZs; 0 keeps the historical flat topology
    racks_per_pod: int = 0
    pods_per_az: int = 0
    dt: float = 0.1
    seed: int = 0
    #: host NIC bandwidth (bytes/s)
    net_bandwidth_bps: float = 20e6
    #: ToR uplink bandwidth — half the rack's aggregate NIC capacity
    uplink_bps: float = 20e6
    host_memory_bytes: float = 80 * MiB
    host_os_bytes: float = 1 * MiB
    #: hosts in the *last* rack get this much memory instead — the rack
    #: is a headroom honeypot that a health-blind planner gravitates to
    big_host_memory_bytes: float = 160 * MiB
    vm_memory_bytes: float = 32 * MiB
    #: background VMs parked on every middle-rack host
    filler_vm_bytes: float = 16 * MiB
    #: overloaded first-rack hosts run this many VMs each
    vms_per_hot_host: int = 2
    vmd_server_bytes: float = 512 * MiB
    cooldown_s: float = 30.0
    health_aware: bool = True
    replan_after_aborts: int = 1
    #: planner knobs; None derives churn-aware defaults (reservation on,
    #: projection at the scenario's high watermark, cooldown, min-gain,
    #: EWMA forecast) — pass an explicit config to ablate them
    planner: Optional[PlannerConfig] = None
    #: install watermark triggers on every host (not just the hot rack),
    #: so a destination pushed over its watermark alerts too — required
    #: to even *observe* rebalance ping-pong
    trigger_all_hosts: bool = True
    #: per-VM move cooldown for the derived planner defaults
    vm_move_cooldown_s: float = 10.0
    watermark: WatermarkConfig = field(default_factory=lambda: WatermarkConfig(
        high_watermark=0.7, low_watermark=0.45, check_interval_s=1.0))
    migration: MigrationConfig = field(default_factory=lambda: MigrationConfig(
        backlog_cap_bytes=4 * MiB, stopcopy_threshold_bytes=256 * 2 ** 10))


@dataclass
class Datacenter:
    """A wired datacenter plus the control plane driving it."""

    world: World
    topology: Topology
    control: ClusterControlPlane
    config: DatacenterConfig
    #: VMs the overloaded hosts will shed (migration candidates)
    hot_vms: list[str]

    def run(self, until: float) -> None:
        self.world.run(until=until)

    # -- outcome distillation ------------------------------------------------
    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for report in self.control.supervisor.attempts:
            key = report.outcome.value if report.outcome else "in-flight"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def failed_or_aborted(self) -> int:
        """Attempts that did not complete (ABORTED, FAILED, or RETRIED —
        a retried attempt *was* an abort)."""
        bad = (MigrationOutcome.ABORTED, MigrationOutcome.FAILED,
               MigrationOutcome.RETRIED)
        return sum(1 for r in self.control.supervisor.attempts
                   if r.outcome in bad)

    def vm_unavailable_seconds(self, until: float) -> float:
        return self.world.faults.log.vm_unavailable_seconds(until)

    def dead_vms(self) -> list[str]:
        return sorted(n for n, vm in self.world.vms.items()
                      if vm.state is VmState.TERMINATED)


def _rack_name(i: int) -> str:
    return f"r{i}"


def _host_name(rack: int, j: int) -> str:
    return f"r{rack}h{j}"


def make_datacenter(schedule: Optional[FaultSchedule] = None,
                    config: Optional[DatacenterConfig] = None,
                    tracer=None, metrics=None) -> Datacenter:
    """Wire the rebalance scenario.

    * rack ``r0``: every host is overloaded (``vms_per_hot_host`` VMs
      whose combined WSS crosses the high watermark) — the shed sources;
    * middle racks (``r1``...): one small filler VM per host — healthy
      destinations with moderate headroom;
    * the last rack: empty hosts with double memory — the best-scoring
      destination on headroom alone, and the rack the fault schedule is
      expected to crash (the honeypot the health tracker defuses);
    * VMD donors live on two out-of-topology hosts so donor capacity
      survives rack crashes (donor loss is exercised in the tests).

    The fault schedule is attached *before* the control plane so the
    health tracker sees every injection.
    """
    cfg = config or DatacenterConfig()
    if cfg.n_racks < 2:
        raise ValueError("the scenario needs at least two racks")
    world = World(dt=cfg.dt, seed=cfg.seed,
                  net_bandwidth_bps=cfg.net_bandwidth_bps, tracer=tracer,
                  metrics=metrics)
    topo = Topology(uplink_bps=cfg.uplink_bps)
    world.use_topology(topo)

    last = cfg.n_racks - 1
    for i in range(cfg.n_racks):
        pod = None
        if cfg.racks_per_pod > 0:
            p = i // cfg.racks_per_pod
            pod_name = f"pod{p}"
            if pod_name not in topo.pods:
                az = None
                if cfg.pods_per_az > 0:
                    az_name = f"az{p // cfg.pods_per_az}"
                    if az_name not in topo.azs:
                        topo.add_az(az_name)
                    az = az_name
                topo.add_pod(pod_name, az=az)
            pod = pod_name
        topo.add_rack(_rack_name(i), pod=pod)
        mem = (cfg.big_host_memory_bytes if i == last
               else cfg.host_memory_bytes)
        for j in range(cfg.hosts_per_rack):
            world.add_host(_host_name(i, j), mem,
                           host_os_bytes=cfg.host_os_bytes,
                           rack=_rack_name(i))

    world.add_vmd([("vmd0", cfg.vmd_server_bytes),
                   ("vmd1", cfg.vmd_server_bytes)],
                  placement_chunk_bytes=4 * MiB)

    # VMs: hot rack overloaded, middle racks lightly filled.
    hot_vms: list[str] = []
    vm_seq = 0

    def place(host_name: str, nbytes: float, hot: bool) -> None:
        nonlocal vm_seq
        name = f"vm{vm_seq}"
        vm_seq += 1
        vm = world.add_vm(name, nbytes, host_name, page_size=4096)
        ns = world.vmd.create_namespace(name)
        world.hosts[host_name].place_vm(vm, nbytes, ns)
        preload_dataset(vm, world.manager_of(host_name), nbytes)
        if hot:
            hot_vms.append(name)

    for j in range(cfg.hosts_per_rack):
        for _ in range(cfg.vms_per_hot_host):
            place(_host_name(0, j), cfg.vm_memory_bytes, hot=True)
    for i in range(1, last):
        for j in range(cfg.hosts_per_rack):
            place(_host_name(i, j), cfg.filler_vm_bytes, hot=False)

    if schedule is not None:
        world.attach_faults(schedule)
    else:
        world.attach_faults(FaultSchedule())

    planner_cfg = cfg.planner
    if planner_cfg is None:
        # churn-aware defaults: charge in-flight demand, refuse landings
        # that would cross the scenario's own high watermark, and damp
        # re-sheds with cooldown + gain margin + a short EWMA forecast
        planner_cfg = PlannerConfig(
            min_headroom_bytes=2 * MiB,
            project_watermark=cfg.watermark.high_watermark,
            move_cooldown_s=cfg.vm_move_cooldown_s,
            min_gain=0.05,
            forecast_alpha=0.3)
    control = ClusterControlPlane(
        world, technique="agile", health_aware=cfg.health_aware,
        cooldown_s=cfg.cooldown_s,
        planner_config=planner_cfg,
        migration_config=cfg.migration,
        replan_after_aborts=cfg.replan_after_aborts,
        exclude_hosts=("vmd0", "vmd1"))

    # Watermark triggers on the hot rack: WSS = full reservation of every
    # resident, non-migrating VM (idle-but-committed memory).
    def wss_of_host(host_name: str):
        def wss() -> dict[str, float]:
            host = world.hosts[host_name]
            out: dict[str, float] = {}
            for name in sorted(host.vms):
                vm = world.vms[name]
                if vm.migrating or vm.state is VmState.TERMINATED:
                    continue
                out[name] = host.memory.binding(
                    name).cgroup.reservation_bytes
            return out
        return wss

    if cfg.trigger_all_hosts:
        monitored = sorted(world.hosts)
    else:
        monitored = [_host_name(0, j) for j in range(cfg.hosts_per_rack)]
    for name in monitored:
        control.add_trigger(name, wss_of_host(name), config=cfg.watermark)

    return Datacenter(world=world, topology=topo, control=control,
                      config=cfg, hot_vms=hot_vms)


def datacenter_run(schedule: Optional[FaultSchedule] = None,
                   config: Optional[DatacenterConfig] = None,
                   until: float = 60.0, tracer=None,
                   metrics=None) -> dict:
    """Run the rebalance scenario and distill the outcome.

    Returns the counters the ablation compares: migration attempt
    outcomes, VM-unavailable seconds, dead VMs, and the planner's
    decision log (the determinism witness). ``tracer`` (a
    :class:`repro.obs.Tracer`) records the run's sim-clock trace.
    """
    dc = make_datacenter(schedule, config, tracer=tracer,
                         metrics=metrics)
    dc.run(until=until)
    planner = dc.control.planner
    return {
        "dc": dc,
        "outcomes": dc.outcome_counts(),
        "failed_or_aborted": dc.failed_or_aborted(),
        "unavailable_s": dc.vm_unavailable_seconds(until),
        "dead_vms": dc.dead_vms(),
        "plan_log": list(planner.log),
        "deferrals": dict(planner.deferrals),
        "fault_log": dc.world.faults.log.describe(),
    }


def churn_config(churn_aware: bool = True, seed: int = 0
                 ) -> DatacenterConfig:
    """The rebalance ping-pong scenario (fault-free).

    The last rack is turned from a big-memory honeypot into a *small*
    one: empty 40 MiB hosts whose free-memory *fraction* (1.0) out-scores
    every middle-rack filler host, but whose absolute usable memory
    (39 MiB) means any 32 MiB landing immediately crosses the 0.7 high
    watermark. A naive planner (no reservation, no projection — the
    pre-fix behavior, ``churn_aware=False``) sends concurrent sheds
    there, double-booking hosts and re-shedding every landed VM; the
    aware planner's projection rejects the trap outright and its
    reservations spread the concurrent sheds across the middle rack.

    Congestion penalty and admission caps are equalized across both arms
    (``congestion_weight=0``, 2 per host, 8 per uplink) so the ablation
    isolates reservation + projection + hysteresis.
    """
    caps = dict(max_per_host=2, max_per_uplink=8, congestion_weight=0.0)
    if churn_aware:
        planner = PlannerConfig(min_headroom_bytes=4 * MiB,
                                project_watermark=0.7,
                                move_cooldown_s=10.0,
                                min_gain=0.05,
                                forecast_alpha=0.3,
                                **caps)
    else:
        planner = PlannerConfig(reserve_in_flight=False, **caps)
    return DatacenterConfig(seed=seed,
                            big_host_memory_bytes=40 * MiB,
                            filler_vm_bytes=12 * MiB,
                            planner=planner)


def churn_run(churn_aware: bool = True, seed: int = 0,
              until: float = 40.0, tracer=None, metrics=None) -> dict:
    """Run the churn scenario; see :func:`churn_config`.

    Adds churn-specific distillations to the :func:`datacenter_run`
    result: ``migrations`` (total plans dispatched, including replans)
    and ``resheds`` — (vm, landed_at, replanned_at) tuples for every VM
    re-planned within ``window_s`` of landing, the ping-pong signature.
    """
    res = datacenter_run(None, churn_config(churn_aware, seed),
                         until=until, tracer=tracer, metrics=metrics)
    planner = res["dc"].control.planner
    res["migrations"] = sum(1 for line in planner.log
                            if line.startswith("plan#"))
    res["resheds"] = resheds_within(planner, window_s=10.0)
    return res


def resheds_within(planner, window_s: float) -> list[tuple]:
    """(vm, landed_at, replanned_at) for every completed plan whose VM
    got a *new* plan within ``window_s`` of landing — each one is a
    migration the cluster paid for twice."""
    landings: dict[str, list[float]] = {}
    for plan, outcome in planner.completed:
        if outcome == "completed" and plan.done_at is not None:
            landings.setdefault(plan.vm, []).append(plan.done_at)
    out = []
    plans = [p for p, _ in planner.completed] + list(planner.active.values())
    for plan in plans:
        for landed in landings.get(plan.vm, ()):
            if 0 < plan.at - landed <= window_s:
                out.append((plan.vm, landed, plan.at))
    return sorted(set(out))
