"""CLI: regenerate any of the paper's tables and figures.

Usage::

    python -m repro.experiments fig4          # pre-copy timeline
    python -m repro.experiments fig6          # Agile timeline
    python -m repro.experiments fig7 --sizes 2,6,10 --busy
    python -m repro.experiments tab2
    python -m repro.experiments fig9
    python -m repro.experiments dc            # datacenter rebalance
    python -m repro.experiments churn         # rebalance ping-pong gate
    python -m repro.experiments scale         # 200-host perf harness
    python -m repro.experiments fleet --quick # tenant-churn scheduler
    python -m repro.experiments fleet --ablate  # swap vs greedy gate
    python -m repro.experiments flashcrowd      # clone scale-out
    python -m repro.experiments flashcrowd --ablate  # clone vs fullcopy
    python -m repro.experiments slo             # SLO-aware shedding
    python -m repro.experiments slo --ablate    # aware vs blind gate

``--metrics PATH`` attaches a live :class:`~repro.telemetry.MetricsRegistry`
to the run and exports it — Prometheus text when PATH ends in ``.prom``,
deterministic JSONL otherwise (same seed ⇒ byte-identical file).

Heavy experiments (the pressure scenarios, the Figure 7/8 sweeps) take
minutes of wall-clock time each. ``scale --quick`` is the CI-sized run;
``scale --json BENCH_scale.json`` records the trajectory, and
``--baseline <file>`` turns the run into a regression gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runners import (
    MIGRATE_AT,
    TABLE1_WINDOW,
    pressure_run,
    single_vm_run,
    wss_run,
)
from repro.metrics.ascii import sparkline as _spark
from repro.util import MiB

TECHNIQUES = ["pre-copy", "post-copy", "agile"]
FIG_TECH = {"fig4": "pre-copy", "fig5": "post-copy", "fig6": "agile"}


def sparkline(series, t1, width=70):
    sub = series.between(0.0, t1).resample(t1 / width)
    return _spark(sub.v, width)


def make_tracer(args):
    """A live Tracer when ``--trace`` was given, else None (NullTracer
    semantics downstream: zero instrumentation overhead)."""
    if not args.trace:
        return None
    from repro.obs.tracer import Tracer
    return Tracer()


def export_trace(tracer, path: str) -> None:
    """Write the collected trace: Chrome JSON (default) or JSONL."""
    if tracer is None:
        return
    from repro.obs.export import trace_to_chrome, trace_to_jsonl
    tracer.finish()
    if path.endswith(".jsonl"):
        trace_to_jsonl(tracer, path)
    else:
        trace_to_chrome(tracer, path)
    print(f"  trace: {len(tracer.events)} events -> {path}")


def make_metrics(args):
    """A live MetricsRegistry when ``--metrics`` was given, else None
    (NULL_METRICS semantics downstream: zero instrumentation cost)."""
    if not getattr(args, "metrics", None):
        return None
    from repro.telemetry import MetricsRegistry
    return MetricsRegistry()


def export_metrics(registry, path: str) -> None:
    """Write the collected metrics: JSONL (default) or Prometheus text
    when ``path`` ends in ``.prom``."""
    if registry is None:
        return
    from repro.telemetry import metrics_to_jsonl, metrics_to_prometheus
    if path.endswith(".prom"):
        metrics_to_prometheus(registry, path)
    else:
        metrics_to_jsonl(registry, path)
    print(f"  metrics: {len(registry)} instruments -> {path}")


def cmd_timeline(fig: str, seed=None, tracer=None) -> None:
    technique = FIG_TECH[fig]
    res = pressure_run(technique, "kv", seed=seed, tracer=tracer)
    end = res["report"].end_time
    print(f"Figure {fig[-1]} — avg YCSB throughput, {technique} "
          f"(ramp@150s, migrate@{MIGRATE_AT:.0f}s):")
    print(f"  |{sparkline(res['avg_series'], end + 250.0)}|")
    print(f"  peak {res['peak']:,.0f} ops/s; thrash {res['thrash']:,.0f}; "
          f"during {res['during']:,.0f}; after {res['after']:,.0f}")
    print(f"  migration {res['total_time']:.0f} s; recovery to 90% "
          f"{res['recovery_90']:.0f} s")


def cmd_sweep(which: str, sizes: list[float], busy: bool,
              seed=None) -> None:
    fig = "7" if which == "fig7" else "8"
    field = "total_time" if which == "fig7" else "total_gib"
    unit = "s" if which == "fig7" else "GiB"
    print(f"Figure {fig} — {'migration time' if fig == '7' else 'data'} "
          f"({unit}), {'busy' if busy else 'idle'} VM, 6 GB host:")
    print("  VM GiB   " + "".join(f"{s:>9.0f}" for s in sizes))
    for t in TECHNIQUES:
        row = "".join(f"{single_vm_run(t, s, busy, seed=seed)[field]:9.1f}"
                      for s in sizes)
        print(f"  {t:<9s}{row}")


def cmd_table(which: str, seed=None) -> None:
    for kind in ("kv", "oltp"):
        name = "YCSB/Redis" if kind == "kv" else "Sysbench"
        rows = {t: pressure_run(t, kind, seed=seed) for t in TECHNIQUES}
        if which == "tab1":
            print(f"Table I — avg {name} performance over "
                  f"{TABLE1_WINDOW:.0f} s:")
            for t in TECHNIQUES:
                print(f"  {t:<10s} {rows[t]['table1']:10.1f}")
        elif which == "tab2":
            print(f"Table II — total migration time (s), {name}:")
            for t in TECHNIQUES:
                print(f"  {t:<10s} {rows[t]['total_time']:10.1f}")
        else:
            print(f"Table III — data transferred (MB), {name}:")
            for t in TECHNIQUES:
                mb = rows[t]["report"].total_bytes / MiB
                print(f"  {t:<10s} {mb:10.0f}")


def cmd_datacenter(seed=None, health_aware=True, tracer=None,
                   quick=False, metrics=None) -> None:
    from repro.experiments.datacenter import (
        DatacenterConfig, datacenter_run, honeypot_schedule)
    cfg = DatacenterConfig(seed=seed if seed is not None else 0,
                           health_aware=health_aware)
    res = datacenter_run(honeypot_schedule(), cfg,
                         until=30.0 if quick else 60.0, tracer=tracer,
                         metrics=metrics)
    mode = "health-aware" if health_aware else "health-blind"
    print(f"Datacenter rebalance under a flapping rack ({mode}):")
    for line in res["plan_log"]:
        print(f"  {line}")
    print(f"  outcomes: {res['outcomes']}; "
          f"bad attempts: {res['failed_or_aborted']}; "
          f"unavailable {res['unavailable_s']:g} s; "
          f"dead VMs: {res['dead_vms'] or 'none'}")


def cmd_churn(seed=None, quick=False, tracer=None,
              metrics=None) -> int:
    """The churn ablation as a CI gate: a churn-aware planner must not
    migrate more than the naive one on the ping-pong scenario."""
    from repro.experiments.datacenter import churn_run
    until = 20.0 if quick else 40.0
    seed = seed if seed is not None else 0
    naive = churn_run(churn_aware=False, seed=seed, until=until)
    aware = churn_run(churn_aware=True, seed=seed, until=until,
                      tracer=tracer, metrics=metrics)
    print("Rebalance churn ablation (honeypot watermark trap):")
    for label, res in (("naive", naive), ("aware", aware)):
        print(f"  {label:<6s} migrations={res['migrations']:3d}  "
              f"re-sheds={len(res['resheds']):3d}  "
              f"deferrals={res['deferrals'] or '{}'}")
    if aware["migrations"] > naive["migrations"]:
        print("  FAIL: churn-aware planner migrated more than naive")
        return 1
    print("  gate ok: aware <= naive total migrations")
    return 0


def cmd_scale(args) -> int:
    from repro.perf.scale import (
        ScaleConfig, check_regression, commit_share, format_summary,
        load_json, run_scale, write_json)
    seed = args.seed if args.seed is not None else 0
    if args.hosts is not None and args.hosts >= 1000:
        # the tier-3 datapoint: 2 AZs x 5 pods x 10 racks x 10 hosts
        cfg = ScaleConfig.tier3(seed=seed, quick=args.quick)
        mode = f"tier3-{'quick' if args.quick else 'full'}"
    elif args.quick:
        cfg = ScaleConfig.quick(seed=seed)
        mode = "quick"
    else:
        cfg = ScaleConfig(seed=seed)
        mode = "full"
    tracer = make_tracer(args)
    res = run_scale(cfg, check_grants=not args.no_check,
                    with_cluster=not args.fabric_only,
                    with_commit=not args.fabric_only,
                    tracer=tracer,
                    repeats=1 if cfg.tiers == 3 else 2)
    print(f"Scale harness ({mode}, seed {seed}):")
    for line in format_summary(res):
        print(f"  {line}")
    export_trace(tracer, args.trace)
    if args.json:
        write_json(res, args.json)
        print(f"  wrote {args.json}")
    rc = 0
    if not res["fabric"].get("grants_match", True):
        print("  FAIL: fast-path grants diverged from the reference oracle")
        rc = 1
    if not res["fabric"].get("aggregated_grants_match", True):
        print("  FAIL: aggregated-fill grants diverged from the "
              "reference oracle")
        rc = 1
    if not res.get("commit", {}).get("states_match", True):
        print("  FAIL: batched commit state diverged from the scalar "
              "oracle")
        rc = 1
    if args.min_agg_speedup is not None:
        agg = res["fabric"].get("speedup_aggregated")
        if agg is None:
            print("  FAIL: --min-agg-speedup needs the aggregated arm")
            rc = 1
        elif agg < args.min_agg_speedup:
            print(f"  FAIL: aggregated speedup {agg:.1f}x below "
                  f"--min-agg-speedup {args.min_agg_speedup:g}")
            rc = 1
        else:
            print(f"  aggregation gate ok: {agg:.1f}x >= "
                  f"{args.min_agg_speedup:g}x vs reference")
    if args.max_commit_share is not None:
        share = commit_share(res)
        if share is None:
            print("  FAIL: --max-commit-share needs the profiled "
                  "cluster bench (drop --fabric-only)")
            rc = 1
        elif share > args.max_commit_share:
            print(f"  FAIL: tick.commit share {share:.2f} exceeds "
                  f"--max-commit-share {args.max_commit_share:g}")
            rc = 1
        else:
            print(f"  commit-share gate ok: {share:.2f} <= "
                  f"{args.max_commit_share:g}")
    if args.baseline:
        failures = check_regression(res, load_json(args.baseline),
                                    max_regression=args.max_regression)
        for failure in failures:
            print(f"  REGRESSION: {failure}")
        if failures:
            rc = 1
        else:
            print(f"  baseline check ok (floor {args.max_regression:g}x)")
    return rc


def cmd_fleet(args) -> int:
    """The tenant-churn fleet scenario, or its swap-vs-greedy ablation
    as a CI gate (swap-aware must not move more migration bytes)."""
    from repro.experiments.fleet import (
        FleetConfig, fleet_ablation, fleet_run, quick_config)
    seed = args.seed if args.seed is not None else 0
    if args.ablate:
        res = fleet_ablation(seed=seed, quick=args.quick)
        print("Fleet rebalance ablation (destination-swap vs greedy):")
        for label in ("greedy", "swap"):
            arm = res[label]
            print(f"  {label:<7s} {arm['summary']}")
            print(f"  {'':<7s} moved {arm['migration_bytes'] / MiB:.1f} "
                  f"MiB in {arm['rebalance']['moves']} moves "
                  f"({arm['rebalance']['swaps']} swaps); "
                  f"overloaded-host sightings "
                  f"{arm['rebalance']['overloaded_seen']}; rack "
                  f"imbalance {arm['rack_imbalance_bytes'] / MiB:.1f} MiB")
        if not res["swap_wins_bytes"]:
            print("  FAIL: swap-aware moved more bytes than greedy")
            return 1
        print("  gate ok: swap-aware <= greedy migration bytes")
        return 0
    cfg = quick_config(seed=seed) if args.quick else FleetConfig(seed=seed)
    if args.pattern:
        from dataclasses import replace
        cfg = replace(cfg, demand=replace(cfg.demand,
                                          pattern=args.pattern))
    cfg = replace_strategy(cfg, args.strategy) if args.strategy else cfg
    tracer = make_tracer(args)
    metrics = make_metrics(args)
    res = fleet_run(cfg, tracer=tracer, metrics=metrics)
    mode = "quick" if args.quick else "full"
    print(f"Fleet churn scenario ({mode}, seed {seed}, "
          f"{cfg.strategy} rebalancing, {cfg.demand.pattern} demand):")
    print(f"  {res['arrivals']} arrivals; {res['summary']}")
    reb = res["rebalance"]
    print(f"  rebalancer: {reb['moves']} moves ({reb['swaps']} swaps) "
          f"over {reb['rounds']} rounds; "
          f"{res['migration_bytes'] / MiB:.1f} MiB migrated")
    print(f"  rack imbalance {res['rack_imbalance_bytes'] / MiB:.1f} "
          f"MiB; {res['alive']} VMs alive at end")
    for line in res["placement_log"][-8:]:
        print(f"  {line}")
    export_trace(tracer, args.trace)
    export_metrics(metrics, args.metrics)
    return 0


def cmd_flashcrowd(args) -> int:
    """The flash-crowd scale-out scenario, or its clone-vs-fullcopy
    ablation as a CI gate (clones must reach N serving faster)."""
    from repro.experiments.flashcrowd import (
        FlashCrowdConfig, flashcrowd_ablation, flashcrowd_run,
        quick_config)
    seed = args.seed if args.seed is not None else 0
    if args.ablate:
        res = flashcrowd_ablation(seed=seed, quick=args.quick)
        print("Flash-crowd provisioning ablation (clone vs full-copy):")
        for label in ("clone", "fullcopy"):
            arm = res[label]
            t = arm["time_to_n_serving"]
            b = arm["bytes_to_serving"]
            print(f"  {label:<9s} {arm['summary']}")
            print(f"  {'':<9s} time-to-N-serving "
                  f"{'never' if t is None else f'{t:.2f}s'}; "
                  f"moved {0 if b is None else b / MiB:.1f} MiB to get "
                  f"there ({arm['provision_bytes'] / MiB:.1f} MiB total)")
        if not res["clone_wins_time"]:
            print("  FAIL: clone arm was not faster to N serving")
            return 1
        print("  gate ok: clones reached N serving before full copies")
        return 0
    cfg = (quick_config(seed=seed) if args.quick
           else FlashCrowdConfig(seed=seed))
    if args.provision:
        from dataclasses import replace
        cfg = replace(cfg, provision=args.provision)
    tracer = make_tracer(args)
    metrics = make_metrics(args)
    res = flashcrowd_run(cfg, tracer=tracer, metrics=metrics)
    mode = "quick" if args.quick else "full"
    t = res["time_to_n_serving"]
    print(f"Flash-crowd scale-out ({mode}, seed {seed}, "
          f"{res['provision']} provisioning):")
    print(f"  {res['arrivals']} arrivals ({cfg.n_replicas} hot); "
          f"{res['summary']}")
    print(f"  time to {cfg.serving_target} serving: "
          f"{'never' if t is None else f'{t:.2f}s'}; provisioning "
          f"moved {res['provision_bytes'] / MiB:.1f} MiB")
    for line in res["serving_log"]:
        print(f"  {line}")
    export_trace(tracer, args.trace)
    export_metrics(metrics, args.metrics)
    if args.json:
        import json
        doc = {k: res[k] for k in
               ("provision", "arrivals", "counters", "rejected",
                "placement_log", "serving_log", "clone_log",
                "time_to_n_serving", "bytes_to_serving",
                "provision_bytes", "alive", "summary")}
        doc["hot_serving"] = [[n, t] for n, t in res["hot_serving"]]
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"  wrote {args.json}")
    return 0


def cmd_slo(args) -> int:
    """The SLO-aware shedding scenario, or its aware-vs-blind ablation
    as a CI gate (the aware selector must strictly cut the serving
    tenant's violation-seconds)."""
    from repro.experiments.slo import SloScenarioConfig, slo_ablation, slo_run
    until = 15.0 if args.quick else 40.0
    config = SloScenarioConfig(
        seed=args.seed if args.seed is not None else 0)
    if args.ablate:
        res = slo_ablation(config=config, until=until)
        print("SLO-aware shedding ablation (aware vs blind selector):")
        for label in ("blind", "aware"):
            arm = res[label]
            print(f"  {label:<6s} violation {arm['violation_s']:g} s; "
                  f"migrated {','.join(arm['migrated'])}; "
                  f"outcomes {arm['outcomes']}")
            if arm["attribution"]:
                print(f"  {'':<6s} attribution {arm['attribution']}")
        blind_v = res["blind"]["violation_s"]
        aware_v = res["aware"]["violation_s"]
        if blind_v <= 0:
            print("  FAIL: blind arm accrued no violations "
                  "(scenario lost its teeth)")
            return 1
        if aware_v >= blind_v:
            print("  FAIL: aware selector did not reduce "
                  "violation-seconds")
            return 1
        print(f"  gate ok: aware {aware_v:g} s < blind {blind_v:g} s "
              f"violation-seconds")
        return 0
    tracer = make_tracer(args)
    metrics = make_metrics(args)
    res = slo_run(blind=args.slo_blind, config=config, until=until,
                  tracer=tracer, metrics=metrics)
    print(f"SLO-aware shedding ({res['arm']} selector):")
    print(f"  violation {res['violation_s']:g} s "
          f"(per tenant: {res['by_tenant']}); "
          f"migrated {','.join(res['migrated']) or 'none'}; "
          f"outcomes {res['outcomes']}")
    if res["attribution"]:
        print(f"  attribution: {res['attribution']}")
    print(f"  cluster pressure at end: {res['pressure_cluster']:.3f}")
    if metrics is not None:
        from repro.telemetry import render_dashboard
        print(render_dashboard(metrics, select="slo.*"))
        print(render_dashboard(metrics, select="pressure.*"))
    export_trace(tracer, args.trace)
    export_metrics(metrics, args.metrics)
    return 0


def replace_strategy(cfg, strategy: str):
    from dataclasses import replace
    return replace(cfg, strategy=strategy)


def cmd_wss(which: str, seed=None, tracer=None) -> None:
    res = wss_run(seed=seed, tracer=tracer)
    if which == "fig9":
        r = res["reservation"]
        print("Figure 9 — WSS tracking (reservation, MiB):")
        print(f"  |{sparkline(r, 800.0)}|")
        print(f"  phase 1 settle: {r.between(200, 400).mean() / MiB:,.0f} "
              f"MiB (WSS 1024); phase 2: "
              f"{r.between(600, 800).mean() / MiB:,.0f} MiB (WSS 1536)")
    else:
        t = res["throughput"].resample(5.0)
        print("Figure 10 — YCSB throughput under tracking:")
        print(f"  |{sparkline(t, 800.0)}|")
        print(f"  converged mean: {t.between(250, 400).mean():,.0f} ops/s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=["fig4", "fig5", "fig6", "fig7", "fig8",
                                 "fig9", "fig10", "tab1", "tab2", "tab3",
                                 "dc", "churn", "scale", "fleet",
                                 "flashcrowd", "slo"])
    parser.add_argument("--sizes", default="2,4,6,8,10,12",
                        help="VM sizes in GiB for fig7/fig8 sweeps")
    parser.add_argument("--busy", action="store_true",
                        help="busy VM for fig7/fig8 (default idle)")
    parser.add_argument("--health-blind", action="store_true",
                        help="disable the health-aware planner for the "
                             "dc scenario (ablation baseline)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment RNG seed (runs are "
                             "deterministic for a given seed)")
    parser.add_argument("--quick", action="store_true",
                        help="scale: CI-sized run (32 hosts, 120 ticks); "
                             "dc: run 30 sim-seconds instead of 60; "
                             "churn: 20 sim-seconds instead of 40; "
                             "fleet: 20 s of demand, ~32 s simulated; "
                             "flashcrowd: 6 replicas, 20 s simulated")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a sim-clock trace of the run; PATH "
                             "ending in .jsonl writes flat JSONL, "
                             "anything else Chrome trace-event JSON "
                             "(load in chrome://tracing or Perfetto). "
                             "Supported by fig4-6, fig9-10, dc, churn, "
                             "scale, fleet, flashcrowd, slo.")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="attach a live metrics registry and export "
                             "it to PATH: Prometheus text for .prom, "
                             "deterministic JSONL otherwise. Supported "
                             "by dc, churn, fleet, flashcrowd, slo.")
    parser.add_argument("--slo-blind", action="store_true",
                        help="slo: use the default largest-first "
                             "trigger selector instead of the "
                             "SLO-aware one (ablation baseline)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="scale/flashcrowd: write results to PATH "
                             "as JSON")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="scale: compare against a baseline JSON and "
                             "exit nonzero on regression")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="scale: allowed slowdown vs baseline "
                             "(default 2.0x)")
    parser.add_argument("--max-commit-share", type=float, default=None,
                        help="scale: fail if the cluster bench's "
                             "tick.commit wall-clock share exceeds this "
                             "fraction (requires the profiled cluster "
                             "bench)")
    parser.add_argument("--hosts", type=int, default=None,
                        help="scale: >= 1000 selects the three-tier "
                             "1000-host fabric (2 AZs x 5 pods x 10 "
                             "racks x 10 hosts with fan-in lanes); "
                             "combine with --quick for the CI-sized "
                             "variant")
    parser.add_argument("--min-agg-speedup", type=float, default=None,
                        help="scale: fail if the aggregated fill's "
                             "ticks/s speedup over the reference "
                             "oracle falls below this factor")
    parser.add_argument("--strategy", choices=["greedy", "swap"],
                        default=None,
                        help="fleet: rebalance strategy (default swap)")
    parser.add_argument("--provision", choices=["clone", "fullcopy"],
                        default=None,
                        help="flashcrowd: provisioning arm "
                             "(default clone)")
    parser.add_argument("--pattern",
                        choices=["bursty", "diurnal", "flash-crowd"],
                        default=None,
                        help="fleet: demand arrival pattern")
    parser.add_argument("--ablate", action="store_true",
                        help="fleet: run swap vs greedy on the same "
                             "demand stream and gate on migration bytes; "
                             "flashcrowd: clone vs full-copy, gated on "
                             "time to N serving replicas")
    parser.add_argument("--no-check", action="store_true",
                        help="scale: skip the fast-vs-reference grant "
                             "equality check (timing only)")
    parser.add_argument("--fabric-only", action="store_true",
                        help="scale: skip the commit bench and the "
                             "end-to-end cluster bench")
    args = parser.parse_args(argv)

    exp = args.experiment
    if args.trace and exp in ("fig7", "fig8", "tab1", "tab2", "tab3"):
        print(f"note: --trace is not supported for {exp} "
              f"(multi-run sweep); ignoring")
        args.trace = None
    tracer = make_tracer(args)
    if exp in FIG_TECH:
        cmd_timeline(exp, seed=args.seed, tracer=tracer)
    elif exp in ("fig7", "fig8"):
        sizes = [float(s) for s in args.sizes.split(",")]
        cmd_sweep(exp, sizes, args.busy, seed=args.seed)
    elif exp in ("tab1", "tab2", "tab3"):
        cmd_table(exp, seed=args.seed)
    elif exp == "dc":
        metrics = make_metrics(args)
        cmd_datacenter(seed=args.seed,
                       health_aware=not args.health_blind,
                       tracer=tracer, quick=args.quick, metrics=metrics)
        export_metrics(metrics, args.metrics)
    elif exp == "churn":
        metrics = make_metrics(args)
        rc = cmd_churn(seed=args.seed, quick=args.quick, tracer=tracer,
                       metrics=metrics)
        export_trace(tracer, args.trace)
        export_metrics(metrics, args.metrics)
        return rc
    elif exp == "scale":
        return cmd_scale(args)
    elif exp == "fleet":
        return cmd_fleet(args)
    elif exp == "flashcrowd":
        return cmd_flashcrowd(args)
    elif exp == "slo":
        return cmd_slo(args)
    else:
        cmd_wss(exp, seed=args.seed, tracer=tracer)
    if exp != "scale":
        export_trace(tracer, args.trace)
    return 0


if __name__ == "__main__":
    sys.exit(main())
