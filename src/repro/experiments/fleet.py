"""Fleet scenario: sustained tenant churn over a multi-rack cluster.

:func:`make_fleet` wires an N-rack cluster running the Agile stack and
puts the :mod:`repro.fleet` service in charge of the VM lifecycle: a
seeded demand stream boots KV and OLTP VMs through the filter/weigher
pipeline, VMs depart when their lease expires, one host is
decommissioned mid-run (the drain path), and the rebalancer sheds
overloaded hosts with the configured strategy.

Like the datacenter scenario, the fleet scenario is workload-free and
MiB-scale: churn itself is the load, so two same-seed runs are
tick-identical (byte-identical placement logs and traces) and a full
run stays under a few seconds.

:func:`fleet_ablation` runs the same demand stream under both
rebalance strategies and compares total migration bytes, watermark
breaches, rack imbalance, and rejected boots — the destination-swap
vs greedy gate CI enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cluster.world import World
from repro.core.base import MigrationConfig
from repro.faults import FaultSchedule
from repro.fleet import (
    AntiAffinityFilter,
    AvailabilityFilter,
    CongestionWeigher,
    DemandConfig,
    DemandGenerator,
    FleetHostView,
    FleetScheduler,
    FleetServiceConfig,
    HeadroomFilter,
    HeadroomWeigher,
    HealthFilter,
    PlacementPipeline,
    RackSpreadWeigher,
    RebalanceConfig,
    SwapRebalancer,
    WatermarkFilter,
)
from repro.sched import ClusterControlPlane, PlannerConfig, Topology
from repro.util import MiB

__all__ = ["FleetConfig", "Fleet", "ablation_config", "fleet_ablation",
           "fleet_run", "make_fleet", "quick_config"]


@dataclass(frozen=True)
class FleetConfig:
    """MiB-scale churn cluster: small enough for sub-second CI runs."""

    __test__ = False

    n_racks: int = 3
    hosts_per_rack: int = 3
    dt: float = 0.1
    seed: int = 0
    net_bandwidth_bps: float = 40e6
    uplink_bps: float = 60e6
    host_memory_bytes: float = 56 * MiB
    host_os_bytes: float = 1 * MiB
    vmd_server_bytes: float = 1024 * MiB
    #: simulated duration (the demand horizon plus drain time)
    until: float = 75.0
    #: rebalance strategy for the single-run scenario
    strategy: str = "swap"
    #: host decommissioned mid-run (None disables the drain leg)
    decommission_host: Optional[str] = "r0h0"
    decommission_at: float = 30.0
    health_aware: bool = True
    demand: DemandConfig = field(default_factory=lambda: DemandConfig(
        pattern="bursty", horizon_s=60.0, base_rate_per_s=0.6,
        n_tenants=6, mean_lifetime_s=30.0, min_lifetime_s=8.0))
    service: FleetServiceConfig = field(
        default_factory=FleetServiceConfig)
    rebalance: RebalanceConfig = field(default_factory=lambda:
        RebalanceConfig(interval_s=2.0, high_watermark=0.8,
                        target_watermark=0.65, max_moves_per_round=4))
    #: planner knobs; swaps need ``max_per_host >= 2`` (each host in a
    #: swap is simultaneously a source and a destination)
    planner: PlannerConfig = field(default_factory=lambda: PlannerConfig(
        min_headroom_bytes=2 * MiB, max_per_host=2, max_per_uplink=8,
        move_cooldown_s=6.0, forecast_alpha=0.0))
    migration: MigrationConfig = field(default_factory=lambda:
        MigrationConfig(backlog_cap_bytes=4 * MiB,
                        stopcopy_threshold_bytes=256 * 2 ** 10))
    #: placement pipeline knobs
    min_boot_headroom_bytes: float = 2 * MiB
    boot_watermark: float = 0.85
    anti_affinity_max: int = 3


def quick_config(seed: int = 0, **overrides) -> FleetConfig:
    """The CI-sized run: 20 s of demand, ~32 s simulated.

    Hotter than the full scenario (smaller hosts, faster arrivals,
    lower watermarks) so the short window still exercises all three
    lifecycle legs — boots, the drain, and rebalance moves.
    """
    demand = DemandConfig(pattern="bursty", horizon_s=20.0,
                          base_rate_per_s=0.9, n_tenants=6,
                          mean_lifetime_s=15.0, min_lifetime_s=5.0,
                          seed=seed)
    rebalance = RebalanceConfig(interval_s=2.0, high_watermark=0.7,
                                target_watermark=0.58,
                                max_moves_per_round=4)
    return FleetConfig(seed=seed, until=32.0, demand=demand,
                       host_memory_bytes=48 * MiB, rebalance=rebalance,
                       decommission_at=12.0, **overrides)


def ablation_config(seed: int = 0, quick: bool = False) -> FleetConfig:
    """The swap-vs-greedy comparison scenario: a flash crowd over a
    moderately loaded cluster.

    The regime matters: the strategies separate when every overload
    *can* be relieved (roomy destinations) but greedy pays big-VM bytes
    doing it — under saturation, greedy's failed sheds cost zero bytes
    and mask the difference. The flash spike overloads a few hosts
    while the rest keep headroom, which is exactly that regime.
    """
    demand = DemandConfig(
        pattern="flash-crowd", horizon_s=35.0 if quick else 60.0,
        base_rate_per_s=0.4, n_tenants=6, mean_lifetime_s=30.0,
        min_lifetime_s=8.0, flash_at=20.0, flash_duration_s=8.0,
        flash_factor=5.0, seed=seed)
    rebalance = RebalanceConfig(interval_s=2.0, high_watermark=0.75,
                                target_watermark=0.6,
                                max_moves_per_round=4)
    return FleetConfig(seed=seed, until=48.0 if quick else 75.0,
                       host_memory_bytes=72 * MiB, demand=demand,
                       rebalance=rebalance, decommission_host=None)


@dataclass
class Fleet:
    """A wired fleet scenario plus every service driving it."""

    world: World
    topology: Topology
    control: ClusterControlPlane
    view: FleetHostView
    scheduler: FleetScheduler
    rebalancer: SwapRebalancer
    #: the materialized demand stream (determinism witness)
    specs: list
    config: FleetConfig

    def run(self, until: Optional[float] = None) -> None:
        self.world.run(until=self.config.until if until is None
                       else until)

    # -- outcome distillation -------------------------------------------------
    def migration_bytes(self) -> float:
        """Bytes moved by every migration attempt (the ablation metric)."""
        return sum(r.total_bytes
                   for r in self.control.supervisor.attempts)

    def rack_imbalance(self) -> float:
        """Max-minus-min resident bytes across racks (retired and
        draining hosts excluded — an empty drained host is success,
        not imbalance)."""
        per_rack: dict[str, float] = {}
        for state in self.view.refresh().values():
            if state.rack is None or state.retired or state.draining:
                continue
            per_rack[state.rack] = per_rack.get(state.rack, 0.0) \
                + state.resident_bytes
        if not per_rack:
            return 0.0
        return max(per_rack.values()) - min(per_rack.values())


def _seeded_demand(cfg: FleetConfig) -> DemandConfig:
    """The demand config with the scenario seed folded in."""
    if cfg.demand.seed == cfg.seed:
        return cfg.demand
    return replace(cfg.demand, seed=cfg.seed)


def make_fleet(config: Optional[FleetConfig] = None,
               schedule: Optional[FaultSchedule] = None,
               tracer=None, metrics=None) -> Fleet:
    """Wire the churn scenario (world, control plane, fleet services).

    The demand stream is generated eagerly and scheduled up front;
    everything that happens afterwards is a deterministic function of
    the simulator's event order.
    """
    cfg = config or FleetConfig()
    world = World(dt=cfg.dt, seed=cfg.seed,
                  net_bandwidth_bps=cfg.net_bandwidth_bps, tracer=tracer,
                  metrics=metrics)
    topo = Topology(uplink_bps=cfg.uplink_bps)
    world.use_topology(topo)
    for i in range(cfg.n_racks):
        topo.add_rack(f"r{i}")
        for j in range(cfg.hosts_per_rack):
            world.add_host(f"r{i}h{j}", cfg.host_memory_bytes,
                           host_os_bytes=cfg.host_os_bytes,
                           rack=f"r{i}")
    world.add_vmd([("vmd0", cfg.vmd_server_bytes),
                   ("vmd1", cfg.vmd_server_bytes)],
                  placement_chunk_bytes=4 * MiB)
    world.attach_faults(schedule if schedule is not None
                        else FaultSchedule())

    control = ClusterControlPlane(
        world, technique="agile", health_aware=cfg.health_aware,
        planner_config=cfg.planner, migration_config=cfg.migration,
        exclude_hosts=("vmd0", "vmd1"))

    view = FleetHostView(world, control.planner, health=control.health,
                         exclude=("vmd0", "vmd1"))
    pipeline = PlacementPipeline(
        filters=[AvailabilityFilter(),
                 HealthFilter(allowed=("UP",)),
                 HeadroomFilter(cfg.min_boot_headroom_bytes),
                 WatermarkFilter(cfg.boot_watermark),
                 AntiAffinityFilter(cfg.anti_affinity_max)],
        weighers=[HeadroomWeigher(1.0),
                  RackSpreadWeigher(0.02),
                  CongestionWeigher(0.1)])
    scheduler = FleetScheduler(world, control.planner, view, pipeline,
                               config=cfg.service)
    # the view learns tenants from the scheduler's boot bookkeeping
    view.tenant_of = scheduler.tenant_by_vm.get
    rebalancer = SwapRebalancer(
        world, control.planner, view,
        config=replace(cfg.rebalance, strategy=cfg.strategy))

    specs = DemandGenerator(_seeded_demand(cfg)).generate()
    scheduler.run_demand(specs)
    rebalancer.start()
    if cfg.decommission_host is not None:
        world.sim.call_at(cfg.decommission_at, scheduler.decommission,
                          cfg.decommission_host)
    return Fleet(world=world, topology=topo, control=control, view=view,
                 scheduler=scheduler, rebalancer=rebalancer,
                 specs=specs, config=cfg)


def fleet_run(config: Optional[FleetConfig] = None,
              schedule: Optional[FaultSchedule] = None,
              tracer=None, metrics=None) -> dict:
    """Run the churn scenario and distill the outcome.

    ``placement_log`` + ``rebalance_log`` + ``plan_log`` are the
    determinism witnesses: two same-seed runs must produce them
    byte-identically (and byte-identical traces when recorded).
    """
    fleet = make_fleet(config, schedule, tracer=tracer,
                       metrics=metrics)
    fleet.run()
    sched = fleet.scheduler
    return {
        "fleet": fleet,
        "arrivals": len(fleet.specs),
        "counters": dict(sched.counters),
        "rebalance": dict(fleet.rebalancer.counters),
        "rejected": list(sched.rejected),
        "placement_log": list(sched.placement_log),
        "rebalance_log": list(fleet.rebalancer.log),
        "plan_log": list(fleet.control.planner.log),
        "migration_bytes": fleet.migration_bytes(),
        "rack_imbalance_bytes": fleet.rack_imbalance(),
        "alive": len(sched.running),
        "summary": sched.describe(),
    }


def fleet_ablation(seed: int = 0, quick: bool = False,
                   config: Optional[FleetConfig] = None) -> dict:
    """Destination-swap vs greedy rebalancing on one demand stream.

    Both arms see byte-for-byte the same arrivals, pipeline, and
    planner knobs; only the shedding strategy differs. The drain leg is
    disabled so the comparison isolates rebalancing (drains migrate the
    same VMs under both arms and would dilute the signal).
    """
    base = config or ablation_config(seed=seed, quick=quick)
    base = replace(base, decommission_host=None)
    arms = {}
    for strategy in ("greedy", "swap"):
        arms[strategy] = fleet_run(replace(base, strategy=strategy))
    return {
        "greedy": arms["greedy"],
        "swap": arms["swap"],
        "swap_wins_bytes": (arms["swap"]["migration_bytes"]
                            <= arms["greedy"]["migration_bytes"]),
    }
