"""Flash-crowd scenario: clone forks vs full-copy boots at scale-out.

A hot tenant's single parent VM suddenly needs N serving replicas (the
flash crowd) while a background churn stream keeps the cluster busy.
Two provisioning arms over the identical demand stream:

* ``clone`` — the :mod:`repro.clone` path: the first replica boot
  triggers a streamed snapshot of the parent into a shared VMD image;
  every replica forks against it and hydrates post-copy style (demand
  fetches for the hot set, umem paging from the live parent for pages
  the snapshot has not staged yet, background gather for the cold
  tail). A replica *serves* once its hot template fraction is resident.
* ``fullcopy`` — the baseline: each replica boot copies the parent's
  entire memory over the network before serving, one stream per
  replica, all contending on the parent host's uplink.

The headline metrics are **time to N serving replicas** (from the
flash) and **bytes moved to get there** — the agility claim, cashed in
as a provisioning primitive: clones serve after fetching only the hot
set, and move each cold byte once (scatter) instead of once per
replica.

Like the fleet scenario this is workload-free, MiB-scale, and
tick-deterministic: two same-seed runs produce byte-identical
placement/serving logs and traces. :func:`flashcrowd_ablation` is the
CI gate (clone must be strictly faster to N serving at seed 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.clone import CloneConfig, CloneManager
from repro.cluster.setup import preload_dataset
from repro.cluster.world import WORKLOAD_ORDER, World
from repro.core.base import MigrationConfig
from repro.faults import FaultSchedule
from repro.fleet import (
    AntiAffinityFilter,
    AvailabilityFilter,
    CongestionWeigher,
    DemandConfig,
    DemandGenerator,
    FleetHostView,
    FleetScheduler,
    FleetServiceConfig,
    HeadroomFilter,
    HeadroomWeigher,
    HealthFilter,
    PlacementPipeline,
    RackSpreadWeigher,
    VmSpec,
    WatermarkFilter,
)
from repro.net.channel import StreamChannel
from repro.sched import ClusterControlPlane, PlannerConfig, Topology
from repro.util import MiB

__all__ = ["FlashCrowd", "FlashCrowdConfig", "FullCopyProvisioner",
           "flashcrowd_ablation", "flashcrowd_run", "make_flashcrowd",
           "quick_config"]

PARENT_NAME = "hotparent"


@dataclass(frozen=True)
class FlashCrowdConfig:
    """MiB-scale flash crowd: small enough for sub-second CI runs."""

    __test__ = False

    n_racks: int = 3
    hosts_per_rack: int = 3
    dt: float = 0.1
    seed: int = 0
    net_bandwidth_bps: float = 40e6
    uplink_bps: float = 60e6
    host_memory_bytes: float = 96 * MiB
    host_os_bytes: float = 1 * MiB
    vmd_server_bytes: float = 2048 * MiB
    until: float = 30.0
    #: provisioning arm: ``clone`` or ``fullcopy``
    provision: str = "clone"
    #: the flash-crowd tenant and its pre-placed parent VM
    hot_tenant: str = "hot"
    parent_host: str = "r0h0"
    parent_memory_bytes: float = 24 * MiB
    #: the flash: N replica boots arriving in a tight stagger
    n_replicas: int = 8
    flash_at: float = 4.0
    replica_stagger_s: float = 0.2
    #: replicas that must be serving for the time-to-N metric
    serving_target: int = 8
    clone: CloneConfig = field(default_factory=CloneConfig)
    #: background churn — identical in both arms
    demand: DemandConfig = field(default_factory=lambda: DemandConfig(
        pattern="bursty", horizon_s=20.0, base_rate_per_s=0.4,
        n_tenants=4, mean_lifetime_s=20.0, min_lifetime_s=6.0))
    service: FleetServiceConfig = field(default_factory=lambda:
        FleetServiceConfig(boot_delay_s=0.5, clone_tenants=("hot",)))
    planner: PlannerConfig = field(default_factory=lambda: PlannerConfig(
        min_headroom_bytes=2 * MiB, max_per_host=2, max_per_uplink=8,
        move_cooldown_s=6.0, forecast_alpha=0.0))
    migration: MigrationConfig = field(default_factory=lambda:
        MigrationConfig(backlog_cap_bytes=4 * MiB,
                        stopcopy_threshold_bytes=256 * 2 ** 10))
    min_boot_headroom_bytes: float = 2 * MiB
    boot_watermark: float = 0.85
    anti_affinity_max: int = 3
    health_aware: bool = True

    def __post_init__(self):
        if self.provision not in ("clone", "fullcopy"):
            raise ValueError(f"unknown provision arm: {self.provision}")
        if self.serving_target > self.n_replicas:
            raise ValueError("serving_target exceeds n_replicas")


def quick_config(seed: int = 0, **overrides) -> FlashCrowdConfig:
    """The CI-sized run: 6 replicas, 20 s simulated."""
    demand = DemandConfig(pattern="bursty", horizon_s=14.0,
                          base_rate_per_s=0.4, n_tenants=4,
                          mean_lifetime_s=15.0, min_lifetime_s=5.0,
                          seed=seed)
    return FlashCrowdConfig(seed=seed, until=20.0, n_replicas=6,
                            serving_target=6, demand=demand, **overrides)


class FullCopyProvisioner:
    """Baseline boot path: hot-tenant replicas copy the parent's full
    memory over the network before serving.

    Installed as the scheduler's ``boot_fn``: background tenants fall
    through to the default boot (instantly resident, same as the clone
    arm), hot-tenant boots place an empty VM and open a
    :class:`~repro.net.channel.StreamChannel` from the parent host —
    the replica serves only once the last byte has landed.
    """

    def __init__(self, world: World, parent_host: str, hot_tenant: str,
                 on_serving=None, tracer=None):
        self.world = world
        self.parent_host = parent_host
        self.hot_tenant = hot_tenant
        self.on_serving = on_serving
        self.tracer = tracer if tracer is not None else world.tracer
        #: set after the scheduler exists (its bound default boot)
        self.fallback = None
        self.channels: list[StreamChannel] = []
        #: vm name -> (start, serving_time or None, bytes)
        self.reports: dict[str, dict] = {}

    def boot(self, spec: VmSpec, host_name: str) -> None:
        if spec.tenant != self.hot_tenant:
            self.fallback(spec, host_name)
            return
        world = self.world
        vm = world.add_vm(spec.name, spec.memory_bytes, host_name)
        ns = world.vmd.create_namespace(spec.name)
        world.hosts[host_name].place_vm(vm, spec.memory_bytes, ns)
        parent = world.vms[PARENT_NAME]
        binding = world.manager_of(parent.host).binding(PARENT_NAME)
        pages = binding.pages
        copy_bytes = float(pages.present.sum()
                           + pages.swapped.sum()) * pages.page_size
        chan = StreamChannel(world.sim, world.network, self.parent_host,
                             host_name, priority=1,
                             name=f"fullcopy:{spec.name}",
                             tracer=self.tracer)
        world.engine.add_participant(chan, order=WORKLOAD_ORDER)
        self.channels.append(chan)
        self.reports[spec.name] = {"start": world.now,
                                   "serving_time": None,
                                   "bytes": copy_bytes}
        span = self.tracer.async_begin(
            "clone", "fullcopy-boot", cat="clone",
            args={"vm": spec.name, "host": host_name,
                  "bytes": copy_bytes}) if self.tracer.enabled else 0
        chan.send(copy_bytes,
                  on_complete=lambda job, name=spec.name, c=chan,
                  s=span: self._copied(name, c, s))

    def _copied(self, name: str, chan: StreamChannel, span: int) -> None:
        world = self.world
        vm = world.vms.get(name)
        chan.close()
        world.engine.remove_participant(chan)
        if vm is None or vm.pages is None:
            return  # died mid-copy
        preload_dataset(vm, world.manager_of(vm.host), vm.memory_bytes)
        self.reports[name]["serving_time"] = world.now
        if span:
            self.tracer.async_end(span)
        if self.on_serving is not None:
            self.on_serving(name)

    def bytes_sent(self) -> float:
        """Bytes the full-copy arm pushed, partial streams included."""
        return sum(c.bytes_delivered for c in self.channels)


@dataclass
class FlashCrowd:
    """A wired flash-crowd scenario plus its serving bookkeeping."""

    world: World
    topology: Topology
    control: ClusterControlPlane
    view: FleetHostView
    scheduler: FleetScheduler
    clone: Optional[CloneManager]
    fullcopy: Optional[FullCopyProvisioner]
    #: background + hot demand (determinism witness)
    specs: list
    hot_specs: list
    config: FlashCrowdConfig
    serving_log: list[str] = field(default_factory=list)
    #: (vm name, sim time) per hot replica reaching serving
    hot_serving: list = field(default_factory=list)
    time_to_n_serving: Optional[float] = None
    bytes_to_serving: Optional[float] = None

    def run(self, until: Optional[float] = None) -> None:
        self.world.run(until=self.config.until if until is None
                       else until)

    def provision_bytes(self) -> float:
        """Bytes the provisioning substrate moved so far."""
        if self.clone is not None:
            return self.clone.provision_bytes()
        return self.fullcopy.bytes_sent()

    def note_serving(self, name: str) -> None:
        now = self.world.now
        self.serving_log.append(f"serve {name} @{now:g}s")
        self.hot_serving.append((name, now))
        if (self.time_to_n_serving is None
                and len(self.hot_serving) >= self.config.serving_target):
            self.time_to_n_serving = now - self.config.flash_at
            self.bytes_to_serving = self.provision_bytes()
            self.serving_log.append(
                f"target {self.config.serving_target} serving "
                f"@{now:g}s (+{self.time_to_n_serving:g}s)")


def _seeded_demand(cfg: FlashCrowdConfig) -> DemandConfig:
    if cfg.demand.seed == cfg.seed:
        return cfg.demand
    return replace(cfg.demand, seed=cfg.seed)


def _hot_specs(cfg: FlashCrowdConfig) -> list:
    return [VmSpec(name=f"hot{i}", tenant=cfg.hot_tenant,
                   memory_bytes=cfg.parent_memory_bytes, workload="kv",
                   arrival_s=cfg.flash_at + i * cfg.replica_stagger_s,
                   lifetime_s=None)
            for i in range(cfg.n_replicas)]


def make_flashcrowd(config: Optional[FlashCrowdConfig] = None,
                    schedule: Optional[FaultSchedule] = None,
                    tracer=None, metrics=None) -> FlashCrowd:
    """Wire the flash-crowd scenario for the configured arm.

    Both arms share everything up to the boot path: same cluster, same
    parent, same background churn, same placement pipeline. Only how a
    hot replica's memory reaches its host differs.
    """
    cfg = config or FlashCrowdConfig()
    world = World(dt=cfg.dt, seed=cfg.seed,
                  net_bandwidth_bps=cfg.net_bandwidth_bps, tracer=tracer,
                  metrics=metrics)
    topo = Topology(uplink_bps=cfg.uplink_bps)
    world.use_topology(topo)
    for i in range(cfg.n_racks):
        topo.add_rack(f"r{i}")
        for j in range(cfg.hosts_per_rack):
            world.add_host(f"r{i}h{j}", cfg.host_memory_bytes,
                           host_os_bytes=cfg.host_os_bytes,
                           rack=f"r{i}")
    world.add_vmd([("vmd0", cfg.vmd_server_bytes),
                   ("vmd1", cfg.vmd_server_bytes)],
                  placement_chunk_bytes=4 * MiB)
    world.attach_faults(schedule if schedule is not None
                        else FaultSchedule())

    control = ClusterControlPlane(
        world, technique="agile", health_aware=cfg.health_aware,
        planner_config=cfg.planner, migration_config=cfg.migration,
        exclude_hosts=("vmd0", "vmd1"))

    # the hot parent: pre-placed and preloaded before any demand
    parent = world.add_vm(PARENT_NAME, cfg.parent_memory_bytes,
                          cfg.parent_host)
    parent_ns = world.vmd.create_namespace(PARENT_NAME)
    world.hosts[cfg.parent_host].place_vm(
        parent, cfg.parent_memory_bytes, parent_ns)
    preload_dataset(parent, world.manager_of(cfg.parent_host),
                    cfg.parent_memory_bytes)

    view = FleetHostView(world, control.planner, health=control.health,
                         exclude=("vmd0", "vmd1"))
    pipeline = PlacementPipeline(
        filters=[AvailabilityFilter(),
                 HealthFilter(allowed=("UP",)),
                 HeadroomFilter(cfg.min_boot_headroom_bytes),
                 WatermarkFilter(cfg.boot_watermark),
                 AntiAffinityFilter(cfg.anti_affinity_max)],
        weighers=[HeadroomWeigher(1.0),
                  RackSpreadWeigher(0.02),
                  CongestionWeigher(0.1)])

    clone = fullcopy = None
    if cfg.provision == "clone":
        clone = CloneManager(world, config=cfg.clone)
        scheduler = FleetScheduler(world, control.planner, view, pipeline,
                                   config=cfg.service, clone=clone)
    else:
        fullcopy = FullCopyProvisioner(world, cfg.parent_host,
                                       cfg.hot_tenant, tracer=tracer)
        scheduler = FleetScheduler(world, control.planner, view, pipeline,
                                   config=cfg.service,
                                   boot_fn=fullcopy.boot)
        fullcopy.fallback = scheduler._default_boot
    scheduler.register_clone_parent(PARENT_NAME, cfg.hot_tenant)
    view.tenant_of = scheduler.tenant_by_vm.get

    hot = _hot_specs(cfg)
    background = DemandGenerator(_seeded_demand(cfg)).generate()
    scheduler.run_demand(background + hot)

    fc = FlashCrowd(world=world, topology=topo, control=control,
                    view=view, scheduler=scheduler, clone=clone,
                    fullcopy=fullcopy, specs=background, hot_specs=hot,
                    config=cfg)
    if clone is not None:
        clone.on_serving = fc.note_serving
    else:
        fullcopy.on_serving = fc.note_serving
    return fc


def flashcrowd_run(config: Optional[FlashCrowdConfig] = None,
                   schedule: Optional[FaultSchedule] = None,
                   tracer=None, metrics=None) -> dict:
    """Run one arm and distill the outcome.

    ``placement_log`` + ``serving_log`` (+ ``clone_log`` in the clone
    arm) are the determinism witnesses: two same-seed runs must produce
    them byte-identically, and byte-identical traces when recorded.
    """
    fc = make_flashcrowd(config, schedule, tracer=tracer,
                         metrics=metrics)
    fc.run()
    sched = fc.scheduler
    cfg = fc.config
    return {
        "scenario": fc,
        "provision": cfg.provision,
        "arrivals": len(fc.specs) + len(fc.hot_specs),
        "counters": dict(sched.counters),
        "rejected": list(sched.rejected),
        "placement_log": list(sched.placement_log),
        "serving_log": list(fc.serving_log),
        "clone_log": list(fc.clone.log) if fc.clone is not None else [],
        "hot_serving": list(fc.hot_serving),
        "time_to_n_serving": fc.time_to_n_serving,
        "bytes_to_serving": fc.bytes_to_serving,
        "provision_bytes": fc.provision_bytes(),
        "alive": len(sched.running),
        "summary": (fc.clone.describe() if fc.clone is not None
                    else f"fullcopy: {len(fc.fullcopy.reports)} streams, "
                         f"{fc.fullcopy.bytes_sent() / MiB:.1f} MiB sent"),
    }


def flashcrowd_ablation(seed: int = 0, quick: bool = False,
                        config: Optional[FlashCrowdConfig] = None) -> dict:
    """Clone forks vs full-copy boots on one demand stream.

    Both arms see byte-for-byte the same arrivals, cluster, and
    pipeline; only the hot tenant's provisioning path differs. The gate
    is strict: clones must reach N serving replicas *faster* (the whole
    point of memory-streaming forks), with bytes-moved reported for
    both arms.
    """
    base = config or (quick_config(seed=seed) if quick
                      else FlashCrowdConfig(seed=seed))
    arms = {}
    for provision in ("clone", "fullcopy"):
        arms[provision] = flashcrowd_run(replace(base,
                                                 provision=provision))
    clone_t = arms["clone"]["time_to_n_serving"]
    full_t = arms["fullcopy"]["time_to_n_serving"]
    return {
        "clone": arms["clone"],
        "fullcopy": arms["fullcopy"],
        "clone_time": clone_t,
        "fullcopy_time": full_t,
        "clone_bytes": arms["clone"]["bytes_to_serving"],
        "fullcopy_bytes": arms["fullcopy"]["bytes_to_serving"],
        "clone_wins_time": (clone_t is not None
                            and (full_t is None or clone_t < full_t)),
    }
