"""Watermark-based migration trigger and VM selection (§III-B).

When the aggregate working-set size of the VMs on a host exceeds a *high
watermark* of host memory, migration begins; the selection picks the
**fewest** VMs whose departure brings the aggregate below the *low
watermark*, so no further migration is needed until the high watermark
is reached again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.metrics.recorder import Recorder
from repro.sim.kernel import Simulator
from repro.sim.periodic import PeriodicTask
from repro.telemetry.instruments import NULL_METRICS

__all__ = ["WatermarkTrigger", "select_vms_to_migrate"]


def select_vms_to_migrate(wss_by_vm: dict[str, float],
                          target_bytes: float) -> list[str]:
    """Pick the fewest VMs whose removal brings the aggregate WSS to at
    most ``target_bytes``.

    Exact minimal *count* is achieved greedily by evicting the largest
    working sets first; ties break lexicographically for determinism.
    """
    total = sum(wss_by_vm.values())
    if total <= target_bytes:
        return []
    chosen: list[str] = []
    remaining = total
    for name, wss in sorted(wss_by_vm.items(),
                            key=lambda kv: (-kv[1], kv[0])):
        chosen.append(name)
        remaining -= wss
        if remaining <= target_bytes:
            break
    return chosen


@dataclass(frozen=True)
class WatermarkConfig:
    #: fractions of usable host memory
    high_watermark: float = 0.95
    low_watermark: float = 0.80
    check_interval_s: float = 5.0
    #: quiet period after a re-arm before the next crossing may fire —
    #: hysteresis against re-alerting on the transient pressure spike a
    #: just-finished migration leaves behind
    rearm_delay_s: float = 0.0

    def __post_init__(self):
        if not 0 < self.low_watermark < self.high_watermark <= 1.5:
            raise ValueError("need 0 < low < high")
        if self.rearm_delay_s < 0:
            raise ValueError("rearm_delay_s must be non-negative")


class WatermarkTrigger:
    """Periodically compares aggregate WSS against the watermarks.

    ``wss_of`` supplies each VM's current WSS estimate (typically the
    :class:`~repro.core.wss.WssTracker` reservation). When the high
    watermark is crossed, ``migrate`` is called with the selected VM
    names; the trigger then pauses until re-armed (the paper migrates
    once and waits for the next high-watermark crossing). A ``migrate``
    callback that could not act — a planner with no eligible destination
    — may return ``False``: the trigger stays armed (and the crossing is
    not counted) so the alert re-fires on the next check.
    """

    def __init__(self, sim: Simulator, usable_bytes: float,
                 wss_of: Callable[[], dict[str, float]],
                 migrate: Callable[[list[str]], None],
                 recorder: Optional[Recorder] = None,
                 config: Optional[WatermarkConfig] = None,
                 select: Optional[Callable] = None,
                 metrics=None):
        if usable_bytes <= 0:
            raise ValueError("usable_bytes must be positive")
        self.sim = sim
        self.usable_bytes = float(usable_bytes)
        self.wss_of = wss_of
        self.migrate = migrate
        self.recorder = recorder
        self.config = config or WatermarkConfig()
        #: VM-selection policy ``(wss_by_vm, target_bytes) -> [names]``;
        #: the paper's largest-first greedy by default. An SLO-aware
        #: control plane swaps in a policy that sheds serving tenants
        #: last (see :func:`repro.telemetry.slo_aware_selector`).
        self.select = select or select_vms_to_migrate
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._armed = True
        self._arm_at = 0.0
        self.trigger_count = 0
        self._task = PeriodicTask(sim, self.config.check_interval_s,
                                  self._check)

    def stop(self) -> None:
        self._task.cancel()

    def rearm(self) -> None:
        """Allow the next high-watermark crossing to trigger again
        (called when every commanded migration has completed). With a
        configured ``rearm_delay_s`` the trigger stays quiet for that
        long first, so the post-landing pressure transient settles."""
        self._armed = True
        self._arm_at = self.sim.now + self.config.rearm_delay_s

    def _check(self, now: float) -> None:
        wss = self.wss_of()
        aggregate = sum(wss.values())
        if self.recorder is not None:
            self.recorder.record("trigger.aggregate_wss", now, aggregate)
        if not self._armed or now < self._arm_at:
            return
        high = self.config.high_watermark * self.usable_bytes
        if aggregate <= high:
            return
        target = self.config.low_watermark * self.usable_bytes
        selected = self.select(wss, target)
        if not selected:
            return
        self._armed = False
        handled = self.migrate(selected)
        if handled is False:
            self._armed = True  # nobody took the alert; keep watching
            return
        self.trigger_count += 1
        if self.metrics.enabled:
            self.metrics.counter("trigger.alerts").inc()
            self.metrics.gauge("trigger.last_overshoot").set(
                aggregate / self.usable_bytes)
