"""Destination fault handling (the UMEM driver + UMEMD process, §IV-F).

After the CPU state switches to the destination, the VM faults on pages
it does not yet have. The paper's UMEMD thread routes each fault:

* swapped bit set → read the page from the per-VM swap device (VMD);
* otherwise → request the page from the source over a dedicated,
  prioritized channel.

In this reproduction the *swap-device* path is simply the VM's normal
fault path at the destination (its binding's fault queue points at the
portable per-VM device), so :class:`UmemFaultHandler` implements the
remaining piece: the source-owed pages and the demand-paging channel,
including the coupling to the **source's** swap device — a demand-paged
page that is swapped out at the source must first be read from swap
there, which is why post-copy faults are so expensive while the source
is thrashing (§V-C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import MigrationReport, PendingScan
from repro.mem.device import SwapBackend
from repro.mem.pages import PageSet
from repro.net.network import Network
from repro.obs.tracer import NULL_TRACER
from repro.telemetry.instruments import NULL_METRICS

__all__ = ["UmemFaultHandler"]


class UmemFaultHandler:
    """Implements :class:`repro.workloads.FaultRouter` for the post-copy
    phase of post-copy and Agile migration."""

    def __init__(self, network: Network, src_host: str, dst_host: str,
                 vm_name: str, scan: PendingScan, src_pages: PageSet,
                 src_backend: SwapBackend, report: MigrationReport,
                 priority: int = 0, tracer=None, track: str = ""):
        self.scan = scan
        self.src_pages = src_pages
        self.report = report
        self.flow = network.open_flow(src_host, dst_host, priority=priority,
                                      name=f"umem:{vm_name}")
        self.read_q = src_backend.open_queue(f"{vm_name}.demand.read",
                                             "read", host=src_host)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track = track or f"vm:{vm_name}"
        self._sigma = 0.0
        #: live-metrics sink; owners (engines, the clone fetcher)
        #: re-assign it when the world runs with metrics enabled
        self.metrics = NULL_METRICS

    # -- FaultRouter protocol ---------------------------------------------------
    def source_pending_mask(self) -> Optional[np.ndarray]:
        return self.scan.pending

    def demand_source(self, n_bytes: float) -> None:
        pending = self.scan.pending
        n_pending = int(np.count_nonzero(pending))
        if n_pending > 0:
            n_swapped = int(np.count_nonzero(pending & self.src_pages.swapped))
            self._sigma = n_swapped / n_pending
        else:
            self._sigma = 0.0
        self.flow.demand += n_bytes
        if self._sigma > 0:
            self.read_q.demand += n_bytes * self._sigma

    def granted_source(self) -> float:
        g = self.flow.granted
        if self._sigma > 0:
            g = min(g, self.read_q.granted / self._sigma)
        return g

    def notify_fetched(self, idx: np.ndarray) -> None:
        self.scan.remove(idx)
        nbytes = float(idx.size) * self.src_pages.page_size
        self.report.demand_bytes += nbytes
        self.report.pages_demand_fetched += int(idx.size)
        if self.metrics.enabled and idx.size:
            self.metrics.rate("umem.demand_fetch_bytes").mark(nbytes)
        if self.tracer.enabled and idx.size:
            # cause attribution for fault-service cost: sigma is the
            # swapped fraction of the still-pending set — high sigma
            # means the source swap device is on the critical path
            self.tracer.instant(
                self.track, "demand-fetch", cat="umem",
                args={"pages": int(idx.size), "bytes": nbytes,
                      "sigma": float(self._sigma)})

    def close(self) -> None:
        self.flow.close()
        self.read_q.close()
