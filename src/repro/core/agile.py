"""Agile live migration — the paper's contribution (§III-§IV).

One live pre-copy round walks the whole address space, but:

* resident pages are sent in full (like pre-copy round 1);
* swapped pages are **not** transferred — only their swap offset goes to
  the destination (a SWAPPED-flag message, ~16 bytes), and the
  destination sets its *swapped bitmap* so later faults on those pages
  read the portable per-VM swap device (VMD) directly.

After the single round, the CPU state and the dirty bitmap move, the VM
resumes at the destination, and the pages dirtied during the round are
actively pushed / demand-paged exactly like post-copy. The per-VM swap
device stays attached to the destination, so no residual state remains
at the source once the push drains.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MigrationManager, MigrationPhase, PendingScan
from repro.core.umem import UmemFaultHandler

__all__ = ["AgileMigration"]

#: bytes on the wire for one SWAPPED-flag message (offset + flags)
SWAP_OFFSET_MSG_BYTES = 16


class AgileMigration(MigrationManager):
    """Hybrid pre/post-copy that never moves cold pages.

    The destination swap backend defaults to the source binding's backend
    — which for Agile must be the VM's portable VMD namespace, making the
    cold pages reachable from the destination without transfer.
    """

    technique = "agile"

    def start(self) -> None:
        if self.phase is not MigrationPhase.IDLE:
            raise RuntimeError("migration already started")
        self._begin()
        self.vm.migrating = True
        pages = self.src_pages
        allocated = pages.present | pages.swapped
        pages.dirty[:] = False
        self.scan = PendingScan(allocated)
        self._finish_sent = False
        self.umem: UmemFaultHandler | None = None
        self.phase = MigrationPhase.LIVE_ROUND
        self.report.rounds = 1
        self._trace_phase("live-round",
                          {"pending_pages": int(self.scan.remaining)})

    # -- tick protocol ---------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        super().pre_tick(dt)
        # The live round needs no swap reads (cold pages are skipped); the
        # push phase may need them for pages dirtied-then-evicted.
        if self.phase is MigrationPhase.PUSH:
            self._demand_swap_reads(dt)

    def commit_tick(self, dt: float) -> None:
        super().commit_tick(dt)
        if self.phase is MigrationPhase.LIVE_ROUND:
            self._live_round_tick()
        elif self.phase is MigrationPhase.PUSH:
            self._push_tick()

    # -- phase 1: the single live round ----------------------------------------
    def _live_round_tick(self) -> None:
        page = self._page_size()
        room_bytes = max(0.0, self.config.backlog_cap_bytes
                         - self.stream.backlog)
        res, swp = self.scan.take_weighted(
            room_bytes, 0, self.src_pages.swapped,
            resident_cost=float(page), swapped_cost=SWAP_OFFSET_MSG_BYTES,
            free_swapped=True)
        if res.size or swp.size:
            data_bytes = float(res.size) * page
            meta_bytes = float(swp.size) * SWAP_OFFSET_MSG_BYTES
            if res.size:
                self.src_pages.clear_dirty(res)
            if swp.size:
                self.src_pages.clear_dirty(swp)
            self.report.precopy_bytes += data_bytes
            self.report.metadata_bytes += meta_bytes
            self.report.pages_sent += int(res.size)
            self.report.pages_skipped_swapped += int(swp.size)
            self.stream.send(
                data_bytes + meta_bytes, info=(res, swp),
                on_complete=lambda job: self._deliver_round(job.info))
        if self.scan.exhausted():
            self._enter_handover()

    def _deliver_round(self, info: tuple[np.ndarray, np.ndarray]) -> None:
        res, swp = info
        if res.size:
            self._deliver_to_dst(res)
        if swp.size:
            # SWAPPED-flag messages: record offsets in the swap-offset
            # table and set the destination's swapped bitmap (§IV-F).
            self.dst_pages.swapped[swp] = True
            self.dst_pages.swap_clean[swp] = True

    def _enter_handover(self) -> None:
        """Round done: suspend, ship CPU state + dirty bitmap (FIFO behind
        the in-flight page data), and prepare the push scan."""
        self._suspend_vm()
        self.phase = MigrationPhase.STOPCOPY
        pages = self.src_pages
        dirty = pages.dirty & (pages.present | pages.swapped)
        pages.dirty[:] = False
        self.scan = PendingScan(dirty)
        self._trace_phase("handover",
                          {"dirty_pages": int(self.scan.remaining)})
        self.umem = UmemFaultHandler(
            self.network, self.src.name, self.dst.name, self.vm.name,
            self.scan, pages, self.src_binding.backend, self.report,
            priority=self.config.demand_priority,
            tracer=self.tracer, track=self._track)
        self.umem.metrics = self.metrics
        bitmap_bytes = pages.n_pages / 8.0
        self.report.metadata_bytes += self.vm.cpu_state_bytes + bitmap_bytes
        self.stream.send(self.vm.cpu_state_bytes + bitmap_bytes,
                         on_complete=lambda _job: self._cpu_arrived())

    def _cpu_arrived(self) -> None:
        self._switch_to_destination()
        if self.workload is not None:
            self.workload.fault_router = self.umem
        self.phase = MigrationPhase.PUSH
        self._trace_phase("push",
                          {"remaining_pages": int(self.scan.remaining)})

    # -- phase 2: active push of round-dirtied pages -------------------------------
    def _push_tick(self) -> None:
        page = self._page_size()
        dev_pages = int(self.src_read_q.granted // page)
        room_pages = self._stream_room_pages()
        res, swp = self.scan.take(room_pages, dev_pages,
                                  self.src_pages.swapped)
        sent = np.concatenate([res, swp])
        if sent.size:
            nbytes = float(sent.size) * page
            self.report.push_bytes += nbytes
            self.report.pages_sent += int(sent.size)
            self.stream.send(nbytes, info=sent,
                             on_complete=lambda job:
                             self._deliver_to_dst(job.info))
        if self.scan.exhausted() and not self._finish_sent:
            # FIFO sentinel: fires only after every queued page delivers.
            self._finish_sent = True
            self.stream.send(0.0, on_complete=self._all_delivered)

    def _abort_cleanup(self) -> None:
        if getattr(self, "umem", None) is not None:
            self.umem.close()

    def _all_delivered(self, _job) -> None:
        if self.umem is not None:
            self.umem.close()
        # Disconnecting the source from the per-VM swap device happens in
        # _finish (the source-side queues close); the device itself
        # remains attached at the destination (§IV-B).
        self._finish()
