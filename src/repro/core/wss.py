"""Transparent working-set-size tracking (§IV-D).

The hypervisor estimates each VM's working set *without guest agents* by
watching swap activity on the VM's dedicated swap device (the paper reads
``iostat`` on the per-VM device; we read the same counters from the VM's
cgroup accounting):

* swap rate S above threshold τ  → the VM is missing pages it needs:
  grow the reservation by β (> 1);
* swap rate S at or below τ      → probe downward: shrink by α (< 1)
  until the threshold is breached, so the reservation hugs the true WSS.

Adjustments run every 2 s until the reservation stabilizes, then every
30 s; a burst of swap activity in the slow regime (a workload change)
switches back to fast convergence. Paper parameters: α = 0.95, β = 1.03,
τ = 4 KB/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.mem.manager import HostMemoryManager
from repro.metrics.recorder import Recorder
from repro.obs.tracer import NULL_TRACER
from repro.sim.kernel import Simulator
from repro.sim.periodic import PeriodicTask

__all__ = ["WssTracker", "WssTrackerConfig"]


@dataclass(frozen=True)
class WssTrackerConfig:
    alpha: float = 0.95
    beta: float = 1.03
    #: swap-rate threshold in bytes/s (paper: 4 KB/s)
    tau_bps: float = 4096.0
    fast_interval_s: float = 2.0
    slow_interval_s: float = 30.0
    #: consecutive samples within tolerance to declare the WSS stable.
    #: The controller inherently oscillates within the α/β band (~±5 %),
    #: so the tolerance must exceed that envelope.
    stable_samples: int = 6
    stable_tolerance: float = 0.15
    #: swap rate (× τ) that re-triggers fast convergence
    reactivate_factor: float = 8.0
    #: never shrink below this floor (bytes)
    min_reservation_bytes: float = 64 * 2 ** 20

    def __post_init__(self):
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.beta <= 1:
            raise ValueError("beta must be > 1")
        if self.tau_bps <= 0:
            raise ValueError("tau must be positive")


class WssTracker:
    """Periodic reservation controller for one VM."""

    def __init__(self, sim: Simulator, vm_name: str,
                 manager_of: Callable[[], HostMemoryManager],
                 recorder: Recorder,
                 config: Optional[WssTrackerConfig] = None,
                 max_reservation_bytes: float = float("inf"),
                 tracer=None):
        self.sim = sim
        self.vm_name = vm_name
        #: callable so the tracker follows the VM across migrations
        self.manager_of = manager_of
        self.recorder = recorder
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.config = config or WssTrackerConfig()
        self.max_reservation_bytes = max_reservation_bytes
        self._last_traffic: Optional[float] = None
        self._last_time: Optional[float] = None
        self._recent: list[float] = []
        self._fast = True
        self._task = PeriodicTask(sim, self.config.fast_interval_s,
                                  self._adjust)
        self.enabled = True

    # -- control ------------------------------------------------------------
    def stop(self) -> None:
        self.enabled = False
        self._task.cancel()

    @property
    def in_fast_mode(self) -> bool:
        return self._fast

    def estimated_wss_bytes(self) -> float:
        """The tracker's WSS estimate is the converged reservation."""
        return self._binding().cgroup.reservation_bytes

    # -- internals ---------------------------------------------------------------
    def _binding(self):
        return self.manager_of().binding(self.vm_name)

    def _swap_rate(self, now: float) -> Optional[float]:
        cg = self._binding().cgroup
        traffic = cg.swap_traffic_total()
        rate = None
        if self._last_traffic is not None and now > self._last_time:
            rate = (traffic - self._last_traffic) / (now - self._last_time)
        self._last_traffic = traffic
        self._last_time = now
        return rate

    def _adjust(self, now: float) -> None:
        if not self.enabled:
            return
        binding = self._binding()
        rate = self._swap_rate(now)
        if rate is None:
            return  # first sample only primes the counters
        cfg = self.config
        cg = binding.cgroup
        reservation = cg.reservation_bytes
        if rate > cfg.tau_bps:
            new = min(reservation * cfg.beta, self.max_reservation_bytes)
        else:
            new = max(reservation * cfg.alpha, cfg.min_reservation_bytes)
        cg.set_reservation(new)
        if new < reservation:
            self.manager_of().shrink_to_reservation(self.vm_name)
        self.recorder.record(f"{self.vm_name}.reservation", now, new)
        self.recorder.record(f"{self.vm_name}.swap_rate", now, rate)
        if self.tracer.enabled:
            self.tracer.counter(f"vm:{self.vm_name}", "reservation",
                                values={"bytes": float(new)})
        self._update_mode(now, new, rate)

    def _update_mode(self, now: float, reservation: float,
                     rate: float) -> None:
        cfg = self.config
        if self._fast:
            self._recent.append(reservation)
            if len(self._recent) > cfg.stable_samples:
                self._recent.pop(0)
            if len(self._recent) == cfg.stable_samples:
                lo, hi = min(self._recent), max(self._recent)
                if hi - lo <= cfg.stable_tolerance * hi:
                    self._fast = False
                    self._recent.clear()
                    self._task.set_interval(cfg.slow_interval_s)
                    if self.tracer.enabled:
                        self.tracer.instant(
                            f"vm:{self.vm_name}", "wss-converged",
                            cat="wss",
                            args={"reservation": float(reservation)})
        else:
            if rate > cfg.reactivate_factor * cfg.tau_bps:
                self._fast = True
                self._recent.clear()
                self._task.set_interval(cfg.fast_interval_s)
                if self.tracer.enabled:
                    self.tracer.instant(
                        f"vm:{self.vm_name}", "wss-reactivate", cat="wss",
                        args={"swap_rate": float(rate)})
