"""Post-copy live migration (baseline, §II).

The VM is suspended immediately; its CPU state moves to the destination
and the VM resumes there. Memory follows by two concurrent mechanisms:
the source **actively pushes** all pages in order, and the destination
**demand-pages** faulted pages over a prioritized channel
(:class:`~repro.core.umem.UmemFaultHandler`). Each page moves exactly
once. Pages swapped out at the source must still be swapped in before
they can be pushed or served, so the total migration time remains
coupled to the source swap device (Figure 7's busy-VM cliff).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MigrationManager, MigrationPhase, PendingScan
from repro.core.umem import UmemFaultHandler

__all__ = ["PostcopyMigration"]


class PostcopyMigration(MigrationManager):
    """KVM/QEMU-style post-copy with active push.

    Like pre-copy, pass ``dst_backend`` explicitly (destination local
    swap device).
    """

    technique = "post-copy"

    def start(self) -> None:
        if self.phase is not MigrationPhase.IDLE:
            raise RuntimeError("migration already started")
        self._begin()
        self.vm.migrating = True
        pages = self.src_pages
        allocated = pages.present | pages.swapped
        pages.dirty[:] = False
        self.scan = PendingScan(allocated)
        self._finish_sent = False
        self.umem = UmemFaultHandler(
            self.network, self.src.name, self.dst.name, self.vm.name,
            self.scan, pages, self.src_binding.backend, self.report,
            priority=self.config.demand_priority,
            tracer=self.tracer, track=self._track)
        self.umem.metrics = self.metrics
        # Suspend now; the VM resumes at the destination as soon as the
        # CPU state lands. Downtime is just this transfer.
        self._suspend_vm()
        self.phase = MigrationPhase.STOPCOPY
        self._trace_phase("handover",
                          {"cpu_state_bytes": float(
                              self.vm.cpu_state_bytes)})
        self.report.metadata_bytes += self.vm.cpu_state_bytes
        self.stream.send(self.vm.cpu_state_bytes,
                         on_complete=lambda _job: self._cpu_arrived())

    def _cpu_arrived(self) -> None:
        self._switch_to_destination()
        if self.workload is not None:
            self.workload.fault_router = self.umem
        self.phase = MigrationPhase.PUSH
        self._trace_phase("push",
                          {"remaining_pages": int(self.scan.remaining)})

    # -- tick protocol ---------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        super().pre_tick(dt)
        if self.phase is MigrationPhase.PUSH:
            self._demand_swap_reads(dt)

    def commit_tick(self, dt: float) -> None:
        super().commit_tick(dt)
        if self.phase is not MigrationPhase.PUSH:
            return
        page = self._page_size()
        dev_pages = int(self.src_read_q.granted // page)
        room_pages = self._stream_room_pages()
        res, swp = self.scan.take(room_pages, dev_pages,
                                  self.src_pages.swapped)
        sent = np.concatenate([res, swp])
        if sent.size:
            nbytes = float(sent.size) * page
            self.report.push_bytes += nbytes
            self.report.pages_sent += int(sent.size)
            self.stream.send(nbytes, info=sent,
                             on_complete=lambda job:
                             self._deliver_to_dst(job.info))
        if self.scan.exhausted() and not self._finish_sent:
            # FIFO sentinel: fires only after every queued page delivers.
            self._finish_sent = True
            self.stream.send(0.0, on_complete=self._all_delivered)

    def _all_delivered(self, _job) -> None:
        self.umem.close()
        self._finish()

    def _abort_cleanup(self) -> None:
        if getattr(self, "umem", None) is not None:
            self.umem.close()
