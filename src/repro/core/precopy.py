"""Iterative pre-copy live migration (baseline, §II).

Round 1 transfers the VM's entire allocated memory; each later round
transfers the pages dirtied during the previous one. Swapped-out pages
must be read back from the source swap device before they can be sent
(§II: "any swapped out memory pages of the migrating VM need to be
swapped back in before being transferred"), so the migration stream is
rate-coupled to the swap device and competes with the VMs' own faults.
When the dirty set is small enough (or rounds are exhausted), the VM is
suspended and the remainder plus the CPU state are sent — the downtime.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    MigrationManager,
    MigrationPhase,
    PendingScan,
)

__all__ = ["PrecopyMigration"]


class PrecopyMigration(MigrationManager):
    """QEMU-style iterative pre-copy.

    Note: pass ``dst_backend`` explicitly (the destination host's local
    swap device). A host-level swap partition is not portable, so the
    destination cannot reuse the source's (§IV-B).

    ``auto_converge=True`` enables the vCPU-throttling convergence aid
    (QEMU auto-converge / VMware SDPS, discussed in §VI): whenever a
    round fails to shrink the dirty set, the guest's vCPUs are slowed
    down so the next round can catch up — trading even more application
    performance for a bounded migration, which is exactly the trade-off
    the paper criticizes.
    """

    technique = "pre-copy"

    #: multiplicative throttle per non-converging round, and its floor
    #: (QEMU's auto-converge escalates to a 99 % stall)
    THROTTLE_STEP = 0.6
    THROTTLE_FLOOR = 0.01

    def __init__(self, *args, auto_converge: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.auto_converge = auto_converge
        self._last_dirty_bytes: float | None = None

    def start(self) -> None:
        if self.phase is not MigrationPhase.IDLE:
            raise RuntimeError("migration already started")
        self._begin()
        self.vm.migrating = True
        pages = self.src_pages
        allocated = pages.present | pages.swapped
        pages.dirty[:] = False  # the dirty bitmap now belongs to migration
        self.scan = PendingScan(allocated)
        self.report.rounds = 1
        self.phase = MigrationPhase.LIVE_ROUND
        self._cpu_state_sent = False
        self._trace_phase("round-1",
                          {"pending_pages": int(self.scan.remaining)})

    # -- tick protocol -----------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        super().pre_tick(dt)
        if self.phase in (MigrationPhase.LIVE_ROUND, MigrationPhase.STOPCOPY):
            self._demand_swap_reads(dt)

    def commit_tick(self, dt: float) -> None:
        super().commit_tick(dt)
        if self.phase not in (MigrationPhase.LIVE_ROUND,
                              MigrationPhase.STOPCOPY):
            return
        page = self._page_size()
        dev_pages = int(self.src_read_q.granted // page)
        room_pages = self._stream_room_pages()
        res, swp = self.scan.take(room_pages, dev_pages,
                                  self.src_pages.swapped)
        sent = np.concatenate([res, swp])
        if sent.size:
            nbytes = float(sent.size) * page
            # Content is snapshotted at send time: reset the dirty bits so
            # only *re*-dirtied pages are retransmitted (§IV-E semantics).
            self.src_pages.clear_dirty(sent)
            self.report.pages_sent += int(sent.size)
            if self.phase is MigrationPhase.LIVE_ROUND:
                self.report.precopy_bytes += nbytes
            else:
                self.report.stopcopy_bytes += nbytes
            self.stream.send(nbytes, info=sent,
                             on_complete=lambda job:
                             self._deliver_to_dst(job.info))
        if self.scan.exhausted():
            if self.phase is MigrationPhase.LIVE_ROUND:
                self._end_round()
            elif not self._cpu_state_sent:
                self._send_cpu_state()

    # -- phase transitions -----------------------------------------------------------
    def _end_round(self) -> None:
        pages = self.src_pages
        dirty = pages.dirty & (pages.present | pages.swapped)
        dirty_bytes = float(np.count_nonzero(dirty)) * pages.page_size
        converged = dirty_bytes <= self.config.stopcopy_threshold_bytes
        if converged or self.report.rounds >= self.config.max_rounds:
            self._enter_stopcopy(dirty)
            return
        if (self.auto_converge and self.workload is not None
                and self._last_dirty_bytes is not None
                and dirty_bytes > 0.9 * self._last_dirty_bytes):
            self.workload.cpu_throttle = max(
                self.THROTTLE_FLOOR,
                self.workload.cpu_throttle * self.THROTTLE_STEP)
            if self.tracer.enabled:
                self.tracer.instant(
                    self._track, "auto-converge", cat="phase",
                    args={"cpu_throttle": float(
                        self.workload.cpu_throttle)})
        self._last_dirty_bytes = dirty_bytes
        self.report.rounds += 1
        pages.dirty[:] = False
        self.scan = PendingScan(dirty)
        self._trace_phase(f"round-{self.report.rounds}",
                          {"dirty_bytes": dirty_bytes})

    def _enter_stopcopy(self, dirty: np.ndarray) -> None:
        self._suspend_vm()
        self.src_pages.dirty[:] = False
        self.scan = PendingScan(dirty)
        self.phase = MigrationPhase.STOPCOPY
        self._trace_phase(
            "stop-and-copy",
            {"rounds": int(self.report.rounds),
             "remaining_pages": int(self.scan.remaining)})

    def _send_cpu_state(self) -> None:
        """Final FIFO item behind the last dirty pages: CPU + device state.

        Its delivery is the moment the VM resumes at the destination; for
        pre-copy that is also the end of the migration.
        """
        self._cpu_state_sent = True
        self.report.metadata_bytes += self.vm.cpu_state_bytes

        def arrived(_job) -> None:
            self._switch_to_destination()
            self._finish()

        self.stream.send(self.vm.cpu_state_bytes, on_complete=arrived)
