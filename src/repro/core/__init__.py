"""The paper's contribution: migration techniques + working-set control.

* :mod:`repro.core.precopy` — iterative pre-copy (baseline, §II);
* :mod:`repro.core.postcopy` — post-copy with active push + demand paging
  (baseline, §II);
* :mod:`repro.core.agile` — Agile migration (§III-§IV): one pre-copy round
  that transfers only resident pages and swap *offsets* for cold pages,
  then a post-copy phase whose faults are served from the source or from
  the portable per-VM swap device (VMD);
* :mod:`repro.core.umem` — the destination fault handler (UMEM analogue);
* :mod:`repro.core.wss` — transparent working-set-size tracking (§IV-D);
* :mod:`repro.core.trigger` — watermark migration trigger + VM selection
  (§III-B).
"""

from repro.core.base import (
    MigrationConfig,
    MigrationManager,
    MigrationOutcome,
    MigrationReport,
)
from repro.core.precopy import PrecopyMigration
from repro.core.scattergather import ScatterGatherMigration
from repro.core.postcopy import PostcopyMigration
from repro.core.agile import AgileMigration
from repro.core.umem import UmemFaultHandler
from repro.core.wss import WssTracker, WssTrackerConfig
from repro.core.trigger import WatermarkTrigger, select_vms_to_migrate

__all__ = [
    "AgileMigration",
    "MigrationConfig",
    "MigrationManager",
    "MigrationOutcome",
    "MigrationReport",
    "PostcopyMigration",
    "PrecopyMigration",
    "ScatterGatherMigration",
    "UmemFaultHandler",
    "WatermarkTrigger",
    "WssTracker",
    "WssTrackerConfig",
    "select_vms_to_migrate",
]
