"""Scatter-Gather live migration (extension; the authors' companion
system, cited as [22] — "Fast server deprovisioning through
scatter-gather live migration of virtual machines").

When the *source* must be evacuated as fast as possible (deprovisioning,
imminent maintenance) and the destination is slow or resource
constrained, direct migration is bottlenecked by the receiver.
Scatter-Gather decouples the two sides using the same per-VM portable
swap device Agile relies on:

* **scatter** — the source suspends the VM, hands the CPU state to the
  destination, and then *stages* every resident page onto the VMD
  intermediaries at full source-NIC speed. The source is free as soon as
  the scatter completes — independent of the destination's capacity;
* **gather** — the destination resumes the VM immediately and pulls
  pages as it needs them: demand faults on not-yet-scattered pages go to
  the source, everything staged (and everything that was already cold)
  is read from the VMD; an optional background *gather* stream prefetches
  the rest at a configurable rate.

The interesting metric is :attr:`MigrationReport.source_free_time` —
how quickly the source's memory pressure is gone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import MigrationManager, MigrationPhase, PendingScan
from repro.core.umem import UmemFaultHandler
from repro.mem.device import DeviceQueue
from repro.vmd.namespace import VMDNamespace

__all__ = ["ScatterGatherMigration"]

#: wire bytes for one page-location message (the dest must learn that a
#: page now lives on the VMD)
LOCATION_MSG_BYTES = 16


class ScatterGatherMigration(MigrationManager):
    """Evacuate the source through the per-VM swap device.

    Requires the VM's swap backend to be a portable
    :class:`~repro.vmd.VMDNamespace` (like Agile). ``gather_bps``
    enables background prefetching at the destination; ``None`` leaves
    cold pages to demand faults only.
    """

    technique = "scatter-gather"

    def __init__(self, *args, gather_bps: Optional[float] = 40e6,
                 **kwargs):
        super().__init__(*args, **kwargs)
        if not isinstance(self.src_binding.backend, VMDNamespace):
            raise TypeError(
                "scatter-gather requires a portable per-VM swap device "
                "(VMDNamespace backend)")
        self.namespace: VMDNamespace = self.src_binding.backend
        self.gather_bps = gather_bps
        self.scatter_q: Optional[DeviceQueue] = None
        self.gather_q: Optional[DeviceQueue] = None
        self.umem: Optional[UmemFaultHandler] = None
        self._gathering = False
        #: async span id: the gather outlives the migration span
        self._gather_span = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self.phase is not MigrationPhase.IDLE:
            raise RuntimeError("migration already started")
        self._begin()
        self.vm.migrating = True
        pages = self.src_pages
        pages.dirty[:] = False
        # Only resident pages need scattering; cold pages already live on
        # the (portable) per-VM swap device.
        self.scan = PendingScan(pages.present)
        self.umem = UmemFaultHandler(
            self.network, self.src.name, self.dst.name, self.vm.name,
            self.scan, pages, self.namespace, self.report,
            priority=self.config.demand_priority,
            tracer=self.tracer, track=self._track)
        self.umem.metrics = self.metrics
        self.scatter_q = self.namespace.open_queue(
            f"{self.vm.name}.scatter", "write", host=self.src.name)
        self._suspend_vm()
        self.phase = MigrationPhase.STOPCOPY
        self._trace_phase("handover",
                          {"resident_pages": int(self.scan.remaining)})
        # CPU state + the swap-offset table for already-cold pages.
        already_cold = int(np.count_nonzero(pages.swapped))
        meta = self.vm.cpu_state_bytes + already_cold * LOCATION_MSG_BYTES
        self.report.metadata_bytes += meta
        self.report.pages_skipped_swapped += already_cold
        self._cold_at_start = pages.swapped.copy()
        self.stream.send(meta, on_complete=lambda _job: self._cpu_arrived())

    def _abort_cleanup(self) -> None:
        if self.umem is not None:
            self.umem.close()
        if self.scatter_q is not None:
            self.scatter_q.close()
        if self.gather_q is not None:
            self.gather_q.close()
        self._gathering = False
        if self._gather_span:
            self.tracer.async_end(self._gather_span,
                                  args={"aborted": True})
            self._gather_span = 0

    def _cpu_arrived(self) -> None:
        self._switch_to_destination()
        # Every page that was cold at the source is immediately readable
        # from the per-VM swap device at the destination.
        self.dst_pages.swapped |= self._cold_at_start
        self.dst_pages.swap_clean |= self._cold_at_start
        if self.workload is not None:
            self.workload.fault_router = self.umem
        self.phase = MigrationPhase.PUSH
        self._trace_phase("scatter",
                          {"remaining_pages": int(self.scan.remaining)})

    # -- tick protocol ---------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        super().pre_tick(dt)
        if self.phase is MigrationPhase.PUSH and not self.scan.exhausted():
            remaining = float(self.scan.remaining) * self._page_size()
            self.scatter_q.demand += min(
                remaining, 4.0 * self.config.backlog_cap_bytes)
        if self._gathering and self.gather_bps is not None:
            # never gather past the destination reservation: pulling
            # pages the cgroup will immediately re-evict just churns
            room = self._gather_room()
            if room > 0:
                self.gather_q.demand += min(self.gather_bps * dt, room)

    def commit_tick(self, dt: float) -> None:
        super().commit_tick(dt)
        if self.phase is MigrationPhase.PUSH:
            self._scatter_tick()
        if self._gathering:
            self._gather_tick()

    # -- scatter (source side) ---------------------------------------------------
    def _scatter_tick(self) -> None:
        page = self._page_size()
        k = int(self.scatter_q.granted // page)
        res, swp = self.scan.take(k, 0, self.src_pages.swapped,
                                  free_swapped=True)
        staged = np.concatenate([res, swp])
        if staged.size:
            nbytes = float(res.size) * page
            self.report.scatter_bytes += nbytes
            self.report.pages_sent += int(res.size)
            # location messages ride the control stream
            self.report.metadata_bytes += staged.size * LOCATION_MSG_BYTES
            self.stream.send(staged.size * LOCATION_MSG_BYTES,
                             info=staged,
                             on_complete=lambda job:
                             self._mark_staged(job.info))
        if self.scan.exhausted() and self.report.source_free_time is None:
            self.stream.send(0.0, on_complete=lambda _job:
                             self._source_freed())

    def _mark_staged(self, idx: np.ndarray) -> None:
        """The destination learns these pages are now on the VMD."""
        live = idx[~self.dst_pages.present[idx]]
        self.dst_pages.swapped[live] = True
        self.dst_pages.swap_clean[live] = True

    def _source_freed(self) -> None:
        """Scatter complete: the source holds no VM state any more."""
        self.report.source_free_time = self.sim.now
        self.scatter_q.close()
        if self.tracer.enabled:
            self.tracer.instant(
                self._track, "source-free", cat="migration",
                args={"scatter_bytes": float(self.report.scatter_bytes)})
        if self.gather_bps is not None:
            self.gather_q = self.namespace.open_queue(
                f"{self.vm.name}.gather", "read", host=self.dst.name)
            self._gathering = True
            if self.tracer.enabled:
                self._gather_span = self.tracer.async_begin(
                    self._track, "gather", cat="phase",
                    args={"gather_bps": float(self.gather_bps)})
        if self.umem is not None:
            self.umem.close()
        self._finish()

    # -- gather (destination side, continues after the source is free) -----------
    def _gather_room(self) -> float:
        """Bytes the destination cgroup can still hold resident."""
        binding = self.dst.memory.binding(self.vm.name)
        return (binding.cgroup.reservation_bytes
                - self.vm.pages.resident_bytes())

    def _gather_tick(self) -> None:
        page = self._page_size()
        k = int(min(self.gather_q.granted,
                    max(0.0, self._gather_room())) // page)
        if k > 0:
            pages = self.vm.pages
            cand = np.flatnonzero(pages.swapped)
            if cand.size:
                take = cand[:k]
                self.dst.memory.fault_in(self.vm.name, take)
                self.report.gather_bytes += float(take.size) * page
        if self.vm.pages.swapped_pages() == 0:
            self._gathering = False
            self.gather_q.close()
            if self._gather_span:
                self.tracer.async_end(
                    self._gather_span,
                    args={"gather_bytes": float(self.report.gather_bytes)})
                self._gather_span = 0
