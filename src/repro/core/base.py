"""Shared migration machinery.

All three techniques move page data through the same pipeline:

* an ordered **scan** over a pending-page bitmap (:class:`PendingScan`) —
  QEMU's dirty-bitmap walk;
* a source-side **swap read queue** — pages that are swapped out at the
  source must be read from the swap device before they can be sent
  (pre/post-copy) — this is the paper's observation that the Migration
  Manager competes with the VMs for the swap device;
* a :class:`~repro.net.StreamChannel` carrying page batches to the
  destination, with a bounded in-flight backlog as flow control;
* a destination **incoming image**: the KVM/QEMU process started at the
  destination before migration, whose memory is registered with the
  destination host so that incoming pages are subject to the
  destination's own memory pressure.

Subclasses implement the technique-specific phase logic on top.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.host.host import Host
from repro.mem.cgroup import Cgroup
from repro.mem.device import DeviceQueue, SwapBackend
from repro.mem.pages import PageSet
from repro.metrics.recorder import Recorder
from repro.net.channel import StreamChannel
from repro.net.network import Network
from repro.obs.tracer import NULL_TRACER
from repro.telemetry.instruments import NULL_METRICS
from repro.sim.kernel import Simulator
from repro.vm.vm import VirtualMachine, VmState
from repro.vmd.namespace import VMDNamespace

__all__ = [
    "IncomingImage",
    "MigrationConfig",
    "MigrationManager",
    "MigrationOutcome",
    "MigrationPhase",
    "MigrationReport",
    "PendingScan",
]


class MigrationPhase(enum.Enum):
    IDLE = "idle"
    LIVE_ROUND = "live-round"       # pre-copy iterations / Agile's one round
    STOPCOPY = "stop-and-copy"      # VM suspended, final state in flight
    PUSH = "active-push"            # post-copy phase at the source
    DONE = "done"


class MigrationOutcome(enum.Enum):
    """How a migration attempt ended.

    The fault decision table (who may call :meth:`MigrationManager.abort`
    vs :meth:`MigrationManager.fail_vm`):

    ========================  =========================================
    destination crash, before  ABORTED — the source copy is authoritative,
    the switchover             the VM resumes (or keeps running) there
    destination crash, after   FAILED — split-state window: CPU is at the
    the switchover, before     destination, part of memory still at the
    the transfer finishes      source; neither side has a whole VM
    source crash, any time     FAILED — pre-switch the VM ran there;
    before the finish          post-switch the unpushed pages die with it
    VMD donor crash losing     FAILED — the VM's swap pages are gone
    the only copy              (replication == 1)
    VMD donor crash with a     migration *continues*; the namespace
    surviving copy             re-replicates in the background
    ========================  =========================================

    Pre-copy's switchover and finish are atomic (the same stream
    callback), so pre-copy has no split-state window: a destination
    crash at any point before completion aborts cleanly.
    """

    COMPLETED = "completed"
    #: rolled back; the VM kept running at the source
    ABORTED = "aborted"
    #: the VM was lost
    FAILED = "failed"
    #: aborted, and a supervisor re-dispatched the migration
    RETRIED = "retried"


@dataclass
class MigrationReport:
    """Everything the evaluation tables/figures need about one migration."""

    technique: str
    vm_name: str
    #: endpoints of this attempt (a supervisor may re-plan between
    #: attempts, so per-attempt reports can name different destinations)
    src_host: str = ""
    dst_host: str = ""
    start_time: float = 0.0
    #: CPU state handed over; VM resumed at the destination
    switch_time: Optional[float] = None
    #: all state transferred; source memory freed
    end_time: Optional[float] = None
    downtime: Optional[float] = None
    rounds: int = 0
    #: bytes of page data sent during live rounds
    precopy_bytes: float = 0.0
    #: bytes of page data sent while the VM was suspended
    stopcopy_bytes: float = 0.0
    #: bytes actively pushed after the switch
    push_bytes: float = 0.0
    #: bytes served via demand paging from the source
    demand_bytes: float = 0.0
    #: control metadata: swap offsets, dirty bitmap, CPU state
    metadata_bytes: float = 0.0
    pages_sent: int = 0
    pages_skipped_swapped: int = 0
    pages_demand_fetched: int = 0
    #: scatter-gather: bytes staged from the source onto the VMD
    scatter_bytes: float = 0.0
    #: scatter-gather: when the source's memory was fully evicted
    source_free_time: Optional[float] = None
    #: scatter-gather: background gather reads at the destination (swap
    #: traffic, reported separately from migration transfer)
    gather_bytes: float = 0.0
    #: how the attempt ended (None while still in flight)
    outcome: Optional[MigrationOutcome] = None
    #: human-readable cause for ABORTED/FAILED outcomes
    failure_reason: str = ""
    #: 0 for the first attempt; incremented by a supervisor on retry
    attempt: int = 0

    @property
    def total_bytes(self) -> float:
        return (self.precopy_bytes + self.stopcopy_bytes + self.push_bytes
                + self.demand_bytes + self.metadata_bytes
                + self.scatter_bytes)

    @property
    def total_time(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time


@dataclass(frozen=True)
class MigrationConfig:
    """Knobs common to all techniques."""

    #: stream flow-control window (bytes in flight); must comfortably
    #: exceed one tick of NIC throughput or it throttles the stream
    backlog_cap_bytes: float = 64 * 2 ** 20
    #: priority class of bulk migration traffic
    bulk_priority: int = 1
    #: priority class of demand-paging traffic (served first)
    demand_priority: int = 0
    #: pre-copy: stop when the dirty set is at most this many bytes
    stopcopy_threshold_bytes: float = 32 * 2 ** 20
    #: pre-copy: give up converging after this many live rounds
    max_rounds: int = 30
    #: ceiling on the migration thread's swap reads (bytes/s). The
    #: Migration Manager reads a swapped page by touching its mapped
    #: address — a synchronous fault in a single thread — so it cannot
    #: drain the swap device at full bandwidth (§I: the migration tool
    #: "may need to compete with VM's applications for access to the
    #: swap device"). None disables the cap.
    max_swapin_bps: float | None = 20e6


class IncomingImage:
    """The destination-side KVM/QEMU process awaiting the VM.

    Duck-types the parts of :class:`~repro.vm.VirtualMachine` that
    :meth:`HostMemoryManager.register_vm` needs (``name`` and ``pages``),
    so incoming pages participate in destination memory management before
    the real VM object moves over.
    """

    def __init__(self, vm: VirtualMachine):
        self.name = f"{vm.name}.incoming"
        self.pages = PageSet(vm.n_pages, vm.pages.page_size)


class PendingScan:
    """Ordered walk over a set of pending pages with budgeted batches.

    The walk is strictly in page order, like QEMU's bitmap scan: when the
    next page needs swap-device I/O and the device budget is exhausted,
    the scan stalls even if network budget remains — this ordering is what
    couples migration speed to swap thrashing for the baselines.
    """

    def __init__(self, pending: np.ndarray):
        self.pending = pending.copy()
        self._order = np.flatnonzero(self.pending)
        self._cursor = 0

    @property
    def remaining(self) -> int:
        return int(np.count_nonzero(self.pending))

    def exhausted(self) -> bool:
        """The scan pointer walked past every page (pending or removed)."""
        self._skip_cleared()
        return self._cursor >= self._order.size

    def remove(self, idx: np.ndarray) -> None:
        """Un-pend pages (delivered out of band, e.g. demand-fetched)."""
        self.pending[idx] = False

    def _skip_cleared(self) -> None:
        order = self._order
        cur = self._cursor
        n = order.size
        if cur >= n or self.pending[order[cur]]:
            return
        # Long cleared runs (demand-fetched spans, delivered prefixes)
        # are skipped in vectorized chunks instead of one Python-loop
        # iteration per page.
        chunk = 256
        while cur < n:
            window = order[cur:cur + chunk]
            live = np.flatnonzero(self.pending[window])
            if live.size:
                cur += int(live[0])
                break
            cur += window.size
            chunk = min(chunk * 4, 1 << 20)
        self._cursor = cur

    def peek_swapped_fraction(self, swapped: np.ndarray,
                              window: int = 8192) -> float:
        """Fraction of the next ``window`` pending pages that are swapped
        (used to size the source swap-read demand)."""
        self._skip_cleared()
        ahead = self._order[self._cursor:self._cursor + window]
        if ahead.size == 0:
            return 0.0
        live = ahead[self.pending[ahead]]
        if live.size == 0:
            return 0.0
        return float(np.count_nonzero(swapped[live])) / live.size

    def peek_swapped_count(self, swapped: np.ndarray, window: int) -> int:
        """Swapped pages among the next ``window`` live pending pages.

        This — not the average swapped fraction — sizes the swap-read
        demand correctly: the scan is strictly ordered, so even a handful
        of swapped pages at its head need a whole-page read grant to
        unblock everything behind them.
        """
        if window <= 0:
            return 0
        self._skip_cleared()
        ahead = self._order[self._cursor:self._cursor + 2 * window + 64]
        if ahead.size == 0:
            return 0
        live = ahead[self.pending[ahead]][:window]
        if live.size == 0:
            return 0
        return int(np.count_nonzero(swapped[live]))

    def take(self, max_pages: int, device_pages: int,
             swapped: np.ndarray,
             free_swapped: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Advance the scan by up to ``max_pages`` pages in order.

        Every taken page costs one unit of ``max_pages``; a page that is
        currently swapped additionally costs one unit of ``device_pages``
        unless ``free_swapped`` (Agile sends offsets instead of data, so
        cold pages cost no I/O). The scan stops at the first page whose
        budget class is exhausted.

        Returns ``(resident_idx, swapped_idx)`` of pages taken; both are
        cleared from the pending set.
        """
        return self.take_weighted(float(max_pages), device_pages, swapped,
                                  resident_cost=1.0, swapped_cost=1.0,
                                  free_swapped=free_swapped)

    def take_weighted(self, budget: float, device_pages: int,
                      swapped: np.ndarray, resident_cost: float,
                      swapped_cost: float, free_swapped: bool = False
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`take`, with per-class wire costs.

        ``budget`` is in the same unit as the costs (bytes for real
        streams). Agile's live round charges full ``page_size`` for a
        resident page but only the tiny SWAPPED-flag message for a cold
        page, so a run of cold pages consumes almost no stream budget.
        """
        empty = np.empty(0, np.int64)
        if budget <= 0:
            return empty, empty
        res_parts: list[np.ndarray] = []
        swp_parts: list[np.ndarray] = []
        budget_left = float(budget)
        dev_left = int(device_pages)
        min_cost = min(resident_cost, swapped_cost)
        if min_cost <= 0:
            raise ValueError("page costs must be positive")
        order = self._order
        # Window sizing: start from what the budget could possibly take
        # if every page cost the expensive class, then grow
        # geometrically (a cold run of cheap SWAPPED-flag messages needs
        # more pages than the first guess). Chunked processing of the
        # same ordered prefix is bit-identical regardless of chunk
        # boundaries: page costs are integer-valued floats (cumsums
        # exact below 2^53) and the budget subtraction is exact for
        # byte-scale budgets, so the cut points — and hence the pages
        # taken and the stall position — cannot differ.
        max_cost = max(resident_cost, swapped_cost)
        window_pages = max(64, min(1024, int(budget_left // max_cost) + 1))
        while budget_left >= min_cost:
            self._skip_cleared()
            cur = self._cursor
            if cur >= order.size:
                break
            window = order[cur:cur + window_pages]
            window_pages = min(window_pages * 4, 1 << 22)
            live = window[self.pending[window]]
            if live.size == 0:
                self._cursor = cur + window.size
                continue
            is_sw = swapped[live]
            n_sw = int(np.count_nonzero(is_sw))
            if n_sw == 0 or n_sw == live.size:
                # Uniform window (the common case: a hot run of resident
                # pages or a cold run of swapped ones): the prefix sums
                # are multiples of one cost, so the budget cut is a
                # division — no cumsum/searchsorted. Costs are
                # integer-valued floats, so n*cost is the exact value
                # the cumsum would produce.
                cost_one = swapped_cost if n_sw else resident_cost
                n_budget = int(budget_left // cost_one)
                # float floor division can land one off at the exact
                # boundary; nudge to the cumsum's n*cost <= budget rule
                # (n*cost_one is exact for integer-valued costs)
                while n_budget * cost_one > budget_left:
                    n_budget -= 1
                while (n_budget + 1) * cost_one <= budget_left:
                    n_budget += 1
                n_ok = min(n_budget, live.size)
                if not free_swapped and n_sw:
                    n_ok = min(n_ok, dev_left)
                if n_ok == 0:
                    break  # strict in-order stall
                taken = live[:n_ok]
                spent = float(n_ok) * cost_one
                if n_sw:
                    if not free_swapped:
                        dev_left -= n_ok
                    swp_parts.append(taken)
                else:
                    res_parts.append(taken)
            else:
                cost = np.where(is_sw, swapped_cost, resident_cost)
                cost_cum = np.cumsum(cost)
                n_budget = int(np.searchsorted(cost_cum, budget_left,
                                               side="right"))
                if free_swapped:
                    n_ok = min(n_budget, live.size)
                else:
                    dev_cum = np.cumsum(is_sw.astype(np.int64))
                    n_dev = int(np.searchsorted(dev_cum, dev_left,
                                                side="right"))
                    n_ok = min(n_budget, live.size, n_dev)
                if n_ok == 0:
                    break  # strict in-order stall (device or stream budget)
                taken = live[:n_ok]
                taken_sw = is_sw[:n_ok]
                if not free_swapped:
                    dev_left -= int(np.count_nonzero(taken_sw))
                spent = float(cost_cum[n_ok - 1])
                res_parts.append(taken[~taken_sw])
                swp_parts.append(taken[taken_sw])
            self.pending[taken] = False
            budget_left -= spent
            self._cursor = cur + int(
                np.searchsorted(window, taken[-1], side="right"))
            if n_ok < live.size:
                break  # stopped mid-window on a budget
        # single-window takes (the common case) return the part directly
        # instead of paying a concatenate copy
        if len(res_parts) == 1:
            res = res_parts[0]
        else:
            res = np.concatenate(res_parts) if res_parts else empty
        if len(swp_parts) == 1:
            swp = swp_parts[0]
        else:
            swp = np.concatenate(swp_parts) if swp_parts else empty
        return res, swp


class MigrationManager:
    """Base class: owns the stream, queues, report, and switch/finish."""

    technique = "base"

    def __init__(self, sim: Simulator, network: Network,
                 src: Host, dst: Host, vm: VirtualMachine,
                 recorder: Recorder,
                 dst_backend: Optional[SwapBackend] = None,
                 config: Optional[MigrationConfig] = None,
                 workload=None, tracer=None, metrics=None):
        self.sim = sim
        self.network = network
        self.src = src
        self.dst = dst
        self.vm = vm
        self.recorder = recorder
        self.config = config or MigrationConfig()
        self.workload = workload
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: live-metrics sink (see :mod:`repro.telemetry`); outcome
        #: counters and per-phase byte/stall histograms land here
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: trace track: one timeline per VM (DESIGN.md §8)
        self._track = f"vm:{vm.name}"
        self._phase_span_open = False
        self._migration_span_open = False
        self.report = MigrationReport(self.technique, vm.name,
                                      src_host=src.name, dst_host=dst.name)
        self.phase = MigrationPhase.IDLE
        #: recorder key built once (commit_tick records every tick)
        self._bytes_key = f"migration.{vm.name}.bytes"

        self.src_binding = src.memory.binding(vm.name)
        self.src_pages = self.src_binding.pages
        #: destination swap backend; defaults to carrying the source one
        #: (correct for Agile's portable per-VM device)
        self.dst_backend = dst_backend or self.src_binding.backend

        # Destination-side incoming image, registered immediately — the
        # destination QEMU process allocates the VM's memory up front.
        self.image = IncomingImage(vm)
        self.dst_pages = self.image.pages
        self._dst_cgroup = Cgroup(
            f"cg.{vm.name}", self.src_binding.cgroup.reservation_bytes)
        dst.memory.register_vm(self.image, self._dst_cgroup,
                               self.dst_backend)

        # Bulk transfer stream and source swap-read lane.
        self.stream = StreamChannel(
            sim, network, src.name, dst.name,
            priority=self.config.bulk_priority,
            name=f"mig:{vm.name}", tracer=self.tracer)
        self.src_read_q: DeviceQueue = self.src_binding.backend.open_queue(
            f"{vm.name}.mig.read", "read", host=src.name)

        self.scan: Optional[PendingScan] = None
        self._suspend_started: Optional[float] = None
        self.done = sim.event(f"mig:{vm.name}:done")

    # -- lifecycle helpers ---------------------------------------------------
    def start(self) -> None:
        raise NotImplementedError

    def _begin(self) -> None:
        self.report.start_time = self.sim.now
        if self.tracer.enabled:
            self.tracer.begin(
                self._track,
                f"{self.technique} {self.src.name}->{self.dst.name}",
                cat="migration",
                args={"vm": self.vm.name, "src": self.src.name,
                      "dst": self.dst.name,
                      "attempt": self.report.attempt})
            self._migration_span_open = True

    # -- tracing helpers -----------------------------------------------------
    def _trace_phase(self, name: str, args: Optional[dict] = None) -> None:
        """Open the span for a migration phase, closing the previous one
        (phases on a VM track are sequential, never overlapping)."""
        if not self.tracer.enabled:
            return
        if self._phase_span_open:
            self.tracer.end(self._track)
        self.tracer.begin(self._track, name, cat="phase", args=args)
        self._phase_span_open = True

    def _trace_phase_end(self, args: Optional[dict] = None) -> None:
        if self._phase_span_open:
            self.tracer.end(self._track, args=args)
            self._phase_span_open = False

    def _trace_close(self, outcome: str, reason: str = "") -> None:
        """Close the phase and migration spans with the final verdict."""
        self._trace_phase_end()
        if self._migration_span_open:
            args = {"outcome": outcome}
            if reason:
                args["reason"] = reason
            self.tracer.end(self._track, args=args)
            self._migration_span_open = False

    def _page_size(self) -> int:
        return self.src_pages.page_size

    def _deliver_to_dst(self, idx: np.ndarray) -> None:
        """Mark pages arrived in the destination image (on job delivery)."""
        name = (self.image.name if self.dst.memory.has_vm(self.image.name)
                else self.vm.name)
        self.dst.memory.fault_in(name, idx)

    def _suspend_vm(self) -> None:
        if self.vm.is_running:
            self.vm.suspend()
        self._suspend_started = self.sim.now

    def _switch_to_destination(self) -> None:
        """CPU state arrived: resume the VM at the destination.

        Re-keys the destination binding from the incoming image to the
        real VM (carrying page state and writeback backlog across).
        """
        image_binding = self.dst.memory.binding(self.image.name)
        backlog = image_binding.writeback_backlog
        self.dst.memory.unregister_vm(self.image.name)
        self.vm.resume(host=self.dst.name, pages=self.dst_pages)
        new_binding = self.dst.place_vm_with_cgroup(
            self.vm, self._dst_cgroup, self.dst_backend)
        new_binding.writeback_backlog = backlog
        self.report.switch_time = self.sim.now
        if self._suspend_started is not None:
            self.report.downtime = self.sim.now - self._suspend_started
        self.recorder.record(f"migration.{self.vm.name}.switch",
                             self.sim.now, 1.0)
        if self.tracer.enabled:
            self.tracer.instant(
                self._track, "switch", cat="migration",
                args={"downtime_s": self.report.downtime,
                      "dst": self.dst.name})

    def _finish(self) -> None:
        """All state transferred: free the source and complete."""
        self.phase = MigrationPhase.DONE
        self.src.memory.free_vm_memory(self.vm.name)
        self.src.memory.unregister_vm(self.vm.name)
        self.src.vms.pop(self.vm.name, None)
        self.src_read_q.close()
        self.stream.close()
        if self.workload is not None:
            self.workload.fault_router = None
            self.workload.cpu_throttle = 1.0  # lift any auto-converge brake
        self.report.end_time = self.sim.now
        self.report.outcome = MigrationOutcome.COMPLETED
        self.vm.migrating = False
        self._record_outcome()
        self._trace_close(MigrationOutcome.COMPLETED.value)
        if not self.done.triggered:
            self.done.succeed(self.report)

    def _record_outcome(self) -> None:
        """Publish the finished attempt's aggregates to the metrics
        registry (no-op under :data:`NULL_METRICS`)."""
        if not self.metrics.enabled:
            return
        m = self.metrics
        rep = self.report
        m.counter(f"migration.outcome.{rep.outcome.value}").inc()
        m.counter("migration.attempts").inc()
        if rep.total_time is not None:
            m.histogram("migration.duration_s").observe(rep.total_time)
        if rep.outcome is MigrationOutcome.COMPLETED:
            if rep.downtime is not None:
                m.histogram("migration.downtime_s").observe(rep.downtime)
            m.histogram("migration.rounds").observe(rep.rounds)
            m.histogram("migration.total_bytes").observe(rep.total_bytes)
            for phase in ("precopy", "stopcopy", "push", "demand",
                          "scatter", "gather"):
                nbytes = getattr(rep, f"{phase}_bytes")
                if nbytes > 0:
                    m.histogram(f"migration.{phase}_bytes").observe(nbytes)

    # -- recovery (see the MigrationOutcome decision table) ---------------------
    def _abort_cleanup(self) -> None:
        """Technique-specific teardown hook run first by :meth:`abort`
        and :meth:`fail_vm` (close umem handlers, VMD staging queues...)."""

    def _teardown_transfer(self) -> None:
        """Close the transfer machinery; pending stream callbacks never
        fire (:meth:`StreamChannel.close` drops queued jobs)."""
        self.stream.close()
        self.src_read_q.close()
        if self.workload is not None:
            self.workload.fault_router = None
            self.workload.cpu_throttle = 1.0
        self.vm.migrating = False

    def _drop_incoming_image(self) -> None:
        """Tear down the destination-side QEMU process (pre-switch only:
        after the switch the image binding was re-keyed to the VM)."""
        if self.dst.memory.has_vm(self.image.name):
            self.dst.memory.free_vm_memory(self.image.name)
            self.dst.memory.unregister_vm(self.image.name)

    def abort(self, reason: str = "") -> None:
        """Roll the migration back; the VM keeps running at the source.

        Only legal before the switchover: up to that point the source
        copy is authoritative and nothing irreversible has happened —
        the destination image is discarded, in-flight stream jobs are
        dropped, and a VM suspended for stop-and-copy simply resumes
        where it is. After the switchover there is no whole source copy
        to fall back to; use :meth:`fail_vm`.
        """
        if self.phase is MigrationPhase.DONE or self.done.triggered:
            return
        if self.report.switch_time is not None:
            raise RuntimeError(
                "cannot abort after the switchover (split state); "
                "use fail_vm")
        self.phase = MigrationPhase.DONE
        self._abort_cleanup()
        self._drop_incoming_image()
        self._teardown_transfer()
        if self.vm.state is VmState.SUSPENDED:
            self.vm.resume()  # same host, same pages
        self.report.outcome = MigrationOutcome.ABORTED
        self.report.failure_reason = reason
        self.report.end_time = self.sim.now
        self.recorder.record(f"migration.{self.vm.name}.abort",
                             self.sim.now, 1.0)
        self._record_outcome()
        self._trace_close(MigrationOutcome.ABORTED.value, reason)
        self.done.succeed(self.report)

    def fail_vm(self, reason: str = "") -> None:
        """The VM is unrecoverable: terminate it and release both sides."""
        if self.phase is MigrationPhase.DONE or self.done.triggered:
            return
        self.phase = MigrationPhase.DONE
        self._abort_cleanup()
        if self.vm.state is not VmState.TERMINATED:
            self.vm.terminate()
        self._drop_incoming_image()
        for host in (self.src, self.dst):
            if host.memory.has_vm(self.vm.name):
                host.memory.free_vm_memory(self.vm.name)
                host.memory.unregister_vm(self.vm.name)
            host.vms.pop(self.vm.name, None)
        self._teardown_transfer()
        self.report.outcome = MigrationOutcome.FAILED
        self.report.failure_reason = reason
        self.report.end_time = self.sim.now
        self.recorder.record(f"migration.{self.vm.name}.failed",
                             self.sim.now, 1.0)
        self._record_outcome()
        self._trace_close(MigrationOutcome.FAILED.value, reason)
        self.done.succeed(self.report)

    def on_host_crash(self, host_name: str) -> None:
        """React to a host crash per the decision table above."""
        if self.phase in (MigrationPhase.IDLE, MigrationPhase.DONE):
            return
        if host_name == self.dst.name:
            if self.report.switch_time is None:
                self.abort(f"destination host {host_name} crashed")
            else:
                self.fail_vm(f"destination host {host_name} crashed in "
                             f"the split-state window")
        elif host_name == self.src.name:
            if self.report.switch_time is None:
                self.fail_vm(f"source host {host_name} crashed while the "
                             f"VM ran there")
            else:
                self.fail_vm(f"source host {host_name} crashed before the "
                             f"push drained")

    def on_vmd_crash(self, host_name: str) -> None:
        """React to a VMD donor crash.

        Only matters for VMD-backed techniques: if the VM's portable
        swap device lost its only copy of any page, the VM cannot
        continue on either side. With a surviving replica the migration
        proceeds — the namespace re-replicates in the background.
        """
        if self.phase in (MigrationPhase.IDLE, MigrationPhase.DONE):
            return
        backend = self.dst_backend
        if isinstance(backend, VMDNamespace) and backend.data_lost:
            self.fail_vm(f"VMD donor on {host_name} lost the only copy of "
                         f"part of the swap device")

    # -- tick protocol (subclasses extend) -------------------------------------
    def pre_tick(self, dt: float) -> None:
        self.stream.pre_tick(dt)

    def commit_tick(self, dt: float) -> None:
        self.stream.commit_tick(dt)
        if self.phase not in (MigrationPhase.IDLE, MigrationPhase.DONE):
            # progress telemetry for plots: cumulative transfer volume
            self.recorder.record(self._bytes_key,
                                 self.sim.now, self.report.total_bytes)

    # -- shared helpers for the scan pipeline ----------------------------------
    def _stream_room_pages(self) -> int:
        return int(max(0.0, self.config.backlog_cap_bytes
                       - self.stream.backlog) // self._page_size())

    def _demand_swap_reads(self, dt: float) -> None:
        """Request exactly the swap reads the next scan window needs.

        The scan is strictly ordered, so the demand is the *count* of
        swapped pages in the upcoming window — an average-fraction
        estimate deadlocks when a few swapped pages head the scan.
        """
        if self.scan is None or self.scan.exhausted():
            return
        n = self.scan.peek_swapped_count(self.src_pages.swapped,
                                         self._stream_room_pages())
        if n > 0:
            demand = float(n) * self._page_size()
            if self.config.max_swapin_bps is not None:
                demand = min(demand, self.config.max_swapin_bps * dt)
            self.src_read_q.demand += demand
