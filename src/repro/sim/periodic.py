"""Tick-driven execution on top of the event kernel.

Continuous-rate resources (network links, swap devices) are modeled with a
fixed timestep: every ``dt`` seconds the :class:`TickEngine` runs a
three-phase protocol over its registered :class:`TickParticipant` objects:

1. ``pre_tick(dt)``   — participants compute and register *demands*
   (bytes they would like to move this tick);
2. ``arbitrate(dt)``  — resource arbiters (network, devices) divide their
   capacity among the demands;
3. ``commit_tick(dt)``— participants consume their granted allocations,
   update state, and fire completion events.

Participants run in registration order within each phase, which keeps the
simulation deterministic. Arbiters are registered separately because they
must run *between* the two participant phases.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

from repro.sim.kernel import Simulator

__all__ = ["PeriodicTask", "TickEngine", "TickParticipant", "Arbiter"]


@runtime_checkable
class TickParticipant(Protocol):
    """Anything that takes part in the per-tick demand/commit protocol."""

    def pre_tick(self, dt: float) -> None:
        """Phase 1: compute and register resource demands for this tick."""

    def commit_tick(self, dt: float) -> None:
        """Phase 3: consume granted allocations and update state."""


@runtime_checkable
class Arbiter(Protocol):
    """A capacity arbiter that divides a resource among registered demands."""

    def arbitrate(self, dt: float) -> None:
        """Phase 2: grant allocations for this tick."""


class PeriodicTask:
    """Runs ``fn(now)`` every ``interval`` seconds until cancelled.

    The interval may be changed on the fly (used by the WSS tracker, which
    adjusts every 2 s while converging and every 30 s once stable).
    """

    def __init__(self, sim: Simulator, interval: float,
                 fn: Callable[[float], None], start_at: Optional[float] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self._cancelled = False
        first = sim.now + interval if start_at is None else start_at
        sim.call_at(first, self._run)

    def cancel(self) -> None:
        self._cancelled = True

    def set_interval(self, interval: float) -> None:
        """Change the period; takes effect after the next firing."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval

    def _run(self) -> None:
        if self._cancelled:
            return
        self.fn(self.sim.now)
        if not self._cancelled:
            self.sim.call_in(self.interval, self._run)


class TickEngine:
    """Drives the three-phase tick protocol at a fixed timestep ``dt``."""

    def __init__(self, sim: Simulator, dt: float = 0.1):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.sim = sim
        self.dt = dt
        #: (order, seq, participant, runs_pre, runs_commit)
        self._participants: list[
            tuple[int, int, TickParticipant, bool, bool]] = []
        self._arbiters: list[tuple[int, int, Arbiter]] = []
        #: flattened phase batches, rebuilt only when registration changes
        #: (at hundreds of hosts, per-tick list building dominated _tick)
        self._pre_batch: Optional[tuple[TickParticipant, ...]] = None
        self._commit_batch: Optional[tuple[TickParticipant, ...]] = None
        self._arbiter_batch: Optional[tuple[Arbiter, ...]] = None
        self._seq = 0
        self._started = False
        self.tick_index = 0
        #: optional :class:`repro.obs.SelfProfiler`; when set, each tick
        #: phase is wall-clock timed (attribution lands in bench output)
        self.profiler = None

    def add_participant(self, p: TickParticipant, order: int = 0,
                        phases: tuple[str, ...] = ("pre", "commit")) -> None:
        """Register a participant; lower ``order`` runs first within each
        phase (ties broken by registration order). Resource adapters that
        must observe other participants' demands (e.g. VMD namespaces)
        register with a higher order.

        ``phases`` restricts which phases call the participant: a
        pure-adapter with an empty ``commit_tick`` registers with
        ``("pre",)`` so the commit loop never pays the call (hundreds of
        no-op method calls per tick at cluster scale).
        """
        if any(x is p for _, _, x, _, _ in self._participants):
            raise ValueError(f"participant already registered: {p!r}")
        pre = "pre" in phases
        commit = "commit" in phases
        if not (pre or commit):
            raise ValueError(f"participant needs at least one phase: {p!r}")
        self._seq += 1
        self._participants.append((order, self._seq, p, pre, commit))
        self._participants.sort(key=lambda t: (t[0], t[1]))
        self._pre_batch = None
        self._commit_batch = None

    def remove_participant(self, p: TickParticipant) -> None:
        for i, (_, _, x, _, _) in enumerate(self._participants):
            if x is p:
                del self._participants[i]
                self._pre_batch = None
                self._commit_batch = None
                return
        raise ValueError(f"participant not registered: {p!r}")

    def add_arbiter(self, a: Arbiter, order: int = 0) -> None:
        """Register an arbiter; lower ``order`` arbitrates first (the
        network must run before adapters that translate flow grants)."""
        if any(x is a for _, _, x in self._arbiters):
            raise ValueError(f"arbiter already registered: {a!r}")
        self._seq += 1
        self._arbiters.append((order, self._seq, a))
        self._arbiters.sort(key=lambda t: (t[0], t[1]))
        self._arbiter_batch = None

    def remove_arbiter(self, a: Arbiter) -> None:
        for i, (_, _, x) in enumerate(self._arbiters):
            if x is a:
                del self._arbiters[i]
                self._arbiter_batch = None
                return
        raise ValueError(f"arbiter not registered: {a!r}")

    def start(self) -> None:
        """Schedule the first tick at ``now + dt``. Idempotent."""
        if self._started:
            return
        self._started = True
        self.sim.call_in(self.dt, self._tick)

    def _pre_snapshot(self) -> tuple[TickParticipant, ...]:
        batch = self._pre_batch
        if batch is None:
            batch = self._pre_batch = tuple(
                p for _, _, p, pre, _ in self._participants if pre)
        return batch

    def _commit_snapshot(self) -> tuple[TickParticipant, ...]:
        batch = self._commit_batch
        if batch is None:
            batch = self._commit_batch = tuple(
                p for _, _, p, _, commit in self._participants if commit)
        return batch

    def _tick(self) -> None:
        if self.profiler is not None:
            self._tick_profiled()
            return
        dt = self.dt
        # Snapshots are cached tuples; registration changes mid-phase
        # invalidate the cache, so the next phase sees the update (the
        # same semantics the per-phase list() copies provided).
        for p in self._pre_snapshot():
            p.pre_tick(dt)
        arbiters = self._arbiter_batch
        if arbiters is None:
            arbiters = self._arbiter_batch = tuple(
                a for _, _, a in self._arbiters)
        for a in arbiters:
            a.arbitrate(dt)
        for p in self._commit_snapshot():
            p.commit_tick(dt)
        self.tick_index += 1
        self.sim.call_in(dt, self._tick)

    def _tick_profiled(self) -> None:
        """The tick body with per-phase wall-clock attribution.

        Kept as a separate method so the unprofiled hot path pays one
        attribute check; arbiters are timed per concrete class, which is
        what the scale bench wants to see (network vs devices vs VMD).
        """
        prof = self.profiler
        dt = self.dt
        t0 = prof.start()
        for p in self._pre_snapshot():
            p.pre_tick(dt)
        prof.stop("tick.pre", t0)
        arbiters = self._arbiter_batch
        if arbiters is None:
            arbiters = self._arbiter_batch = tuple(
                a for _, _, a in self._arbiters)
        for a in arbiters:
            t0 = prof.start()
            a.arbitrate(dt)
            prof.stop(f"arbitrate.{type(a).__name__}", t0)
        t0 = prof.start()
        for p in self._commit_snapshot():
            p.commit_tick(dt)
        prof.stop("tick.commit", t0)
        self.tick_index += 1
        self.sim.call_in(dt, self._tick)
