"""Core discrete-event simulation kernel.

The design follows the classic event-list pattern: a priority queue of
``(time, priority, sequence, event)`` entries, popped in order. Two
programming models sit on top of it:

* **callbacks** — ``Simulator.call_at`` / ``Simulator.call_in`` schedule a
  plain function;
* **processes** — Python generators that ``yield`` waitables
  (:class:`Timeout`, :class:`Event`, or another :class:`Process`) and are
  resumed when the waitable fires, in the style of SimPy.

Determinism: ties in time are broken by ``(priority, sequence)`` where the
sequence number is the order of scheduling, so identical programs produce
identical executions.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "SimulationError",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) triggers it
    exactly once, after which its callbacks run at the current simulation
    time. Waiting on an already-triggered event resumes the waiter
    immediately (at the current time, not retroactively).
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_is_error", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: list[Callable[[Event], None]] = []
        self._triggered = False
        self._value: Any = None
        self._is_error = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has fired (successfully or with an error)."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` / :meth:`fail`."""
        return self._value

    @property
    def failed(self) -> bool:
        return self._triggered and self._is_error

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Fire the event with ``value``; runs callbacks via the event loop."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event with an exception; waiters see it raised."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._value = exc
        self._is_error = True
        self.sim._schedule_event(self)
        return self

    # -- waiting ----------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires (immediately if already fired)."""
        if self._triggered and self._callbacks is None:
            # already dispatched: run on next loop turn for determinism
            self.sim.call_in(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None  # type: ignore[assignment]
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        sim.call_in(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self._triggered:  # pragma: no branch - fires exactly once
            self.succeed(value)


class Process(Event):
    """A generator-based coroutine driven by the simulator.

    The generator may ``yield``:

    * a :class:`Timeout` — resume after the delay;
    * an :class:`Event` — resume when it triggers (the yielded expression
      evaluates to the event's value; a failed event raises);
    * another :class:`Process` — resume when it finishes (join).

    A process is itself an :class:`Event` that fires with the generator's
    return value, so processes can be joined or waited on by callbacks.
    """

    __slots__ = ("_gen", "_target", "_interrupts")

    def __init__(self, sim: "Simulator", gen: Generator[Any, Any, Any], name: str = ""):
        Event.__init__(self, sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._target: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        # Start the process on the next loop turn at the current time.
        sim.call_in(0.0, self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        self._interrupts.append(Interrupt(cause))
        self.sim.call_in(0.0, self._deliver_interrupts)

    def _deliver_interrupts(self) -> None:
        if self._triggered or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        # Detach from whatever we were waiting on; the stale callback is
        # ignored because _target no longer matches.
        self._target = None
        self._step(exc=exc)

    def _resume(self, event: Optional[Event], _unused: Any) -> None:
        self._step(value=event.value if event is not None else None,
                   exc=event.value if event is not None and event.failed else None)

    def _on_target(self, event: Event) -> None:
        if self._target is not event:
            return  # interrupted away from this target; ignore stale wakeup
        self._target = None
        if event.failed:
            self._step(exc=event.value)
        else:
            self._step(value=event.value)

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        if self._triggered:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as a silent stop.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event: {target!r}"))
            return
        self._target = target
        target.add_callback(self._on_target)


class Simulator:
    """The event loop: clock + priority queue + factory helpers."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._running = False

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention)."""
        return self._now

    # -- scheduling primitives ---------------------------------------------
    def _push(self, time: float, priority: int, item: Any) -> None:
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} < now {self._now}")
        self._seq += 1
        heapq.heappush(self._queue, (time, priority, self._seq, item))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._push(self._now + delay, 1, event)

    def call_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        self._push(time, 0, (fn, args))

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` time units."""
        self.call_at(self._now + delay, fn, *args)

    # -- factories ----------------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Any, Any, Any], name: str = "") -> Process:
        """Wrap a generator into a running :class:`Process`."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when every input event has fired.

        A failed input fails the combined event with the same exception
        (first failure wins) so waiters see it *raised*, not handed back
        as a value.
        """
        events = list(events)
        done = self.event("all_of")
        remaining = [len(events)]
        if not events:
            done.succeed([])
            return done
        values: list[Any] = [None] * len(events)

        def make_cb(i: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                if done.triggered:
                    return  # an earlier input already failed the join
                if ev.failed:
                    done.fail(ev.value)
                    return
                values[i] = ev.value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))
            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when the first input event fires.

        If the first input to fire failed, the combined event fails with
        the same exception.
        """
        events = list(events)
        done = self.event("any_of")
        if not events:
            done.succeed(None)
            return done

        def cb(ev: Event) -> None:
            if done.triggered:
                return
            if ev.failed:
                done.fail(ev.value)
            else:
                done.succeed(ev.value)

        for ev in events:
            ev.add_callback(cb)
        return done

    # -- execution ----------------------------------------------------------
    def step(self) -> float:
        """Execute the next queue entry; returns its time."""
        time, _prio, _seq, item = heapq.heappop(self._queue)
        self._now = time
        if isinstance(item, Event):
            item._dispatch()
        else:
            fn, args = item
            fn(*args)
        return time

    def peek(self) -> float:
        """Time of the next entry, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else math.inf

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or the clock would pass ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        (events scheduled at precisely ``until`` do run).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if until is None:
                while self._queue:
                    self.step()
            else:
                if until < self._now:
                    raise SimulationError(
                        f"until {until} is in the past (now={self._now})")
                while self._queue and self._queue[0][0] <= until:
                    self.step()
                self._now = until
        finally:
            self._running = False

    def run_until_event(self, event: Event, limit: float = math.inf) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises :class:`SimulationError` if the queue drains or ``limit`` is
        reached first.
        """
        while not event.triggered:
            if not self._queue:
                raise SimulationError(
                    f"queue drained before event {event.name!r} fired")
            if self._queue[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} reached before {event.name!r} fired")
            self.step()
        if event.failed:
            raise event.value
        return event.value
