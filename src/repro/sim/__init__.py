"""Discrete-event simulation kernel.

This package provides the simulation substrate used by every other part of
the reproduction: a deterministic event queue, generator-based processes
(``yield Timeout(...)`` / ``yield other_process`` in the style of SimPy),
periodic tasks for tick-driven resource models, and seeded RNG streams.

The kernel is deliberately dependency-free and fully deterministic: two runs
with the same seed produce identical event orderings.
"""

from repro.sim.kernel import (
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.periodic import PeriodicTask, TickEngine, TickParticipant
from repro.sim.rng import RngStreams

__all__ = [
    "Event",
    "Interrupt",
    "PeriodicTask",
    "Process",
    "RngStreams",
    "Simulator",
    "TickEngine",
    "TickParticipant",
    "Timeout",
]
