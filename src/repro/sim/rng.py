"""Deterministic named RNG streams.

Every stochastic component draws from its own named stream so that adding
or removing a component does not perturb the draws seen by the others —
a standard technique for reproducible parallel-systems simulation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent ``numpy.random.Generator`` streams.

    Streams are derived from a root seed and a stable string key via
    ``SeedSequence.spawn``-style keying, so ``RngStreams(42).get("x")``
    yields the same sequence in every run regardless of creation order.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Key the child seed on a stable (cross-run) hash of the name.
            import hashlib

            digest = hashlib.sha256(name.encode("utf-8")).digest()
            words = [int.from_bytes(digest[i:i + 4], "little")
                     for i in range(0, 16, 4)]
            ss = np.random.SeedSequence([self.seed, *words])
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams
