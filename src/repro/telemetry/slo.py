"""Per-tenant SLO probes with per-migration violation attribution.

Voorsluys et al. (PAPERS.md) quantify live migration's real cost as SLA
violations on serving workloads; this monitor measures exactly that,
live. Each attached tenant gets two SLIs derived from its workload's
recorded throughput series:

* **throughput** — mean ops/s over the probe window (a suspended VM
  records 0.0, so stop-and-copy windows always register);
* **serving latency** — Little's-law estimate ``threads / throughput``
  (closed-loop clients keep ``threads`` requests in flight, so latency
  is the in-flight count over the service rate).

A window breaching the tenant's :class:`SloSpec` accrues
*violation-seconds*, attributed to the migration that caused it: the
tenant's own in-flight migration (classified stop-and-copy / post-copy
/ live-copy by the attempt's phase), a migration colocated with the
tenant's host, or ``unattributed``. The accrual is the input for the
ROADMAP's SLA-aware admission: plans can be charged their measured SLO
cost, and :func:`slo_aware_selector` makes the watermark trigger prefer
shedding tenants without SLOs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.periodic import PeriodicTask
from repro.vm.vm import VmState

__all__ = ["SloSpec", "SloMonitor", "slo_aware_selector"]


@dataclass(frozen=True)
class SloSpec:
    """A tenant's service-level objective."""

    #: ops/s floor; windows below it are violations
    min_throughput: float = 0.0
    #: serving-latency ceiling (Little's law estimate), seconds
    max_latency_s: float = math.inf

    def __post_init__(self):
        if self.min_throughput < 0:
            raise ValueError("min_throughput must be non-negative")
        if self.max_latency_s <= 0:
            raise ValueError("max_latency_s must be positive")


@dataclass
class TenantSli:
    """Mutable probe state for one attached tenant."""

    vm_name: str
    spec: SloSpec
    threads: float
    #: read position in the recorder's throughput series
    cursor: int = 0
    violation_s: float = 0.0
    #: cause key -> accrued violation seconds
    by_cause: dict = field(default_factory=dict)
    in_violation: bool = False
    throughput: float = 0.0
    latency_s: float = math.inf
    windows: int = 0


class SloMonitor:
    """Samples per-tenant SLIs every ``interval_s`` of sim time.

    ``attempts`` is a zero-argument callable returning the migration
    attempt reports to attribute violations against — typically
    ``lambda: control.supervisor.attempts`` (in-flight attempts have
    ``outcome is None``). Violations publish to the world's metrics
    registry (``slo.*``) and open/close ``cat="slo"`` trace instants.
    """

    def __init__(self, world, interval_s: float = 1.0,
                 attempts: Optional[Callable[[], list]] = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.world = world
        self.interval_s = float(interval_s)
        self.attempts = attempts or (lambda: [])
        self._probes: dict[str, TenantSli] = {}
        self._task = PeriodicTask(world.sim, self.interval_s, self._sample)

    def stop(self) -> None:
        self._task.cancel()

    # -- attachment -----------------------------------------------------------
    def attach(self, vm_name: str, spec: SloSpec,
               workload=None, threads: float = 1.0) -> TenantSli:
        """Probe ``vm_name`` against ``spec``.

        ``workload`` (when given) supplies the closed-loop thread count
        for the latency SLI; otherwise pass ``threads`` explicitly.
        """
        if vm_name in self._probes:
            raise ValueError(f"tenant {vm_name!r} already attached")
        if workload is not None:
            threads = float(workload.params.threads)
        probe = TenantSli(vm_name, spec, float(threads))
        self._probes[vm_name] = probe
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.instant(
                "slo", "attach", cat="slo",
                args={"tenant": vm_name,
                      "min_throughput": spec.min_throughput})
        return probe

    def protected(self) -> frozenset:
        """VM names with an attached SLO (trigger selection input)."""
        return frozenset(self._probes)

    # -- sampling -------------------------------------------------------------
    def _sample(self, now: float) -> None:
        metrics = self.world.metrics
        tracer = self.world.tracer
        recorder = self.world.recorder
        violating = 0
        for name in sorted(self._probes):
            probe = self._probes[name]
            key = f"{name}.throughput"
            if not recorder.has(key):
                continue
            v = recorder.series(key).v
            new = v[probe.cursor:]
            probe.cursor = len(v)
            if new.size == 0:
                continue
            tp = float(new.mean())
            probe.throughput = tp
            probe.latency_s = probe.threads / tp if tp > 0 else math.inf
            probe.windows += 1
            violated = (tp < probe.spec.min_throughput
                        or probe.latency_s > probe.spec.max_latency_s)
            if metrics.enabled:
                metrics.gauge(f"slo.{name}.throughput").set(tp)
                if tp > 0:
                    metrics.gauge(f"slo.{name}.latency_s").set(
                        probe.latency_s)
            if violated:
                violating += 1
                cause = self._attribute(name)
                probe.violation_s += self.interval_s
                probe.by_cause[cause] = \
                    probe.by_cause.get(cause, 0.0) + self.interval_s
                if metrics.enabled:
                    metrics.inc("slo.violation_s", self.interval_s)
                    metrics.inc(f"slo.{name}.violation_s",
                                self.interval_s)
                if not probe.in_violation and tracer.enabled:
                    tracer.instant(
                        "slo", "violation-open", cat="slo",
                        args={"tenant": name, "cause": cause,
                              "throughput": round(tp, 6)})
            elif probe.in_violation and tracer.enabled:
                tracer.instant("slo", "violation-close", cat="slo",
                               args={"tenant": name})
            probe.in_violation = violated
        if metrics.enabled:
            metrics.gauge("slo.violating_tenants").set(violating)

    def _attribute(self, vm_name: str) -> str:
        """Which migration owns this violation window.

        The tenant's own in-flight attempt wins (classified by phase:
        the VM is suspended → ``stop-and-copy``; already switched →
        ``post-copy``; else ``live-copy``); otherwise any in-flight
        attempt touching the tenant's current host is ``colocated``;
        otherwise ``unattributed``.
        """
        vm = self.world.vms.get(vm_name)
        host = vm.host if vm is not None else ""
        active = [r for r in self.attempts() if r.outcome is None]
        for r in active:
            if r.vm_name == vm_name:
                key = f"{r.vm_name}#a{r.attempt}"
                if vm is not None and vm.state is VmState.SUSPENDED:
                    return f"{key}:stop-and-copy"
                if r.switch_time is not None:
                    return f"{key}:post-copy"
                return f"{key}:live-copy"
        for r in active:
            if host and (r.src_host == host or r.dst_host == host):
                return f"{r.vm_name}#a{r.attempt}:colocated"
        return "unattributed"

    # -- reporting ------------------------------------------------------------
    @property
    def total_violation_s(self) -> float:
        return sum(p.violation_s for p in self._probes.values())

    def violation_seconds(self) -> dict[str, float]:
        """Accrued violation-seconds per tenant (name-sorted)."""
        return {n: self._probes[n].violation_s
                for n in sorted(self._probes)}

    def attribution(self) -> dict[str, dict[str, float]]:
        """``tenant -> cause -> violation seconds`` (sorted keys)."""
        return {n: {c: self._probes[n].by_cause[c]
                    for c in sorted(self._probes[n].by_cause)}
                for n in sorted(self._probes)
                if self._probes[n].by_cause}


def slo_aware_selector(monitor: SloMonitor) -> Callable:
    """A drop-in for :func:`repro.core.trigger.select_vms_to_migrate`
    that sheds SLO-free VMs first.

    Within each class (unprotected, then protected) the greedy order is
    still largest-WSS-first with lexicographic ties, so the unprotected
    arm selects exactly like the blind selector when no tenant on the
    host carries an SLO.
    """
    def select(wss_by_vm: dict[str, float],
               target_bytes: float) -> list[str]:
        total = sum(wss_by_vm.values())
        if total <= target_bytes:
            return []
        protected = monitor.protected()
        chosen: list[str] = []
        remaining = total
        for name, wss in sorted(
                wss_by_vm.items(),
                key=lambda kv: (kv[0] in protected, -kv[1], kv[0])):
            chosen.append(name)
            remaining -= wss
            if remaining <= target_bytes:
                break
        return chosen
    return select
