"""Metrics exporters: deterministic JSONL and Prometheus-style text.

Follows the :mod:`repro.obs.export` conventions — PathLike in, ``Path``
out, sorted keys, compact separators, sim-clock timestamps — so two
same-seed runs export byte-identical files (regression-tested).

The JSONL form is the machine-readable snapshot: a header line, then
one JSON object per instrument in name order. The Prometheus form is
the operator-facing exposition text (``# TYPE`` comments, cumulative
``_bucket{le="..."}`` lines, ``_sum``/``_count``, summary-style
quantile lines) for anything that speaks the ecosystem's format.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Union

from repro.telemetry.instruments import MetricsRegistry

__all__ = ["metrics_snapshot", "metrics_to_jsonl", "prometheus_text",
           "metrics_to_prometheus"]

PathLike = Union[str, Path]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _jsonify(obj):
    """json.dumps fallback: NumPy scalars and other .item() carriers."""
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def _dumps(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=_jsonify)


def _round(v: float) -> float:
    """Canonical float for export: kills accumulation noise without
    losing anything the evaluation reads (12 significant-ish digits)."""
    return round(float(v), 9)


def _instrument_doc(inst) -> dict:
    """One instrument as a JSON-ready summary record."""
    doc: dict = {"name": inst.name, "type": inst.kind}
    if inst.kind == "counter":
        doc["value"] = _round(inst.value)
    elif inst.kind == "gauge":
        doc["value"] = _round(inst.value)
        doc["samples"] = inst.count
        if inst.count:
            doc["min"] = _round(min(inst.v))
            doc["max"] = _round(max(inst.v))
            doc["mean"] = _round(sum(inst.v) / len(inst.v))
    elif inst.kind == "histogram":
        doc["count"] = inst.count
        doc["sum"] = _round(inst.sum)
        doc["max"] = _round(inst.max)
        doc.update({k: _round(v) for k, v in inst.quantiles().items()})
        doc["buckets"] = [["+Inf" if le == float("inf") else _round(le), n]
                          for le, n in inst.buckets()]
    elif inst.kind == "rate":
        doc["total"] = _round(inst.total)
        doc["window_s"] = _round(inst.window_s)
        doc["rate"] = _round(inst.rate)
    return doc


def metrics_snapshot(registry: MetricsRegistry) -> dict:
    """The registry as a JSON-ready document (instruments name-sorted)."""
    return {
        "kind": "metrics",
        "t": _round(registry.clock()),
        "instruments": [_instrument_doc(i) for i in registry.instruments()],
    }


def metrics_to_jsonl(registry: MetricsRegistry, path: PathLike) -> Path:
    """Write the snapshot as JSONL: a header line, then one instrument
    per line in name order. Deterministic — same seed, same bytes."""
    path = Path(path)
    snap = metrics_snapshot(registry)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(_dumps({"kind": snap["kind"], "t": snap["t"],
                         "instruments": len(snap["instruments"])}) + "\n")
        for doc in snap["instruments"]:
            fh.write(_dumps(doc) + "\n")
    return path


def _prom_name(name: str, suffix: str = "") -> str:
    return "repro_" + _NAME_RE.sub("_", name) + suffix


def _prom_num(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    f = float(v)
    return str(int(f)) if f == int(f) and abs(f) < 1e15 else repr(f)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus exposition format."""
    lines: list[str] = []
    for inst in registry.instruments():
        if inst.kind == "counter":
            name = _prom_name(inst.name, "_total")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_num(inst.value)}")
        elif inst.kind == "gauge":
            name = _prom_name(inst.name)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_num(inst.value)}")
        elif inst.kind == "histogram":
            name = _prom_name(inst.name)
            lines.append(f"# TYPE {name} histogram")
            for le, n in inst.buckets():
                lines.append(f'{name}_bucket{{le="{_prom_num(le)}"}} {n}')
            lines.append(f"{name}_sum {_prom_num(inst.sum)}")
            lines.append(f"{name}_count {inst.count}")
            for key, v in inst.quantiles().items():
                q = int(key[1:]) / 100.0
                lines.append(f'{name}{{quantile="{q}"}} {_prom_num(v)}')
        elif inst.kind == "rate":
            name = _prom_name(inst.name)
            lines.append(f"# TYPE {name}_per_s gauge")
            lines.append(f"{name}_per_s {_prom_num(inst.rate)}")
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_prom_num(inst.total)}")
    return "\n".join(lines) + "\n" if lines else ""


def metrics_to_prometheus(registry: MetricsRegistry,
                          path: PathLike) -> Path:
    """Write the Prometheus exposition text."""
    path = Path(path)
    path.write_text(prometheus_text(registry), encoding="utf-8")
    return path
