"""Cluster pressure index: per-host, per-rack, and cluster scalars.

The ROADMAP's predictive-orchestration item needs the planner to tell
"this rack is heating up" from "one host spiked"; this folds the four
signals that precede a watermark alert into one ``[0, 1]`` scalar per
host, averaged per rack and cluster-wide, published as gauges every
sample:

* **memory** — resident bytes over usable bytes;
* **writeback** — swap-writeback backlog over usable bytes (pages the
  host still owes its swap devices: eviction pressure);
* **network** — the NIC's granted utilization this tick (max of tx/rx);
* **fault** — the host's health state (DOWN=1, DEGRADED/RECENTLY_FAILED
  in between), when a health tracker is wired.

Weights are configurable; the scalar is clipped to ``[0, 1]`` so a
single saturated term cannot mask the others' headroom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.periodic import PeriodicTask

__all__ = ["PressureConfig", "PressureIndex"]

#: health-state name -> fault pressure term
_HEALTH_PRESSURE = {
    "up": 0.0,
    "recently-failed": 0.3,
    "degraded": 0.6,
    "down": 1.0,
}


@dataclass(frozen=True)
class PressureConfig:
    mem_weight: float = 0.55
    writeback_weight: float = 0.15
    net_weight: float = 0.15
    fault_weight: float = 0.15
    interval_s: float = 1.0

    def __post_init__(self):
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        for w in (self.mem_weight, self.writeback_weight,
                  self.net_weight, self.fault_weight):
            if w < 0:
                raise ValueError("weights must be non-negative")


class PressureIndex:
    """Publishes ``pressure.host.*`` / ``pressure.rack.*`` /
    ``pressure.cluster`` gauges every ``interval_s`` of sim time.

    ``health`` is an optional callable returning a host's
    :class:`~repro.sched.health.HostHealth` (or its string value);
    without it the fault term is zero. Racks come from the world's
    topology when one is set.
    """

    def __init__(self, world, config: Optional[PressureConfig] = None,
                 health: Optional[Callable[[str], object]] = None):
        self.world = world
        self.config = config or PressureConfig()
        self.health = health
        #: last computed scalars (host -> pressure), for live readers
        self.hosts: dict[str, float] = {}
        self.racks: dict[str, float] = {}
        self.cluster = 0.0
        self._task = PeriodicTask(world.sim, self.config.interval_s,
                                  self._sample)

    def stop(self) -> None:
        self._task.cancel()

    # -- per-term signals -----------------------------------------------------
    def _net_utilization(self, granted: dict[str, float],
                         host: str) -> float:
        net = self.world.network
        if not net.has_host(host):
            return 0.0
        nic = net.nic(host)
        dt = self.world.engine.dt
        tx_cap = nic.tx.capacity_per_tick(dt)
        rx_cap = nic.rx.capacity_per_tick(dt)
        tx, rx = granted.get(host, (0.0, 0.0))
        util_tx = tx / tx_cap if tx_cap > 0 else 1.0
        util_rx = rx / rx_cap if rx_cap > 0 else 1.0
        return max(util_tx, util_rx)

    def _granted_by_host(self) -> dict[str, tuple]:
        """This tick's granted bytes per host as ``(tx, rx)``."""
        out: dict[str, tuple] = {}
        for f in self.world.network.flows:
            g = f.granted
            if g <= 0:
                continue
            tx, rx = out.get(f.src, (0.0, 0.0))
            out[f.src] = (tx + g, rx)
            tx, rx = out.get(f.dst, (0.0, 0.0))
            out[f.dst] = (tx, rx + g)
        return out

    def host_pressure(self, name: str,
                      granted: Optional[dict] = None) -> float:
        """One host's scalar, computed from current state."""
        cfg = self.config
        mem = self.world.hosts[name].memory
        usable = mem.usable_bytes()
        mem_term = mem.total_resident_bytes() / usable if usable > 0 \
            else 1.0
        backlog = sum(b.writeback_backlog for b in mem.bindings)
        wb_term = backlog / usable if usable > 0 else 1.0
        if granted is None:
            granted = self._granted_by_host()
        net_term = self._net_utilization(granted, name)
        fault_term = 0.0
        if self.health is not None:
            state = self.health(name)
            fault_term = _HEALTH_PRESSURE.get(
                getattr(state, "value", state), 0.0)
        p = (cfg.mem_weight * mem_term
             + cfg.writeback_weight * min(wb_term, 1.0)
             + cfg.net_weight * min(net_term, 1.0)
             + cfg.fault_weight * fault_term)
        return min(max(p, 0.0), 1.0)

    # -- sampling -------------------------------------------------------------
    def _sample(self, now: float) -> None:
        world = self.world
        metrics = world.metrics
        granted = self._granted_by_host()
        self.hosts = {name: self.host_pressure(name, granted)
                      for name in sorted(world.hosts)}
        rack_members: dict[str, list[float]] = {}
        if world.topology is not None:
            for name, p in self.hosts.items():
                rack = world.topology.rack_of(name)
                if rack is not None:
                    rack_members.setdefault(rack, []).append(p)
        self.racks = {r: sum(ps) / len(ps)
                      for r, ps in sorted(rack_members.items())}
        self.cluster = (sum(self.hosts.values()) / len(self.hosts)) \
            if self.hosts else 0.0
        if metrics.enabled:
            for name, p in self.hosts.items():
                metrics.gauge(f"pressure.host.{name}").set(p)
            for rack, p in self.racks.items():
                metrics.gauge(f"pressure.rack.{rack}").set(p)
            metrics.gauge("pressure.cluster").set(self.cluster)
        tracer = world.tracer
        if tracer.enabled:
            tracer.instant(
                "pressure", "sample", cat="telemetry",
                args={"cluster": round(self.cluster, 6),
                      "peak_host": max(self.hosts, key=self.hosts.get)
                      if self.hosts else ""})
