"""Telemetry: deterministic live metrics, SLO probes, pressure index.

Where :mod:`repro.obs` records *events* for post-hoc analysis and
:mod:`repro.metrics` keeps raw evaluation series, this package keeps
*live aggregates* the control plane itself can consume mid-run: typed
instruments in a :class:`MetricsRegistry` (sim-clock timestamps, so
same seed ⇒ byte-identical exports), per-tenant :class:`SloMonitor`
probes with per-migration violation attribution, and a cluster
:class:`PressureIndex`. See DESIGN.md §12.
"""

from repro.telemetry.instruments import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    WindowedRate,
)
from repro.telemetry.export import (
    metrics_snapshot,
    metrics_to_jsonl,
    metrics_to_prometheus,
    prometheus_text,
)
from repro.telemetry.slo import SloMonitor, SloSpec, slo_aware_selector
from repro.telemetry.pressure import PressureConfig, PressureIndex
from repro.telemetry.dashboard import render_dashboard

__all__ = [
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "PressureConfig",
    "PressureIndex",
    "SloMonitor",
    "SloSpec",
    "WindowedRate",
    "metrics_snapshot",
    "metrics_to_jsonl",
    "metrics_to_prometheus",
    "prometheus_text",
    "render_dashboard",
    "slo_aware_selector",
]
