"""ASCII dashboard over a live :class:`MetricsRegistry`.

One call renders the registry's current state for the terminal —
gauge sparklines over sim time, counter/rate tables, histogram
quantile tables — reusing the :mod:`repro.metrics.ascii` primitives.
The experiments CLI prints it after a ``--metrics`` run; examples call
it mid-run for a live view.
"""

from __future__ import annotations

import fnmatch
from typing import Optional

from repro.metrics.ascii import format_table, sparkline
from repro.telemetry.instruments import MetricsRegistry

__all__ = ["render_dashboard"]


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return f"{int(v):,}"
    return f"{v:,.3f}"


def render_dashboard(registry: MetricsRegistry, width: int = 48,
                     select: Optional[str] = None) -> str:
    """The registry as a multi-section ASCII dashboard string.

    ``select`` is an optional ``fnmatch`` pattern (e.g. ``pressure.*``)
    restricting which instruments render.
    """
    instruments = registry.instruments()
    if select:
        instruments = [i for i in instruments
                       if fnmatch.fnmatch(i.name, select)]
    gauges = [i for i in instruments if i.kind == "gauge"]
    counters = [i for i in instruments if i.kind == "counter"]
    hists = [i for i in instruments if i.kind == "histogram"]
    rates = [i for i in instruments if i.kind == "rate"]
    lines: list[str] = []
    if gauges:
        lines.append("gauges")
        label_w = min(max(len(g.name) for g in gauges), 34)
        for g in gauges:
            # [0, 1]-bounded signals render against their domain
            hi = 1.0 if g.v and max(g.v) <= 1.0 and min(g.v) >= 0.0 \
                else None
            chart = sparkline(g.v, width=width, lo=0.0, hi=hi)
            lines.append(f"  {g.name:<{label_w}.{label_w}s} "
                         f"|{chart:<{width}s}| {_fmt(g.value)}")
    if counters:
        lines.append("counters")
        lines.extend(format_table(
            ("name", "value"),
            [(c.name, _fmt(c.value)) for c in counters]))
    if rates:
        lines.append("rates")
        lines.extend(format_table(
            ("name", "rate/s", "total"),
            [(r.name, _fmt(r.rate), _fmt(r.total)) for r in rates]))
    if hists:
        lines.append("histograms")
        rows = []
        for h in hists:
            q = h.quantiles()
            rows.append((h.name, h.count, _fmt(q["p50"]), _fmt(q["p95"]),
                         _fmt(q["p99"]), _fmt(h.max)))
        lines.extend(format_table(
            ("name", "count", "p50", "p95", "p99", "max"), rows))
    if not lines:
        return "  (no instruments)"
    return "\n".join(lines)
