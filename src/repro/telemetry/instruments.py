"""Typed streaming instruments aggregating on the simulation clock.

The :class:`MetricsRegistry` is the live counterpart of the
:class:`~repro.obs.Tracer`: where the tracer records *events* for
post-hoc analysis, the registry maintains *aggregates* — monotonic
counters, last-value gauges with history, log-bucketed histograms with
exact quantiles, and trailing-window rates — that can be read at any
point during the run (the SLO monitor, the pressure index, and the
planner's forecast-aware successors all consume them live).

Determinism mirrors the tracer's contract: every sample is stamped with
the *simulation* clock, never the wall clock, so a registry's exported
snapshot is a pure function of the scenario and seed.

The zero-overhead default is :data:`NULL_METRICS` — a
:class:`NullRegistry` whose instrument getters return shared no-op
instruments, so components may cache instruments unconditionally and
hot paths pay a single attribute check::

    if metrics.enabled:
        metrics.counter("net.granted_bytes").inc(total)
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = [
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullInstrument",
    "NullRegistry",
    "WindowedRate",
]

#: exact quantiles every histogram reports (export + dashboard)
QUANTILES = (50.0, 95.0, 99.0)


class NullInstrument:
    """No-op stand-in for every instrument type (safe to cache)."""

    enabled = False
    kind = "null"
    value = 0.0
    count = 0
    total = 0.0

    def inc(self, by: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def mark(self, amount: float = 1.0) -> None:
        pass


#: the shared no-op instrument NullRegistry getters hand out
NULL_INSTRUMENT = NullInstrument()


class NullRegistry:
    """The zero-overhead default: every method is a no-op.

    Instrumentation sites test :attr:`enabled` before touching an
    instrument, so a world without metrics pays one attribute check —
    the same contract as :class:`~repro.obs.NullTracer`.
    """

    enabled = False

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def counter(self, name: str) -> NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str) -> NullInstrument:
        return NULL_INSTRUMENT

    def rate(self, name: str, window_s: float = 10.0) -> NullInstrument:
        return NULL_INSTRUMENT

    # -- one-shot conveniences (dominant form at instrumentation sites) -----
    def inc(self, name: str, by: float = 1.0) -> None:
        pass

    def set(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def mark(self, name: str, amount: float = 1.0) -> None:
        pass

    def instruments(self) -> list:
        return []


#: the shared no-op registry every component defaults to
NULL_METRICS = NullRegistry()


class Counter:
    """Monotonic event/byte counter."""

    kind = "counter"

    __slots__ = ("name", "value")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self.name = name
        self.value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {by})")
        self.value += by


class Gauge:
    """Last-value gauge keeping its full (t, v) history.

    The history is what the dashboard sparklines and the pressure-index
    consumers read; sim runs are bounded, so an unbounded Python list is
    the right trade against per-sample eviction logic.
    """

    kind = "gauge"

    __slots__ = ("name", "_registry", "t", "v")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self.name = name
        self._registry = registry
        self.t: list[float] = []
        self.v: list[float] = []

    def set(self, value: float) -> None:
        self.t.append(self._registry.clock())
        self.v.append(float(value))

    @property
    def value(self) -> float:
        return self.v[-1] if self.v else 0.0

    @property
    def count(self) -> int:
        return len(self.v)


class Histogram:
    """Distribution sketch: O(1) observe, exact quantiles at read time.

    Observations append to a geometrically grown NumPy buffer; decade
    log buckets (``10^k`` upper bounds) are computed only at export via
    one ``searchsorted`` pass, and quantiles are *exact*
    (``np.percentile`` over the raw samples), not bucket-interpolated.
    """

    kind = "histogram"

    __slots__ = ("name", "_buf", "_n")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self.name = name
        self._buf = np.empty(64, dtype=float)
        self._n = 0

    def observe(self, value: float) -> None:
        if self._n == self._buf.size:
            grown = np.empty(self._buf.size * 2, dtype=float)
            grown[:self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = value
        self._n += 1

    @property
    def values(self) -> np.ndarray:
        return self._buf[:self._n]

    @property
    def count(self) -> int:
        return self._n

    @property
    def sum(self) -> float:
        return float(self.values.sum()) if self._n else 0.0

    @property
    def max(self) -> float:
        return float(self.values.max()) if self._n else 0.0

    def percentile(self, q: float) -> float:
        if self._n == 0:
            return 0.0
        return float(np.percentile(self.values, q))

    def quantiles(self) -> dict[str, float]:
        """Exact ``{"p50": ..., "p95": ..., "p99": ...}``."""
        if self._n == 0:
            return {f"p{int(q)}": 0.0 for q in QUANTILES}
        vals = np.percentile(self.values, QUANTILES)
        return {f"p{int(q)}": float(v) for q, v in zip(QUANTILES, vals)}

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative decade log buckets ``[(le, count), ...]``.

        Bounds are ``10^k`` from the decade holding the smallest
        positive sample up to the decade covering the maximum, capped
        to 24 bounds, with a final ``(inf, count)``. Purely a function
        of the observed values — deterministic across same-seed runs.
        """
        if self._n == 0:
            return [(float("inf"), 0)]
        vals = self.values
        top = float(vals.max())
        positive = vals[vals > 0]
        lo_k = int(np.floor(np.log10(positive.min()))) if positive.size \
            else 0
        hi_k = int(np.ceil(np.log10(top))) if top > 0 else lo_k + 1
        hi_k = max(hi_k, lo_k + 1)
        ks = range(lo_k, min(hi_k, lo_k + 23) + 1)
        bounds = np.array([10.0 ** k for k in ks])
        counts = np.searchsorted(np.sort(vals), bounds, side="right")
        out = [(float(b), int(c)) for b, c in zip(bounds, counts)]
        out.append((float("inf"), self._n))
        return out


class WindowedRate:
    """Events (or bytes) per second over a trailing sim-time window."""

    kind = "rate"

    __slots__ = ("name", "_registry", "window_s", "total", "_events")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 window_s: float = 10.0):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.name = name
        self._registry = registry
        self.window_s = float(window_s)
        self.total = 0.0
        #: (t, amount) marks still inside the window
        self._events: list[tuple[float, float]] = []

    def mark(self, amount: float = 1.0) -> None:
        now = self._registry.clock()
        self.total += amount
        self._events.append((now, amount))
        self._evict(now)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        events = self._events
        i = 0
        for i, (t, _) in enumerate(events):
            if t > cutoff:
                break
        else:
            i = len(events)
        if i:
            del events[:i]

    @property
    def rate(self) -> float:
        """Amount per second over the window, as of the current clock."""
        now = self._registry.clock()
        self._evict(now)
        return sum(a for _, a in self._events) / self.window_s

    @property
    def count(self) -> int:
        return len(self._events)


class MetricsRegistry(NullRegistry):
    """Owns every instrument, keyed by dotted name.

    Getters are idempotent — the first call creates the instrument, any
    later call returns it; asking for an existing name as a different
    type raises (one name, one meaning). ``clock`` is a zero-argument
    callable returning simulation seconds; a
    :class:`~repro.cluster.World` binds it automatically when the
    registry is passed to its constructor.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._instruments: dict[str, object] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    def _get(self, name: str, cls, **kwargs):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(self, name, **kwargs)
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, requested {cls.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def rate(self, name: str, window_s: float = 10.0) -> WindowedRate:
        return self._get(name, WindowedRate, window_s=window_s)

    # -- one-shot conveniences ----------------------------------------------
    def inc(self, name: str, by: float = 1.0) -> None:
        self.counter(name).inc(by)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def mark(self, name: str, amount: float = 1.0) -> None:
        self.rate(name).mark(amount)

    # -- introspection --------------------------------------------------------
    def instruments(self) -> list:
        """Every instrument, name-sorted (the export order)."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def get(self, name: str):
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments
