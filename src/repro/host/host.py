"""A physical host: memory manager, CPU capacity, NIC attachment.

The host object glues the substrates together for one machine: it owns
the :class:`~repro.mem.manager.HostMemoryManager`, knows its CPU core
count (the paper's hosts have twelve 2.1 GHz Xeons), and registers its
NIC with the network fabric. VM placement — creating a cgroup, binding a
swap backend, registering the VM's pages with the memory manager —
happens through :meth:`place_vm`, which is the moral equivalent of
starting a KVM/QEMU process inside a fresh cgroup (§IV-B).
"""

from __future__ import annotations

from typing import Optional

from repro.mem.cgroup import Cgroup
from repro.mem.cpu import CpuArbiter
from repro.mem.device import SwapBackend
from repro.mem.manager import HostMemoryManager, VmMemoryBinding
from repro.net.network import Network
from repro.vm.vm import VirtualMachine

__all__ = ["Host"]


class Host:
    """One physical machine in the cluster."""

    def __init__(self, name: str, memory_bytes: float, network: Network,
                 cpu_cores: int = 12, host_os_bytes: float = 200 * 2 ** 20,
                 nic_bandwidth_bps: Optional[float] = None):
        if cpu_cores <= 0:
            raise ValueError("cpu_cores must be positive")
        self.name = name
        self.memory_bytes = float(memory_bytes)
        self.cpu_cores = int(cpu_cores)
        self.network = network
        network.add_host(name, nic_bandwidth_bps)
        self.memory = HostMemoryManager(name, memory_bytes,
                                        host_os_bytes=host_os_bytes)
        self.cpu = CpuArbiter(name, cpu_cores)
        self.vms: dict[str, VirtualMachine] = {}

    # -- VM placement ---------------------------------------------------------
    def place_vm(self, vm: VirtualMachine, reservation_bytes: float,
                 swap_backend: SwapBackend) -> VmMemoryBinding:
        """Admit a VM: create its cgroup, bind its per-VM swap device, and
        register its memory with this host's memory manager."""
        if vm.name in self.vms:
            raise ValueError(f"VM already placed on {self.name}: {vm.name}")
        vm.host = self.name
        cgroup = Cgroup(f"cg.{vm.name}", reservation_bytes)
        binding = self.memory.register_vm(vm, cgroup, swap_backend)
        self.vms[vm.name] = vm
        return binding

    def remove_vm(self, vm_name: str) -> None:
        """Detach a VM (after it migrated away or terminated)."""
        del self.vms[vm_name]
        self.memory.unregister_vm(vm_name)

    def adopt_vm(self, vm: VirtualMachine, binding_from: VmMemoryBinding,
                 backend: Optional[SwapBackend] = None) -> VmMemoryBinding:
        """Register an incoming (migrated) VM, carrying its cgroup across.

        By default the swap backend also carries over — the paper's
        portable per-VM swap device (§IV-B). The baselines instead pass
        the destination host's local swap device, because a host-level
        swap partition is not reachable from the destination.
        """
        return self.place_vm_with_cgroup(vm, binding_from.cgroup,
                                         backend or binding_from.backend)

    def place_vm_with_cgroup(self, vm: VirtualMachine, cgroup: Cgroup,
                             swap_backend: SwapBackend) -> VmMemoryBinding:
        if vm.name in self.vms:
            raise ValueError(f"VM already placed on {self.name}: {vm.name}")
        vm.host = self.name
        binding = self.memory.register_vm(vm, cgroup, swap_backend)
        self.vms[vm.name] = vm
        return binding

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Host {self.name} {self.memory_bytes/2**30:.0f}GiB "
                f"{len(self.vms)} VMs>")
