"""Physical host model (hypervisor glue)."""

from repro.host.host import Host

__all__ = ["Host"]
