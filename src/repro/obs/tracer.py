"""Sim-clock tracing: hierarchical spans and instant events.

The :class:`Tracer` timestamps every event with the *simulation* clock,
never the wall clock, so a trace is a pure function of the scenario and
seed — two same-seed runs produce byte-identical exports (the
determinism guarantee DESIGN.md §8 documents). Components are handed a
tracer explicitly; the default everywhere is the module-level
:data:`NULL_TRACER`, whose methods are no-ops and whose ``enabled``
flag lets hot paths skip even argument construction::

    if tracer.enabled:
        tracer.instant("planner", "plan", cat="planner",
                       args={"vm": vm, "dst": dst})

Event vocabulary (mirroring the Chrome trace-event phases the exporter
emits):

* ``begin``/``end`` — a synchronous span on a *track* (a named
  timeline: one per VM, host, or subsystem). Spans on one track nest
  strictly (LIFO), like a call stack;
* ``instant`` — a point event (a switchover, a planner verdict);
* ``async_begin``/``async_end`` — a span that may overlap others on
  its track (concurrent transfer jobs, fault windows). Paired by id;
* ``counter`` — a sampled value series rendered as a counter track.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = ["NULL_TRACER", "NullTracer", "Span", "TraceEvent", "Tracer"]


@dataclass
class TraceEvent:
    """One trace record. ``ph`` follows the Chrome trace-event phases:
    B/E (span begin/end), i (instant), b/e (async span), C (counter)."""

    __slots__ = ("ph", "t", "track", "name", "cat", "args", "id")

    ph: str
    t: float
    track: str
    name: str
    cat: str
    args: Optional[dict]
    id: Optional[int]


@dataclass(frozen=True)
class Span:
    """A completed span reconstructed from a trace (begin/end paired)."""

    track: str
    name: str
    cat: str
    t0: float
    t1: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class NullTracer:
    """The zero-overhead default: every method is a no-op.

    Instrumentation sites test :attr:`enabled` before building event
    arguments, so a world without a tracer pays one attribute check.
    """

    enabled = False

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def begin(self, track: str, name: str, cat: str = "",
              args: Optional[dict] = None) -> None:
        pass

    def end(self, track: str, args: Optional[dict] = None) -> None:
        pass

    def instant(self, track: str, name: str, cat: str = "",
                args: Optional[dict] = None) -> None:
        pass

    def counter(self, track: str, name: str,
                values: Optional[dict] = None) -> None:
        pass

    def async_begin(self, track: str, name: str, cat: str = "",
                    args: Optional[dict] = None) -> int:
        return 0

    def async_end(self, span_id: int,
                  args: Optional[dict] = None) -> None:
        pass

    @contextmanager
    def span(self, track: str, name: str, cat: str = "",
             args: Optional[dict] = None) -> Iterator[None]:
        yield

    def finish(self) -> None:
        pass


#: the shared no-op tracer every component defaults to
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Collects :class:`TraceEvent` records stamped with the sim clock.

    ``clock`` is a zero-argument callable returning the current
    simulation time in seconds (``lambda: world.sim.now``); a
    :class:`~repro.cluster.World` binds it automatically when the
    tracer is passed to its constructor.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.events: list[TraceEvent] = []
        #: per-track stack of open synchronous span names
        self._stacks: dict[str, list[str]] = {}
        #: open async spans: id -> (track, name, cat)
        self._open_async: dict[int, tuple[str, str, str]] = {}
        self._next_async_id = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    # -- synchronous spans ----------------------------------------------------
    def begin(self, track: str, name: str, cat: str = "",
              args: Optional[dict] = None) -> None:
        self.events.append(
            TraceEvent("B", self.clock(), track, name, cat, args, None))
        self._stacks.setdefault(track, []).append(name)

    def end(self, track: str, args: Optional[dict] = None) -> None:
        stack = self._stacks.get(track)
        if not stack:
            raise ValueError(f"end() with no open span on track {track!r}")
        name = stack.pop()
        self.events.append(
            TraceEvent("E", self.clock(), track, name, "", args, None))

    @contextmanager
    def span(self, track: str, name: str, cat: str = "",
             args: Optional[dict] = None) -> Iterator[None]:
        self.begin(track, name, cat, args)
        try:
            yield
        finally:
            self.end(track)

    def open_depth(self, track: str) -> int:
        return len(self._stacks.get(track, ()))

    # -- instants and counters ------------------------------------------------
    def instant(self, track: str, name: str, cat: str = "",
                args: Optional[dict] = None) -> None:
        self.events.append(
            TraceEvent("i", self.clock(), track, name, cat, args, None))

    def counter(self, track: str, name: str,
                values: Optional[dict] = None) -> None:
        self.events.append(
            TraceEvent("C", self.clock(), track, name, "", values, None))

    # -- async (overlapping) spans --------------------------------------------
    def async_begin(self, track: str, name: str, cat: str = "",
                    args: Optional[dict] = None) -> int:
        self._next_async_id += 1
        aid = self._next_async_id
        self._open_async[aid] = (track, name, cat)
        self.events.append(
            TraceEvent("b", self.clock(), track, name, cat, args, aid))
        return aid

    def async_end(self, span_id: int,
                  args: Optional[dict] = None) -> None:
        """Close an async span; ids not open (or 0) are ignored, so
        teardown paths may end unconditionally."""
        info = self._open_async.pop(span_id, None)
        if info is None:
            return
        track, name, cat = info
        self.events.append(
            TraceEvent("e", self.clock(), track, name, cat, args, span_id))

    # -- completion -----------------------------------------------------------
    def finish(self) -> None:
        """Close every still-open span at the current clock so exports
        are well-formed (call once, after the run)."""
        for track in sorted(self._stacks):
            while self._stacks[track]:
                self.end(track, args={"unclosed": True})
        for aid in sorted(self._open_async):
            self.async_end(aid, args={"unclosed": True})

    def __len__(self) -> int:
        return len(self.events)
