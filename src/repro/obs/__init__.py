"""Observability: sim-clock tracing, exporters, and a self-profiler.

The tracing layer answers the *why* questions the aggregate
:class:`~repro.metrics.Recorder` series cannot — which precopy round
stalled, which planner decision bounced a VM, which fault window an
abort fell into — as time-aligned spans and events across every
subsystem. Traces are bound to the simulation clock, so a trace is as
deterministic as the run itself. See DESIGN.md §8.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, TraceEvent, Tracer
from repro.obs.export import (
    chrome_trace_doc,
    spans_of,
    trace_to_chrome,
    trace_to_jsonl,
)
from repro.obs.check import missing_categories, validate_chrome_trace
from repro.obs.profiler import SelfProfiler

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SelfProfiler",
    "Span",
    "TraceEvent",
    "Tracer",
    "chrome_trace_doc",
    "missing_categories",
    "spans_of",
    "trace_to_chrome",
    "trace_to_jsonl",
    "validate_chrome_trace",
]
