"""Wall-clock self-profiler for the perf harness.

Unlike the :class:`~repro.obs.Tracer` (sim time, deterministic), the
profiler measures *wall-clock* time and attributes it to named sections
— which subsystem the harness actually spends its microseconds in
(network arbiter vs tick-engine bookkeeping vs planner). The
:class:`~repro.sim.TickEngine` takes an optional profiler and times its
three phases per arbiter class; :func:`repro.perf.scale.cluster_bench`
attaches one and lands the breakdown in BENCH_scale.json.

The engine's unprofiled tick path is untouched (one ``is None`` check),
so attaching no profiler costs nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["SelfProfiler"]


class SelfProfiler:
    """Accumulates wall-clock seconds and call counts per section."""

    def __init__(self):
        #: section name -> [seconds, calls]
        self._acc: dict[str, list] = {}

    # -- measurement ----------------------------------------------------------
    def start(self) -> float:
        """Start a measurement; pass the returned stamp to :meth:`stop`."""
        return time.perf_counter()

    def stop(self, section: str, t0: float) -> None:
        acc = self._acc.get(section)
        if acc is None:
            acc = self._acc[section] = [0.0, 0]
        acc[0] += time.perf_counter() - t0
        acc[1] += 1

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        t0 = self.start()
        try:
            yield
        finally:
            self.stop(name, t0)

    def wrap(self, fn: Callable, section: str) -> Callable:
        """A wrapper of ``fn`` that bills its runtime to ``section``."""
        def wrapped(*args, **kwargs):
            t0 = self.start()
            try:
                return fn(*args, **kwargs)
            finally:
                self.stop(section, t0)
        return wrapped

    # -- reporting ------------------------------------------------------------
    def seconds(self, section: str) -> float:
        return self._acc.get(section, (0.0, 0))[0]

    def report(self, wall_s: float = 0.0) -> dict:
        """The attribution as a JSON-ready dict.

        Shares are fractions of one common denominator — the harness's
        total wall time when ``wall_s`` is given (and exceeds the
        measured sum), otherwise the measured sum — so they always add
        up to at most 1.0. With ``wall_s`` the unattributed remainder
        (kernel event dispatch, callbacks, everything between sections)
        gets its own explicit ``other`` section, and the shares sum to
        exactly 1.0 instead of silently over-counting.
        """
        measured = sum(acc[0] for acc in self._acc.values())
        denom = max(measured, wall_s)
        sections = {
            name: {
                "s": acc[0],
                "calls": acc[1],
                "share": (acc[0] / denom) if denom > 0 else 0.0,
            }
            for name, acc in sorted(self._acc.items())
        }
        out = {"sections": sections, "measured_s": measured}
        if wall_s > 0:
            other = max(0.0, wall_s - measured)
            sections["other"] = {
                "s": other,
                "calls": 0,
                "share": (other / denom) if denom > 0 else 0.0,
            }
            out["wall_s"] = wall_s
            out["other_s"] = other
        return out
