"""Chrome trace-event schema check (used by CI on emitted traces).

Validates the structural contract of a trace document — required keys,
known phases, balanced B/E nesting per thread, paired async ids — and
optionally that required event *categories* are present (CI asserts the
datacenter trace carries migration-phase, planner-decision, fault, and
VMD-op events).

Runnable::

    python -m repro.obs.check trace.json --require migration,planner
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Union

__all__ = ["KNOWN_CATEGORIES", "validate_chrome_trace",
           "missing_categories", "main"]

PathLike = Union[str, Path]

_PHASES = {"B", "E", "i", "b", "e", "C", "M"}
_REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")

#: the category registry: every span/instant category the instrumented
#: stack may emit. An event with a category outside this set fails
#: validation — new subsystems register here, keeping the schema tight
#: instead of loosening the check. ``-`` is the exporter's placeholder
#: for events without a category (span ends, counters, metadata).
KNOWN_CATEGORIES = frozenset({
    "migration",  # engine lifecycle spans (outcome-carrying)
    "phase",      # per-phase migration spans (rounds, stop-and-copy...)
    "planner",    # planner decisions (request/plan/direct/replan/place)
    "trigger",    # watermark-alert instants
    "fault",      # fault injections and outage windows
    "vmd",        # namespace/server/repair events
    "net",        # per-channel transfer spans
    "umem",       # post-copy demand-fetch events
    "wss",        # working-set tracker events
    "fleet",      # fleet scheduler: demand, boots, drains, rebalances
    "clone",      # clone/fork provisioning: snapshots, forks, hydration
    "telemetry",  # live-metrics events (pressure-index samples)
    "slo",        # SLO monitor: violation open/close instants
    "-",          # no category (exporter placeholder)
})


def validate_chrome_trace(doc) -> list[str]:
    """Structural errors in a Chrome trace-event document ([] = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    stacks: dict[tuple, int] = {}
    open_async: dict[tuple, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event[{i}] is not an object")
            continue
        for key in _REQUIRED_KEYS:
            if key not in ev:
                errors.append(f"event[{i}] missing key {key!r}")
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"event[{i}] unknown phase {ph!r}")
            continue
        if ph != "M" and "cat" in ev:
            for cat in str(ev["cat"]).split(","):
                if cat and cat not in KNOWN_CATEGORIES:
                    known = ", ".join(sorted(KNOWN_CATEGORIES))
                    errors.append(
                        f"event[{i}] unknown category {cat!r} "
                        f"(register it in repro.obs.check; "
                        f"known: {known})")
        if not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"event[{i}] non-numeric ts")
        thread = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks[thread] = stacks.get(thread, 0) + 1
        elif ph == "E":
            depth = stacks.get(thread, 0)
            if depth == 0:
                errors.append(f"event[{i}] E without matching B on "
                              f"thread {thread}")
            else:
                stacks[thread] = depth - 1
        elif ph in ("b", "e"):
            if "id" not in ev:
                errors.append(f"event[{i}] async event missing id")
                continue
            key = (ev["id"], ev.get("cat"), ev.get("name"))
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                n = open_async.get(key, 0)
                if n == 0:
                    errors.append(f"event[{i}] async end without begin "
                                  f"(id={ev['id']})")
                else:
                    open_async[key] = n - 1
    for thread, depth in sorted(stacks.items()):
        if depth:
            errors.append(f"{depth} unclosed span(s) on thread {thread}")
    for key, n in sorted(open_async.items(), key=str):
        if n:
            errors.append(f"{n} unclosed async span(s) {key[2]!r}")
    return errors


def missing_categories(doc, required: list[str]) -> list[str]:
    """Required categories with no event in the trace."""
    seen = set()
    for ev in doc.get("traceEvents", []):
        if isinstance(ev, dict) and ev.get("cat"):
            seen.update(str(ev["cat"]).split(","))
    return [cat for cat in required if cat not in seen]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.check",
        description="Validate a Chrome trace-event JSON file.")
    parser.add_argument("path", help="trace JSON file to validate")
    parser.add_argument("--require", default="",
                        help="comma-separated event categories that must "
                             "be present (e.g. migration,planner,fault)")
    args = parser.parse_args(argv)
    try:
        doc = json.loads(Path(args.path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot load {args.path}: {exc}")
        return 1
    errors = validate_chrome_trace(doc)
    required = [c for c in args.require.split(",") if c]
    if not errors:
        errors = [f"missing required category: {c}"
                  for c in missing_categories(doc, required)]
    if errors:
        for err in errors:
            print(f"FAIL: {err}")
        return 1
    n = len(doc["traceEvents"])
    print(f"ok: {args.path} ({n} events"
          + (f", categories: {','.join(required)}" if required else "")
          + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
