"""Trace exporters: Chrome trace-event JSON and flat JSONL.

Follows the :mod:`repro.metrics.export` conventions (PathLike in,
``Path`` out). Serialization is deterministic — sorted keys, compact
separators, sim-clock timestamps — so two same-seed runs export
byte-identical files.

The Chrome format (loadable in ``chrome://tracing`` and Perfetto) maps
tracer *tracks* to threads of a single synthetic process: each track
gets a ``tid`` in first-appearance order plus ``thread_name`` /
``thread_sort_index`` metadata, and timestamps are microseconds of
simulation time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.obs.tracer import Span, Tracer

__all__ = ["chrome_trace_doc", "spans_of", "trace_to_chrome",
           "trace_to_jsonl"]

PathLike = Union[str, Path]

#: synthetic process id for all tracks
PID = 1


def _jsonify(obj):
    """json.dumps fallback: NumPy scalars and other .item() carriers."""
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def _dumps(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=_jsonify)


def chrome_trace_doc(tracer: Tracer) -> dict:
    """The trace as a Chrome trace-event document (JSON-ready dict)."""
    tids: dict[str, int] = {}
    events: list[dict] = []
    meta: list[dict] = [{
        "ph": "M", "pid": PID, "tid": 0, "ts": 0,
        "name": "process_name", "args": {"name": "repro"},
    }]
    for ev in tracer.events:
        tid = tids.get(ev.track)
        if tid is None:
            tid = tids[ev.track] = len(tids) + 1
            meta.append({"ph": "M", "pid": PID, "tid": tid, "ts": 0,
                         "name": "thread_name",
                         "args": {"name": ev.track}})
            meta.append({"ph": "M", "pid": PID, "tid": tid, "ts": 0,
                         "name": "thread_sort_index",
                         "args": {"sort_index": tid}})
        rec = {"ph": ev.ph, "pid": PID, "tid": tid,
               "ts": ev.t * 1e6, "name": ev.name, "cat": ev.cat or "-"}
        if ev.args:
            rec["args"] = ev.args
        if ev.id is not None:
            rec["id"] = ev.id
        events.append(rec)
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def trace_to_chrome(tracer: Tracer, path: PathLike) -> Path:
    """Write the Chrome trace-event JSON (``chrome://tracing``-loadable)."""
    path = Path(path)
    path.write_text(_dumps(chrome_trace_doc(tracer)) + "\n",
                    encoding="utf-8")
    return path


def trace_to_jsonl(tracer: Tracer, path: PathLike) -> Path:
    """Write the flat event log: one JSON object per line, in emission
    order (the grep/jq-friendly counterpart of the Chrome view)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for ev in tracer.events:
            rec = {"t": ev.t, "ph": ev.ph, "track": ev.track,
                   "name": ev.name, "cat": ev.cat}
            if ev.args:
                rec["args"] = ev.args
            if ev.id is not None:
                rec["id"] = ev.id
            fh.write(_dumps(rec) + "\n")
    return path


def spans_of(tracer: Tracer) -> list[Span]:
    """Completed spans (sync and async), ordered by begin time.

    Pairs B/E events per track LIFO and b/e events by id; unmatched
    begins (run still in flight) are dropped — call
    :meth:`Tracer.finish` first to close them.
    """
    spans: list[tuple[float, int, Span]] = []
    stacks: dict[str, list[TraceEventRef]] = {}
    open_async: dict[int, TraceEventRef] = {}
    for seq, ev in enumerate(tracer.events):
        if ev.ph == "B":
            stacks.setdefault(ev.track, []).append(
                TraceEventRef(seq, ev))
        elif ev.ph == "E":
            stack = stacks.get(ev.track)
            if stack:
                ref = stack.pop()
                spans.append((ref.event.t, ref.seq, _pair(ref.event, ev)))
        elif ev.ph == "b" and ev.id is not None:
            open_async[ev.id] = TraceEventRef(seq, ev)
        elif ev.ph == "e" and ev.id is not None:
            ref = open_async.pop(ev.id, None)
            if ref is not None:
                spans.append((ref.event.t, ref.seq, _pair(ref.event, ev)))
    spans.sort(key=lambda s: (s[0], s[1]))
    return [s for _, _, s in spans]


class TraceEventRef:
    __slots__ = ("seq", "event")

    def __init__(self, seq, event):
        self.seq = seq
        self.event = event


def _pair(begin, end) -> Span:
    args = dict(begin.args or {})
    args.update(end.args or {})
    return Span(track=begin.track, name=begin.name, cat=begin.cat,
                t0=begin.t, t1=end.t, args=args)
