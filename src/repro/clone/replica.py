"""Replica-side clone machinery: post-copy hydration with CoW divergence.

A freshly forked replica owns no resident pages. Its memory is the
parent's :class:`~repro.clone.image.CloneImage`: staged template pages
appear as swapped-with-valid-copy (the shared VMD namespace is the swap
device, via :class:`~repro.clone.cow.CowBackend`), un-staged pages are
*parent-owed* and demand-fetched from the live parent through a
:class:`~repro.core.umem.UmemFaultHandler` — exactly the split the
Agile destination runs after its switchover.

:class:`ReplicaFetcher` is the per-replica tick participant driving
hydration:

* **demand** — pulls the hot head of the image (the pages a serving
  process touches first) at fault priority; the replica reports
  *serving* once ``serving_fraction`` of the hot template is resident;
* **gather** — trickles the cold remainder in the background at low
  priority, bounded by reservation headroom (the scatter-gather gather
  idiom);
* **CoW** — a deterministic fraction of freshly fetched hot pages is
  dirtied (the replica diverges from the template); privatized pages
  queue writeback into the replica's private overlay namespace, never
  into the shared image.

The fetcher removes itself from the tick engine once hydration is done,
so a churning clone fleet leaves no dead participants behind.

Re-faults of privatized pages are charged to the image read path (the
backend routes all reads there); the byte cost is identical and the
overlay holds the authoritative copy — a modeling simplification noted
in DESIGN.md §11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.tracer import NULL_TRACER

__all__ = ["CloneReport", "ReplicaFetcher"]


@dataclass
class CloneReport:
    """Byte and timing accounting for one replica's life."""

    vm_name: str
    parent: str
    fork_time: float
    #: when the hot template fraction became resident (None: never)
    serving_time: Optional[float] = None
    #: when hydration finished and the fetcher retired itself
    done_time: Optional[float] = None
    #: bytes demand-fetched (shared image + parent channel)
    demand_bytes: float = 0.0
    #: subset of ``demand_bytes`` served by the live parent (umem)
    parent_demand_bytes: float = 0.0
    #: background gather reads of the cold template
    gather_bytes: float = 0.0
    #: privatized dirty pages written back to the overlay
    cow_bytes: float = 0.0
    pages_demand_fetched: int = 0
    failed: bool = False
    failure_reason: str = ""

    @property
    def total_bytes(self) -> float:
        return self.demand_bytes + self.gather_bytes + self.cow_bytes

    @property
    def time_to_serving(self) -> Optional[float]:
        if self.serving_time is None:
            return None
        return self.serving_time - self.fork_time


class ReplicaFetcher:
    """Tick participant hydrating one clone replica from its image."""

    def __init__(self, sim, mem, vm, binding, image, overlay_ns,
                 report: CloneReport, config, engine, umem=None,
                 tracer=None, on_serving=None, on_done=None):
        self.sim = sim
        self.mem = mem  # the replica host's HostMemoryManager
        self.vm = vm
        self.binding = binding
        self.image = image
        self.report = report
        self.cfg = config
        self.engine = engine
        self.umem = umem
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.on_serving = on_serving
        self.on_done = on_done
        page = image.page_size
        self.n_hot = max(1, int(round(image.n_pages * config.hot_fraction)))
        self.hot_template_bytes = float(
            np.count_nonzero(image.template[:self.n_hot])) * page
        ns = image.namespace
        host = vm.host
        self.demand_q = ns.open_queue(f"{vm.name}.clonedemand", "read",
                                      host=host,
                                      priority=config.demand_priority)
        self.gather_q = ns.open_queue(f"{vm.name}.clonegather", "read",
                                      host=host,
                                      priority=config.gather_priority)
        self.cow_q = overlay_ns.open_queue(f"{vm.name}.cowwrite", "write",
                                           host=host,
                                           priority=config.gather_priority)
        #: privatized bytes awaiting overlay writeback
        self.cow_backlog = 0.0
        self._dirty_credit = 0.0
        self.serving = False
        self.done = False
        self._span = self.tracer.async_begin(
            "clone", "replica", cat="clone",
            args={"vm": vm.name, "parent": image.parent, "host": host,
                  "staged_frac": float(np.count_nonzero(image.staged))
                  / max(1, image.template_pages)}) \
            if self.tracer.enabled else 0

    # -- tick protocol --------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        if self.done:
            return
        self._sync_staged()
        pages = self.binding.pages
        page = pages.page_size
        cfg = self.cfg
        n_hot = self.n_hot
        budget = cfg.demand_bps * dt
        hot_missing = float(
            np.count_nonzero(pages.swapped[:n_hot])) * page
        want_vmd = min(budget, hot_missing)
        if want_vmd > 0:
            self.demand_q.demand += want_vmd
        budget -= want_vmd
        want_umem = 0.0
        if self.umem is not None and budget > 0:
            owed_hot = float(np.count_nonzero(
                self.umem.scan.pending[:n_hot]
                & ~pages.present[:n_hot])) * page
            want_umem = min(budget, owed_hot)
            if want_umem > 0:
                self.umem.demand_source(want_umem)
        cold_missing = float(
            np.count_nonzero(pages.swapped[n_hot:])) * page
        if cold_missing > 0:
            room = (self.binding.cgroup.reservation_bytes
                    - pages.resident_bytes() - want_vmd - want_umem)
            want_gather = min(cold_missing, cfg.gather_bps * dt,
                              max(0.0, room))
            if want_gather > 0:
                self.gather_q.demand += want_gather
        if self.cow_backlog > 0:
            self.cow_q.demand += self.cow_backlog

    def _sync_staged(self) -> None:
        """Adopt newly staged template pages as swapped-with-valid-copy
        and un-pend them from the parent-owed scan (the snapshot stream
        races the replicas; whoever stages a page first wins)."""
        pages = self.binding.pages
        newly = (self.image.staged & self.image.template
                 & ~pages.present & ~pages.swapped)
        if np.any(newly):
            pages.swapped |= newly
            pages.swap_clean |= newly
        if self.umem is not None:
            cleared = np.flatnonzero(
                self.umem.scan.pending & self.image.staged)
            if cleared.size:
                self.umem.scan.remove(cleared)
            if self.umem.scan.remaining == 0:
                self.umem.close()
                self.umem = None

    def commit_tick(self, dt: float) -> None:
        if self.done:
            return
        pages = self.binding.pages
        page = pages.page_size
        name = self.vm.name
        fetched: list[np.ndarray] = []
        k = int(self.demand_q.granted // page)
        if k > 0:
            idx = np.flatnonzero(pages.swapped[:self.n_hot])[:k]
            if idx.size:
                self.report.demand_bytes += self.mem.fault_in(name, idx)
                self.report.pages_demand_fetched += int(idx.size)
                fetched.append(idx)
        if self.umem is not None:
            k2 = int(self.umem.granted_source() // page)
            if k2 > 0:
                pend = self.umem.scan.pending
                cand = np.flatnonzero(
                    pend[:self.n_hot] & ~pages.present[:self.n_hot])[:k2]
                if cand.size:
                    self.mem.fault_in(name, cand)
                    self.report.parent_demand_bytes += \
                        float(cand.size) * page
                    self.umem.notify_fetched(cand)
                    fetched.append(cand)
        k3 = int(self.gather_q.granted // page)
        if k3 > 0:
            cold = np.flatnonzero(pages.swapped[self.n_hot:])
            if cold.size:
                idx = cold[:k3] + self.n_hot
                self.report.gather_bytes += self.mem.fault_in(name, idx)
        self._privatize(fetched, pages, page)
        self._drain_cow(pages, page)
        self._update_state(pages, page)

    def _privatize(self, fetched, pages, page) -> None:
        """Deterministically dirty a fraction of freshly fetched hot
        pages: the replica's working state diverges from the template."""
        if not fetched or self.cfg.dirty_fraction <= 0:
            return
        idx = np.concatenate(fetched)
        self._dirty_credit += float(idx.size) * self.cfg.dirty_fraction
        nd = int(self._dirty_credit)
        if nd <= 0:
            return
        self._dirty_credit -= nd
        d = idx[:nd]
        pages.mark_dirty(d)
        self.cow_backlog += float(d.size) * page
        if self.tracer.enabled:
            self.tracer.instant(
                f"vm:{self.vm.name}", "cow-privatize", cat="clone",
                args={"pages": int(d.size),
                      "backlog_bytes": self.cow_backlog})

    def _drain_cow(self, pages, page) -> None:
        g = self.cow_q.granted
        if g <= 0:
            return
        self.cow_backlog = max(0.0, self.cow_backlog - g)
        self.report.cow_bytes += g
        kd = int(g // page)
        if kd > 0:
            cand = np.flatnonzero(
                pages.dirty & pages.present & ~pages.swap_clean)[:kd]
            if cand.size:
                # the private copy now lives on the overlay
                pages.swap_clean[cand] = True

    def _update_state(self, pages, page) -> None:
        if not self.serving:
            resident_hot = float(pages.resident_in(0, self.n_hot)) * page
            if resident_hot >= (self.cfg.serving_fraction
                                * self.hot_template_bytes) - 1e-9:
                self.serving = True
                self.report.serving_time = self.sim.now
                if self.tracer.enabled:
                    self.tracer.instant(
                        "clone", "serving", cat="clone",
                        args={"vm": self.vm.name,
                              "t_fork": self.report.fork_time,
                              "demand_bytes": self.report.demand_bytes})
                if self.on_serving is not None:
                    self.on_serving(self.vm.name)
        if self.serving and self.umem is None and self.cow_backlog <= 0:
            if pages.swapped_pages() == 0:
                self._finish("hydrated")
            elif (self.binding.cgroup.reservation_bytes
                  - pages.resident_bytes()) < page:
                # reservation full: the cold tail stays on the (shared)
                # device, served by normal faults from here on
                self._finish("hydrated-to-reservation")

    # -- lifecycle ------------------------------------------------------------
    def _finish(self, outcome: str) -> None:
        self._close(outcome)
        self.report.done_time = self.sim.now
        if self.on_done is not None:
            self.on_done(self.vm.name)

    def close(self) -> None:
        """External teardown (departure or failure)."""
        self._close("closed")

    def _close(self, outcome: str) -> None:
        if self.done:
            return
        self.done = True
        if self.umem is not None:
            self.umem.close()
            self.umem = None
        self.demand_q.close()
        self.gather_q.close()
        self.cow_q.close()
        self.engine.remove_participant(self)
        if self._span:
            self.tracer.async_end(self._span, args={
                "outcome": outcome,
                "demand_bytes": self.report.demand_bytes,
                "parent_demand_bytes": self.report.parent_demand_bytes,
                "gather_bytes": self.report.gather_bytes,
                "cow_bytes": self.report.cow_bytes})
            self._span = 0
