"""Copy-on-write swap backend: shared image reads, private overlay writes.

A clone replica's swap device is two namespaces behind one
:class:`~repro.mem.device.SwapBackend` face:

* **reads** (fault-in) hit the parent's shared :class:`CloneImage`
  namespace — every sibling reads the same staged bytes, refcounted by
  :class:`~repro.vmd.cluster.VMDCluster` so one replica's teardown never
  frees pages a sibling still needs;
* **writes** (eviction writeback of dirtied pages) hit the replica's
  private overlay namespace — privatized state never lands in the
  shared image, so siblings are isolated from each other's writes.

This is the block-layer analogue of fork()'s CoW page tables: the
template stays immutable; divergence accumulates per replica and dies
with it.
"""

from __future__ import annotations

from typing import Optional

from repro.vmd.namespace import VMDNamespace, VmdQueue

__all__ = ["CowBackend"]


class CowBackend:
    """SwapBackend splitting read traffic to the image and write traffic
    to the per-replica overlay."""

    def __init__(self, image_ns: VMDNamespace, overlay_ns: VMDNamespace):
        self.image_ns = image_ns
        self.overlay_ns = overlay_ns

    def open_queue(self, name: str, kind: str,
                   host: Optional[str] = None,
                   priority: int = 1) -> VmdQueue:
        ns = self.image_ns if kind == "read" else self.overlay_ns
        return ns.open_queue(name, kind, host=host, priority=priority)

    @property
    def data_lost(self) -> bool:
        """Either leg losing its only copy strands this replica."""
        return self.image_ns.data_lost or self.overlay_ns.data_lost
