"""repro.clone: memory-streaming VM cloning for flash-crowd scale-out.

The migration engines already decouple a VM's memory from its host —
this package cashes that in as a provisioning primitive. A parent VM's
allocated pages are captured into a shared VMD namespace
(:mod:`~repro.clone.image`); N replicas fork near-instantly with that
image as their swap contents behind a copy-on-write backend
(:mod:`~repro.clone.cow`), hydrating post-copy style — demand fetches
for the hot set, background gather for the cold tail, umem demand
paging from the live parent for pages the snapshot has not staged yet
(:mod:`~repro.clone.replica`). :class:`~repro.clone.manager.CloneManager`
owns the lifecycle, the namespace refcounts, and the fault matrix.
"""

from repro.clone.cow import CowBackend
from repro.clone.image import CloneImage, ImageSnapshotter
from repro.clone.manager import CloneConfig, CloneManager, CloneReplica
from repro.clone.replica import CloneReport, ReplicaFetcher

__all__ = [
    "CloneConfig", "CloneImage", "CloneManager", "CloneReplica",
    "CloneReport", "CowBackend", "ImageSnapshotter", "ReplicaFetcher",
]
