"""The clone control plane: images, forks, teardown, fault reactions.

:class:`CloneManager` owns every clone artifact in one world: parent
images (one live image per parent VM, shared by all its replicas via
namespace refcounting), per-replica overlays, fetchers, and umem
channels. It is the single place where clone resources are created and
released, so teardown stays leak-free under churn:

* :meth:`snapshot` captures a parent image (instant or streamed);
* :meth:`boot_replica` forks a replica onto a host: retain the image
  namespace, create the private overlay, place the VM with a
  :class:`~repro.clone.cow.CowBackend`, adopt staged pages as swap
  contents, and start a :class:`~repro.clone.replica.ReplicaFetcher`
  (plus an :class:`~repro.core.umem.UmemFaultHandler` to the live
  parent while the image is incomplete);
* :meth:`teardown` / :meth:`release_replica` undo exactly that, in
  reverse order — the image namespace's bytes are freed only when the
  last sibling releases its reference;
* the **fault matrix** (DESIGN.md §11): a host/rack crash fails the
  replicas on it and aborts snapshots streaming from it; a
  content-losing donor crash re-replicates (``replication >= 2``,
  traced as ``reprotect``) or fails exactly the replicas that still
  needed the lost namespace — never their hydrated siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.clone.cow import CowBackend
from repro.clone.image import CloneImage, ImageSnapshotter
from repro.clone.replica import CloneReport, ReplicaFetcher
from repro.cluster.world import WORKLOAD_ORDER
from repro.core.base import PendingScan
from repro.core.umem import UmemFaultHandler
from repro.faults.spec import FaultKind
from repro.vm.vm import VmState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World

__all__ = ["CloneConfig", "CloneManager", "CloneReplica"]


@dataclass(frozen=True)
class CloneConfig:
    """Knobs for image capture and replica hydration."""

    #: copies of image + overlay bytes on the donors (>= 2 survives a
    #: content-losing donor crash via background re-replication)
    replication: int = 1
    #: leading fraction of the address space a serving replica needs
    hot_fraction: float = 0.25
    #: hot-template residency fraction at which a replica is *serving*
    serving_fraction: float = 0.9
    #: per-replica demand fetch budget (hot pages, fault priority)
    demand_bps: float = 16e6
    #: per-replica background gather budget (cold pages, low priority)
    gather_bps: float = 2e6
    #: fraction of freshly fetched hot pages the replica dirties (CoW)
    dirty_fraction: float = 0.05
    #: flow priority of demand fetches (0 = fault-critical)
    demand_priority: int = 0
    #: flow priority of the snapshot scatter stream
    snapshot_priority: int = 1
    #: flow priority of gather prefetch and overlay writeback
    gather_priority: int = 2
    #: snapshot scatter chunk (backlog cap is 4x this, the scatter idiom)
    snapshot_chunk_bytes: float = 4 * 2 ** 20

    def __post_init__(self):
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if not 0 < self.hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0 < self.serving_fraction <= 1:
            raise ValueError("serving_fraction must be in (0, 1]")
        if not 0 <= self.dirty_fraction <= 1:
            raise ValueError("dirty_fraction must be in [0, 1]")
        if self.demand_bps <= 0 or self.gather_bps < 0:
            raise ValueError("bad hydration bandwidth")


@dataclass
class CloneReplica:
    """One forked replica and everything the manager tracks for it."""

    name: str
    host: str
    image: CloneImage
    overlay: object
    fetcher: ReplicaFetcher
    report: CloneReport = field(repr=False)


class CloneManager:
    """Clone/fork provisioning service over one wired world."""

    def __init__(self, world: "World",
                 config: Optional[CloneConfig] = None):
        if world.vmd is None:
            raise RuntimeError("clone provisioning requires a VMD")
        self.world = world
        self.config = config or CloneConfig()
        self.tracer = world.tracer
        #: the live image per parent VM name (latest capture wins)
        self.images: dict[str, CloneImage] = {}
        #: every image ever captured (byte accounting survives drops)
        self._all_images: list[CloneImage] = []
        self._image_seq = 0
        self.replicas: dict[str, CloneReplica] = {}
        #: every replica's report, kept across teardown
        self.reports: list[CloneReport] = []
        #: deterministic, append-only clone event log
        self.log: list[str] = []
        self.counters = {
            "snapshots": 0, "forks": 0, "serving": 0,
            "failed": 0, "released": 0,
        }
        #: hooks for the fleet/scenario layer
        self.on_serving = None
        self.on_replica_failed = None
        if world.faults is not None:
            world.faults.subscribe(self._on_fault)

    # -- image capture --------------------------------------------------------
    def image_for(self, parent: str) -> Optional[CloneImage]:
        """The usable live image of ``parent`` (None if absent/failed)."""
        img = self.images.get(parent)
        if img is None or img.failed or img.data_lost:
            return None
        return img

    def snapshot(self, parent: str, instant: bool = False) -> CloneImage:
        """Capture ``parent``'s allocated pages into a fresh shared
        namespace; idempotent while a usable image exists."""
        existing = self.image_for(parent)
        if existing is not None:
            return existing
        world = self.world
        vm = world.vms[parent]
        if vm.state is VmState.TERMINATED or vm.migrating:
            raise RuntimeError(f"cannot snapshot {parent}: unavailable")
        binding = world.manager_of(vm.host).binding(parent)
        name = f"img.{parent}.{self._image_seq}"
        self._image_seq += 1
        ns = world.vmd.create_namespace(
            name, replication=self.config.replication)
        template = binding.pages.present | binding.pages.swapped
        image = CloneImage(name, parent, vm.host, ns, template,
                           binding.pages.page_size)
        self.images[parent] = image
        self._all_images.append(image)
        self.counters["snapshots"] += 1
        self.log.append(f"snapshot {name} of {parent} "
                        f"({'instant' if instant else 'stream'}) "
                        f"@{world.now:g}s")
        if instant:
            placed = ns.preload(image.template_bytes)
            if placed < image.template_bytes - 1e-6:
                raise RuntimeError("VMD servers too small for image")
            image.staged[:] = image.template
            if self.tracer.enabled:
                self.tracer.instant(
                    "clone", "snapshot-instant", cat="clone",
                    args={"image": name, "parent": parent,
                          "bytes": image.template_bytes})
        else:
            snap = ImageSnapshotter(
                image, vm, binding, world.engine,
                chunk_bytes=self.config.snapshot_chunk_bytes,
                priority=self.config.snapshot_priority,
                tracer=self.tracer, on_finish=self._snapshot_finished)
            image.snapshotter = snap
            world.engine.add_participant(snap, order=WORKLOAD_ORDER)
        return image

    def _snapshot_finished(self, image: CloneImage) -> None:
        if not image.failed:
            self.log.append(f"image-ready {image.name} "
                            f"@{self.world.now:g}s")
            return
        self.log.append(f"image-failed {image.name} @{self.world.now:g}s")
        self._fail_dependents(image, "snapshot-aborted")
        if self.images.get(image.parent) is image:
            self.drop_image(image.parent)

    def _fail_dependents(self, image: CloneImage, reason: str) -> None:
        """Fail every replica still hydrating from ``image`` (an aborted
        snapshot can never complete their template). Fully hydrated
        siblings keep running — they owe the image nothing."""
        for name in sorted(self.replicas):
            rep = self.replicas[name]
            if rep.image is not image:
                continue
            pages = rep.fetcher.binding.pages
            if rep.fetcher.umem is not None \
                    or pages.swapped_pages() > 0:
                self._fail_replica(name, reason)

    def drop_image(self, parent: str) -> None:
        """Retire a parent's live image: no new forks from it; its bytes
        free once the last replica releases its reference."""
        image = self.images.pop(parent, None)
        if image is None:
            return
        if image.snapshotter is not None:
            image.snapshotter.abort("image-dropped")
        self.world.vmd.release_namespace(image.namespace.name)

    def on_parent_departed(self, name: str) -> None:
        """A completed image outlives its parent — that is the point of
        staging it on VMD. Only an unfinished stream dies with it."""
        image = self.images.get(name)
        if image is not None and image.snapshotter is not None:
            image.snapshotter.abort("parent-departed")

    # -- fork / teardown ------------------------------------------------------
    def owns(self, name: str) -> bool:
        return name in self.replicas

    def boot_replica(self, name: str, host_name: str, image: CloneImage,
                     reservation_bytes: Optional[float] = None
                     ) -> CloneReplica:
        """Fork a replica of ``image`` onto ``host_name``: the VM boots
        with zero resident pages and hydrates post-copy style."""
        if name in self.replicas:
            raise ValueError(f"replica exists: {name}")
        if image.failed or image.data_lost:
            raise RuntimeError(f"image unusable: {image.name}")
        world = self.world
        cfg = self.config
        page = image.page_size
        owed = image.owed()
        parent_vm = world.vms.get(image.parent)
        parent_alive = (parent_vm is not None
                        and parent_vm.state is not VmState.TERMINATED)
        if np.any(owed) and not parent_alive:
            raise RuntimeError(
                f"image {image.name} incomplete and parent gone")
        vm = world.add_vm(name, float(image.n_pages) * page, host_name,
                          page_size=page)
        world.vmd.retain_namespace(image.namespace.name)
        overlay = world.vmd.create_namespace(f"{name}.cow",
                                             replication=cfg.replication)
        backend = CowBackend(image.namespace, overlay)
        reservation = (vm.memory_bytes if reservation_bytes is None
                       else reservation_bytes)
        binding = world.hosts[host_name].place_vm(vm, reservation, backend)
        staged = image.staged & image.template
        vm.pages.swapped[staged] = True
        vm.pages.swap_clean[staged] = True
        report = CloneReport(vm_name=name, parent=image.parent,
                             fork_time=world.now)
        self.reports.append(report)
        umem = None
        if np.any(owed):
            parent_binding = world.manager_of(
                parent_vm.host).binding(image.parent)
            umem = UmemFaultHandler(
                world.network, parent_vm.host, host_name, name,
                PendingScan(owed), parent_binding.pages,
                parent_binding.backend, report,
                priority=cfg.demand_priority, tracer=self.tracer,
                track=f"vm:{name}")
            umem.metrics = world.metrics
        fetcher = ReplicaFetcher(
            world.sim, world.manager_of(host_name), vm, binding, image,
            overlay, report, cfg, world.engine, umem=umem,
            tracer=self.tracer, on_serving=self._note_serving,
            on_done=self._note_done)
        world.engine.add_participant(fetcher, order=WORKLOAD_ORDER)
        replica = CloneReplica(name=name, host=host_name, image=image,
                               overlay=overlay, fetcher=fetcher,
                               report=report)
        self.replicas[name] = replica
        self.counters["forks"] += 1
        if world.metrics.enabled:
            world.metrics.inc("clone.forks")
        self.log.append(f"fork {name} <- {image.parent} on {host_name} "
                        f"@{world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "clone", "fork", cat="clone",
                args={"vm": name, "parent": image.parent,
                      "host": host_name,
                      "owed_pages": int(np.count_nonzero(owed))})
        return replica

    def teardown(self, name: str) -> None:
        """Release ``name``'s clone resources (fetcher, umem, overlay,
        image reference). The caller must already have unregistered the
        VM from its host (that closes the CoW binding queues)."""
        replica = self.replicas.pop(name, None)
        if replica is None:
            raise KeyError(f"not a clone replica: {name}")
        replica.fetcher.close()
        self.world.vmd.release_namespace(replica.overlay.name)
        self.world.vmd.release_namespace(replica.image.namespace.name)
        self.counters["released"] += 1
        self.log.append(f"release {name} @{self.world.now:g}s")

    def release_replica(self, name: str) -> None:
        """Full departure of a directly managed replica: terminate the
        VM, unbind it from its host, and tear down clone resources (the
        fleet scheduler's depart path does the VM half itself)."""
        replica = self.replicas[name]
        world = self.world
        vm = world.vms.get(name)
        if vm is not None:
            if vm.state is not VmState.TERMINATED:
                vm.terminate()
            host = world.hosts[replica.host]
            if host.memory.has_vm(name):
                host.memory.free_vm_memory(name)
                host.remove_vm(name)
            del world.vms[name]
        self.teardown(name)

    # -- accounting -----------------------------------------------------------
    def provision_bytes(self) -> float:
        """All bytes the clone substrate moved: snapshot scatter plus
        every replica's demand/gather/CoW traffic (live and departed)."""
        return (sum(i.scatter_bytes for i in self._all_images)
                + sum(r.total_bytes for r in self.reports))

    def _note_serving(self, name: str) -> None:
        self.counters["serving"] += 1
        metrics = self.world.metrics
        if metrics.enabled:
            metrics.inc("clone.serving")
            report = self.replicas[name].report
            if report.time_to_serving is not None:
                metrics.histogram("clone.time_to_serving_s").observe(
                    report.time_to_serving)
            if report.demand_bytes > 0:
                metrics.histogram("clone.demand_bytes").observe(
                    report.demand_bytes)
        self.log.append(f"serve {name} @{self.world.now:g}s")
        if self.on_serving is not None:
            self.on_serving(name)

    def _note_done(self, name: str) -> None:
        self.log.append(f"hydrated {name} @{self.world.now:g}s")

    def describe(self) -> str:
        c = self.counters
        return (f"clone: {c['snapshots']} snapshots, {c['forks']} forks, "
                f"{c['serving']} serving, {c['failed']} failed, "
                f"{c['released']} released")

    # -- fault reactions ------------------------------------------------------
    def _dead_hosts(self, spec) -> set:
        if spec.kind is FaultKind.HOST_CRASH:
            return {spec.target}
        if spec.kind is FaultKind.RACK_CRASH:
            topo = self.world.topology
            return {h for h in self.world.hosts
                    if topo is not None and topo.rack_of(h) == spec.target}
        if spec.kind is FaultKind.POD_CRASH:
            topo = self.world.topology
            return {h for h in self.world.hosts
                    if topo is not None and topo.pod_of(h) == spec.target}
        return set()

    def _on_fault(self, spec, phase: str) -> None:
        if phase != "inject":
            return
        dead = self._dead_hosts(spec)
        if dead:
            for parent in sorted(self.images):
                image = self.images[parent]
                if image.snapshotter is not None \
                        and image.parent_host in dead:
                    image.snapshotter.abort("parent-host-crashed")
            for name in sorted(self.replicas):
                if self.replicas[name].host in dead:
                    self._fail_replica(name, spec.kind.value)
        if spec.kind in (FaultKind.VMD_CRASH, FaultKind.RACK_CRASH,
                         FaultKind.POD_CRASH) \
                and getattr(spec, "lose_contents", False):
            self._reconcile_data_loss()

    def _reconcile_data_loss(self) -> None:
        """A content-losing donor crash happened: the VMD cluster already
        reconciled every namespace. Replicated images re-protect in the
        background; single-copy losses fail exactly the replicas that
        still needed the lost namespace."""
        for parent in sorted(self.images):
            image = self.images[parent]
            if image.namespace.data_lost:
                for name in sorted(self.replicas):
                    rep = self.replicas[name]
                    if rep.image is not image:
                        continue
                    pages = rep.fetcher.binding.pages
                    if rep.fetcher.umem is not None \
                            or pages.swapped_pages() > 0:
                        self._fail_replica(name, "image-data-lost")
                if self.images.get(parent) is image:
                    self.drop_image(parent)
            elif image.namespace.repair_pending_bytes > 0 \
                    and self.tracer.enabled:
                self.tracer.instant(
                    "clone", "reprotect", cat="clone",
                    args={"image": image.name,
                          "pending_bytes":
                              float(image.namespace.repair_pending_bytes)})
        for name in sorted(self.replicas):
            if self.replicas[name].overlay.data_lost:
                self._fail_replica(name, "overlay-data-lost")

    def _fail_replica(self, name: str, reason: str) -> None:
        replica = self.replicas.get(name)
        if replica is None:
            return
        replica.report.failed = True
        replica.report.failure_reason = reason
        world = self.world
        vm = world.vms.get(name)
        if vm is not None and vm.state is not VmState.TERMINATED:
            vm.terminate()
        host = world.hosts[replica.host]
        if host.memory.has_vm(name):
            host.memory.free_vm_memory(name)
            host.remove_vm(name)
        self.teardown(name)
        self.counters["failed"] += 1
        self.log.append(f"lost {name}: {reason} @{world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "clone", "replica-lost", cat="clone",
                args={"vm": name, "reason": reason})
        if self.on_replica_failed is not None:
            self.on_replica_failed(name, reason)
