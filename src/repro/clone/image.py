"""Parent memory images on VMD: the clone substrate's shared state.

A :class:`CloneImage` is a point-in-time capture of a parent VM's
allocated pages staged into its own VMD namespace. Replicas boot with
the staged pages as their (shared, read-only) swap contents and fault
them in post-copy style; pages the snapshot has not staged yet are
*parent-owed* and reachable only through a per-replica
:class:`~repro.core.umem.UmemFaultHandler` while the parent is alive.

Two capture modes:

* **instant** — :meth:`~repro.vmd.namespace.VMDNamespace.preload` places
  every template page on the donors without network cost (scenario
  setup, like :func:`~repro.cluster.setup.preload_dataset`);
* **streamed** — an :class:`ImageSnapshotter` tick participant scatters
  the template onto VMD exactly like the scatter phase of
  :class:`~repro.core.scattergather.ScatterGatherMigration`: a bounded
  write-queue backlog, with parent-swapped pages first read back from
  the parent's own swap device (the scan stalls on that device budget,
  so snapshotting a thrashing parent is slow — same coupling as
  migration).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import PendingScan
from repro.obs.tracer import NULL_TRACER
from repro.vm.vm import VmState

__all__ = ["CloneImage", "ImageSnapshotter"]


class CloneImage:
    """A parent VM's captured memory template on a shared VMD namespace."""

    def __init__(self, name: str, parent: str, parent_host: str,
                 namespace, template: np.ndarray, page_size: int):
        self.name = name
        self.parent = parent
        #: host the parent ran on at capture time (umem demand source)
        self.parent_host = parent_host
        self.namespace = namespace
        #: pages the parent had allocated (present or swapped) at capture
        self.template = template.copy()
        self.page_size = int(page_size)
        self.n_pages = int(template.size)
        #: template pages whose copy has landed on the VMD
        self.staged = np.zeros_like(self.template)
        #: bytes scattered over the network by the streaming snapshotter
        self.scatter_bytes = 0.0
        #: set when the snapshot stream aborted (parent died/migrated):
        #: un-staged pages will never arrive and no new replica may boot
        self.failed = False
        self.snapshotter = None  # set while a stream capture is running

    @property
    def template_pages(self) -> int:
        return int(np.count_nonzero(self.template))

    @property
    def template_bytes(self) -> float:
        return float(self.template_pages) * self.page_size

    @property
    def ready(self) -> bool:
        """Every template page is on VMD (replicas no longer need the
        parent)."""
        return not bool(np.any(self.template & ~self.staged))

    @property
    def data_lost(self) -> bool:
        return self.namespace.data_lost

    def owed(self) -> np.ndarray:
        """Template pages not yet staged (parent-owed mask)."""
        return self.template & ~self.staged


class ImageSnapshotter:
    """Tick participant streaming a parent's template onto the VMD.

    Registered at workload order (0). Each tick it demands up to
    ``4 * chunk_bytes`` of namespace write bandwidth (the scatter
    backlog cap idiom) plus parent swap-device reads for the swapped
    pages at the scan head, then stages whatever both budgets granted.
    Write bytes granted but not matched by staged pages (a scan stall on
    the device budget, or a fractional-page grant) are released back to
    the donors so image bytes on VMD always equal staged pages exactly.
    """

    def __init__(self, image: CloneImage, parent_vm, parent_binding,
                 engine, chunk_bytes: float = 4 * 2 ** 20,
                 priority: int = 1, tracer=None, on_finish=None):
        self.image = image
        self.vm = parent_vm
        self.parent_pages = parent_binding.pages
        self.engine = engine
        self.chunk_bytes = float(chunk_bytes)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.on_finish = on_finish
        self.scan = PendingScan(image.template)
        self.write_q = image.namespace.open_queue(
            f"{image.name}.scatter", "write",
            host=image.parent_host, priority=priority)
        self.read_q = parent_binding.backend.open_queue(
            f"{image.name}.snapread", "read", host=image.parent_host)
        self.done = False
        self._span = self.tracer.async_begin(
            "clone", "snapshot", cat="clone",
            args={"image": image.name, "parent": image.parent,
                  "bytes": image.template_bytes}) \
            if self.tracer.enabled else 0

    # -- tick protocol --------------------------------------------------------
    def pre_tick(self, dt: float) -> None:
        if self.done:
            return
        if self.vm.state is VmState.TERMINATED or self.vm.migrating:
            # the parent is gone (or its pages are about to move hosts):
            # the un-staged remainder is unreachable from here
            self.abort("parent-unavailable")
            return
        page = self.image.page_size
        remaining = float(self.scan.remaining) * page
        self.write_q.demand += min(remaining, 4.0 * self.chunk_bytes)
        window = int(self.chunk_bytes // page)
        n_swapped = self.scan.peek_swapped_count(
            self.parent_pages.swapped, window)
        if n_swapped > 0:
            self.read_q.demand += float(n_swapped) * page

    def commit_tick(self, dt: float) -> None:
        if self.done:
            return
        page = self.image.page_size
        granted = self.write_q.granted
        k = int(granted // page)
        dev_pages = int(self.read_q.granted // page)
        res_idx, swp_idx = self.scan.take(
            k, dev_pages, self.parent_pages.swapped, free_swapped=False)
        taken = int(res_idx.size + swp_idx.size)
        if taken:
            if res_idx.size:
                self.image.staged[res_idx] = True
            if swp_idx.size:
                self.image.staged[swp_idx] = True
        moved = float(taken) * page
        self.image.scatter_bytes += moved
        excess = granted - moved
        if excess > 0:
            # un-staged grant (scan stalled on the device budget or a
            # fractional page): give the allocated bytes back
            ns = self.image.namespace
            ns.release(excess * ns.replication)
        if self.scan.exhausted():
            self._finish()

    # -- lifecycle ------------------------------------------------------------
    def _finish(self) -> None:
        self._close("completed")
        if self.on_finish is not None:
            self.on_finish(self.image)

    def abort(self, reason: str) -> None:
        """The stream cannot complete; the image is unusable for new
        replicas and its un-staged pages will never arrive."""
        self.image.failed = True
        self._close(reason)
        if self.on_finish is not None:
            self.on_finish(self.image)

    def _close(self, outcome: str) -> None:
        if self.done:
            return
        self.done = True
        self.write_q.close()
        self.read_q.close()
        self.engine.remove_participant(self)
        self.image.snapshotter = None
        if self._span:
            self.tracer.async_end(self._span, args={
                "outcome": outcome,
                "scatter_bytes": self.image.scatter_bytes,
                "staged_pages": int(np.count_nonzero(self.image.staged))})
            self._span = 0
