"""Cluster control plane: triggers → planner → supervised engines.

:class:`ClusterControlPlane` is the assembly that turns the paper's
single-pair §III-B loop into a cluster service:

1. every monitored host runs a :class:`~repro.core.trigger.WatermarkTrigger`
   whose alert submits the selected VMs to the shared
   :class:`~repro.sched.planner.MigrationPlanner`;
2. the planner scores destinations (headroom, rack locality vs
   anti-affinity, congestion, health) and admits plans FIFO under
   per-host / per-uplink concurrency limits;
3. admitted plans are dispatched through one
   :class:`~repro.faults.MigrationSupervisor`, which parks aborted
   attempts until the destination's health returns to UP and asks the
   planner to re-plan after repeated aborts;
4. when a plan's final attempt ends, its admission slots are released,
   the source's trigger is re-armed, and the queue is pumped again.

The control plane is engine-agnostic: ``technique`` picks pre-copy,
post-copy, or Agile, and ``dst_backend_of`` supplies per-destination
swap backends for the baselines (Agile's portable namespace needs none).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.base import MigrationConfig, MigrationManager
from repro.core.trigger import WatermarkConfig, WatermarkTrigger
from repro.faults.recovery import MigrationSupervisor, RetryPolicy
from repro.sched.health import HostHealthTracker
from repro.sched.planner import MigrationPlan, MigrationPlanner, PlannerConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World

__all__ = ["ClusterControlPlane"]

_ENGINES: dict[str, Optional[type]] = {}


def _engine(technique: str) -> type:
    if not _ENGINES:
        from repro.core.agile import AgileMigration
        from repro.core.postcopy import PostcopyMigration
        from repro.core.precopy import PrecopyMigration
        from repro.core.scattergather import ScatterGatherMigration
        _ENGINES.update({"pre-copy": PrecopyMigration,
                         "post-copy": PostcopyMigration,
                         "agile": AgileMigration,
                         "scatter-gather": ScatterGatherMigration})
    return _ENGINES[technique]


class ClusterControlPlane:
    """Owns the health tracker, planner, supervisor, and triggers.

    Parameters
    ----------
    world:
        A wired :class:`~repro.cluster.World`; attach faults *before*
        constructing when ``health_aware`` (the tracker subscribes to
        the injector).
    technique:
        Migration engine for dispatched plans.
    health_aware:
        When False the control plane runs *health-blind*: no tracker,
        the planner scores by headroom/topology alone, and the
        supervisor falls back to exponential backoff — the ablation
        baseline.
    workload_of:
        ``vm_name -> workload`` (or None) handed to each engine.
    dst_backend_of:
        ``dst_host -> SwapBackend`` for the baseline engines; Agile
        carries its per-VM namespace and ignores it.
    replan_after_aborts:
        Aborted attempts before the supervisor asks the planner for a
        different destination.
    """

    def __init__(self, world: "World", technique: str = "agile",
                 health_aware: bool = True,
                 cooldown_s: float = 30.0,
                 planner_config: Optional[PlannerConfig] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 migration_config: Optional[MigrationConfig] = None,
                 workload_of: Optional[Callable[[str], object]] = None,
                 dst_backend_of: Optional[Callable[[str], object]] = None,
                 exclude_hosts: tuple = (),
                 replan_after_aborts: int = 1):
        self.world = world
        self.technique = technique
        self.migration_config = migration_config or MigrationConfig()
        self.workload_of = workload_of or (lambda vm_name: None)
        self.dst_backend_of = dst_backend_of or (lambda dst: None)
        self.health: Optional[HostHealthTracker] = None
        if health_aware and world.faults is not None:
            self.health = HostHealthTracker(world, cooldown_s=cooldown_s)
            if world.vmd is not None:
                world.vmd.attach_health(self.health)
        self.planner = MigrationPlanner(
            world, topology=world.topology, health=self.health,
            config=planner_config, dispatch=self._dispatch,
            exclude_hosts=exclude_hosts)
        self.supervisor = MigrationSupervisor(
            world, policy=retry_policy, health=self.health,
            replan=self._replan, replan_after_aborts=replan_after_aborts)
        self.triggers: dict[str, WatermarkTrigger] = {}
        #: vm name → its current plan (tracks supervisor re-plans)
        self._plan_of: dict[str, MigrationPlan] = {}
        #: src host → migrations still in flight from its last alert;
        #: the trigger re-arms when this reaches zero, not on the first
        #: completion (a multi-VM shed must fully land first)
        self._outstanding: dict[str, int] = {}
        cfg = self.planner.config
        if cfg.forecast_alpha > 0:
            world.start_usage_feed(cfg.forecast_sample_interval_s)
            world.subscribe_usage(self.planner.observe_usage)

    # -- triggers -------------------------------------------------------------
    def add_trigger(self, host_name: str,
                    wss_of: Callable[[], dict[str, float]],
                    config: Optional[WatermarkConfig] = None,
                    select: Optional[Callable] = None
                    ) -> WatermarkTrigger:
        """Install the watermark trigger for one host.

        ``wss_of`` supplies the per-VM WSS estimates for VMs currently
        on the host (the caller filters out migrating VMs, as in the
        single-pair loop). The trigger's alert feeds the planner; it is
        re-armed when every migration it caused has ended. ``select``
        overrides the VM-selection policy (largest-first by default);
        an SLO-aware deployment passes
        :func:`repro.telemetry.slo_aware_selector`.
        """
        host = self.world.hosts[host_name]
        trigger = WatermarkTrigger(
            self.world.sim, usable_bytes=host.memory.usable_bytes(),
            wss_of=wss_of,
            migrate=lambda names: self._on_alert(host_name, names),
            recorder=self.world.recorder, config=config,
            select=select, metrics=self.world.metrics)
        self.triggers[host_name] = trigger
        return trigger

    def _on_alert(self, host_name: str, names: list[str]) -> bool:
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.instant(f"host:{host_name}", "watermark-alert",
                           cat="trigger",
                           args={"vms": list(names)})
        if self.world.metrics.enabled:
            self.world.metrics.inc(f"trigger.alerts.{host_name}")
        accepted = 0
        for name in names:
            if self.planner.request(name, host_name):
                accepted += 1
        if accepted:
            # the trigger disarms; re-arm once all `accepted` plans end
            self._outstanding[host_name] = \
                self._outstanding.get(host_name, 0) + accepted
            return True
        return False  # nothing taken (duplicates/cooldown); stay armed

    # -- dispatch -------------------------------------------------------------
    def _factory_for(self, plan: MigrationPlan
                     ) -> Callable[[], MigrationManager]:
        def factory() -> MigrationManager:
            world = self.world
            vm = world.vms[plan.vm]
            cls = _engine(self.technique)
            return cls(world.sim, world.network,
                       world.hosts[plan.src], world.hosts[plan.dst],
                       vm, world.recorder,
                       dst_backend=self.dst_backend_of(plan.dst),
                       config=self.migration_config,
                       workload=self.workload_of(plan.vm),
                       tracer=world.tracer, metrics=world.metrics)
        return factory

    def _dispatch(self, plan: MigrationPlan) -> None:
        self._plan_of[plan.vm] = plan
        final = self.supervisor.dispatch(self._factory_for(plan))
        final.add_callback(
            lambda ev: self._on_final(plan.vm, ev.value))

    def _on_final(self, vm_name: str, report) -> None:
        plan = self._plan_of.pop(vm_name, None)
        if plan is None:  # pragma: no cover - defensive
            return
        outcome = report.outcome.value if report.outcome else "unknown"
        self.planner.on_plan_done(plan, outcome)
        left = self._outstanding.get(plan.src, 1) - 1
        if left > 0:
            self._outstanding[plan.src] = left
            return  # sibling migrations from the same alert still run
        self._outstanding.pop(plan.src, None)
        trigger = self.triggers.get(plan.src)
        if trigger is not None:
            trigger.rearm()

    def _replan(self, mgr: MigrationManager
                ) -> Optional[Callable[[], MigrationManager]]:
        plan = self._plan_of.get(mgr.vm.name)
        if plan is None:
            return None
        # planner.replan() also excludes every destination in plan.tried
        new = self.planner.replan(plan, exclude=frozenset({mgr.dst.name}))
        if new is None:
            return None
        self._plan_of[new.vm] = new
        return self._factory_for(new)

    # -- convenience ----------------------------------------------------------
    def place_new_vm(self, memory_demand_bytes: float,
                     reserve: bool = False) -> Optional[str]:
        """Health- and topology-aware host choice for a brand-new VM.

        With ``reserve=True`` the choice is charged in the planner's
        in-flight reservation ledger until the caller registers the
        VM's memory and calls ``planner.release_boot(host, bytes)`` —
        without it, a migration planned during the boot window can
        overcommit the host this boot was admitted to.
        """
        return self.planner.initial_placement(memory_demand_bytes,
                                              reserve=reserve)

    def stop(self) -> None:
        for trigger in self.triggers.values():
            trigger.stop()
