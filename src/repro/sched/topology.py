"""Datacenter topology: racks, ToR uplinks, and an oversubscribed core.

The paper's testbed is two hosts on one switch; a production cluster is
racks of hosts behind top-of-rack (ToR) switches whose uplinks share an
oversubscribed core. Two consequences matter for migration planning:

* **bandwidth**: an inter-rack flow crosses the source rack's uplink and
  the destination rack's downlink (and optionally a shared core link),
  all of which are narrower than the sum of host NICs — so migrating
  within a rack is cheaper than across;
* **fault domains**: a rack is the unit of correlated failure (ToR
  death, PDU trip). :class:`~repro.faults.FaultKind.RACK_CRASH` crashes
  every host in a rack in one deterministic schedule entry, and the
  planner's anti-affinity scoring spreads VMs across racks so one such
  event cannot take out both the original and the migrated copy.

The topology is passed to :meth:`repro.net.Network.set_topology` (flows
then traverse the uplink links) and to
:meth:`repro.cluster.World.use_topology` (fault validation, planner
queries).
"""

from __future__ import annotations

from typing import Optional

from repro.net.link import Link

__all__ = ["Rack", "Topology"]


class Rack:
    """One rack: a named fault domain with a full-duplex ToR uplink."""

    __slots__ = ("name", "hosts", "up", "down")

    def __init__(self, name: str, uplink_bps: float):
        self.name = name
        #: hosts assigned to this rack, in assignment order
        self.hosts: list[str] = []
        #: rack → core direction of the ToR uplink
        self.up = Link(f"{name}.up", uplink_bps)
        #: core → rack direction of the ToR uplink
        self.down = Link(f"{name}.down", uplink_bps)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Rack {self.name} {len(self.hosts)} hosts>"


class Topology:
    """Racks plus the shared core; defines paths and fault domains.

    Parameters
    ----------
    uplink_bps:
        Default ToR uplink capacity (bytes/s, per direction). Choose it
        below ``hosts_per_rack × nic_bps`` to model oversubscription.
    core_bps:
        Optional capacity of one shared core link that every inter-rack
        flow crosses (both directions aggregate); ``None`` models a
        non-blocking core, which keeps the ToR uplinks as the only
        inter-rack bottleneck.

    Hosts not assigned to any rack (benchmark clients, external load
    generators) are *outside* the topology: their flows cross no
    topology links and they belong to no fault domain.
    """

    def __init__(self, uplink_bps: float, core_bps: Optional[float] = None):
        if uplink_bps <= 0:
            raise ValueError("uplink capacity must be positive")
        self.uplink_bps = float(uplink_bps)
        self.racks: dict[str, Rack] = {}
        self._rack_of: dict[str, str] = {}
        self.core: Optional[Link] = (
            Link("core", core_bps) if core_bps is not None else None)

    # -- assembly -----------------------------------------------------------
    def add_rack(self, name: str,
                 uplink_bps: Optional[float] = None) -> Rack:
        if name in self.racks:
            raise ValueError(f"rack exists: {name}")
        rack = Rack(name, uplink_bps or self.uplink_bps)
        self.racks[name] = rack
        return rack

    def assign(self, host: str, rack: str) -> None:
        """Place ``host`` in ``rack`` (each host lives in one rack)."""
        if host in self._rack_of:
            raise ValueError(f"host already in rack "
                             f"{self._rack_of[host]}: {host}")
        if rack not in self.racks:
            raise KeyError(f"unknown rack: {rack}")
        self._rack_of[host] = rack
        self.racks[rack].hosts.append(host)

    # -- queries ------------------------------------------------------------
    def rack_of(self, host: str) -> Optional[str]:
        """The rack a host lives in (None for out-of-topology hosts)."""
        return self._rack_of.get(host)

    def hosts_in(self, rack: str) -> list[str]:
        return list(self.racks[rack].hosts)

    def same_rack(self, a: str, b: str) -> bool:
        """Both hosts assigned, and to the same rack."""
        ra, rb = self._rack_of.get(a), self._rack_of.get(b)
        return ra is not None and ra == rb

    def same_fault_domain(self, a: str, b: str) -> bool:
        """Alias of :meth:`same_rack`: the rack is the fault domain."""
        return self.same_rack(a, b)

    def crossings(self, src: str, dst: str) -> int:
        """ToR uplink crossings on the src→dst path (0 or 2)."""
        return len(self.path_links(src, dst))

    def path_links(self, src: str, dst: str) -> tuple[Link, ...]:
        """Topology links (beyond the host NICs) a src→dst flow crosses.

        Same rack — or either endpoint outside the topology — crosses
        nothing; inter-rack flows cross the source rack's uplink, the
        core (if modeled), and the destination rack's downlink.
        """
        ra, rb = self._rack_of.get(src), self._rack_of.get(dst)
        if ra is None or rb is None or ra == rb:
            return ()
        path = [self.racks[ra].up]
        if self.core is not None:
            path.append(self.core)
        path.append(self.racks[rb].down)
        return tuple(path)

    def describe(self) -> list[str]:
        """Stable one-line-per-rack rendering (for logs and tests)."""
        return [f"{name}: {','.join(rack.hosts)}"
                for name, rack in sorted(self.racks.items())]
