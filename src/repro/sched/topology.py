"""Datacenter topology: racks, pods, availability zones, and the core.

The paper's testbed is two hosts on one switch; a production cluster is
a multi-tier fabric: racks of hosts behind top-of-rack (ToR) switches,
racks grouped into pods behind aggregation switches, pods grouped into
availability zones (AZs) behind spine uplinks, AZs joined by a core.
Each tier's uplink is narrower than the sum of the links below it
(oversubscription tapering), and each tier is a unit of correlated
failure. Two consequences matter for migration planning:

* **bandwidth**: a flow crosses one uplink/downlink pair per tier
  boundary between its endpoints — same-rack is free, cross-rack pays
  the ToR uplinks, cross-pod additionally pays the pod uplinks,
  cross-AZ pays the spines (and the core, if modeled). Every link on
  the path is shared with everything else crossing it, so migrating
  close is cheaper than migrating far;
* **fault domains**: the rack is the smallest unit of correlated
  failure (ToR death, PDU trip), the pod the next (aggregation switch,
  power bus), the AZ the largest (facility outage, fabric split).
  :class:`~repro.faults.FaultKind.RACK_CRASH` and
  :class:`~repro.faults.FaultKind.POD_CRASH` crash every host in the
  domain in one deterministic schedule entry;
  :class:`~repro.faults.FaultKind.AZ_PARTITION` splits an AZ off the
  fabric. Anti-affinity scoring spreads VMs across the deepest
  distinct domain so one such event cannot take out both the original
  and the migrated copy.

A flat topology (racks only, no pods or AZs declared) behaves exactly
as before this hierarchy existed: inter-rack paths cross the two ToR
uplinks plus the optional core, and every rack is implicitly in one
shared pod and AZ.

The topology is passed to :meth:`repro.net.Network.set_topology` (flows
then traverse the tier links) and to
:meth:`repro.cluster.World.use_topology` (fault validation, planner
queries).
"""

from __future__ import annotations

from typing import Optional

from repro.net.link import Link

__all__ = ["Az", "Pod", "Rack", "Topology"]


class _Domain:
    """A named fault domain with a full-duplex uplink to its parent tier."""

    __slots__ = ("name", "up", "down", "parent")

    def __init__(self, name: str, uplink_bps: float,
                 parent: Optional["_Domain"] = None):
        #: child → parent direction of the tier uplink
        self.up = Link(f"{name}.up", uplink_bps)
        #: parent → child direction of the tier uplink
        self.down = Link(f"{name}.down", uplink_bps)
        self.name = name
        self.parent = parent

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class Az(_Domain):
    """An availability zone: the widest modeled fault domain. Its
    uplink is the spine pair toward the inter-AZ core."""

    __slots__ = ("pods",)

    def __init__(self, name: str, uplink_bps: float):
        super().__init__(name, uplink_bps)
        #: pods assigned to this AZ, in assignment order
        self.pods: list[str] = []


class Pod(_Domain):
    """A pod of racks behind one aggregation-switch uplink."""

    __slots__ = ("racks",)

    def __init__(self, name: str, uplink_bps: float,
                 parent: Optional[Az] = None):
        super().__init__(name, uplink_bps, parent)
        #: racks assigned to this pod, in assignment order
        self.racks: list[str] = []


class Rack(_Domain):
    """One rack: the smallest fault domain, behind a ToR uplink."""

    __slots__ = ("hosts",)

    def __init__(self, name: str, uplink_bps: float,
                 parent: Optional[Pod] = None):
        super().__init__(name, uplink_bps, parent)
        #: hosts assigned to this rack, in assignment order
        self.hosts: list[str] = []


class Topology:
    """Racks (optionally nested in pods and AZs) plus the shared core.

    Parameters
    ----------
    uplink_bps:
        Default ToR uplink capacity (bytes/s, per direction). Choose it
        below ``hosts_per_rack × nic_bps`` to model oversubscription.
    core_bps:
        Optional capacity of one shared core link that every flow
        crossing the *top* tier boundary traverses (both directions
        aggregate); ``None`` models a non-blocking core, which keeps
        the tier uplinks as the only bottlenecks.
    pod_uplink_bps / az_uplink_bps:
        Default capacities for pod and AZ uplinks. They default to the
        ToR uplink capacity; real fabrics taper them *per port* while
        aggregating many children, which
        :meth:`tiered` expresses via an oversubscription ratio.

    Hosts not assigned to any rack (benchmark clients, external load
    generators) are *outside* the topology: their flows cross no
    topology links and they belong to no fault domain.
    """

    def __init__(self, uplink_bps: float, core_bps: Optional[float] = None,
                 pod_uplink_bps: Optional[float] = None,
                 az_uplink_bps: Optional[float] = None):
        if uplink_bps <= 0:
            raise ValueError("uplink capacity must be positive")
        self.uplink_bps = float(uplink_bps)
        self.pod_uplink_bps = float(pod_uplink_bps or uplink_bps)
        self.az_uplink_bps = float(az_uplink_bps or uplink_bps)
        self.racks: dict[str, Rack] = {}
        self.pods: dict[str, Pod] = {}
        self.azs: dict[str, Az] = {}
        self._rack_of: dict[str, str] = {}
        self.core: Optional[Link] = (
            Link("core", core_bps) if core_bps is not None else None)

    # -- assembly -----------------------------------------------------------
    def add_az(self, name: str, uplink_bps: Optional[float] = None) -> Az:
        if name in self.azs:
            raise ValueError(f"az exists: {name}")
        az = Az(name, uplink_bps or self.az_uplink_bps)
        self.azs[name] = az
        return az

    def add_pod(self, name: str, az: Optional[str] = None,
                uplink_bps: Optional[float] = None) -> Pod:
        if name in self.pods:
            raise ValueError(f"pod exists: {name}")
        parent = None
        if az is not None:
            if az not in self.azs:
                raise KeyError(f"unknown az: {az}")
            parent = self.azs[az]
        pod = Pod(name, uplink_bps or self.pod_uplink_bps, parent)
        self.pods[name] = pod
        if parent is not None:
            parent.pods.append(name)
        return pod

    def add_rack(self, name: str, pod: Optional[str] = None,
                 uplink_bps: Optional[float] = None) -> Rack:
        if name in self.racks:
            raise ValueError(f"rack exists: {name}")
        parent = None
        if pod is not None:
            if pod not in self.pods:
                raise KeyError(f"unknown pod: {pod}")
            parent = self.pods[pod]
        rack = Rack(name, uplink_bps or self.uplink_bps, parent)
        self.racks[name] = rack
        if parent is not None:
            parent.racks.append(name)
        return rack

    def assign(self, host: str, rack: str) -> None:
        """Place ``host`` in ``rack`` (each host lives in one rack)."""
        if host in self._rack_of:
            raise ValueError(f"host already in rack "
                             f"{self._rack_of[host]}: {host}")
        if rack not in self.racks:
            raise KeyError(f"unknown rack: {rack}")
        self._rack_of[host] = rack
        self.racks[rack].hosts.append(host)

    @classmethod
    def tiered(cls, n_azs: int, pods_per_az: int, racks_per_pod: int,
               uplink_bps: float, oversubscription: float = 2.0,
               core_bps: Optional[float] = None) -> "Topology":
        """Build a regular three-tier fabric with bandwidth tapering.

        Racks are named ``az{i}p{j}r{k}`` under pods ``az{i}p{j}`` under
        AZs ``az{i}``. Each tier's uplink carries the tier below at
        ``1/oversubscription`` of its aggregate capacity: a pod uplink
        is ``racks_per_pod × uplink_bps / oversubscription``, an AZ
        uplink ``pods_per_az × pod_uplink / oversubscription`` — the
        taper every real Clos fabric applies per boundary.
        """
        if min(n_azs, pods_per_az, racks_per_pod) < 1:
            raise ValueError("tier sizes must be at least 1")
        if oversubscription < 1.0:
            raise ValueError("oversubscription ratio must be >= 1")
        pod_bps = racks_per_pod * uplink_bps / oversubscription
        az_bps = pods_per_az * pod_bps / oversubscription
        topo = cls(uplink_bps, core_bps=core_bps,
                   pod_uplink_bps=pod_bps, az_uplink_bps=az_bps)
        for i in range(n_azs):
            az = f"az{i}"
            topo.add_az(az)
            for j in range(pods_per_az):
                pod = f"{az}p{j}"
                topo.add_pod(pod, az=az)
                for k in range(racks_per_pod):
                    topo.add_rack(f"{pod}r{k}", pod=pod)
        return topo

    # -- queries ------------------------------------------------------------
    def rack_of(self, host: str) -> Optional[str]:
        """The rack a host lives in (None for out-of-topology hosts)."""
        return self._rack_of.get(host)

    def pod_of(self, host: str) -> Optional[str]:
        """The pod a host's rack lives in (None without a pod tier)."""
        rack = self._rack_of.get(host)
        if rack is None:
            return None
        parent = self.racks[rack].parent
        return None if parent is None else parent.name

    def az_of(self, host: str) -> Optional[str]:
        """The AZ a host's pod lives in (None without an AZ tier)."""
        pod = self.pod_of(host)
        if pod is None:
            return None
        parent = self.pods[pod].parent
        return None if parent is None else parent.name

    def hosts_in(self, rack: str) -> list[str]:
        return list(self.racks[rack].hosts)

    def hosts_in_pod(self, pod: str) -> list[str]:
        return [h for rack in self.pods[pod].racks
                for h in self.racks[rack].hosts]

    def hosts_in_az(self, az: str) -> list[str]:
        return [h for pod in self.azs[az].pods
                for h in self.hosts_in_pod(pod)]

    def same_rack(self, a: str, b: str) -> bool:
        """Both hosts assigned, and to the same rack."""
        ra, rb = self._rack_of.get(a), self._rack_of.get(b)
        return ra is not None and ra == rb

    def same_fault_domain(self, a: str, b: str, tier: str = "rack") -> bool:
        """Both hosts share the named fault domain tier.

        ``tier`` is ``"rack"``, ``"pod"`` or ``"az"``. For pods/AZs,
        hosts whose racks are not nested under that tier share the one
        implicit root domain (a flat topology is one pod and one AZ).
        """
        if tier == "rack":
            return self.same_rack(a, b)
        if self._rack_of.get(a) is None or self._rack_of.get(b) is None:
            return False
        if tier == "pod":
            return self.pod_of(a) == self.pod_of(b)
        if tier == "az":
            return self.az_of(a) == self.az_of(b)
        raise ValueError(f"unknown fault-domain tier: {tier}")

    def tier_distance(self, a: str, b: str) -> int:
        """Depth of the deepest domain that *separates* two hosts.

        0 — same rack (or either host outside the topology);
        1 — different racks in one pod (flat topologies land here:
        every pod-less rack shares the implicit root pod);
        2 — different pods in one AZ;
        3 — different AZs.

        This is the anti-affinity scale: a migration at distance *d*
        survives every correlated failure of domains deeper than *d*.
        """
        ra, rb = self._rack_of.get(a), self._rack_of.get(b)
        if ra is None or rb is None or ra == rb:
            return 0
        if self.pod_of(a) == self.pod_of(b):
            return 1
        if self.az_of(a) == self.az_of(b):
            return 2
        return 3

    def crossings(self, src: str, dst: str) -> int:
        """ToR uplink crossings on the src→dst path (0 or 2).

        Counts rack-boundary crossings only — the source rack's uplink
        and the destination rack's downlink — *not* the path length:
        modeling a core link or deeper tiers does not change how many
        ToR switches a flow escapes through. Use :meth:`path_hops` for
        the store-and-forward hop count of the full path.
        """
        ra, rb = self._rack_of.get(src), self._rack_of.get(dst)
        return 0 if ra is None or rb is None or ra == rb else 2

    def path_hops(self, src: str, dst: str) -> int:
        """Store-and-forward hops beyond the host NICs: the number of
        topology links on the src→dst path (latency accrues per hop)."""
        return len(self.path_links(src, dst))

    def path_links(self, src: str, dst: str) -> tuple[Link, ...]:
        """Topology links (beyond the host NICs) a src→dst flow crosses.

        Same rack — or either endpoint outside the topology — crosses
        nothing. Otherwise the path climbs from the source rack through
        each tier uplink up to (and not including) the lowest common
        ancestor domain, crosses the core iff the endpoints share no
        modeled domain at all and a core is modeled, and descends
        through the destination side's downlinks in mirror order.
        """
        ra, rb = self._rack_of.get(src), self._rack_of.get(dst)
        if ra is None or rb is None or ra == rb:
            return ()
        up_chain = self._chain(ra)
        down_chain = self._chain(rb)
        # Trim the shared ancestor suffix: tiers both endpoints sit
        # under are not crossed.
        while up_chain and down_chain and up_chain[-1] is down_chain[-1]:
            up_chain.pop()
            down_chain.pop()
        path = [d.up for d in up_chain]
        if self.core is not None:
            path.append(self.core)
        path.extend(d.down for d in reversed(down_chain))
        return tuple(path)

    def _chain(self, rack: str) -> list[_Domain]:
        """The rack's domain chain, innermost first (rack, pod?, az?)."""
        chain: list[_Domain] = []
        node: Optional[_Domain] = self.racks[rack]
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def describe(self) -> list[str]:
        """Stable one-line-per-rack rendering (for logs and tests)."""
        return [f"{name}: {','.join(rack.hosts)}"
                for name, rack in sorted(self.racks.items())]
