"""repro.sched: topology- and health-aware cluster control plane.

Layers a datacenter scheduler over the single-pair migration engines:

* :mod:`~repro.sched.topology` — racks, ToR uplinks, fault domains;
* :mod:`~repro.sched.health` — per-host UP/DEGRADED/DOWN/RECENTLY_FAILED
  folded from the fault injector's inject/revert stream;
* :mod:`~repro.sched.planner` — cluster-wide destination scoring and
  FIFO admission control for watermark-triggered migrations;
* :mod:`~repro.sched.control` — the assembly: triggers → planner →
  supervised engines, with park-until-healthy and re-planning.
"""

from repro.sched.control import ClusterControlPlane
from repro.sched.health import HostHealth, HostHealthTracker
from repro.sched.planner import MigrationPlan, MigrationPlanner, PlannerConfig
from repro.sched.topology import Az, Pod, Rack, Topology

__all__ = [
    "ClusterControlPlane",
    "HostHealth",
    "HostHealthTracker",
    "MigrationPlan",
    "MigrationPlanner",
    "PlannerConfig",
    "Az",
    "Pod",
    "Rack",
    "Topology",
]
