"""Host health: the control plane's view of what is safe to schedule on.

The fault injector manipulates *physical* state (NIC capacities, VM
liveness); this tracker folds its inject/revert stream into a per-host
health state machine the schedulers consult:

* ``UP`` — no active fault; eligible for placement and migration.
* ``DEGRADED`` — reachable but impaired (NIC degradation, partition
  membership); still placeable, but scored down by the planner.
* ``DOWN`` — an unrecovered crash or outage (host crash, NIC dark, rack
  crash, VMD donor crash on that host). Nothing is dispatched here.
* ``RECENTLY_FAILED`` — the fault reverted, but the host is inside a
  cooldown window. A host that just came back is disproportionately
  likely to fail again (flapping optics, crash loops), so placement
  keeps avoiding it until the cooldown expires.

State changes are pushed to subscribers (``fn(host, old, new)``), which
is how the :class:`~repro.faults.MigrationSupervisor` un-parks retries
the moment a destination is genuinely back, and how the planner re-pumps
its queue when capacity returns.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

from repro.faults.spec import FaultKind, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World

__all__ = ["HostHealth", "HostHealthTracker"]


class HostHealth(enum.Enum):
    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"
    RECENTLY_FAILED = "recently-failed"


#: fault kinds that take a host (or every host in a rack/pod) fully down
_DOWN_KINDS = (FaultKind.HOST_CRASH, FaultKind.NIC_DOWN,
               FaultKind.VMD_CRASH, FaultKind.RACK_CRASH,
               FaultKind.POD_CRASH)


class HostHealthTracker:
    """Folds the fault stream into per-host UP/DEGRADED/DOWN state.

    Construct after :meth:`~repro.cluster.World.attach_faults` (the
    tracker subscribes to the injector). Hosts never named by a fault
    are ``UP`` forever, so the tracker needs no host registration.
    """

    def __init__(self, world: "World", cooldown_s: float = 30.0):
        if world.faults is None:
            raise RuntimeError("attach_faults() before building the "
                               "health tracker")
        if cooldown_s < 0:
            raise ValueError("cooldown must be non-negative")
        self.world = world
        self.cooldown_s = float(cooldown_s)
        #: host → keys of active faults that take it DOWN
        self._down: dict[str, set[tuple]] = {}
        #: host → keys of active faults that merely degrade it
        self._degraded: dict[str, set[tuple]] = {}
        #: host → cooldown epoch (stale expiry callbacks are ignored)
        self._epoch: dict[str, int] = {}
        #: hosts currently inside a post-revert cooldown
        self._cooling: set[str] = set()
        self._subs: list[Callable[[str, HostHealth, HostHealth], None]] = []
        world.faults.subscribe(self._on_fault)

    # -- queries -------------------------------------------------------------
    def state(self, host: str) -> HostHealth:
        if self._down.get(host):
            return HostHealth.DOWN
        if host in self._cooling:
            return HostHealth.RECENTLY_FAILED
        if self._degraded.get(host):
            return HostHealth.DEGRADED
        return HostHealth.UP

    def is_up(self, host: str) -> bool:
        return self.state(host) is HostHealth.UP

    def placeable(self, host: str) -> bool:
        """Eligible as a migration destination or for a new VM: not dead
        and not fresh out of a failure."""
        return self.state(host) in (HostHealth.UP, HostHealth.DEGRADED)

    def donor_placeable(self, host: str) -> bool:
        """Eligible to receive new VMD page placements (same rule; the
        separate name keeps the two call sites independently tunable)."""
        return self.placeable(host)

    def snapshot(self) -> dict[str, str]:
        """Hosts currently not UP, for logs (sorted, deterministic)."""
        hosts = set(self._down) | set(self._degraded) | self._cooling
        return {h: self.state(h).value for h in sorted(hosts)
                if self.state(h) is not HostHealth.UP}

    # -- subscription --------------------------------------------------------
    def subscribe(self,
                  fn: Callable[[str, HostHealth, HostHealth], None]) -> None:
        """Call ``fn(host, old, new)`` after every state change."""
        self._subs.append(fn)

    # -- fault folding -------------------------------------------------------
    def _hosts_of(self, spec: FaultSpec) -> list[str]:
        if spec.kind is FaultKind.RACK_CRASH:
            topo = self.world.topology
            return [] if topo is None else topo.hosts_in(spec.target)
        if spec.kind is FaultKind.POD_CRASH:
            topo = self.world.topology
            return [] if topo is None else topo.hosts_in_pod(spec.target)
        if spec.kind is FaultKind.AZ_PARTITION:
            topo = self.world.topology
            return [] if topo is None else topo.hosts_in_az(spec.target)
        if spec.kind is FaultKind.PARTITION:
            from repro.faults.injector import FaultInjector
            return FaultInjector._partition_hosts(spec.target)
        if spec.kind is FaultKind.SSD_DEGRADED:
            return []  # a device fault, not a host fault
        return [spec.target]

    def _on_fault(self, spec: FaultSpec, phase: str) -> None:
        key = (spec.kind.value, spec.target, spec.at)
        if spec.kind in _DOWN_KINDS:
            buckets = self._down
        elif spec.kind in (FaultKind.NIC_DEGRADED, FaultKind.PARTITION,
                           FaultKind.AZ_PARTITION):
            buckets = self._degraded
        else:
            return
        for host in self._hosts_of(spec):
            old = self.state(host)
            if phase == "inject":
                buckets.setdefault(host, set()).add(key)
                if buckets is self._down:
                    # a fresh failure supersedes any pending cooldown
                    self._cooling.discard(host)
                    self._epoch[host] = self._epoch.get(host, 0) + 1
            else:
                active = buckets.get(host)
                if active is not None:
                    active.discard(key)
                    if not active:
                        del buckets[host]
                if buckets is self._down and not self._down.get(host):
                    self._start_cooldown(host)
            self._emit(host, old)

    def _start_cooldown(self, host: str) -> None:
        if self.cooldown_s <= 0:
            return
        self._cooling.add(host)
        epoch = self._epoch.get(host, 0)
        self.world.sim.call_in(self.cooldown_s,
                               self._cooldown_expired, host, epoch)

    def _cooldown_expired(self, host: str, epoch: int) -> None:
        if self._epoch.get(host, 0) != epoch or host not in self._cooling:
            return  # the host failed again in the meantime
        old = self.state(host)
        self._cooling.discard(host)
        self._emit(host, old)

    def _emit(self, host: str, old: HostHealth) -> None:
        new = self.state(host)
        if new is old:
            return
        for fn in list(self._subs):
            fn(host, old, new)
